"""Paper-calibrated cycle-cost model for TyTAN primitives.

The original TyTAN artifact is a Siskiyou Peak soft core on a Spartan-6
FPGA at 48 MHz; its evaluation reports everything in clock cycles.  Our
substrate is a behavioural simulator, so per-step costs cannot be counted
in RTL.  Instead, every primitive charges cycles from the constants in
this module, and the constants are calibrated so that the *reference
configurations* used in the paper's tables land on the reported numbers.

Crucially, costs the paper reports per step are charged per step *by the
code that actually performs that step*: the EA-MPU driver charges
``EAMPU_FIND_PER_SLOT`` once per slot it really probes, the RTM charges
``MEASURE_PER_BLOCK`` once per 64-byte block it really hashes, the loader
charges per relocation entry it really patches.  The linear shapes in
Tables 5-7 therefore emerge from execution, not from closed-form formulas.

Derivations from the paper (all values in clock cycles):

* Table 2 - saving a secure task's context costs 95 = 38 (store) +
  16 (wipe) + 41 (branch); plain FreeRTOS costs 38, overhead 57.
* Table 3 - restoring costs 384 with components branch=106 and
  restore=254; plain FreeRTOS costs 254, overhead 130.  The 24-cycle
  difference between 384 and 106+254 is the entry routine's mode check.
* Table 4 - creating a 3,962-byte task with 9 relocations costs 208,808
  (normal) / 642,241 (secure); plain FreeRTOS creation is therefore
  208,808 - 3,917 = 204,891.
* Table 5 - relocation is 37 cycles for 0 entries and grows by ~636
  (min) to ~667 (avg) per entry.
* Table 6 - EA-MPU configuration: finding free slot p costs 57 + 19*p,
  the policy check costs 824 = 14 + 18*45, writing the rule costs 225.
* Table 7 - measuring b blocks costs ~4,337 + b*3,932 (fits the four
  reported rows within 0.1%); reverting a relocations costs
  114 + 566 + (a-1)*502.
* Secure IPC costs 1,208 (proxy) + 116 (receiver entry routine).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# CPU core timing
# ---------------------------------------------------------------------------

#: Base cost of a simple ALU / move instruction.
INSN_BASE = 1

#: Additional cost of a memory operand (load or store).
INSN_MEM = 2

#: Additional cost of a taken branch (pipeline refill on the small core).
INSN_BRANCH_TAKEN = 2

#: Cost of entering an exception: the hardware exception engine pushes
#: EIP and EFLAGS onto the interrupted task's stack and vectors through
#: the IDT.
EXCEPTION_ENTRY = 12

#: Cost of the IRET-style return executed when an exception unwinds.
EXCEPTION_RETURN = 8

# ---------------------------------------------------------------------------
# Table 2 - saving the context of a secure task
# ---------------------------------------------------------------------------

#: Number of general-purpose registers saved by software (EAX, EBX, ECX,
#: EDX, ESI, EDI, EBP, ESP).  EIP and EFLAGS are pushed by hardware.
CONTEXT_REGISTERS = 8

#: Storing one register to the task stack (write + pointer update).
STORE_PER_REG = 4

#: Fixed overhead of the store-context sequence (stack pointer fetch,
#: bookkeeping).  38 = 6 + 8 * 4.
STORE_BASE = 6

#: Wiping one register (xor reg, reg).  16 = 8 * 2.
WIPE_PER_REG = 2

#: Branching from the Int Mux to the real interrupt handler: IDT lookup,
#: EA-MPU context switch bookkeeping, indirect jump.
INTMUX_BRANCH = 41

#: Plain FreeRTOS interrupt entry only stores the context (38 cycles); the
#: wipe and the extra branch hop are TyTAN's Int Mux overhead (57 cycles).

# ---------------------------------------------------------------------------
# Table 3 - restoring the context of a secure task
# ---------------------------------------------------------------------------

#: Branching into the secure task's dedicated entry routine, including the
#: EA-MPU entry-point check.
ENTRY_BRANCH = 106

#: The entry routine's resume-vs-message mode check (reads the mode
#: register set by the Int Mux / IPC proxy).
ENTRY_MODE_CHECK = 24

#: Restoring one register from the task stack.
RESTORE_PER_REG = 30

#: Fixed overhead of the restore sequence.  254 = 14 + 8 * 30.
RESTORE_BASE = 14

# ---------------------------------------------------------------------------
# Table 4 - task creation (plain FreeRTOS portion)
# ---------------------------------------------------------------------------

#: Fixed cost of FreeRTOS task creation: TCB allocation, stack preparation,
#: scheduler insertion.  Split across the load steps as 2,000 (allocate) +
#: 3,791 (TCB + stack frame) + 1,000 (scheduler insert).
CREATE_BASE = 6_791

#: Per-byte cost of bringing the task image into RAM (staged flash read,
#: copy, loader parsing, BSS/stack zeroing).  Calibrated so the
#: reference Table 4 task (62 measurement blocks + 512-byte stack,
#: ~4.5 KiB of memory) lands within a few percent of the paper's
#: 208,808-cycle normal creation.
CREATE_PER_BYTE = 45

# ---------------------------------------------------------------------------
# Table 5 - relocation
# ---------------------------------------------------------------------------

#: Walking an empty relocation table (header parse, loop setup).
RELOC_BASE = 37

#: Patching one aligned relocation site: read site, add delta, write back.
RELOC_PER_ENTRY = 640

#: Extra cost when the relocation site is not word-aligned (two partial
#: word accesses on the 32-bit bus).  Random sites are unaligned with
#: probability 3/4, so the average per-entry cost is 640 + 27 = 667,
#: matching the paper's avg column; the min column is the all-aligned case.
RELOC_UNALIGNED_PENALTY = 36

# ---------------------------------------------------------------------------
# Table 6 - EA-MPU configuration
# ---------------------------------------------------------------------------

#: Total number of EA-MPU rule slots (paper: "18 slots in total").
EAMPU_SLOTS = 18

#: Base cost of the free-slot scan.
EAMPU_FIND_BASE = 57

#: Probing one slot during the free-slot scan.  Finding slot p costs
#: 57 + 19 * p: 76 / 95 / 399 for p = 1 / 2 / 18.
EAMPU_FIND_PER_SLOT = 19

#: Base cost of the overlap policy check.
EAMPU_POLICY_BASE = 14

#: Comparing the new rule against one existing slot.  The check always
#: walks all 18 slots: 824 = 14 + 18 * 45.
EAMPU_POLICY_PER_SLOT = 45

#: Writing the new rule into the chosen slot (4 MMIO stores + commit).
EAMPU_WRITE_RULE = 225

# ---------------------------------------------------------------------------
# Table 7 - task measurement (RTM)
# ---------------------------------------------------------------------------

#: Size of one measurement block; the RTM hashes the task image block by
#: block and is interruptible at block boundaries.
MEASURE_BLOCK_BYTES = 64

#: Setup cost: locating the task in the RTM registry, pinning its memory,
#: initialising the SHA-1 state.
MEASURE_SETUP = 4_237

#: Software SHA-1 compression of one 64-byte block, including the copy-in.
#: Together with setup and finalisation this reproduces Table 7 within
#: 0.1%: 8,269 / 12,201 / 20,065 / 35,793 for b = 1 / 2 / 4 / 8 versus the
#: paper's 8,261 / 12,200 / 20,078 / 35,790.
MEASURE_PER_BLOCK = 3_932

#: Finalisation: padding, length append, digest extraction.
MEASURE_FINALIZE = 100

#: Walking an empty relocation-reversal table.
REVERSAL_BASE = 114

#: Reverting the first relocation site (includes loading the image's
#: relocation table header into the RTM's working set).
REVERSAL_FIRST = 566

#: Reverting each subsequent site.  114 + 566 + (a-1)*502 gives
#: 114 / 680 / 1,182 / 2,186 for a = 0 / 1 / 2 / 4 versus the paper's
#: 114 / 680 / 1,188 / 2,187.
REVERSAL_NEXT = 502

#: Invoking the RTM as a secure task for a full measurement in the paper's
#: Table 4 configuration: IPC round trip, scheduling, registry update, and
#: the interruptions the RTM absorbs while measuring.  Calibrated so that
#: the RTM column for the reference task (62 blocks, 9 relocations) is
#: the paper's 433,433 cycles.
RTM_INVOKE_OVERHEAD = 180_616

# ---------------------------------------------------------------------------
# Secure IPC (Section 6 text: 1,208 + 116 = 1,324)
# ---------------------------------------------------------------------------

#: Software-interrupt dispatch into the IPC proxy.
IPC_ENTRY = 96

#: Reading the interrupt origin from the exception engine and resolving
#: the sender's identity.
IPC_ORIGIN_LOOKUP = 74

#: Base cost of the receiver lookup in the RTM's task registry.
IPC_REGISTRY_BASE = 60

#: Probing one registry entry (64-bit truncated identity compare).
IPC_REGISTRY_PER_ENTRY = 24

#: Base cost of writing the message into the receiver's inbox.
IPC_INBOX_BASE = 40

#: Writing one 32-bit word of message payload or sender identity.
IPC_INBOX_PER_WORD = 12

#: Handing control to the receiver (sync) or re-scheduling the sender
#: (async): EA-MPU bookkeeping plus the dispatch branch.
IPC_DELIVER = 818

#: Receiver entry-routine cost for processing an incoming message: mode
#: check plus copying the message out of the inbox.  116 = 24 + 92.
IPC_ENTRY_ROUTINE_RECEIVE = 92

# Reference configuration check (2 loaded tasks, 4-word message):
#   96 + 74 + (60 + 2*24) + (40 + 6*12) + 818 = 1,208   (proxy)
#   24 + 92 = 116                                        (entry routine)

#: Number of 32-bit registers available for the message payload.
IPC_MAX_MESSAGE_WORDS = 4

#: Number of words used to pass the truncated 64-bit identity.
IPC_IDENTITY_WORDS = 2

# ---------------------------------------------------------------------------
# Secure storage and attestation
# ---------------------------------------------------------------------------

#: Deriving a task or attestation key with HMAC(K_p, .): two SHA-1 passes.
KEY_DERIVATION = 2 * (MEASURE_SETUP + 2 * MEASURE_PER_BLOCK + MEASURE_FINALIZE)

#: XTEA encryption of one 8-byte block (32 rounds in software).
XTEA_PER_BLOCK = 210

#: Computing a MAC over an attestation report (HMAC-SHA-1, short input).
ATTEST_MAC = KEY_DERIVATION

# ---------------------------------------------------------------------------
# Control-flow attestation (repro.cfa)
# ---------------------------------------------------------------------------

#: Folding one taken control transfer into the running path hash.  Same
#: magnitude as the CFI watchdog's per-transfer check: a hardware path
#: monitor updates a small digest register in a couple of cycles.
#: Segment *sealing* is free at run time (the monitor finalises the
#: chain in a background pipeline); only report generation costs CPU.
CFA_EDGE_CYCLES = 2

#: Per sealed segment serialised into an evidence report (fixed part).
CFA_SEAL_BASE = 96

#: Per recorded edge run hashed/serialised while reporting a segment.
CFA_SEAL_PER_RUN = 6

#: Serialising one edge run into the evidence report body.
CFA_REPORT_PER_RUN = 4

#: Upper bound on cycles charged per interruptible evidence-generation
#: slice (the ISC-FLAT argument: report generation never occupies the
#: CPU for longer than this between preemption points).
CFA_REPORT_SLICE = 2_000

# ---------------------------------------------------------------------------
# Scheduler / kernel costs
# ---------------------------------------------------------------------------

#: Picking the next ready task (highest-priority ready-list pop).
SCHEDULE_PICK = 48

#: Tick interrupt housekeeping (tick count, delayed-task wakeup scan base).
TICK_BASE = 60

#: Per delayed task inspected during the tick wakeup scan.
TICK_PER_DELAYED = 8

#: Inserting / removing a TCB from a ready or event list.
LIST_OP = 14

#: Secure-boot measurement-and-lock of one trusted component.
SECURE_BOOT_PER_COMPONENT = 5_000


def store_context_cycles(registers=CONTEXT_REGISTERS):
    """Cycles for the Int Mux to store ``registers`` registers."""
    return STORE_BASE + registers * STORE_PER_REG


def wipe_context_cycles(registers=CONTEXT_REGISTERS):
    """Cycles for the Int Mux to wipe ``registers`` registers."""
    return registers * WIPE_PER_REG


def restore_context_cycles(registers=CONTEXT_REGISTERS):
    """Cycles for the entry routine to restore ``registers`` registers."""
    return RESTORE_BASE + registers * RESTORE_PER_REG


def measurement_cycles(blocks, addresses=0):
    """Closed-form Table 7 prediction (used by tests as the oracle).

    The RTM itself never calls this; it charges per block and per
    reverted address as it works.  ``addresses`` counts relocation sites
    reverted before hashing.
    """
    total = MEASURE_SETUP + blocks * MEASURE_PER_BLOCK + MEASURE_FINALIZE
    total += reversal_cycles(addresses)
    return total


def reversal_cycles(addresses):
    """Closed-form cost of reverting ``addresses`` relocation sites."""
    if addresses <= 0:
        return REVERSAL_BASE
    return REVERSAL_BASE + REVERSAL_FIRST + (addresses - 1) * REVERSAL_NEXT


def relocation_cycles(entries, unaligned=0):
    """Closed-form Table 5 prediction for ``entries`` relocation sites."""
    return (
        RELOC_BASE
        + entries * RELOC_PER_ENTRY
        + unaligned * RELOC_UNALIGNED_PENALTY
    )


def eampu_config_cycles(free_slot_position):
    """Closed-form Table 6 prediction; ``free_slot_position`` is 1-based."""
    return (
        EAMPU_FIND_BASE
        + free_slot_position * EAMPU_FIND_PER_SLOT
        + EAMPU_POLICY_BASE
        + EAMPU_SLOTS * EAMPU_POLICY_PER_SLOT
        + EAMPU_WRITE_RULE
    )


def ipc_proxy_cycles(registry_entries, message_words=IPC_MAX_MESSAGE_WORDS):
    """Closed-form prediction of the IPC proxy cost."""
    return (
        IPC_ENTRY
        + IPC_ORIGIN_LOOKUP
        + IPC_REGISTRY_BASE
        + registry_entries * IPC_REGISTRY_PER_ENTRY
        + IPC_INBOX_BASE
        + (message_words + IPC_IDENTITY_WORDS) * IPC_INBOX_PER_WORD
        + IPC_DELIVER
    )
