"""The CFA monitor firmware component: enrolment, sealing, reporting.

Registered beside the other TyTAN trusted components (it occupies the
last free firmware page), the engine owns the device side of
control-flow attestation:

* **enrolment** wires a :class:`~repro.cfa.recorder.PathRecorder` for a
  task's code region onto the CPU monitor port (``cpu.cfa``) and bumps
  the port's generation so the trace tier drops bodies compiled without
  the CFA updates;
* **sealing** happens at every kernel preemption point (via the
  kernel's preempt hooks) and on task deletion - preemption lands on
  the same instruction boundary in every execution tier, so the segment
  stream is bit-identical across tiers;
* **report generation** is ISC-FLAT-style interruptible: the evidence
  body is serialised and MACed in bounded
  :data:`~repro.cycles.CFA_REPORT_SLICE` charge chunks, each one a
  kernel preemption point, so enabling CFA never degrades the
  platform's IRQ latency bound.

Evidence survives task exit: the engine keeps the recorder of an
unenrolled task until :meth:`CfaEngine.discard`, so a fleet device can
answer challenges about an agent that has already run to completion.
"""

from __future__ import annotations

from repro import cycles
from repro.crypto.hmac import hmac_sha1
from repro.crypto.kdf import derive_key
from repro.errors import AttestationError
from repro.hw.platform import FirmwareComponent
from repro.obs.counters import Counter
from repro.rtos.task import NativeCall

from .evidence import CfaEvidence
from .recorder import CfaCore, PathRecorder


class _CfaTask:
    """Per-enrolled-task monitor state."""

    __slots__ = ("name", "tid", "base", "end", "identity", "recorder", "attached")

    def __init__(self, name, tid, base, end, identity, recorder):
        self.name = name
        self.tid = tid
        self.base = base
        self.end = end
        self.identity = identity
        self.recorder = recorder
        self.attached = True


class CfaEngine(FirmwareComponent):
    """Control-flow attestation monitor + report generator."""

    NAME = "cfa-monitor"

    def __init__(self, kernel, rtm, remote_attest):
        super().__init__()
        self.kernel = kernel
        self.rtm = rtm
        #: The Remote Attest component: K_a is only accessible to it
        #: (Section 3), so evidence MACs are derived through its key
        #: path rather than by reading the fuses directly - the CFA
        #: monitor needs no key-fuse EA-MPU rule of its own.
        self.remote_attest = remote_attest
        #: tid -> :class:`_CfaTask` (kept after unenrolment for reports).
        self._tasks = {}
        self._installed = False
        self.reports = Counter("cfa-reports")
        self.preempt_seals = Counter("cfa-preempt-seals")

    # -- obs ----------------------------------------------------------------

    def _publish(self, kind, **data):
        bus = self.kernel.obs
        if bus is not None:
            bus.publish("cfa", kind, component=self.NAME, **data)

    # -- enrolment ----------------------------------------------------------

    @property
    def core(self):
        """The CPU monitor port (``cpu.cfa``), created on first use."""
        cpu = self.kernel.platform.cpu
        if cpu.cfa is None:
            cpu.cfa = CfaCore(self.kernel.clock)
        return cpu.cfa

    def _install(self):
        if self._installed:
            return
        self.kernel.add_preempt_hook(self._on_preempt)
        self.kernel.add_delete_hook(self._on_delete)
        bus = self.kernel.obs
        if bus is not None:
            bus.counters.register(self.reports, replace=True)
            bus.counters.register(self.preempt_seals, replace=True)
        self._installed = True

    def enroll_task(self, task, segment_runs=None, max_segments=None):
        """Start recording ``task``'s taken control transfers."""
        entry = self.rtm.lookup_task(task)
        if entry is None:
            raise AttestationError(
                "task %s is not measured; CFA evidence needs an identity" % task.name
            )
        kwargs = {}
        if segment_runs is not None:
            kwargs["segment_runs"] = segment_runs
        if max_segments is not None:
            kwargs["max_segments"] = max_segments
        recorder = PathRecorder(**kwargs)
        state = _CfaTask(
            task.name, task.tid, task.base, task.end, entry.identity, recorder
        )
        self._tasks[task.tid] = state
        self.core.attach_region(task.base, task.end, recorder)
        self._install()
        self._publish(
            "enroll",
            task=task.name,
            base=task.base,
            end=task.end,
            identity=entry.identity.hex()[:16],
        )
        return recorder

    def unenroll_task(self, task):
        """Stop recording ``task``; its evidence stays reportable."""
        state = self._tasks.get(task.tid)
        if state is None or not state.attached:
            return
        state.recorder.seal()
        state.attached = False
        self.core.detach_region(state.base)
        self._publish("unenroll", task=state.name, edges=state.recorder.edges)

    def discard(self, tid):
        """Forget an unenrolled task's evidence entirely."""
        state = self._tasks.pop(tid, None)
        if state is not None and state.attached:
            self.core.detach_region(state.base)

    def enrolled_count(self):
        return sum(1 for state in self._tasks.values() if state.attached)

    def recorder_for(self, name):
        """The recorder of the (most recently enrolled) task ``name``."""
        for state in reversed(list(self._tasks.values())):
            if state.name == name:
                return state.recorder
        return None

    def state_for(self, name):
        for state in reversed(list(self._tasks.values())):
            if state.name == name:
                return state
        return None

    # -- kernel hooks --------------------------------------------------------

    def _on_preempt(self, task):
        """Seal the open segment at a preemption boundary.

        Sealing is free at run time (hardware chain pipeline); the
        boundary is what matters - it is tier-identical by the event
        horizon argument, so so are the seals.
        """
        state = self._tasks.get(task.tid)
        if state is not None and state.attached:
            if state.recorder.seal() is not None:
                self.preempt_seals.add()

    def _on_delete(self, task):
        self.unenroll_task(task)

    # -- report generation ---------------------------------------------------

    def _report_key(self, provider=b""):
        """Obtain K_a via the Remote Attest component's key path.

        The fuse read presents Remote Attest's actor, so the EA-MPU
        rule installed at secure boot is what authorises it; the
        derivation cost is charged by the caller in interruptible
        slices rather than by this helper.
        """
        attest = self.remote_attest
        platform_key = attest.key_store.read_key(actor=attest.base)
        return derive_key(platform_key, b"attest", provider)

    def generate_evidence(self, name, nonce, provider=b""):
        """Generator producing a MACed evidence record, interruptibly.

        Yields :class:`NativeCall` charge chunks no larger than
        :data:`cycles.CFA_REPORT_SLICE`; every yield is a kernel
        preemption point, which is the ISC-FLAT property.  Returns the
        :class:`CfaEvidence` via ``StopIteration.value``.

        The recorder is *not* mutated: the open segment is digested as
        if sealed now, so repeated challenges see a stable path log.
        """
        state = self.state_for(name)
        if state is None:
            raise AttestationError("no CFA evidence for task %r" % name)
        evidence = CfaEvidence.from_recorder(state.identity, state.recorder)

        # Serialisation cost: per segment + per carried run, in slices.
        cost = len(evidence.segments) * cycles.CFA_SEAL_BASE
        cost += evidence.run_count() * (
            cycles.CFA_SEAL_PER_RUN + cycles.CFA_REPORT_PER_RUN
        )
        while cost > 0:
            step = min(cost, cycles.CFA_REPORT_SLICE)
            yield NativeCall.charge(step)
            cost -= step

        # Key derivation + MAC, also sliced.
        key = self._report_key(provider)
        for chunk in (cycles.KEY_DERIVATION, cycles.ATTEST_MAC):
            remaining = chunk
            while remaining > 0:
                step = min(remaining, cycles.CFA_REPORT_SLICE)
                yield NativeCall.charge(step)
                remaining -= step
        evidence.mac = hmac_sha1(
            key, evidence.identity + bytes(nonce) + evidence.body_bytes()
        )
        self.reports.add()
        self._publish(
            "report",
            task=state.name,
            segments=len(evidence.segments),
            edges=evidence.edges,
            dropped=evidence.dropped,
        )
        return evidence

    def evidence_report(self, name, nonce, provider=b""):
        """Synchronous drain of :meth:`generate_evidence`.

        The charge chunks still advance the simulated clock (device
        polling stays live through the platform's normal charge path),
        so fleet response timing includes the full report cost.
        """
        generator = self.generate_evidence(name, nonce, provider)
        clock = self.kernel.clock
        while True:
            try:
                call = next(generator)
            except StopIteration as stop:
                return stop.value
            if call.kind == NativeCall.CHARGE:
                clock.charge(call.value)
