"""Off-device path verification: evidence vs the static edge model.

The verifier's registry maps a measured binary *identity* to the
:class:`~repro.analysis.edges.EdgeModel` extracted from the shipped
image (plus its loop-bound annotations), which is what lets it
distinguish the two failure modes static attestation conflates:

* **unknown-binary** - the evidence claims an identity the verifier has
  no edge model for: it cannot judge the path at all (the static report
  would already have failed the whitelist, but CFA evidence can arrive
  under a different identity than the static report claims);
* **hijacked** - the identity is known and the static report checks
  out, but the recorded path contains an edge the binary's CFG does not
  allow (a corrupted return edge lands here) or repeats a loop edge
  beyond its annotated bound;
* **inconsistent** - a carried segment's digest does not match the
  digest recomputed from its runs, or the chain does not link: the
  evidence body was tampered with or truncated mid-segment;
* **clean** - every carried run is a CFG edge, the chain recomputes,
  and all loop bounds hold.

Loop segments are abstracted exactly the way the WCET pass abstracts
them: per loop *header* offset, the total count of recorded edges
targeting the header must not exceed the annotated bound.  Totals are
aggregated across all runs (call/return interleavings keep run lengths
at 1, so per-run lengths prove nothing).
"""

from __future__ import annotations

from repro.analysis.edges import EdgeModel

from .recorder import segment_digest

#: Possible verdicts, in decreasing severity.
VERDICT_UNKNOWN = "unknown-binary"
VERDICT_INCONSISTENT = "inconsistent"
VERDICT_HIJACKED = "hijacked"
VERDICT_CLEAN = "clean"


class PathVerdict:
    """The outcome of verifying one evidence record."""

    __slots__ = ("verdict", "reason", "segments", "edges")

    def __init__(self, verdict, reason=None, segments=0, edges=0):
        self.verdict = verdict
        self.reason = reason
        #: Carried segments examined.
        self.segments = segments
        #: Total recorded edges examined.
        self.edges = edges

    @property
    def ok(self):
        return self.verdict == VERDICT_CLEAN

    def __repr__(self):
        return "PathVerdict(%s%s)" % (
            self.verdict,
            ", %s" % self.reason if self.reason else "",
        )


class PathVerifier:
    """Adjudicates CFA evidence against registered shipped binaries."""

    def __init__(self):
        #: identity bytes -> (EdgeModel, loop_bounds dict).
        self._known = {}

    def register(self, identity, image, loop_bounds=None):
        """Register a shipped binary the fleet is expected to run."""
        model = image if isinstance(image, EdgeModel) else EdgeModel.from_image(image)
        self._known[bytes(identity)] = (model, dict(loop_bounds or {}))
        return model

    def known_identities(self):
        return set(self._known)

    def verify(self, evidence):
        """Judge one :class:`~repro.cfa.evidence.CfaEvidence` record."""
        entry = self._known.get(bytes(evidence.identity))
        if entry is None:
            return PathVerdict(VERDICT_UNKNOWN, "identity not registered")
        edge_model, loop_bounds = entry

        # 1. Hash commitments: each segment digest must recompute from
        #    its runs, and consecutive segments must chain.
        prev = evidence.first_prev
        total_edges = 0
        last_index = None
        for index, runs, digest in evidence.segments:
            if last_index is not None and index != last_index + 1:
                return PathVerdict(
                    VERDICT_INCONSISTENT,
                    "segment indices not consecutive (%d after %d)" % (index, last_index),
                    segments=len(evidence.segments),
                )
            last_index = index
            if segment_digest(prev, runs) != bytes(digest):
                return PathVerdict(
                    VERDICT_INCONSISTENT,
                    "segment %d digest does not recompute" % index,
                    segments=len(evidence.segments),
                )
            prev = bytes(digest)
            for _src, _dst, count in runs:
                total_edges += count

        # 2. Every recorded edge must be a CFG edge of the shipped
        #    binary (returns must land on call continuations).
        for index, runs, _digest in evidence.segments:
            for src, dst, count in runs:
                reason = edge_model.validate(src, dst)
                if reason is not None:
                    return PathVerdict(
                        VERDICT_HIJACKED,
                        "segment %d: 0x%X -> 0x%X x%d: %s"
                        % (index, src, dst, count, reason),
                        segments=len(evidence.segments),
                        edges=total_edges,
                    )

        # 3. Loop abstraction: aggregate taken-edge totals into each
        #    annotated loop header must respect the bound.
        if loop_bounds:
            into = {}
            for _index, runs, _digest in evidence.segments:
                for _src, dst, count in runs:
                    into[dst] = into.get(dst, 0) + count
            for header, bound in loop_bounds.items():
                taken = into.get(header, 0)
                if taken > bound:
                    return PathVerdict(
                        VERDICT_HIJACKED,
                        "loop header 0x%X taken %d times (bound %d)"
                        % (header, taken, bound),
                        segments=len(evidence.segments),
                        edges=total_edges,
                    )

        return PathVerdict(
            VERDICT_CLEAN, segments=len(evidence.segments), edges=total_edges
        )
