"""The CFA evidence record: path segments, serialised and MACed.

The record a device ships in answer to a CFA challenge.  It carries the
retained path segments *with their runs* (the abstracted path claim the
verifier replays against the static edge model) plus the chain digests
(the hash commitments), the eviction count, and an HMAC-SHA-1 over
``identity | nonce | body`` under the same attestation key K_a the
static report uses - so evidence is bound to the device, the binary it
claims, and the verifier's fresh challenge.

Parsing is total in the :mod:`repro.net.wire` style: any blob that is
not an exact, well-formed record raises
:class:`~repro.errors.AttestationError`.
"""

from __future__ import annotations

import struct

from repro.crypto.compare import constant_time_equal
from repro.crypto.hmac import hmac_sha1
from repro.errors import AttestationError

from .recorder import DIGEST_SIZE, RUN_STRUCT


def evidence_mac_ok(key, evidence, nonce):
    """Whether ``evidence`` carries a valid MAC under K_a and ``nonce``."""
    expected = hmac_sha1(
        key, evidence.identity + bytes(nonce) + evidence.body_bytes()
    )
    return constant_time_equal(expected, evidence.mac)

#: sealed_total u32 | dropped u32 | edges u64 | segment count u16.
_FIXED = struct.Struct("<IIQH")
_SEGMENT = struct.Struct("<IH")
_MAC_LEN = 20
_IDENTITY_LEN = 20

#: Hard cap on segments in one record (wire-frame sanity bound).
MAX_SEGMENTS = 4096

#: Hard cap on runs in one segment record.
MAX_RUNS = 65_535


class CfaEvidence:
    """One control-flow-attestation evidence record."""

    __slots__ = ("identity", "sealed_total", "dropped", "edges", "first_prev", "segments", "mac")

    def __init__(self, identity, sealed_total, dropped, edges, first_prev, segments, mac=b""):
        self.identity = bytes(identity)
        #: Total segments the device ever sealed (detects truncation).
        self.sealed_total = sealed_total
        #: Segments evicted from the bounded on-device log.
        self.dropped = dropped
        #: Total taken edges folded into the path hash.
        self.edges = edges
        #: Chain digest before the first carried segment.
        self.first_prev = bytes(first_prev)
        #: ``(index, runs, digest)`` per carried segment, where runs is
        #: a tuple of ``(src, dst, count)`` region-relative edge runs.
        self.segments = list(segments)
        self.mac = bytes(mac)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_recorder(cls, identity, recorder):
        """Build the (unMACed) record from a recorder snapshot."""
        segments = recorder.snapshot_segments()
        first_prev = segments[0].prev if segments else recorder.prev_digest
        carried = [(seg.index, seg.runs, seg.digest) for seg in segments]
        sealed_total = segments[-1].index + 1 if segments else recorder.sealed
        return cls(
            identity,
            sealed_total,
            recorder.dropped,
            recorder.edges,
            first_prev,
            carried,
        )

    # -- wire format --------------------------------------------------------

    def body_bytes(self):
        """Everything but the MAC (the MAC's message, after id|nonce)."""
        if len(self.identity) != _IDENTITY_LEN:
            raise AttestationError("evidence identity must be 20 bytes")
        parts = [
            self.identity,
            _FIXED.pack(self.sealed_total, self.dropped, self.edges, len(self.segments)),
            self.first_prev,
        ]
        for index, runs, digest in self.segments:
            parts.append(_SEGMENT.pack(index, len(runs)))
            for src, dst, count in runs:
                parts.append(RUN_STRUCT.pack(src, dst, count))
            parts.append(bytes(digest))
        return b"".join(parts)

    def to_bytes(self):
        """Wire format: body | mac."""
        if len(self.mac) != _MAC_LEN:
            raise AttestationError("evidence is not MACed")
        return self.body_bytes() + self.mac

    @classmethod
    def from_bytes(cls, blob):
        """Parse the wire format; rejects any malformed blob."""
        blob = bytes(blob)
        view = memoryview(blob)
        offset = 0

        def take(n, what):
            nonlocal offset
            if offset + n > len(blob):
                raise AttestationError("truncated CFA evidence (%s)" % what)
            chunk = view[offset : offset + n]
            offset += n
            return chunk

        identity = bytes(take(_IDENTITY_LEN, "identity"))
        sealed_total, dropped, edges, count = _FIXED.unpack(take(_FIXED.size, "header"))
        if count > MAX_SEGMENTS:
            raise AttestationError("CFA evidence segment count out of range")
        first_prev = bytes(take(DIGEST_SIZE, "chain digest"))
        segments = []
        for _ in range(count):
            index, run_count = _SEGMENT.unpack(take(_SEGMENT.size, "segment header"))
            if run_count > MAX_RUNS:
                raise AttestationError("CFA evidence run count out of range")
            runs = []
            for _ in range(run_count):
                runs.append(RUN_STRUCT.unpack(take(RUN_STRUCT.size, "edge run")))
            digest = bytes(take(DIGEST_SIZE, "segment digest"))
            segments.append((index, tuple(runs), digest))
        mac = bytes(take(_MAC_LEN, "mac"))
        if offset != len(blob):
            raise AttestationError("trailing bytes after CFA evidence")
        return cls(identity, sealed_total, dropped, edges, first_prev, segments, mac)

    def run_count(self):
        """Total edge runs carried (report-cost accounting)."""
        return sum(len(runs) for _, runs, _ in self.segments)

    def __repr__(self):
        return "CfaEvidence(id=%s..., %d segments, %d edges)" % (
            self.identity[:4].hex(),
            len(self.segments),
            self.edges,
        )
