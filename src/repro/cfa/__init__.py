"""Control-flow attestation: path-hashed execution evidence.

Static remote attestation proves *what* binary a device loaded; this
package proves *how* it ran.  The device side folds every taken control
transfer of an enrolled task into a segment-chunked BLAKE2 hash chain
(:mod:`repro.cfa.recorder`), identical bit for bit across all four
execution tiers; the :class:`~repro.cfa.engine.CfaEngine` firmware
component seals segments at preemption boundaries and generates MACed
evidence reports interruptibly (:mod:`repro.cfa.engine`,
:mod:`repro.cfa.evidence`); the off-device
:class:`~repro.cfa.verifier.PathVerifier` replays the evidence against
the static edge model of the shipped image
(:mod:`repro.analysis.edges`), distinguishing *unknown-binary* from
*known-binary-hijacked-control-flow* (:mod:`repro.cfa.verifier`).
"""

from repro.cfa.engine import CfaEngine
from repro.cfa.evidence import CfaEvidence, evidence_mac_ok
from repro.cfa.recorder import CfaCore, PathRecorder, PathSegment, segment_digest
from repro.cfa.verifier import (
    VERDICT_CLEAN,
    VERDICT_HIJACKED,
    VERDICT_INCONSISTENT,
    VERDICT_UNKNOWN,
    PathVerdict,
    PathVerifier,
)

__all__ = [
    "CfaCore",
    "CfaEngine",
    "CfaEvidence",
    "PathRecorder",
    "PathSegment",
    "PathVerdict",
    "PathVerifier",
    "VERDICT_CLEAN",
    "VERDICT_HIJACKED",
    "VERDICT_INCONSISTENT",
    "VERDICT_UNKNOWN",
    "evidence_mac_ok",
    "segment_digest",
]
