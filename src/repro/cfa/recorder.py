"""Device-side path recording: taken transfers folded into a hash chain.

The recorder is the modelled hardware path monitor (RunPBA-style): every
*taken* control transfer whose source and destination both lie inside an
enrolled task region is folded into a running BLAKE2 path hash.  Edges
are region-relative (link-base-0 offsets), so the evidence a device
ships is directly comparable against the static
:class:`~repro.analysis.edges.EdgeModel` of the shipped image.

Logs stay bounded two ways:

* consecutive repeats of one edge fold into a single *run*
  ``(src, dst, count)`` - a tight counted loop costs one run, not one
  record per iteration - and :meth:`PathRecorder.record_run` is defined
  to be exactly equivalent to ``count`` single records, which is what
  lets the trace JIT's closed-form loop bodies record in bulk;
* after :data:`SEGMENT_RUNS` runs the segment *seals*: its runs are
  digested into the hash chain and the oldest sealed segment is evicted
  once :attr:`PathRecorder.max_segments` are retained (the eviction
  count and the pre-eviction chain digest travel with the evidence, so
  the verifier still recomputes an unbroken chain over what remains).

Sealing also happens at every kernel preemption point (see
:class:`~repro.cfa.engine.CfaEngine`), which is what makes the segment
stream identical across execution tiers: preemption lands on the same
instruction boundary in every tier, so the seals do too.

:class:`CfaCore` is the CPU attachment (``cpu.cfa``): it resolves the
enrolled region for an edge, charges the modelled per-edge cost on the
interpreter path, and bumps a generation counter whenever the enrolled
set changes so the trace tier can flush bodies compiled against a stale
region set.
"""

from __future__ import annotations

import hashlib
import struct

from repro import cycles

#: Closed edge runs per segment before it auto-seals.
SEGMENT_RUNS = 64

#: Sealed segments retained before the oldest is evicted.
MAX_SEGMENTS = 64

#: Path-hash width (BLAKE2s-128).
DIGEST_SIZE = 16

#: Chain root: the digest "before" the first segment.
ROOT_DIGEST = b"\x00" * DIGEST_SIZE

#: One edge run on the hash input / wire: src, dst, count.
RUN_STRUCT = struct.Struct("<IIQ")


def segment_digest(prev, runs):
    """Chain digest of one segment: ``H(prev | runs)``."""
    h = hashlib.blake2s(prev, digest_size=DIGEST_SIZE)
    pack = RUN_STRUCT.pack
    for src, dst, count in runs:
        h.update(pack(src, dst, count))
    return h.digest()


class PathSegment:
    """One sealed chunk of the path log."""

    __slots__ = ("index", "runs", "prev", "digest")

    def __init__(self, index, runs, prev, digest):
        #: Monotonic seal index (0-based) over the task's lifetime.
        self.index = index
        #: Tuple of ``(src, dst, count)`` region-relative edge runs.
        self.runs = runs
        #: Chain digest before this segment (the predecessor's digest).
        self.prev = prev
        #: ``segment_digest(prev, runs)``.
        self.digest = digest

    def __repr__(self):
        return "PathSegment(#%d, %d runs, %s)" % (
            self.index,
            len(self.runs),
            self.digest.hex()[:8],
        )


class PathRecorder:
    """Per-task path log: open run -> open segment -> sealed chain."""

    __slots__ = (
        "segment_runs",
        "max_segments",
        "segments",
        "prev_digest",
        "sealed",
        "dropped",
        "edges",
        "_open",
        "_runs",
    )

    def __init__(self, segment_runs=SEGMENT_RUNS, max_segments=MAX_SEGMENTS):
        if segment_runs < 1 or max_segments < 1:
            raise ValueError("segment_runs and max_segments must be >= 1")
        self.segment_runs = segment_runs
        self.max_segments = max_segments
        #: Retained sealed segments, oldest first.
        self.segments = []
        #: Chain digest of the most recently sealed segment.
        self.prev_digest = ROOT_DIGEST
        #: Total segments ever sealed (== index of the next seal).
        self.sealed = 0
        #: Sealed segments evicted from the bounded log.
        self.dropped = 0
        #: Total taken edges folded (diagnostics / overhead accounting).
        self.edges = 0
        self._open = None  # current [src, dst, count] run, or None
        self._runs = []  # closed runs of the open segment

    def record(self, src, dst):
        """Fold one taken edge (region-relative offsets)."""
        self.edges += 1
        open_ = self._open
        if open_ is not None:
            if open_[0] == src and open_[1] == dst:
                open_[2] += 1
                return
            self._close_run()
        self._open = [src, dst, 1]

    def record_run(self, src, dst, count):
        """Fold ``count`` consecutive repeats of one edge.

        Exactly equivalent to ``count`` calls to :meth:`record` - the
        contract the trace tier's closed-form loop bodies rely on.
        """
        if count <= 0:
            return
        self.edges += count
        open_ = self._open
        if open_ is not None:
            if open_[0] == src and open_[1] == dst:
                open_[2] += count
                return
            self._close_run()
        self._open = [src, dst, count]

    def _close_run(self):
        self._runs.append(tuple(self._open))
        self._open = None
        if len(self._runs) >= self.segment_runs:
            self.seal()

    def seal(self):
        """Seal the open segment; returns it, or ``None`` if empty.

        Free at run time (the hardware monitor finalises the chain in a
        background pipeline); report generation is where CPU cycles are
        charged.
        """
        if self._open is not None:
            self._runs.append(tuple(self._open))
            self._open = None
        if not self._runs:
            return None
        runs = tuple(self._runs)
        self._runs = []
        segment = PathSegment(
            self.sealed, runs, self.prev_digest, segment_digest(self.prev_digest, runs)
        )
        self.prev_digest = segment.digest
        self.sealed += 1
        self.segments.append(segment)
        if len(self.segments) > self.max_segments:
            del self.segments[0]
            self.dropped += 1
        return segment

    def open_runs(self):
        """Runs of the not-yet-sealed segment, open run included."""
        runs = list(self._runs)
        if self._open is not None:
            runs.append(tuple(self._open))
        return runs

    def snapshot_segments(self):
        """Evidence view: sealed segments plus the open one as if
        sealed now.  Does **not** mutate the recorder - evidence can be
        generated repeatedly (one report per fleet challenge) without
        perturbing the path log it reports on."""
        segments = list(self.segments)
        runs = self.open_runs()
        if runs:
            runs = tuple(runs)
            segments.append(
                PathSegment(
                    self.sealed,
                    runs,
                    self.prev_digest,
                    segment_digest(self.prev_digest, runs),
                )
            )
        return segments

    def path_digest(self):
        """The running path hash over everything recorded so far."""
        segments = self.snapshot_segments()
        if not segments:
            return self.prev_digest
        return segments[-1].digest

    def __repr__(self):
        return "PathRecorder(%d edges, %d sealed, %d dropped)" % (
            self.edges,
            self.sealed,
            self.dropped,
        )


class CfaCore:
    """The CPU-side monitor port (``cpu.cfa``).

    Holds the enrolled ``(lo, hi, recorder)`` regions.  The interpreter
    tiers call :meth:`on_transfer` from ``CPU._jump`` (charging the
    modelled per-edge cost); trace-compiled bodies call
    :meth:`record_edge` / :meth:`record_edge_run` instead, because
    their cost was baked into the trace's static cycle total at build
    time.  ``generation`` moves on every enrolment change; the block
    engine flushes the trace cache when it observes a new generation,
    so no compiled body ever runs against a stale region set.
    """

    __slots__ = ("clock", "regions", "generation", "recorded", "bulk_recorded")

    def __init__(self, clock):
        self.clock = clock
        self.regions = []
        self.generation = 0
        #: Edges recorded one at a time (interpreter + trace exits).
        self.recorded = 0
        #: Edges recorded via closed-form bulk runs (trace fast bodies).
        self.bulk_recorded = 0

    def attach_region(self, lo, hi, recorder):
        """Start monitoring ``[lo, hi)`` into ``recorder``."""
        self.regions.append((lo, hi, recorder))
        self.generation += 1

    def detach_region(self, lo):
        """Stop monitoring the region based at ``lo``."""
        self.regions = [entry for entry in self.regions if entry[0] != lo]
        self.generation += 1

    def covers(self, src, dst):
        """Whether a taken ``src -> dst`` transfer would be recorded."""
        for lo, hi, _ in self.regions:
            if lo <= src < hi:
                return lo <= dst < hi
        return False

    def on_transfer(self, src, dst):
        """Interpreter path: charge and record one taken transfer."""
        for lo, hi, recorder in self.regions:
            if lo <= src < hi:
                if lo <= dst < hi:
                    self.clock.charge(cycles.CFA_EDGE_CYCLES)
                    self.recorded += 1
                    recorder.record(src - lo, dst - lo)
                return

    def record_edge(self, src, dst):
        """Trace path: record without charging (cost statically baked)."""
        for lo, hi, recorder in self.regions:
            if lo <= src < hi:
                if lo <= dst < hi:
                    self.recorded += 1
                    recorder.record(src - lo, dst - lo)
                return

    def record_edge_run(self, src, dst, count):
        """Trace fast-body path: ``count`` repeats of one edge in bulk."""
        for lo, hi, recorder in self.regions:
            if lo <= src < hi:
                if lo <= dst < hi:
                    self.bulk_recorded += count
                    recorder.record_run(src - lo, dst - lo, count)
                return
