"""The network interface: an MMIO frame FIFO.

A :class:`NetworkInterface` is the device half of the fleet's
verifier<->device channel.  The fabric side delivers whole framed
datagrams with :meth:`deliver` and drains outbound frames with
:meth:`pop_outgoing`; the machine side sees two word-granular FIFOs
through MMIO registers, so an ISA task (or the HLE fleet agent) can
read a received frame four bytes at a time and stage an outbound one
the same way.

Register map (word offsets within the device window):

========  ====  =====================================================
offset    dir   meaning
========  ====  =====================================================
``0x00``  r     frames waiting in the receive queue
``0x04``  r     byte length of the head frame (0 when empty)
``0x08``  r     next 4 bytes of the head frame, little-endian,
                zero-padded; reading past the end pops the frame
``0x0C``  w     append 4 bytes (little-endian) to the transmit staging
``0x10``  w     commit the staged frame, truncated to the written
                length (the register value)
``0x14``  r     frames committed for transmission since reset
========  ====  =====================================================
"""

from __future__ import annotations

from collections import deque

from repro.hw.mmio import MmioDevice


class NetworkInterface(MmioDevice):
    """A framed-datagram NIC with bounded receive buffering."""

    REG_RX_COUNT = 0x00
    REG_RX_LEN = 0x04
    REG_RX_DATA = 0x08
    REG_TX_DATA = 0x0C
    REG_TX_COMMIT = 0x10
    REG_TX_COUNT = 0x14

    #: Receive-queue depth in frames; overflow drops (and counts).
    RX_CAPACITY = 64

    def __init__(self, name="nic"):
        super().__init__(name)
        self.rx = deque()
        self._rx_cursor = 0
        self.tx = deque()
        self._tx_staging = bytearray()
        #: Frames accepted into the receive queue.
        self.rx_delivered = 0
        #: Frames dropped because the receive queue was full.
        self.rx_overflow = 0
        #: Frames committed for transmission.
        self.tx_frames = 0

    # -- fabric side --------------------------------------------------------

    def deliver(self, frame):
        """Push a received frame; returns False when the queue is full."""
        if len(self.rx) >= self.RX_CAPACITY:
            self.rx_overflow += 1
            return False
        self.rx.append(bytes(frame))
        self.rx_delivered += 1
        return True

    def take_frame(self):
        """Pop the whole head frame (HLE receive path), or ``None``."""
        if not self.rx:
            return None
        self._rx_cursor = 0
        return self.rx.popleft()

    def transmit(self, frame):
        """Queue a frame for transmission (HLE send path)."""
        self.tx.append(bytes(frame))
        self.tx_frames += 1

    def pop_outgoing(self):
        """Drain the oldest outbound frame, or ``None``."""
        return self.tx.popleft() if self.tx else None

    # -- machine side -------------------------------------------------------

    def reg_read(self, offset):
        if offset == self.REG_RX_COUNT:
            return len(self.rx)
        if offset == self.REG_RX_LEN:
            return len(self.rx[0]) if self.rx else 0
        if offset == self.REG_RX_DATA:
            if not self.rx:
                return 0
            frame = self.rx[0]
            chunk = frame[self._rx_cursor : self._rx_cursor + 4]
            self._rx_cursor += 4
            if self._rx_cursor >= len(frame):
                self.rx.popleft()
                self._rx_cursor = 0
            return int.from_bytes(chunk.ljust(4, b"\x00"), "little")
        if offset == self.REG_TX_COUNT:
            return self.tx_frames & 0xFFFFFFFF
        return super().reg_read(offset)

    def reg_write(self, offset, value):
        if offset == self.REG_TX_DATA:
            self._tx_staging += (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif offset == self.REG_TX_COMMIT:
            length = min(value & 0xFFFFFFFF, len(self._tx_staging))
            self.transmit(bytes(self._tx_staging[:length]))
            self._tx_staging.clear()
        else:
            super().reg_write(offset, value)
