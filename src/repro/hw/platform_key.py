"""The fused platform key K_p.

"The TyTAN hardware platform comes with a platform key K_p.  Access to
this key is controlled by the EA-MPU and only trusted software
components have access to it.  Additional keys can be derivated from
K_p, e.g., for remote attestation or for secure storage." (Section 3)

We model the key store as a small read-only memory window.  Secure boot
installs a locked EA-MPU rule whose subjects are exactly the trusted
components allowed to read the window; any other read faults.  The
:meth:`PlatformKeyStore.read_key` helper performs the read *through the
bus with the caller's code address as actor*, so the MPU decides.
"""

from __future__ import annotations

import struct


#: Length of K_p in bytes (160 bits, one SHA-1 block's worth of key).
KEY_BYTES = 20


class PlatformKeyStore:
    """The key-fuse window mapped at ``base`` in physical memory.

    Parameters
    ----------
    memory:
        The bus; the key bytes are written into the backing RAM region
        at construction (modelling fuses visible as ROM).
    base:
        Physical address of the window.
    key:
        The fused key bytes; deterministic default for reproducibility.
    """

    def __init__(self, memory, base, key=None):
        if key is None:
            # Deterministic but non-trivial default "fuse" pattern.
            key = bytes(
                (0x5A ^ (i * 37 + 11)) & 0xFF for i in range(KEY_BYTES)
            )
        if len(key) != KEY_BYTES:
            raise ValueError("platform key must be %d bytes" % KEY_BYTES)
        self.memory = memory
        self.base = base
        self._key = bytes(key)
        memory.write_raw(base, self._key)

    @property
    def size(self):
        """Window size in bytes."""
        return KEY_BYTES

    def read_key(self, actor):
        """Read K_p through the bus as ``actor``.

        Raises :class:`repro.errors.ProtectionFault` unless the EA-MPU
        grants ``actor`` read access to the window - i.e. unless the
        caller is a trusted component.
        """
        return self.memory.read(self.base, KEY_BYTES, actor=actor)

    def rekey(self, key):
        """Replace K_p in place (fleet snapshot-fork support).

        Models blowing a fresh fuse pattern into a forked machine
        image: the new key is written through the raw (hardware) bus
        path, so the existing locked EA-MPU rule over the window keeps
        governing who may read it.  Architecturally this is the only
        per-device difference between a forked machine and a cold boot.
        """
        key = bytes(key)
        if len(key) != KEY_BYTES:
            raise ValueError("platform key must be %d bytes" % KEY_BYTES)
        self._key = key
        self.memory.write_raw(self.base, key)

    def raw_key(self):
        """The key without an access check - test/verifier oracle only.

        A remote verifier is assumed to share K_p (or a key derived from
        it) with the device out of band; tests use this to play that
        verifier role.
        """
        return self._key

    def words(self):
        """The key as little-endian 32-bit words (diagnostics)."""
        return list(struct.unpack("<5I", self._key))
