"""Hardware exception engine and interrupt controller.

On an interrupt or software trap the exception engine:

1. pushes EFLAGS and EIP onto the stack of the *interrupted task* (this
   hardware/software split is what Tables 2 and 3 measure around);
2. latches the interrupt *origin* (the interrupted EIP) in a register
   that trusted software can read - the IPC proxy uses it to identify
   the sender of a message;
3. masks further maskable interrupts (clears EFLAGS.IF);
4. vectors through the interrupt descriptor table (IDT).

The IDT lives in memory, its integrity protected by the EA-MPU, and the
register pointing to it is static (Section 4, "Interrupts") - modelled
here by making the IDT base a constructor argument with no setter.
"""

from __future__ import annotations

from repro import cycles
from repro.errors import ConfigurationError
from repro.hw.memory import PhysicalMemory
from repro.hw.registers import Flag


class Vector:
    """Well-known interrupt/trap vector numbers."""

    DIVIDE_ERROR = 0x00
    PROTECTION_FAULT = 0x05
    TIMER = 0x08
    DEVICE_BASE = 0x10  #: device IRQs occupy 0x10..0x1F
    SYSCALL = 0x20  #: OS services (yield, delay, queues, task mgmt)
    IPC = 0x21  #: secure IPC proxy
    ATTEST = 0x22  #: remote attestation requests
    STORAGE = 0x23  #: secure storage requests

    COUNT = 0x30


class InterruptController:
    """Collects device interrupt requests until the CPU can take one.

    Lower vector numbers win, matching fixed-priority interrupt
    controllers on small cores.
    """

    def __init__(self):
        self._pending = set()

    def raise_irq(self, vector):
        """Latch interrupt ``vector`` as pending."""
        self._pending.add(vector)

    def has_pending(self):
        """Whether any interrupt is waiting."""
        return bool(self._pending)

    def take(self):
        """Pop and return the highest-priority pending vector."""
        vector = min(self._pending)
        self._pending.remove(vector)
        return vector

    def peek(self):
        """Return the highest-priority pending vector without popping."""
        return min(self._pending) if self._pending else None

    def clear(self):
        """Drop all pending interrupts (reset)."""
        self._pending.clear()


class ExceptionEngine:
    """The hardware exception engine.

    Parameters
    ----------
    memory:
        The physical memory bus (hardware pushes bypass the EA-MPU, as
        bus-master hardware does).
    idt_base:
        Physical address of the IDT: :data:`Vector.COUNT` little-endian
        32-bit handler addresses.  Fixed at construction - the paper's
        IDT register "is static and cannot be modified".
    """

    def __init__(self, memory, idt_base):
        self.memory = memory
        self.idt_base = idt_base
        self.controller = InterruptController()
        #: EIP of the most recently interrupted instruction stream; the
        #: IPC proxy reads this to authenticate the sender.
        self.last_origin = None
        #: Vector most recently delivered (diagnostics).
        self.last_vector = None
        #: Observability bus (set by the platform); each delivery
        #: publishes an ``exception`` event.
        self.obs = None

    # -- IDT management (boot-time only) -----------------------------------

    def install_handler(self, vector, handler_address):
        """Write one IDT entry.  Used by secure boot before the EA-MPU
        locks the IDT region."""
        if not 0 <= vector < Vector.COUNT:
            raise ConfigurationError("vector %d out of range" % vector)
        self.memory.write_u32(self.idt_base + 4 * vector, handler_address)

    def handler_address(self, vector):
        """Read the handler address for ``vector`` from the IDT."""
        if not 0 <= vector < Vector.COUNT:
            raise ConfigurationError("vector %d out of range" % vector)
        return self.memory.read_u32(self.idt_base + 4 * vector)

    # -- delivery ---------------------------------------------------------

    def deliver(self, cpu, vector, charge=True):
        """Deliver ``vector`` to ``cpu`` (hardware exception entry).

        Pushes EFLAGS then EIP onto the current stack, latches the
        origin, masks interrupts, and jumps to the IDT handler.  Returns
        the handler address.
        """
        regs = cpu.regs
        self.last_origin = regs.eip
        self.last_vector = vector
        # Hardware pushes to the interrupted task's stack.
        regs.esp = regs.esp - 4
        self.memory.write_u32(regs.esp, regs.eflags, PhysicalMemory.HW_ACTOR)
        regs.esp = regs.esp - 4
        self.memory.write_u32(regs.esp, regs.eip, PhysicalMemory.HW_ACTOR)
        regs.set_flag(Flag.IF, False)
        handler = self.handler_address(vector)
        regs.eip = handler
        if charge:
            cpu.clock.charge(cycles.EXCEPTION_ENTRY)
        if self.obs is not None:
            self.obs.publish(
                "hw", "exception", vector=vector, origin=self.last_origin
            )
        return handler

    def hw_return(self, cpu):
        """Execute the IRET half the hardware performs: pop EIP and
        EFLAGS from the current stack and resume.  The transfer is
        privileged (it may land mid-region in an interrupted task)."""
        regs = cpu.regs
        new_eip = self.memory.read_u32(regs.esp, PhysicalMemory.HW_ACTOR)
        regs.esp = regs.esp + 4
        new_eflags = self.memory.read_u32(regs.esp, PhysicalMemory.HW_ACTOR)
        regs.esp = regs.esp + 4
        regs.eip = new_eip
        regs.eflags = new_eflags
        return new_eip
