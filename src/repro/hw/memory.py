"""Flat physical memory with a region map.

Siskiyou Peak uses a flat, physical addressing model: no MMU, no virtual
memory.  :class:`PhysicalMemory` models the bus: it routes each access to
a RAM region or an MMIO region, and (when an EA-MPU is attached) runs the
execution-aware access check before the access is performed.

All multi-byte values are little-endian, matching the x86 lineage of the
platform.
"""

from __future__ import annotations

import sys
from bisect import bisect_right

from repro.errors import ConfigurationError, MemoryFault
from repro.perf.counters import HitMissCounter

MASK32 = 0xFFFFFFFF

#: log2 of the write-snoop granule shared by every code cache (decoded
#: instructions, superblocks, traces): 256-byte pages.
SNOOP_PAGE_SHIFT = 8


def u32(value):
    """Truncate ``value`` to an unsigned 32-bit integer."""
    return value & MASK32


class RamRegion:
    """A contiguous range of byte-addressable RAM.

    The backing store is one ``bytearray`` *slab* plus zero-copy
    ``memoryview``s over it: a byte view and (on little-endian hosts,
    for suitably sized regions) struct-specialized ``'I'`` and ``'H'``
    casts.  The typed views are what make translated loads/stores a
    single Python index expression: an aligned 32-bit access inside a
    hoisted EA-MPU allow window is ``words[offset >> 2]`` (16-bit:
    ``halves[offset >> 1]``) with no bytes object, no
    ``int.from_bytes``, and no method call.  Every mutation path
    (checked writes, raw writes, translated stores) writes the same
    slab, so the views never go stale.

    Parameters
    ----------
    name:
        Human-readable region name (shows up in traces and faults).
    base:
        First physical address of the region.
    size:
        Region length in bytes.
    """

    def __init__(self, name, base, size):
        if size <= 0:
            raise ConfigurationError("region %r has non-positive size" % name)
        self.name = name
        self.base = u32(base)
        self.size = size
        self.data = bytearray(size)
        #: Zero-copy byte view of the slab (slice reads without copies)
        #: and, on little-endian hosts for word-multiple sizes, the
        #: struct-specialized ``'I'`` cast - both built by
        #: :meth:`_rebuild_views` (also used on unpickle/fork, since
        #: memoryviews cannot be copied).
        self._rebuild_views()

    @property
    def end(self):
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, address, size=1):
        """Whether ``[address, address + size)`` lies inside the region."""
        return self.base <= address and address + size <= self.end

    def read(self, address, size):
        """Read ``size`` bytes starting at physical ``address``."""
        offset = address - self.base
        return bytes(self.data[offset : offset + size])

    def write(self, address, payload):
        """Write ``payload`` starting at physical ``address``."""
        offset = address - self.base
        self.data[offset : offset + len(payload)] = payload

    def fill(self, value=0):
        """Overwrite the whole region with ``value`` (for wipes)."""
        self.data[:] = bytes([value & 0xFF]) * self.size

    # -- slab accessors (fast paths; semantics identical to read/write) --

    def load_u32(self, address):
        """Little-endian 32-bit load straight from the slab."""
        offset = address - self.base
        words = self.words
        if words is not None and not offset & 3:
            return words[offset >> 2]
        return int.from_bytes(self.data[offset : offset + 4], "little")

    def store_u32(self, address, value):
        """Little-endian 32-bit store straight into the slab."""
        offset = address - self.base
        words = self.words
        if words is not None and not offset & 3:
            words[offset >> 2] = value
        else:
            self.data[offset : offset + 4] = value.to_bytes(4, "little")

    def load_u16(self, address):
        """Little-endian 16-bit load straight from the slab."""
        offset = address - self.base
        halves = self.halves
        if halves is not None and not offset & 1:
            return halves[offset >> 1]
        return int.from_bytes(self.data[offset : offset + 2], "little")

    def store_u16(self, address, value):
        """Little-endian 16-bit store straight into the slab."""
        offset = address - self.base
        halves = self.halves
        if halves is not None and not offset & 1:
            halves[offset >> 1] = value
        else:
            self.data[offset : offset + 2] = value.to_bytes(2, "little")

    def load_u8(self, address):
        """Byte load straight from the slab."""
        return self.data[address - self.base]

    def store_u8(self, address, value):
        """Byte store straight into the slab."""
        self.data[address - self.base] = value

    # -- snapshot support ---------------------------------------------------

    def __getstate__(self):
        """Pickle/deepcopy support: drop the zero-copy views.

        ``memoryview`` objects cannot be pickled or deep-copied; the
        slab (``data``) carries all the state, and the views are
        rebuilt verbatim on restore.  This is what lets a booted
        machine be snapshotted and forked (:mod:`repro.fleet.snapshot`).
        """
        state = self.__dict__.copy()
        state["view"] = None
        state["words"] = None
        state["halves"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rebuild_views()

    def _rebuild_views(self):
        """Recreate the byte, half, and word views over the current slab."""
        self.view = memoryview(self.data)
        self.words = None
        self.halves = None
        if sys.byteorder == "little":
            if self.size % 4 == 0:
                cast = self.view.cast("I")
                if cast.itemsize == 4:
                    self.words = cast
            if self.size % 2 == 0:
                cast = self.view.cast("H")
                if cast.itemsize == 2:
                    self.halves = cast

    def __repr__(self):
        return "RamRegion(%s, 0x%08X..0x%08X)" % (self.name, self.base, self.end)


class MemoryMap:
    """Ordered collection of non-overlapping regions.

    The map is the single source of truth for what exists at each physical
    address.  Regions may be :class:`RamRegion` or any object exposing the
    same ``base``/``size``/``contains``/``read``/``write`` protocol (MMIO
    regions do).
    """

    def __init__(self):
        self._regions = []
        self._bases = []
        #: Last region a lookup resolved to (cleared on :meth:`add`).
        self._last = None
        #: Disable the last-hit memo (the bench's uncached baseline).
        self.cache_enabled = True
        self.stats = HitMissCounter("region")

    def add(self, region):
        """Register ``region``, refusing overlaps with existing regions."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ConfigurationError(
                    "region %r overlaps %r" % (region.name, existing.name)
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self._bases = [r.base for r in self._regions]
        self._last = None
        return region

    def _locate(self, address, size):
        """The region containing the range, or ``None``.

        Fast path: the last region any lookup resolved to (instruction
        streams and data accesses are strongly region-local).  Fallback
        is a binary search on the sorted, non-overlapping region bases -
        only the region with the greatest ``base <= address`` can
        contain the range.
        """
        last = self._last
        if last is not None and last.contains(address, size):
            self.stats.hits += 1
            return last
        self.stats.misses += 1
        index = bisect_right(self._bases, address) - 1
        if index >= 0:
            region = self._regions[index]
            if region.contains(address, size):
                if self.cache_enabled:
                    self._last = region
                return region
        return None

    def find(self, address, size=1):
        """Return the region containing ``[address, address + size)``.

        Raises :class:`MemoryFault` if no region contains the full range.
        """
        region = self._locate(address, size)
        if region is None:
            raise MemoryFault(address, size)
        return region

    def try_find(self, address, size=1):
        """Like :meth:`find` but returns ``None`` instead of raising."""
        return self._locate(address, size)

    def regions(self):
        """All regions, ordered by base address."""
        return list(self._regions)

    def region_named(self, name):
        """Return the region called ``name`` or raise ``KeyError``."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)


class PhysicalMemory:
    """The memory bus: routes accesses, enforces the EA-MPU.

    Every access carries an *actor*: the identifier of the code region the
    access is executed from.  This is what makes the MPU execution-aware -
    the same address may be accessible from one task's code and forbidden
    from another's.  Hardware agents (the exception engine, DMA-less
    device models) use the reserved actor :data:`HW_ACTOR`, which bypasses
    the MPU exactly as bus-master hardware does on the real platform.
    """

    #: Actor identifier for hardware-initiated accesses (exception engine
    #: pushing EIP/EFLAGS, device models updating their MMIO windows).
    HW_ACTOR = "<hardware>"

    def __init__(self, memory_map=None):
        self.map = memory_map if memory_map is not None else MemoryMap()
        self.mpu = None
        self._watchpoints = []
        self._write_listeners = []
        #: Pages (address >> :data:`SNOOP_PAGE_SHIFT`) that ever held a
        #: cached code artifact (decoded instructions, superblocks,
        #: traces).  Every cache that registers a write listener also
        #: records its pages here, so a translated store fast path may
        #: skip the listener fan-out entirely when its target page was
        #: never cached: no listener could have anything to invalidate.
        #: The set is add-only (entries may go stale when a cache drops
        #: a page); staleness only costs a redundant listener round,
        #: never a missed invalidation.
        self.snooped_pages = set()

    def note_snooped_range(self, start, end):
        """Record that ``[start, end)`` now backs a cached code artifact."""
        first = start >> SNOOP_PAGE_SHIFT
        last = (end - 1) >> SNOOP_PAGE_SHIFT
        self.snooped_pages.update(range(first, last + 1))

    def attach_mpu(self, mpu):
        """Install the EA-MPU; all subsequent accesses are checked."""
        self.mpu = mpu

    def add_watchpoint(self, callback):
        """Register ``callback(kind, address, size, actor)`` for tracing."""
        self._watchpoints.append(callback)

    def has_watchpoints(self):
        """Whether any tracing watchpoint is attached.

        The block-execution tier refuses to run while one is: its raw
        fast-path accesses would otherwise be invisible to tracers.
        """
        return bool(self._watchpoints)

    def add_write_listener(self, callback):
        """Register ``callback(address, size)`` run after **every** write.

        Both checked and raw writes funnel through :meth:`write_raw`, so
        listeners observe loader writes, hardware pushes, and MMIO
        stores too.  This is the snoop port the decoded-instruction
        cache uses to invalidate on stores into code.
        """
        self._write_listeners.append(callback)

    # -- raw (unchecked) accessors used by loaders and device models -----

    def read_raw(self, address, size):
        """Read without an MPU check (hardware/bootloader privilege)."""
        region = self.map.find(address, size)
        return region.read(address, size)

    def write_raw(self, address, payload):
        """Write without an MPU check (hardware/bootloader privilege)."""
        size = len(payload)
        region = self.map.find(address, size)
        region.write(address, bytes(payload))
        if self._write_listeners:
            for callback in self._write_listeners:
                callback(address, size)

    # -- checked accessors -------------------------------------------------

    def read(self, address, size, actor=HW_ACTOR):
        """Read ``size`` bytes as ``actor``, enforcing the EA-MPU."""
        address = u32(address)
        self._check("read", address, size, actor)
        return self.read_raw(address, size)

    def write(self, address, payload, actor=HW_ACTOR):
        """Write ``payload`` as ``actor``, enforcing the EA-MPU."""
        address = u32(address)
        self._check("write", address, len(payload), actor)
        self.write_raw(address, payload)

    def check_execute(self, address, actor):
        """Run the MPU execute check for an instruction fetch."""
        if self.mpu is not None:
            self.mpu.check(
                "execute", u32(address), 1, actor
            )

    def _check(self, kind, address, size, actor):
        for callback in self._watchpoints:
            callback(kind, address, size, actor)
        if self.mpu is not None and actor != self.HW_ACTOR:
            self.mpu.check(kind, address, size, actor)

    # -- typed helpers ------------------------------------------------------

    def read_u8(self, address, actor=HW_ACTOR):
        """Read an unsigned byte."""
        return self.read(address, 1, actor)[0]

    def read_u16(self, address, actor=HW_ACTOR):
        """Read an unsigned little-endian 16-bit value."""
        return int.from_bytes(self.read(address, 2, actor), "little")

    def read_u32(self, address, actor=HW_ACTOR):
        """Read an unsigned little-endian 32-bit value."""
        return int.from_bytes(self.read(address, 4, actor), "little")

    def write_u8(self, address, value, actor=HW_ACTOR):
        """Write an unsigned byte."""
        self.write(address, bytes([value & 0xFF]), actor)

    def write_u16(self, address, value, actor=HW_ACTOR):
        """Write an unsigned little-endian 16-bit value."""
        self.write(address, (value & 0xFFFF).to_bytes(2, "little"), actor)

    def write_u32(self, address, value, actor=HW_ACTOR):
        """Write an unsigned little-endian 32-bit value."""
        self.write(address, u32(value).to_bytes(4, "little"), actor)
