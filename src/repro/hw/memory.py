"""Flat physical memory with a region map.

Siskiyou Peak uses a flat, physical addressing model: no MMU, no virtual
memory.  :class:`PhysicalMemory` models the bus: it routes each access to
a RAM region or an MMIO region, and (when an EA-MPU is attached) runs the
execution-aware access check before the access is performed.

All multi-byte values are little-endian, matching the x86 lineage of the
platform.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, MemoryFault

MASK32 = 0xFFFFFFFF


def u32(value):
    """Truncate ``value`` to an unsigned 32-bit integer."""
    return value & MASK32


class RamRegion:
    """A contiguous range of byte-addressable RAM.

    Parameters
    ----------
    name:
        Human-readable region name (shows up in traces and faults).
    base:
        First physical address of the region.
    size:
        Region length in bytes.
    """

    def __init__(self, name, base, size):
        if size <= 0:
            raise ConfigurationError("region %r has non-positive size" % name)
        self.name = name
        self.base = u32(base)
        self.size = size
        self.data = bytearray(size)

    @property
    def end(self):
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, address, size=1):
        """Whether ``[address, address + size)`` lies inside the region."""
        return self.base <= address and address + size <= self.end

    def read(self, address, size):
        """Read ``size`` bytes starting at physical ``address``."""
        offset = address - self.base
        return bytes(self.data[offset : offset + size])

    def write(self, address, payload):
        """Write ``payload`` starting at physical ``address``."""
        offset = address - self.base
        self.data[offset : offset + len(payload)] = payload

    def fill(self, value=0):
        """Overwrite the whole region with ``value`` (for wipes)."""
        for i in range(self.size):
            self.data[i] = value

    def __repr__(self):
        return "RamRegion(%s, 0x%08X..0x%08X)" % (self.name, self.base, self.end)


class MemoryMap:
    """Ordered collection of non-overlapping regions.

    The map is the single source of truth for what exists at each physical
    address.  Regions may be :class:`RamRegion` or any object exposing the
    same ``base``/``size``/``contains``/``read``/``write`` protocol (MMIO
    regions do).
    """

    def __init__(self):
        self._regions = []

    def add(self, region):
        """Register ``region``, refusing overlaps with existing regions."""
        for existing in self._regions:
            if region.base < existing.end and existing.base < region.end:
                raise ConfigurationError(
                    "region %r overlaps %r" % (region.name, existing.name)
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def find(self, address, size=1):
        """Return the region containing ``[address, address + size)``.

        Raises :class:`MemoryFault` if no region contains the full range.
        """
        for region in self._regions:
            if region.contains(address, size):
                return region
        raise MemoryFault(address, size)

    def try_find(self, address, size=1):
        """Like :meth:`find` but returns ``None`` instead of raising."""
        for region in self._regions:
            if region.contains(address, size):
                return region
        return None

    def regions(self):
        """All regions, ordered by base address."""
        return list(self._regions)

    def region_named(self, name):
        """Return the region called ``name`` or raise ``KeyError``."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)


class PhysicalMemory:
    """The memory bus: routes accesses, enforces the EA-MPU.

    Every access carries an *actor*: the identifier of the code region the
    access is executed from.  This is what makes the MPU execution-aware -
    the same address may be accessible from one task's code and forbidden
    from another's.  Hardware agents (the exception engine, DMA-less
    device models) use the reserved actor :data:`HW_ACTOR`, which bypasses
    the MPU exactly as bus-master hardware does on the real platform.
    """

    #: Actor identifier for hardware-initiated accesses (exception engine
    #: pushing EIP/EFLAGS, device models updating their MMIO windows).
    HW_ACTOR = "<hardware>"

    def __init__(self, memory_map=None):
        self.map = memory_map if memory_map is not None else MemoryMap()
        self.mpu = None
        self._watchpoints = []

    def attach_mpu(self, mpu):
        """Install the EA-MPU; all subsequent accesses are checked."""
        self.mpu = mpu

    def add_watchpoint(self, callback):
        """Register ``callback(kind, address, size, actor)`` for tracing."""
        self._watchpoints.append(callback)

    # -- raw (unchecked) accessors used by loaders and device models -----

    def read_raw(self, address, size):
        """Read without an MPU check (hardware/bootloader privilege)."""
        region = self.map.find(address, size)
        return region.read(address, size)

    def write_raw(self, address, payload):
        """Write without an MPU check (hardware/bootloader privilege)."""
        region = self.map.find(address, len(payload))
        region.write(address, bytes(payload))

    # -- checked accessors -------------------------------------------------

    def read(self, address, size, actor=HW_ACTOR):
        """Read ``size`` bytes as ``actor``, enforcing the EA-MPU."""
        address = u32(address)
        self._check("read", address, size, actor)
        return self.read_raw(address, size)

    def write(self, address, payload, actor=HW_ACTOR):
        """Write ``payload`` as ``actor``, enforcing the EA-MPU."""
        address = u32(address)
        self._check("write", address, len(payload), actor)
        self.write_raw(address, payload)

    def check_execute(self, address, actor):
        """Run the MPU execute check for an instruction fetch."""
        if self.mpu is not None:
            self.mpu.check(
                "execute", u32(address), 1, actor
            )

    def _check(self, kind, address, size, actor):
        for callback in self._watchpoints:
            callback(kind, address, size, actor)
        if self.mpu is not None and actor != self.HW_ACTOR:
            self.mpu.check(kind, address, size, actor)

    # -- typed helpers ------------------------------------------------------

    def read_u8(self, address, actor=HW_ACTOR):
        """Read an unsigned byte."""
        return self.read(address, 1, actor)[0]

    def read_u16(self, address, actor=HW_ACTOR):
        """Read an unsigned little-endian 16-bit value."""
        return int.from_bytes(self.read(address, 2, actor), "little")

    def read_u32(self, address, actor=HW_ACTOR):
        """Read an unsigned little-endian 32-bit value."""
        return int.from_bytes(self.read(address, 4, actor), "little")

    def write_u8(self, address, value, actor=HW_ACTOR):
        """Write an unsigned byte."""
        self.write(address, bytes([value & 0xFF]), actor)

    def write_u16(self, address, value, actor=HW_ACTOR):
        """Write an unsigned little-endian 16-bit value."""
        self.write(address, (value & 0xFFFF).to_bytes(2, "little"), actor)

    def write_u32(self, address, value, actor=HW_ACTOR):
        """Write an unsigned little-endian 32-bit value."""
        self.write(address, u32(value).to_bytes(4, "little"), actor)
