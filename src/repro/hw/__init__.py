"""Simulated Siskiyou Peak hardware platform.

This package models the hardware substrate TyTAN runs on: a 32-bit core
with a flat physical address space (:mod:`repro.hw.cpu`), byte-addressable
RAM with memory-mapped I/O (:mod:`repro.hw.memory`, :mod:`repro.hw.mmio`),
an execution-aware memory protection unit (:mod:`repro.hw.ea_mpu`), a
hardware exception engine with an interrupt descriptor table
(:mod:`repro.hw.exceptions`), timers and synthetic sensor devices
(:mod:`repro.hw.timer`, :mod:`repro.hw.devices`), and a fused platform
key (:mod:`repro.hw.platform_key`).  :mod:`repro.hw.platform` wires the
pieces into a bootable machine.
"""

from repro.hw.memory import MemoryMap, RamRegion, PhysicalMemory
from repro.hw.mmio import MmioDevice, MmioRegion
from repro.hw.registers import RegisterFile, Reg, Flag
from repro.hw.ea_mpu import EAMPU, MpuRule, Perm
from repro.hw.exceptions import ExceptionEngine, InterruptController, Vector
from repro.hw.cpu import CPU
from repro.hw.timer import TickTimer, RealTimeClock
from repro.hw.platform_key import PlatformKeyStore
from repro.hw.platform import Platform, MachineConfig

__all__ = [
    "MemoryMap",
    "RamRegion",
    "PhysicalMemory",
    "MmioDevice",
    "MmioRegion",
    "RegisterFile",
    "Reg",
    "Flag",
    "EAMPU",
    "MpuRule",
    "Perm",
    "ExceptionEngine",
    "InterruptController",
    "Vector",
    "CPU",
    "TickTimer",
    "RealTimeClock",
    "PlatformKeyStore",
    "Platform",
    "MachineConfig",
]
