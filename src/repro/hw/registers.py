"""CPU register file.

The core carries eight 32-bit general-purpose registers with x86 naming
(the paper's Siskiyou Peak is an x86-lineage embedded core and the paper
refers to EIP and EFLAGS explicitly), plus the instruction pointer EIP
and the flags register EFLAGS.

The split matters architecturally: on an interrupt the *hardware
exception engine* pushes EIP and EFLAGS to the interrupted task's stack,
while the remaining eight registers are saved by software - by the OS
interrupt handler for normal tasks, and by the trusted Int Mux for secure
tasks (Section 4 of the paper, Tables 2 and 3).
"""

from __future__ import annotations

from repro.hw.memory import u32


class Reg:
    """Register indices for the eight software-saved registers."""

    EAX = 0
    ECX = 1
    EDX = 2
    EBX = 3
    ESP = 4
    EBP = 5
    ESI = 6
    EDI = 7

    NAMES = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]
    COUNT = 8

    @classmethod
    def index(cls, name):
        """Map a register name (any case) to its index."""
        return cls.NAMES.index(name.lower())

    @classmethod
    def name(cls, index):
        """Map a register index to its canonical lower-case name."""
        return cls.NAMES[index]


class Flag:
    """Bit positions inside EFLAGS."""

    CF = 1 << 0  #: carry / unsigned overflow
    ZF = 1 << 6  #: zero
    SF = 1 << 7  #: sign
    IF = 1 << 9  #: interrupts enabled
    OF = 1 << 11  #: signed overflow


class RegisterFile:
    """The architectural register state of the core."""

    def __init__(self):
        self.gpr = [0] * Reg.COUNT
        self.eip = 0
        self.eflags = Flag.IF

    # -- general-purpose registers ----------------------------------------

    def read(self, index):
        """Read general-purpose register ``index``."""
        return self.gpr[index]

    def write(self, index, value):
        """Write general-purpose register ``index`` (truncated to 32 bits)."""
        self.gpr[index] = u32(value)

    @property
    def esp(self):
        """The stack pointer."""
        return self.gpr[Reg.ESP]

    @esp.setter
    def esp(self, value):
        self.gpr[Reg.ESP] = u32(value)

    # -- flags ---------------------------------------------------------------

    def get_flag(self, flag):
        """Whether flag bit ``flag`` is set."""
        return bool(self.eflags & flag)

    def set_flag(self, flag, value):
        """Set or clear flag bit ``flag``."""
        if value:
            self.eflags |= flag
        else:
            self.eflags &= ~flag & 0xFFFFFFFF

    @property
    def interrupts_enabled(self):
        """Whether maskable interrupts are accepted (EFLAGS.IF)."""
        return self.get_flag(Flag.IF)

    # -- context snapshots ---------------------------------------------------

    def snapshot(self):
        """Copy the full architectural state (for traces and tests)."""
        return {
            "gpr": list(self.gpr),
            "eip": self.eip,
            "eflags": self.eflags,
        }

    def restore(self, snapshot):
        """Restore a snapshot produced by :meth:`snapshot`."""
        self.gpr = list(snapshot["gpr"])
        self.eip = snapshot["eip"]
        self.eflags = snapshot["eflags"]

    def wipe_gprs(self):
        """Zero all general-purpose registers (the Int Mux wipe step)."""
        self.gpr = [0] * Reg.COUNT

    def __repr__(self):
        regs = " ".join(
            "%s=%08X" % (Reg.name(i), v) for i, v in enumerate(self.gpr)
        )
        return "<RegisterFile eip=%08X eflags=%08X %s>" % (
            self.eip,
            self.eflags,
            regs,
        )
