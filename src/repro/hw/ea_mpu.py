"""Execution-aware Memory Protection Unit (EA-MPU).

The EA-MPU (introduced by TrustLite and extended by TyTAN with *dynamic*
rule configuration) enforces memory access control based on **which code
performs the access**: a rule grants read/write/execute rights over a
data range to code executing inside a specific code range.  The stack of
a task is thus accessible to that task's code and nothing else.

Semantics implemented here, following Section 3 of the paper:

1. every data access is checked against the rule table using the address
   of the *currently executing instruction* as the subject;
2. protected code regions may only be **entered at their dedicated entry
   point** (control transfers into the region from outside must target
   it); the trusted Int Mux resumes interrupted tasks with a privileged
   transfer that bypasses this check, exactly like the hardware
   resume path on the real platform;
3. addresses not covered by any rule are public (background region) -
   this is how ordinary shared OS memory stays reachable;
4. the rule table has :data:`repro.cycles.EAMPU_SLOTS` slots; rules for
   static trusted components are written during secure boot and locked,
   dynamic rules for tasks come and go at runtime (Table 6 measures the
   cost of installing one).

The MPU itself is a passive checker; the *EA-MPU driver*
(:mod:`repro.core.mpu_driver`) is the only software allowed to program
it, and programming calls carry the driver's code address as ``actor`` so
the MPU can enforce that too.
"""

from __future__ import annotations

from repro import cycles
from repro.errors import (
    EntryPointFault,
    MPUSlotError,
    ProtectionFault,
)
from repro.hw.memory import PhysicalMemory
from repro.perf.decision_cache import MPUDecisionCache


class Perm:
    """Permission bits of an EA-MPU rule."""

    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X

    _KIND_BITS = {"read": R, "write": W, "execute": X}

    @classmethod
    def bit_for(cls, kind):
        """Map an access kind string to its permission bit."""
        return cls._KIND_BITS[kind]

    @classmethod
    def describe(cls, perms):
        """Render permission bits as an ``rwx`` string."""
        return "".join(
            letter if perms & bit else "-"
            for letter, bit in (("r", cls.R), ("w", cls.W), ("x", cls.X))
        )


class MpuRule:
    """One EA-MPU rule slot.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``task:sensor`` or ``boot:rtm``).
    code_start, code_end:
        Subject range: the rule applies to instructions executing in
        ``[code_start, code_end)``.  ``None`` makes the rule apply to any
        subject (used for public read-only regions like the IDT).
    data_start, data_end:
        Object range the rule grants rights over.
    perms:
        OR of :class:`Perm` bits.
    entry_point:
        If set (and the rule grants X), control may enter the object
        range from outside only at this address.
    extra_subjects:
        Additional subject ranges: ``(start, end)`` tuples sharing the
        rule's full permissions, or ``(start, end, perms)`` tuples with
        a narrower per-subject mask.  Used for normal tasks (the OS code
        range gets RW access) and for the trusted components' per-task
        reach (Int Mux and IPC proxy write, the RTM only reads).
    """

    def __init__(
        self,
        name,
        code_start,
        code_end,
        data_start,
        data_end,
        perms,
        entry_point=None,
        extra_subjects=(),
    ):
        if data_end <= data_start:
            raise MPUSlotError("rule %r has empty data range" % name)
        self.name = name
        self.code_start = code_start
        self.code_end = code_end
        self.data_start = data_start
        self.data_end = data_end
        self.perms = perms
        self.entry_point = entry_point
        self.extra_subjects = tuple(
            (entry[0], entry[1], entry[2] if len(entry) > 2 else None)
            for entry in extra_subjects
        )

    def subject_matches(self, eip):
        """Whether code at ``eip`` is a subject of this rule."""
        return self.subject_perms(eip) is not None

    def subject_perms(self, eip):
        """The permission mask granted to code at ``eip``, or ``None``
        when ``eip`` is not a subject of this rule."""
        if self.code_start is None:
            return self.perms
        if self.code_start <= eip < self.code_end:
            return self.perms
        for start, end, mask in self.extra_subjects:
            if start <= eip < end:
                return self.perms if mask is None else (self.perms & mask)
        return None

    def object_covers(self, address, size=1):
        """Whether the access range lies inside the rule's object range."""
        return self.data_start <= address and address + size <= self.data_end

    def object_overlaps(self, start, end):
        """Whether ``[start, end)`` overlaps the rule's object range."""
        return start < self.data_end and self.data_start < end

    def allows(self, kind, address, size, eip):
        """Full check: subject, object, and (per-subject) permission."""
        if not self.object_covers(address, size):
            return False
        granted = self.subject_perms(eip)
        return granted is not None and bool(granted & Perm.bit_for(kind))

    def __repr__(self):
        return "MpuRule(%s, data=0x%X..0x%X, %s)" % (
            self.name,
            self.data_start,
            self.data_end,
            Perm.describe(self.perms),
        )


class EAMPU:
    """The EA-MPU rule table and checking engine.

    ``slot_count`` defaults to the paper's 18.  The table starts empty;
    secure boot programs and locks the static rules, the EA-MPU driver
    manages the dynamic remainder.
    """

    def __init__(self, slot_count=cycles.EAMPU_SLOTS, decision_cache=True):
        self.slot_count = slot_count
        self.slots = [None] * slot_count
        self._locked = [False] * slot_count
        self.fault_log = []
        #: Optional driver code range; once set, only accesses from inside
        #: it (or hardware) may program slots.
        self._driver_range = None
        #: Rule-table generation: bumped by every successful
        #: ``program_slot``/``clear_slot``.  Cached allow verdicts are
        #: valid for exactly one epoch.
        self.epoch = 0
        #: Memoized allow verdicts (``None`` disables the fast path;
        #: denials are never cached, so faults and ``fault_log`` are
        #: identical either way).
        self.decisions = MPUDecisionCache(self) if decision_cache else None
        #: Observability bus (set by the platform); denials publish
        #: ``mpu-denial`` / ``mpu-entry-fault`` events here.
        self.obs = None

    # -- configuration ------------------------------------------------------

    def set_driver_range(self, start, end):
        """Restrict slot programming to code in ``[start, end)``."""
        self._driver_range = (start, end)

    def _check_programmer(self, actor):
        if actor == PhysicalMemory.HW_ACTOR or self._driver_range is None:
            return
        start, end = self._driver_range
        if isinstance(actor, int) and start <= actor < end:
            return
        raise ProtectionFault(
            start, "write", actor, detail="EA-MPU registers are driver-only"
        )

    def program_slot(self, index, rule, actor=PhysicalMemory.HW_ACTOR, lock=False):
        """Write ``rule`` into slot ``index``.

        Only the EA-MPU driver (or boot hardware) may program slots, and
        locked slots are immutable until reset.  Overlap policy is the
        *driver's* job (it charges the Table 6 policy-check cycles); the
        MPU itself only validates slot bounds and lock state.
        """
        self._check_programmer(actor)
        if not 0 <= index < self.slot_count:
            raise MPUSlotError("slot index %d out of range" % index)
        if self._locked[index]:
            raise MPUSlotError("slot %d is locked" % index)
        self.slots[index] = rule
        self.epoch += 1
        if lock:
            self._locked[index] = True

    def clear_slot(self, index, actor=PhysicalMemory.HW_ACTOR):
        """Free a dynamic slot (task unload)."""
        self._check_programmer(actor)
        if not 0 <= index < self.slot_count:
            raise MPUSlotError("slot index %d out of range" % index)
        if self._locked[index]:
            raise MPUSlotError("slot %d is locked" % index)
        self.slots[index] = None
        self.epoch += 1

    def is_locked(self, index):
        """Whether slot ``index`` was locked by secure boot."""
        return self._locked[index]

    def free_slots(self):
        """Indices of currently free slots."""
        return [i for i, rule in enumerate(self.slots) if rule is None]

    def active_rules(self):
        """All programmed rules with their slot indices."""
        return [(i, rule) for i, rule in enumerate(self.slots) if rule is not None]

    # -- checking -------------------------------------------------------------

    def check(self, kind, address, size, eip):
        """Enforce an access; raises :class:`ProtectionFault` on denial.

        An address covered by at least one rule's object range is
        protected: some matching rule must allow the access.  Uncovered
        addresses form the public background region.

        Allow verdicts are memoized per rule-table epoch in
        :attr:`decisions`; denials always re-run the full scan so the
        fault is raised and logged on every occurrence.
        """
        decisions = self.decisions
        if decisions is not None:
            key = (kind, address, size, eip)
            if decisions.lookup_access(key):
                return
        covered = False
        for rule in self.slots:
            if rule is None:
                continue
            if not rule.object_overlaps(address, address + size):
                continue
            covered = True
            if rule.allows(kind, address, size, eip):
                if decisions is not None:
                    decisions.store_access(key)
                return
        if not covered:
            if decisions is not None:
                decisions.store_access(key)
            return
        fault = ProtectionFault(address, kind, eip)
        self.fault_log.append(fault)
        if self.obs is not None:
            self.obs.publish(
                "hw", "mpu-denial", access=kind, address=address, size=size, eip=eip
            )
        raise fault

    def probe(self, kind, address, size, eip):
        """Pure allow/deny query: no fault, no log, no obs, no memo.

        The block-translation engine uses this at discovery time to ask
        whether an instruction *would* pass :meth:`check` without
        producing any architecturally visible side effect - a denial
        must only ever be raised and logged when the single-step path
        actually reaches the instruction.
        """
        covered = False
        for rule in self.slots:
            if rule is None:
                continue
            if not rule.object_overlaps(address, address + size):
                continue
            covered = True
            if rule.allows(kind, address, size, eip):
                return True
        return not covered

    def check_transfer(self, from_eip, to_eip, privileged=False):
        """Enforce entry-point rules on a control transfer.

        When control moves into an entry-point-protected region *from
        outside that region*, the target must equal the entry point.
        ``privileged`` marks the trusted resume path used by the Int Mux
        and the hardware IRET into an interrupted task.

        Transfers proven allowed (same coverage cell, or previously
        allowed this epoch) skip the slot scan; denials always re-run
        it so the fault is raised and logged every time.
        """
        if privileged:
            return
        decisions = self.decisions
        if decisions is not None and decisions.lookup_transfer(from_eip, to_eip):
            return
        for rule in self.slots:
            if rule is None or rule.entry_point is None:
                continue
            inside_to = rule.object_covers(to_eip)
            inside_from = rule.object_covers(from_eip)
            if inside_to and not inside_from and to_eip != rule.entry_point:
                fault = EntryPointFault(to_eip, from_eip, rule.entry_point)
                self.fault_log.append(fault)
                if self.obs is not None:
                    self.obs.publish(
                        "hw",
                        "mpu-entry-fault",
                        to_eip=to_eip,
                        from_eip=from_eip,
                        entry_point=rule.entry_point,
                    )
                raise fault
        if decisions is not None:
            decisions.store_transfer(from_eip, to_eip)

    def covering_rules(self, address):
        """Rules whose object range covers ``address`` (diagnostics)."""
        return [
            rule
            for rule in self.slots
            if rule is not None and rule.object_covers(address)
        ]

    def isolation_matrix(self, probes):
        """Access matrix for tests and the Figure 1 bench.

        ``probes`` maps subject names to a representative EIP and object
        names to ``(address, size)``.  Returns
        ``{(subject, object, kind): bool}``.
        """
        matrix = {}
        for sname, eip in probes["subjects"].items():
            for oname, (address, size) in probes["objects"].items():
                for kind in ("read", "write", "execute"):
                    try:
                        self.check(kind, address, size, eip)
                        allowed = True
                    except ProtectionFault:
                        allowed = False
                    matrix[(sname, oname, kind)] = allowed
        return matrix
