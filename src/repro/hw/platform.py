"""The assembled machine: Siskiyou Peak + EA-MPU + devices.

:class:`Platform` owns the cycle clock, physical memory, the CPU, the
EA-MPU, the exception engine, timers, and the use-case sensor devices,
laid out per :class:`MachineConfig`.  It also keeps the *firmware
registry*: trusted TyTAN components are high-level-emulated, but each is
bound to a real code region in the memory map so that EA-MPU subject
rules, IDT vectors, and interrupt origins all refer to genuine
addresses.

The platform exposes one execution primitive the kernel builds on:
:meth:`Platform.run_isa_until_event` executes task instructions until an
interrupt fires (delivered through the exception engine, landing in a
firmware region) or the core halts.  Between instructions it polls the
timers, so interrupt latency is never more than one instruction - the
hardware half of TyTAN's real-time guarantee.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.clock import DEFAULT_HZ, CycleClock
from repro.hw.cpu import CPU
from repro.hw.devices import EngineActuator, PedalSensor, RadarSensor, SpeedSensor
from repro.hw.ea_mpu import EAMPU
from repro.hw.exceptions import ExceptionEngine
from repro.hw.memory import MemoryMap, PhysicalMemory, RamRegion
from repro.hw.mmio import MmioRegion
from repro.hw.platform_key import KEY_BYTES, PlatformKeyStore
from repro.hw.timer import RealTimeClock, TickTimer
from repro.obs.bus import DEFAULT_CAPACITY, EventBus


class MachineConfig:
    """Physical memory layout and machine parameters.

    The defaults model a small deeply-embedded part: a handful of
    firmware pages for the trusted components, a few hundred KiB for the
    OS, and 1 MiB of task RAM.
    """

    def __init__(
        self,
        hz=DEFAULT_HZ,
        tick_period=16_000,
        mpu_slots=None,
        fastpath=True,
        blocks=True,
        traces=True,
        obs_enabled=True,
        obs_capacity=DEFAULT_CAPACITY,
        platform_key=None,
    ):
        self.hz = hz
        #: Cycles between scheduler ticks (16,000 @ 48 MHz = 3 kHz).
        self.tick_period = tick_period
        #: EA-MPU rule slots; None = the paper's 18.
        self.mpu_slots = mpu_slots
        #: Enable the fast-path caches (decoded instructions, EA-MPU
        #: verdict memo, region last-hit).  Wall-clock only; simulated
        #: behaviour is identical either way.
        self.fastpath = fastpath
        #: Enable the block-translation tier on top of the fast path
        #: (superblock execution with hoisted EA-MPU checks, bounded by
        #: the event horizon).  Wall-clock only; simulated behaviour is
        #: bit-identical either way.  Ignored when ``fastpath`` is off.
        self.blocks = blocks
        #: Enable the trace-recording JIT on top of the block tier (hot
        #: block-to-block edges stitched into guarded multi-block
        #: traces; see :mod:`repro.perf.traces`).  Wall-clock only;
        #: simulated behaviour is bit-identical either way.  Ignored
        #: when ``blocks`` is off.
        self.traces = traces
        #: Enable the observability bus (repro.obs).  Observation only;
        #: simulated behaviour is bit-identical either way.
        self.obs_enabled = obs_enabled
        #: Event-ring capacity of the observability bus.
        self.obs_capacity = obs_capacity
        #: Fused platform key K_p; None = the deterministic default.
        #: Fleets fuse a distinct per-device key here so every machine
        #: derives distinct attestation/storage keys.
        self.platform_key = platform_key

        self.idt_base = 0x0000_0000
        self.idt_size = 0x400

        self.boot_base = 0x0000_1000
        self.boot_size = 0x1000

        self.firmware_base = 0x0001_0000
        self.firmware_page = 0x1000
        self.firmware_pages = 10

        self.os_code_base = 0x0004_0000
        self.os_code_size = 0x1_0000
        self.os_data_base = 0x0005_0000
        self.os_data_size = 0x3_0000

        self.task_ram_base = 0x0010_0000
        self.task_ram_size = 0x10_0000

        self.mmio_base = 0x00F0_0000
        self.key_base = 0x00FF_F000

    @property
    def firmware_end(self):
        """One past the last firmware page."""
        return self.firmware_base + self.firmware_page * self.firmware_pages


class FirmwareComponent:
    """Base class for HLE trusted components bound to a code region.

    Subclasses receive their code region at registration time; their
    ``base`` address is the actor they present to the bus, so the EA-MPU
    governs what each component may touch.
    """

    #: Diagnostic component name; overridden by subclasses.
    NAME = "component"

    def __init__(self):
        self.base = None
        self.size = None

    def bind(self, base, size):
        """Called by the platform when the component gets its page."""
        self.base = base
        self.size = size

    @property
    def end(self):
        """One past the component's code region."""
        return self.base + self.size

    def contains(self, address):
        """Whether ``address`` lies in the component's code region."""
        return self.base is not None and self.base <= address < self.end


class FirmwareEntry:
    """Result of :meth:`Platform.run_isa_until_event`: control left the
    task and landed in a firmware region (or the core halted)."""

    def __init__(self, kind, component=None, address=None, vector=None):
        #: ``'firmware'`` or ``'halt'``
        self.kind = kind
        self.component = component
        self.address = address
        self.vector = vector

    def __repr__(self):
        return "FirmwareEntry(%s, %s, 0x%s, vec=%s)" % (
            self.kind,
            getattr(self.component, "NAME", None),
            "%X" % self.address if self.address is not None else "?",
            self.vector,
        )


class Platform:
    """The complete simulated machine."""

    def __init__(self, config=None):
        self.config = config if config is not None else MachineConfig()
        cfg = self.config

        self.clock = CycleClock(cfg.hz)
        #: The unified observability bus: hardware, kernel, and trusted
        #: components all publish here (see repro.obs).
        self.obs = EventBus(
            clock=self.clock, capacity=cfg.obs_capacity, enabled=cfg.obs_enabled
        )
        self.memory = PhysicalMemory(MemoryMap())
        self.memory.map.cache_enabled = cfg.fastpath
        if cfg.mpu_slots is None:
            self.mpu = EAMPU(decision_cache=cfg.fastpath)
        else:
            self.mpu = EAMPU(cfg.mpu_slots, decision_cache=cfg.fastpath)
        self.memory.attach_mpu(self.mpu)

        # -- RAM regions ----------------------------------------------------
        self.memory.map.add(RamRegion("idt", cfg.idt_base, cfg.idt_size))
        self.memory.map.add(RamRegion("boot", cfg.boot_base, cfg.boot_size))
        self.memory.map.add(
            RamRegion(
                "firmware",
                cfg.firmware_base,
                cfg.firmware_page * cfg.firmware_pages,
            )
        )
        self.memory.map.add(RamRegion("os-code", cfg.os_code_base, cfg.os_code_size))
        self.memory.map.add(RamRegion("os-data", cfg.os_data_base, cfg.os_data_size))
        self.memory.map.add(
            RamRegion("task-ram", cfg.task_ram_base, cfg.task_ram_size)
        )
        self.memory.map.add(RamRegion("key-fuses", cfg.key_base, KEY_BYTES))

        # -- CPU and exception engine ----------------------------------------
        self.cpu = CPU(self.memory, self.clock, fastpath=cfg.fastpath)
        self.engine = ExceptionEngine(self.memory, cfg.idt_base)
        self.cpu.attach_engine(self.engine)

        # -- block-translation tier: superblocks may only run inside the
        #    event horizon (earliest device event or the current slice
        #    deadline), so interrupt delivery lands on exactly the same
        #    instruction boundary as single-stepping ---------------------
        self._slice_deadline = None
        # A bound method, not a lambda: closures would keep pointing at
        # this platform when a booted machine is deep-copied (the fleet's
        # snapshot-fork boot), while bound methods re-bind to the copy.
        self.clock.add_event_source(self._slice_deadline_source)
        if cfg.fastpath and cfg.blocks:
            self.cpu.enable_blocks(self.clock.next_event_horizon, traces=cfg.traces)

        # -- observability wiring: hardware publishers and the counter
        #    registry absorbing the fast-path cache stats ------------------
        self.mpu.obs = self.obs
        self.engine.obs = self.obs
        self.obs.counters.register(self.memory.map.stats)
        if self.cpu.insn_cache is not None:
            self.obs.counters.register(self.cpu.insn_cache.stats)
        if self.mpu.decisions is not None:
            self.obs.counters.register(self.mpu.decisions.access_stats)
            self.obs.counters.register(self.mpu.decisions.transfer_stats)
        if self.cpu.block_engine is not None:
            self.cpu.block_engine.obs = self.obs
            for counter in self.cpu.block_engine.counters():
                self.obs.counters.register(counter)

        # -- devices ------------------------------------------------------------
        self.tick_timer = TickTimer(self.engine.controller, cfg.tick_period)
        self.rtc = RealTimeClock(self.clock, self.engine.controller)
        self.pedal = PedalSensor(self.clock)
        self.radar = RadarSensor(self.clock)
        self.speed = SpeedSensor(self.clock)
        self.engine_actuator = EngineActuator(self.clock)
        self._devices = []
        for index, device in enumerate(
            (
                self.tick_timer,
                self.rtc,
                self.pedal,
                self.radar,
                self.speed,
                self.engine_actuator,
            )
        ):
            base = cfg.mmio_base + index * 0x100
            self.memory.map.add(MmioRegion(device, base))
            self._devices.append(device)
            self.clock.add_event_source(device.next_event)
            setattr(self, "%s_base" % device.name.replace("-", "_"), base)

        # -- platform key ----------------------------------------------------
        self.key_store = PlatformKeyStore(
            self.memory, cfg.key_base, key=cfg.platform_key
        )
        #: Optional network interface (set by :meth:`attach_nic`).
        self.nic = None
        self.nic_base = None

        # -- firmware registry -------------------------------------------------
        self._firmware = []
        self._next_firmware_page = 0

    # -- firmware -----------------------------------------------------------

    def register_firmware(self, component):
        """Assign the next firmware page to ``component``."""
        cfg = self.config
        if self._next_firmware_page >= cfg.firmware_pages:
            raise ConfigurationError("out of firmware pages")
        base = cfg.firmware_base + self._next_firmware_page * cfg.firmware_page
        self._next_firmware_page += 1
        component.bind(base, cfg.firmware_page)
        self._firmware.append(component)
        return component

    def firmware_at(self, address):
        """The firmware component whose region contains ``address``."""
        for component in self._firmware:
            if component.contains(address):
                return component
        return None

    def in_firmware(self, address):
        """Whether ``address`` lies anywhere in the firmware window."""
        cfg = self.config
        return cfg.firmware_base <= address < cfg.firmware_end

    def firmware_components(self):
        """All registered components (inventory checks)."""
        return list(self._firmware)

    # -- network ------------------------------------------------------------

    def attach_nic(self, nic=None):
        """Attach a network interface as the next MMIO device.

        The NIC is optional - standalone machines have no network - so
        it is attached on demand (the fleet orchestrator calls this for
        every device machine) rather than in the constructor.  Returns
        the :class:`repro.hw.nic.NetworkInterface`.
        """
        from repro.hw.nic import NetworkInterface

        if self.nic is not None:
            raise ConfigurationError("a NIC is already attached")
        nic = nic if nic is not None else NetworkInterface()
        base = self.config.mmio_base + len(self._devices) * 0x100
        self.memory.map.add(MmioRegion(nic, base))
        self._devices.append(nic)
        self.clock.add_event_source(nic.next_event)
        self.nic = nic
        self.nic_base = base
        return nic

    def _slice_deadline_source(self):
        """Event source: the current run slice's deadline, if any."""
        return self._slice_deadline

    # -- device timekeeping --------------------------------------------------

    def poll_devices(self):
        """Let every device observe the current time."""
        now = self.clock.now
        for device in self._devices:
            device.tick(now)

    def next_device_event(self):
        """Earliest future device event, or ``None``."""
        events = []
        for device in self._devices:
            when = device.next_event()
            if when is not None:
                events.append(when)
        return min(events) if events else None

    # -- execution ------------------------------------------------------------

    def run_isa_until_event(self, max_cycles=None):
        """Execute task instructions until control leaves task code.

        Returns a :class:`FirmwareEntry` when the CPU lands in a
        firmware region (interrupt delivery or an explicit transfer), or
        a ``'halt'`` entry when the core halts with interrupts disabled
        or ``max_cycles`` elapses.
        """
        deadline = None if max_cycles is None else self.clock.now + max_cycles
        # The slice deadline caps the event horizon while this loop
        # runs: a superblock may not carry execution past the point
        # where single-stepping would have ended the slice.
        self._slice_deadline = deadline
        try:
            while True:
                # A halted core ends the slice immediately - before any
                # pending interrupt can "wake" it into the bytes after
                # the hlt (which are usually data).
                if self.cpu.halted:
                    return FirmwareEntry("halt", address=self.cpu.regs.eip)
                self.poll_devices()
                self.cpu.maybe_take_interrupt()
                eip = self.cpu.regs.eip
                if self.in_firmware(eip):
                    return FirmwareEntry(
                        "firmware",
                        component=self.firmware_at(eip),
                        address=eip,
                        vector=self.engine.last_vector,
                    )
                self.cpu.step()
                if deadline is not None and self.clock.now >= deadline:
                    return FirmwareEntry("halt", address=self.cpu.regs.eip)
        finally:
            self._slice_deadline = None

