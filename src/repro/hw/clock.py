"""The platform cycle clock.

Everything in the simulator is measured in clock cycles, exactly as the
paper reports its results ("We present all results in clock cycles since
the clock-speed of a platform is variable").  A single
:class:`CycleClock` instance is shared by the CPU, the firmware
components, and the RTOS; every piece of work *charges* cycles on it.

The clock also converts to wall time for the use-case evaluation, using
the paper platform's 48 MHz.
"""

from __future__ import annotations

#: Clock frequency of the paper's FPGA implementation.
DEFAULT_HZ = 48_000_000


class CycleClock:
    """Monotonic cycle counter with charge notification hooks."""

    def __init__(self, hz=DEFAULT_HZ):
        self.hz = hz
        self.now = 0
        self._listeners = []

    def charge(self, count):
        """Advance time by ``count`` cycles and notify listeners."""
        if count < 0:
            raise ValueError("cannot charge negative cycles")
        self.now += count
        for listener in self._listeners:
            listener(self.now, count)
        return self.now

    def add_listener(self, callback):
        """Register ``callback(now, charged)`` run after every charge."""
        self._listeners.append(callback)

    def remove_listener(self, callback):
        """Unregister a listener previously added."""
        self._listeners.remove(callback)

    def cycles_to_seconds(self, count):
        """Convert a cycle count to seconds at the platform frequency."""
        return count / self.hz

    def cycles_to_ms(self, count):
        """Convert a cycle count to milliseconds."""
        return count * 1000.0 / self.hz

    def seconds(self):
        """Current absolute time in seconds."""
        return self.cycles_to_seconds(self.now)

    def __repr__(self):
        return "CycleClock(now=%d, %.3f ms @ %d Hz)" % (
            self.now,
            self.cycles_to_ms(self.now),
            self.hz,
        )
