"""The platform cycle clock.

Everything in the simulator is measured in clock cycles, exactly as the
paper reports its results ("We present all results in clock cycles since
the clock-speed of a platform is variable").  A single
:class:`CycleClock` instance is shared by the CPU, the firmware
components, and the RTOS; every piece of work *charges* cycles on it.

The clock also converts to wall time for the use-case evaluation, using
the paper platform's 48 MHz.
"""

from __future__ import annotations

#: Clock frequency of the paper's FPGA implementation.
DEFAULT_HZ = 48_000_000


class CycleClock:
    """Monotonic cycle counter with charge notification hooks."""

    def __init__(self, hz=DEFAULT_HZ):
        self.hz = hz
        self.now = 0
        self._listeners = []
        self._event_sources = []

    def charge(self, count):
        """Advance time by ``count`` cycles and notify listeners."""
        if count < 0:
            raise ValueError("cannot charge negative cycles")
        self.now += count
        for listener in self._listeners:
            listener(self.now, count)
        return self.now

    def add_listener(self, callback):
        """Register ``callback(now, charged)`` run after every charge."""
        self._listeners.append(callback)

    def remove_listener(self, callback):
        """Unregister a listener previously added."""
        self._listeners.remove(callback)

    def add_event_source(self, source):
        """Register a future-event source for :meth:`next_event_horizon`.

        ``source()`` must return the earliest absolute cycle at which
        that component can next make an interrupt pending (a timer fire,
        an RTC alarm, a scheduler slice deadline, ...), or ``None`` when
        it has no pending future event.  Sources must be conservative:
        reporting an event *earlier* than it can really occur is safe,
        later is not.
        """
        self._event_sources.append(source)

    def remove_event_source(self, source):
        """Unregister an event source previously added."""
        self._event_sources.remove(source)

    def next_event_horizon(self):
        """Earliest absolute cycle at which any IRQ can become pending.

        Returns ``None`` when no registered source has a scheduled
        event - time is then free of asynchronous interrupts and the
        block-execution tier may run arbitrarily far.  Otherwise a
        multi-instruction block may only be entered if its entire
        static cycle cost fits strictly before the horizon; anything
        longer falls back to single-step so interrupt delivery happens
        at exactly the same instruction boundary as an uncached run.
        """
        horizon = None
        for source in self._event_sources:
            when = source()
            if when is not None and (horizon is None or when < horizon):
                horizon = when
        return horizon

    def cycles_to_seconds(self, count):
        """Convert a cycle count to seconds at the platform frequency."""
        return count / self.hz

    def cycles_to_ms(self, count):
        """Convert a cycle count to milliseconds."""
        return count * 1000.0 / self.hz

    def seconds(self):
        """Current absolute time in seconds."""
        return self.cycles_to_seconds(self.now)

    def __repr__(self):
        return "CycleClock(now=%d, %.3f ms @ %d Hz)" % (
            self.now,
            self.cycles_to_ms(self.now),
            self.hz,
        )
