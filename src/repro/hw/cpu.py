"""The 32-bit core: instruction interpreter with EA-MPU enforcement.

Every instruction fetch runs an execute check against the EA-MPU; every
data access carries the current EIP as the *actor*, which is what makes
the MPU execution-aware.  Control transfers (including sequential flow
across a region boundary) run the entry-point check; only the hardware
resume path (IRET) and the trusted Int Mux restore are privileged.

Interrupts are taken **between** instructions when EFLAGS.IF is set -
the core never blocks interrupts for longer than one instruction, which
is the hardware half of TyTAN's real-time story.
"""

from __future__ import annotations

from repro import cycles
from repro.errors import IllegalInstruction, TyTANError
from repro.hw.memory import u32
from repro.hw.registers import Flag, RegisterFile
from repro.isa.encoding import decode
from repro.isa.opcodes import BASE_CYCLES, Op

#: Longest instruction encoding; fetch reads this many bytes.
MAX_INSN_BYTES = 6


class CPU:
    """The simulated Siskiyou Peak core."""

    def __init__(self, memory, clock):
        self.memory = memory
        self.clock = clock
        self.regs = RegisterFile()
        self.engine = None  # wired by the Platform
        self.halted = False
        #: Count of retired instructions (diagnostics / tests).
        self.retired = 0
        #: Optional callable invoked as ``hook(cpu, insn)`` before each
        #: instruction executes (tracing).
        self.trace_hook = None
        #: Optional control-transfer monitor ``hook(from_eip, to_eip)``
        #: invoked on every taken branch/call/return.  This is the
        #: attachment point for hardware-assisted runtime attack
        #: detection (the paper's second future-work item); the hook
        #: may raise a :class:`~repro.errors.HardwareFault` to kill the
        #: offending task.
        self.transfer_hook = None

    def attach_engine(self, engine):
        """Wire the exception engine (done by the Platform)."""
        self.engine = engine

    # -- interrupt intake ---------------------------------------------------

    def maybe_take_interrupt(self):
        """Deliver the highest-priority pending IRQ if unmasked.

        Returns the delivered vector or ``None``.  Delivery wakes a
        halted core.
        """
        if self.engine is None:
            return None
        controller = self.engine.controller
        if not controller.has_pending():
            return None
        if not self.regs.interrupts_enabled:
            return None
        vector = controller.take()
        self.halted = False
        self.engine.deliver(self, vector)
        return vector

    # -- execution ------------------------------------------------------------

    def step(self):
        """Execute one instruction; returns cycles charged.

        A halted core just burns one idle cycle waiting for an
        interrupt.
        """
        if self.halted:
            self.clock.charge(1)
            return 1
        before = self.clock.now
        eip = self.regs.eip
        self.memory.check_execute(eip, eip)
        insn = self._fetch(eip)
        if self.trace_hook is not None:
            self.trace_hook(self, insn)
        self._execute(insn)
        self.retired += 1
        return self.clock.now - before

    def _fetch(self, eip):
        window = min(MAX_INSN_BYTES, self._fetch_limit(eip))
        blob = self.memory.read_raw(eip, window)
        return decode(blob, 0, address=eip)

    def _fetch_limit(self, eip):
        region = self.memory.map.try_find(eip, 1)
        if region is None:
            raise IllegalInstruction(eip, 0xFF)
        return region.end - eip

    # -- memory helpers (actor = current EIP) -------------------------------

    def _load(self, address, size):
        payload = self.memory.read(address, size, actor=self.regs.eip)
        return int.from_bytes(payload, "little")

    def _store(self, address, value, size):
        payload = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        self.memory.write(address, payload, actor=self.regs.eip)

    def push(self, value):
        """Push a 32-bit value onto the current stack."""
        self.regs.esp = self.regs.esp - 4
        self._store(self.regs.esp, value, 4)

    def pop(self):
        """Pop a 32-bit value from the current stack."""
        value = self._load(self.regs.esp, 4)
        self.regs.esp = self.regs.esp + 4
        return value

    # -- flag helpers -----------------------------------------------------------

    def _set_zsf(self, result):
        self.regs.set_flag(Flag.ZF, result == 0)
        self.regs.set_flag(Flag.SF, bool(result & 0x80000000))

    def _alu_add(self, a, b):
        raw = a + b
        result = u32(raw)
        self.regs.set_flag(Flag.CF, raw > 0xFFFFFFFF)
        sa, sb, sr = a >> 31, b >> 31, result >> 31
        self.regs.set_flag(Flag.OF, sa == sb and sr != sa)
        self._set_zsf(result)
        return result

    def _alu_sub(self, a, b):
        raw = a - b
        result = u32(raw)
        self.regs.set_flag(Flag.CF, raw < 0)
        sa, sb, sr = a >> 31, b >> 31, result >> 31
        self.regs.set_flag(Flag.OF, sa != sb and sr != sa)
        self._set_zsf(result)
        return result

    def _alu_logic(self, result):
        result = u32(result)
        self.regs.set_flag(Flag.CF, False)
        self.regs.set_flag(Flag.OF, False)
        self._set_zsf(result)
        return result

    # -- control transfer ---------------------------------------------------

    def _jump(self, target, privileged=False, taken_cost=True):
        if self.memory.mpu is not None:
            self.memory.mpu.check_transfer(self.regs.eip, target, privileged)
        if self.transfer_hook is not None:
            self.transfer_hook(self.regs.eip, u32(target))
        self.regs.eip = u32(target)
        if taken_cost:
            self.clock.charge(cycles.INSN_BRANCH_TAKEN)

    def _advance(self, insn):
        """Sequential flow to the next instruction.

        Region boundaries are still subject to the entry-point check:
        falling off the end of public code into a protected region is a
        control transfer like any other.
        """
        target = self.regs.eip + insn.length
        if self.memory.mpu is not None:
            self.memory.mpu.check_transfer(self.regs.eip, target, False)
        self.regs.eip = u32(target)

    # -- condition evaluation ----------------------------------------------

    def _condition(self, opcode):
        regs = self.regs
        zf = regs.get_flag(Flag.ZF)
        cf = regs.get_flag(Flag.CF)
        sf = regs.get_flag(Flag.SF)
        of = regs.get_flag(Flag.OF)
        if opcode == Op.JZ:
            return zf
        if opcode == Op.JNZ:
            return not zf
        if opcode == Op.JC:
            return cf
        if opcode == Op.JNC:
            return not cf
        if opcode == Op.JS:
            return sf
        if opcode == Op.JNS:
            return not sf
        if opcode == Op.JG:
            return not zf and sf == of
        if opcode == Op.JL:
            return sf != of
        if opcode == Op.JGE:
            return sf == of
        if opcode == Op.JLE:
            return zf or sf != of
        raise AssertionError("not a condition: %02X" % opcode)

    # -- the interpreter ------------------------------------------------------

    def _execute(self, insn):
        op = insn.opcode
        regs = self.regs
        self.clock.charge(BASE_CYCLES[op])

        if op == Op.NOP:
            self._advance(insn)
        elif op == Op.HLT:
            self.halted = True
            self._advance(insn)
        elif op == Op.CLI:
            regs.set_flag(Flag.IF, False)
            self._advance(insn)
        elif op == Op.STI:
            regs.set_flag(Flag.IF, True)
            self._advance(insn)
        elif op == Op.RET:
            target = self.pop()
            self._jump(target)
        elif op == Op.IRET:
            # The hardware half of interrupt return: pop EIP/EFLAGS and
            # resume the interrupted stream (privileged transfer).
            self.engine.hw_return(self)
        elif op == Op.MOV:
            regs.write(insn.reg, regs.read(insn.reg2))
            self._advance(insn)
        elif op == Op.ADD:
            regs.write(insn.reg, self._alu_add(regs.read(insn.reg), regs.read(insn.reg2)))
            self._advance(insn)
        elif op == Op.SUB:
            regs.write(insn.reg, self._alu_sub(regs.read(insn.reg), regs.read(insn.reg2)))
            self._advance(insn)
        elif op == Op.AND:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) & regs.read(insn.reg2)))
            self._advance(insn)
        elif op == Op.OR:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) | regs.read(insn.reg2)))
            self._advance(insn)
        elif op == Op.XOR:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) ^ regs.read(insn.reg2)))
            self._advance(insn)
        elif op == Op.CMP:
            self._alu_sub(regs.read(insn.reg), regs.read(insn.reg2))
            self._advance(insn)
        elif op == Op.SHL:
            shift = regs.read(insn.reg2) & 0x1F
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) << shift))
            self._advance(insn)
        elif op == Op.SHR:
            shift = regs.read(insn.reg2) & 0x1F
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) >> shift))
            self._advance(insn)
        elif op == Op.MUL:
            raw = regs.read(insn.reg) * regs.read(insn.reg2)
            regs.write(insn.reg, u32(raw))
            regs.set_flag(Flag.CF, raw > 0xFFFFFFFF)
            regs.set_flag(Flag.OF, raw > 0xFFFFFFFF)
            self._set_zsf(u32(raw))
            self._advance(insn)
        elif op == Op.DIV:
            divisor = regs.read(insn.reg2)
            if divisor == 0:
                self._advance(insn)
                self.engine.deliver(self, 0x00)  # divide error
                return
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) // divisor))
            self._advance(insn)
        elif op == Op.MOVI:
            regs.write(insn.reg, insn.imm)
            self._advance(insn)
        elif op == Op.ADDI:
            regs.write(insn.reg, self._alu_add(regs.read(insn.reg), u32(insn.imm)))
            self._advance(insn)
        elif op == Op.SUBI:
            regs.write(insn.reg, self._alu_sub(regs.read(insn.reg), u32(insn.imm)))
            self._advance(insn)
        elif op == Op.ANDI:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) & insn.imm))
            self._advance(insn)
        elif op == Op.ORI:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) | insn.imm))
            self._advance(insn)
        elif op == Op.XORI:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) ^ insn.imm))
            self._advance(insn)
        elif op == Op.CMPI:
            self._alu_sub(regs.read(insn.reg), u32(insn.imm))
            self._advance(insn)
        elif op == Op.SHLI:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) << (insn.imm & 0x1F)))
            self._advance(insn)
        elif op == Op.SHRI:
            regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) >> (insn.imm & 0x1F)))
            self._advance(insn)
        elif op == Op.LD:
            address = u32(regs.read(insn.reg2) + insn.imm)
            regs.write(insn.reg, self._load(address, 4))
            self._advance(insn)
        elif op == Op.ST:
            address = u32(regs.read(insn.reg2) + insn.imm)
            self._store(address, regs.read(insn.reg), 4)
            self._advance(insn)
        elif op == Op.LDB:
            address = u32(regs.read(insn.reg2) + insn.imm)
            regs.write(insn.reg, self._load(address, 1))
            self._advance(insn)
        elif op == Op.STB:
            address = u32(regs.read(insn.reg2) + insn.imm)
            self._store(address, regs.read(insn.reg), 1)
            self._advance(insn)
        elif op == Op.JMP:
            self._jump(insn.imm)
        elif op == Op.CALL:
            self.push(self.regs.eip + insn.length)
            self._jump(insn.imm)
        elif op in (
            Op.JZ, Op.JNZ, Op.JC, Op.JNC, Op.JS,
            Op.JNS, Op.JG, Op.JL, Op.JGE, Op.JLE,
        ):
            if self._condition(op):
                self._jump(insn.imm)
            else:
                self._advance(insn)
        elif op == Op.PUSH:
            self.push(regs.read(insn.reg))
            self._advance(insn)
        elif op == Op.POP:
            regs.write(insn.reg, self.pop())
            self._advance(insn)
        elif op == Op.PUSHI:
            self.push(insn.imm)
            self._advance(insn)
        elif op == Op.NOT:
            regs.write(insn.reg, self._alu_logic(~regs.read(insn.reg)))
            self._advance(insn)
        elif op == Op.NEG:
            regs.write(insn.reg, self._alu_sub(0, regs.read(insn.reg)))
            self._advance(insn)
        elif op == Op.INT:
            self._advance(insn)
            self.engine.deliver(self, insn.imm, charge=False)
        else:  # pragma: no cover - opcode table is closed
            raise TyTANError("unhandled opcode 0x%02X" % op)
