"""The 32-bit core: instruction interpreter with EA-MPU enforcement.

Every instruction fetch runs an execute check against the EA-MPU; every
data access carries the current EIP as the *actor*, which is what makes
the MPU execution-aware.  Control transfers (including sequential flow
across a region boundary) run the entry-point check; only the hardware
resume path (IRET) and the trusted Int Mux restore are privileged.

Interrupts are taken **between** instructions when EFLAGS.IF is set -
the core never blocks interrupts for longer than one instruction, which
is the hardware half of TyTAN's real-time story.

The interpreter has a fast-path layer (``fastpath=True``, the default)
that never changes simulated semantics - faults, fault logs, hooks, and
cycle accounting are identical with it on or off:

* a decoded-instruction cache keyed by EIP, invalidated when any write
  (checked or raw) lands in cached code bytes;
* the EA-MPU's allow-verdict memo (see
  :class:`repro.perf.decision_cache.MPUDecisionCache`), which turns the
  per-instruction execute check into a dict hit;
* a sequential-advance shortcut that skips the transfer check while
  execution provably stays inside one entry-point coverage cell;
* precomputed dispatch tables replacing the opcode ``if``/``elif``
  chain and the condition-code decoder.

On top of the fast path sits an optional *block-translation tier*
(:meth:`CPU.enable_blocks`): hot straight-line runs are compiled into
single Python closures with hoisted EA-MPU checks and one batched
cycle-counter update, and a block only runs when its whole static
cycle cost fits before the next event horizon - so interrupts are
still delivered on exactly the same instruction boundary as
single-stepping (see :mod:`repro.perf.blocks`).
"""

from __future__ import annotations

from repro import cycles
from repro.errors import IllegalInstruction, TyTANError
from repro.hw.memory import RamRegion, u32
from repro.hw.registers import Flag, RegisterFile
from repro.isa.encoding import decode
from repro.isa.opcodes import BASE_CYCLES, Op
from repro.perf.insn_cache import DecodedInsnCache

#: Longest instruction encoding; fetch reads this many bytes.
MAX_INSN_BYTES = 6

#: opcode -> predicate over the raw EFLAGS word (conditional branches).
_CONDITIONS = {
    Op.JZ: lambda f: f & Flag.ZF != 0,
    Op.JNZ: lambda f: f & Flag.ZF == 0,
    Op.JC: lambda f: f & Flag.CF != 0,
    Op.JNC: lambda f: f & Flag.CF == 0,
    Op.JS: lambda f: f & Flag.SF != 0,
    Op.JNS: lambda f: f & Flag.SF == 0,
    Op.JG: lambda f: f & Flag.ZF == 0 and bool(f & Flag.SF) == bool(f & Flag.OF),
    Op.JL: lambda f: bool(f & Flag.SF) != bool(f & Flag.OF),
    Op.JGE: lambda f: bool(f & Flag.SF) == bool(f & Flag.OF),
    Op.JLE: lambda f: f & Flag.ZF != 0 or bool(f & Flag.SF) != bool(f & Flag.OF),
}


class CPU:
    """The simulated Siskiyou Peak core."""

    def __init__(self, memory, clock, fastpath=True):
        self.memory = memory
        self.clock = clock
        self.regs = RegisterFile()
        self.engine = None  # wired by the Platform
        self.halted = False
        #: Count of retired instructions (diagnostics / tests).
        self.retired = 0
        #: Optional callable invoked as ``hook(cpu, insn)`` before each
        #: instruction executes (tracing).
        self.trace_hook = None
        #: Optional control-transfer monitor ``hook(from_eip, to_eip)``
        #: invoked on every taken branch/call/return.  This is the
        #: attachment point for hardware-assisted runtime attack
        #: detection (the paper's second future-work item); the hook
        #: may raise a :class:`~repro.errors.HardwareFault` to kill the
        #: offending task.
        self.transfer_hook = None
        #: Control-flow-attestation monitor port
        #: (:class:`repro.cfa.recorder.CfaCore` or ``None``).  Unlike
        #: ``transfer_hook`` it stays compatible with the block/trace
        #: tiers: compiled bodies emit the same hash updates the
        #: interpreter performs here, so attaching it never forces
        #: deoptimisation.
        self.cfa = None
        #: Whether the core-side caches are active (wall-clock only;
        #: simulated behaviour is identical either way).
        self.fastpath = bool(fastpath)
        self._insn_cache = None
        #: ``(lo, hi, epoch)`` coverage cell the sequential-advance
        #: shortcut is valid in, or ``None``.
        self._advance_cell = None
        #: Block-translation engine (``None`` until ``enable_blocks``).
        self._blocks = None
        if self.fastpath:
            self._insn_cache = DecodedInsnCache()
            memory.add_write_listener(self._insn_cache.note_write)

    def attach_engine(self, engine):
        """Wire the exception engine (done by the Platform)."""
        self.engine = engine

    # -- fast-path introspection --------------------------------------------

    @property
    def insn_cache(self):
        """The decoded-instruction cache (``None`` when fastpath is off)."""
        return self._insn_cache

    @property
    def block_engine(self):
        """The block-translation engine (``None`` unless enabled)."""
        return self._blocks

    def enable_blocks(self, horizon=None, traces=True):
        """Turn on the block-translation tier.

        ``horizon`` is an optional callable returning the earliest
        absolute cycle at which an IRQ can become pending (usually
        :meth:`repro.hw.clock.CycleClock.next_event_horizon`); a block
        whose static cycle cost does not fit before it falls back to
        single-stepping.  With no horizon, blocks always run - only
        correct when nothing raises IRQs between instructions, which is
        the caller's contract (bench rigs without timers).

        ``traces`` additionally enables the trace-recording JIT on top
        of the block tier (hot block-to-block edges are stitched into
        multi-block traces with guarded side exits; see
        :mod:`repro.perf.traces`).  Like blocks, traces change
        wall-clock speed only, never simulated semantics.
        """
        from repro.perf.translate import BlockEngine

        self._blocks = BlockEngine(self, horizon=horizon, traces=traces)
        return self._blocks

    def cache_stats(self):
        """Hit/miss snapshots of every cache on the execution path."""
        stats = {"region": self.memory.map.stats.snapshot()}
        if self._insn_cache is not None:
            stats["insn"] = self._insn_cache.stats.snapshot()
        mpu = self.memory.mpu
        if mpu is not None and mpu.decisions is not None:
            stats["mpu_access"] = mpu.decisions.access_stats.snapshot()
            stats["mpu_transfer"] = mpu.decisions.transfer_stats.snapshot()
        if self._blocks is not None:
            stats["block"] = self._blocks.snapshot()
        return stats

    # -- interrupt intake ---------------------------------------------------

    def maybe_take_interrupt(self):
        """Deliver the highest-priority pending IRQ if unmasked.

        Returns the delivered vector or ``None``.  Delivery wakes a
        halted core.
        """
        if self.engine is None:
            return None
        controller = self.engine.controller
        if not controller.has_pending():
            return None
        if not self.regs.interrupts_enabled:
            return None
        vector = controller.take()
        self.halted = False
        self.engine.deliver(self, vector)
        return vector

    # -- execution ------------------------------------------------------------

    def step(self):
        """Execute one instruction; returns cycles charged.

        A halted core just burns one idle cycle waiting for an
        interrupt.
        """
        if self.halted:
            self.clock.charge(1)
            return 1
        if self._blocks is not None:
            charged = self._blocks.try_execute(self)
            if charged is not None:
                return charged
        before = self.clock.now
        eip = self.regs.eip
        memory = self.memory
        mpu = memory.mpu
        cache = self._insn_cache
        if cache is not None:
            entry = cache.get(eip)
            if entry is not None:
                if mpu is None or entry[1] == mpu.epoch:
                    # Same rule-table epoch: the execute check is
                    # provably still the allow it was when cached.
                    insn = entry[0]
                else:
                    memory.check_execute(eip, eip)
                    entry[1] = mpu.epoch
                    insn = entry[0]
            else:
                memory.check_execute(eip, eip)
                insn = self._fetch(eip)
                # Only RAM-backed code is cached: RAM bytes change only
                # through the bus (which the cache snoops), whereas MMIO
                # windows may mutate behind it.
                if isinstance(memory.map.try_find(eip, insn.length), RamRegion):
                    cache.put(
                        eip,
                        insn,
                        mpu.epoch if mpu is not None else cache.NO_MPU_EPOCH,
                    )
                    memory.note_snooped_range(eip, eip + insn.length)
        else:
            memory.check_execute(eip, eip)
            insn = self._fetch(eip)
        if self.trace_hook is not None:
            self.trace_hook(self, insn)
        self._execute(insn)
        self.retired += 1
        return self.clock.now - before

    def _fetch(self, eip):
        window = min(MAX_INSN_BYTES, self._fetch_limit(eip))
        blob = self.memory.read_raw(eip, window)
        return decode(blob, 0, address=eip)

    def _fetch_limit(self, eip):
        region = self.memory.map.try_find(eip, 1)
        if region is None:
            raise IllegalInstruction(eip, 0xFF)
        return region.end - eip

    # -- memory helpers (actor = current EIP) -------------------------------

    def _load(self, address, size):
        payload = self.memory.read(address, size, actor=self.regs.eip)
        return int.from_bytes(payload, "little")

    def _store(self, address, value, size):
        payload = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        self.memory.write(address, payload, actor=self.regs.eip)

    def push(self, value):
        """Push a 32-bit value onto the current stack."""
        self.regs.esp = self.regs.esp - 4
        self._store(self.regs.esp, value, 4)

    def pop(self):
        """Pop a 32-bit value from the current stack."""
        value = self._load(self.regs.esp, 4)
        self.regs.esp = self.regs.esp + 4
        return value

    # -- flag helpers -----------------------------------------------------------

    def _set_zsf(self, result):
        self.regs.set_flag(Flag.ZF, result == 0)
        self.regs.set_flag(Flag.SF, bool(result & 0x80000000))

    def _alu_add(self, a, b):
        raw = a + b
        result = u32(raw)
        self.regs.set_flag(Flag.CF, raw > 0xFFFFFFFF)
        sa, sb, sr = a >> 31, b >> 31, result >> 31
        self.regs.set_flag(Flag.OF, sa == sb and sr != sa)
        self._set_zsf(result)
        return result

    def _alu_sub(self, a, b):
        raw = a - b
        result = u32(raw)
        self.regs.set_flag(Flag.CF, raw < 0)
        sa, sb, sr = a >> 31, b >> 31, result >> 31
        self.regs.set_flag(Flag.OF, sa != sb and sr != sa)
        self._set_zsf(result)
        return result

    def _alu_logic(self, result):
        result = u32(result)
        self.regs.set_flag(Flag.CF, False)
        self.regs.set_flag(Flag.OF, False)
        self._set_zsf(result)
        return result

    # -- control transfer ---------------------------------------------------

    def _jump(self, target, privileged=False, taken_cost=True):
        if self.memory.mpu is not None:
            self.memory.mpu.check_transfer(self.regs.eip, target, privileged)
        if self.transfer_hook is not None:
            self.transfer_hook(self.regs.eip, u32(target))
        if self.cfa is not None:
            self.cfa.on_transfer(self.regs.eip, u32(target))
        self.regs.eip = u32(target)
        if taken_cost:
            self.clock.charge(cycles.INSN_BRANCH_TAKEN)

    def _advance(self, insn):
        """Sequential flow to the next instruction.

        Region boundaries are still subject to the entry-point check:
        falling off the end of public code into a protected region is a
        control transfer like any other.  The fast path skips the check
        while source and target provably lie inside the same coverage
        cell (no entry-point rule boundary between them) at the current
        rule-table epoch.
        """
        eip = self.regs.eip
        target = eip + insn.length
        mpu = self.memory.mpu
        if mpu is not None:
            cell = self._advance_cell
            if (
                cell is not None
                and cell[2] == mpu.epoch
                and cell[0] <= eip
                and target < cell[1]
            ):
                pass  # provably no entry-point boundary is crossed
            else:
                mpu.check_transfer(eip, target, False)
                if self.fastpath and mpu.decisions is not None:
                    self._advance_cell = mpu.decisions.cell_bounds(eip)
        self.regs.eip = u32(target)

    # -- condition evaluation ----------------------------------------------

    def _condition(self, opcode):
        predicate = _CONDITIONS.get(opcode)
        if predicate is None:
            raise AssertionError("not a condition: %02X" % opcode)
        return predicate(self.regs.eflags)

    # -- the interpreter ------------------------------------------------------

    def _execute(self, insn):
        entry = _DISPATCH.get(insn.opcode)
        if entry is None:  # pragma: no cover - opcode table is closed
            raise TyTANError("unhandled opcode 0x%02X" % insn.opcode)
        self.clock.charge(entry[1])
        entry[0](self, insn)

    # -- per-opcode handlers (dispatched via _DISPATCH) ---------------------

    def _op_nop(self, insn):
        self._advance(insn)

    def _op_hlt(self, insn):
        self.halted = True
        self._advance(insn)

    def _op_cli(self, insn):
        self.regs.set_flag(Flag.IF, False)
        self._advance(insn)

    def _op_sti(self, insn):
        self.regs.set_flag(Flag.IF, True)
        self._advance(insn)

    def _op_ret(self, insn):
        self._jump(self.pop())

    def _op_iret(self, insn):
        # The hardware half of interrupt return: pop EIP/EFLAGS and
        # resume the interrupted stream (privileged transfer).
        self.engine.hw_return(self)

    def _op_mov(self, insn):
        self.regs.write(insn.reg, self.regs.read(insn.reg2))
        self._advance(insn)

    def _op_add(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_add(regs.read(insn.reg), regs.read(insn.reg2)))
        self._advance(insn)

    def _op_sub(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_sub(regs.read(insn.reg), regs.read(insn.reg2)))
        self._advance(insn)

    def _op_and(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) & regs.read(insn.reg2)))
        self._advance(insn)

    def _op_or(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) | regs.read(insn.reg2)))
        self._advance(insn)

    def _op_xor(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) ^ regs.read(insn.reg2)))
        self._advance(insn)

    def _op_cmp(self, insn):
        self._alu_sub(self.regs.read(insn.reg), self.regs.read(insn.reg2))
        self._advance(insn)

    def _op_shl(self, insn):
        regs = self.regs
        shift = regs.read(insn.reg2) & 0x1F
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) << shift))
        self._advance(insn)

    def _op_shr(self, insn):
        regs = self.regs
        shift = regs.read(insn.reg2) & 0x1F
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) >> shift))
        self._advance(insn)

    def _op_mul(self, insn):
        regs = self.regs
        raw = regs.read(insn.reg) * regs.read(insn.reg2)
        regs.write(insn.reg, u32(raw))
        regs.set_flag(Flag.CF, raw > 0xFFFFFFFF)
        regs.set_flag(Flag.OF, raw > 0xFFFFFFFF)
        self._set_zsf(u32(raw))
        self._advance(insn)

    def _op_div(self, insn):
        regs = self.regs
        divisor = regs.read(insn.reg2)
        if divisor == 0:
            self._advance(insn)
            self.engine.deliver(self, 0x00)  # divide error
            return
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) // divisor))
        self._advance(insn)

    def _op_movi(self, insn):
        self.regs.write(insn.reg, insn.imm)
        self._advance(insn)

    def _op_addi(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_add(regs.read(insn.reg), u32(insn.imm)))
        self._advance(insn)

    def _op_subi(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_sub(regs.read(insn.reg), u32(insn.imm)))
        self._advance(insn)

    def _op_andi(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) & insn.imm))
        self._advance(insn)

    def _op_ori(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) | insn.imm))
        self._advance(insn)

    def _op_xori(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) ^ insn.imm))
        self._advance(insn)

    def _op_cmpi(self, insn):
        self._alu_sub(self.regs.read(insn.reg), u32(insn.imm))
        self._advance(insn)

    def _op_shli(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) << (insn.imm & 0x1F)))
        self._advance(insn)

    def _op_shri(self, insn):
        regs = self.regs
        regs.write(insn.reg, self._alu_logic(regs.read(insn.reg) >> (insn.imm & 0x1F)))
        self._advance(insn)

    def _op_ld(self, insn):
        regs = self.regs
        address = u32(regs.read(insn.reg2) + insn.imm)
        regs.write(insn.reg, self._load(address, 4))
        self._advance(insn)

    def _op_st(self, insn):
        regs = self.regs
        address = u32(regs.read(insn.reg2) + insn.imm)
        self._store(address, regs.read(insn.reg), 4)
        self._advance(insn)

    def _op_ldb(self, insn):
        regs = self.regs
        address = u32(regs.read(insn.reg2) + insn.imm)
        regs.write(insn.reg, self._load(address, 1))
        self._advance(insn)

    def _op_stb(self, insn):
        regs = self.regs
        address = u32(regs.read(insn.reg2) + insn.imm)
        self._store(address, regs.read(insn.reg), 1)
        self._advance(insn)

    def _op_ldh(self, insn):
        regs = self.regs
        address = u32(regs.read(insn.reg2) + insn.imm)
        regs.write(insn.reg, self._load(address, 2))
        self._advance(insn)

    def _op_sth(self, insn):
        regs = self.regs
        address = u32(regs.read(insn.reg2) + insn.imm)
        self._store(address, regs.read(insn.reg), 2)
        self._advance(insn)

    def _op_jmp(self, insn):
        self._jump(insn.imm)

    def _op_call(self, insn):
        self.push(self.regs.eip + insn.length)
        self._jump(insn.imm)

    def _op_jcc(self, insn):
        if _CONDITIONS[insn.opcode](self.regs.eflags):
            self._jump(insn.imm)
        else:
            self._advance(insn)

    def _op_push(self, insn):
        self.push(self.regs.read(insn.reg))
        self._advance(insn)

    def _op_pop(self, insn):
        self.regs.write(insn.reg, self.pop())
        self._advance(insn)

    def _op_pushi(self, insn):
        self.push(insn.imm)
        self._advance(insn)

    def _op_not(self, insn):
        self.regs.write(insn.reg, self._alu_logic(~self.regs.read(insn.reg)))
        self._advance(insn)

    def _op_neg(self, insn):
        self.regs.write(insn.reg, self._alu_sub(0, self.regs.read(insn.reg)))
        self._advance(insn)

    def _op_int(self, insn):
        self._advance(insn)
        self.engine.deliver(self, insn.imm, charge=False)


#: opcode -> unbound handler; expanded below into ``_DISPATCH`` entries
#: of ``(handler, base_cycles)`` so ``_execute`` pays one dict hit
#: instead of a 40-arm ``if``/``elif`` chain plus a cycle-table lookup.
_HANDLERS = {
    Op.NOP: CPU._op_nop,
    Op.HLT: CPU._op_hlt,
    Op.CLI: CPU._op_cli,
    Op.STI: CPU._op_sti,
    Op.RET: CPU._op_ret,
    Op.IRET: CPU._op_iret,
    Op.MOV: CPU._op_mov,
    Op.ADD: CPU._op_add,
    Op.SUB: CPU._op_sub,
    Op.AND: CPU._op_and,
    Op.OR: CPU._op_or,
    Op.XOR: CPU._op_xor,
    Op.CMP: CPU._op_cmp,
    Op.SHL: CPU._op_shl,
    Op.SHR: CPU._op_shr,
    Op.MUL: CPU._op_mul,
    Op.DIV: CPU._op_div,
    Op.MOVI: CPU._op_movi,
    Op.ADDI: CPU._op_addi,
    Op.SUBI: CPU._op_subi,
    Op.ANDI: CPU._op_andi,
    Op.ORI: CPU._op_ori,
    Op.XORI: CPU._op_xori,
    Op.CMPI: CPU._op_cmpi,
    Op.SHLI: CPU._op_shli,
    Op.SHRI: CPU._op_shri,
    Op.LD: CPU._op_ld,
    Op.ST: CPU._op_st,
    Op.LDB: CPU._op_ldb,
    Op.STB: CPU._op_stb,
    Op.LDH: CPU._op_ldh,
    Op.STH: CPU._op_sth,
    Op.JMP: CPU._op_jmp,
    Op.CALL: CPU._op_call,
    Op.JZ: CPU._op_jcc,
    Op.JNZ: CPU._op_jcc,
    Op.JC: CPU._op_jcc,
    Op.JNC: CPU._op_jcc,
    Op.JS: CPU._op_jcc,
    Op.JNS: CPU._op_jcc,
    Op.JG: CPU._op_jcc,
    Op.JL: CPU._op_jcc,
    Op.JGE: CPU._op_jcc,
    Op.JLE: CPU._op_jcc,
    Op.PUSH: CPU._op_push,
    Op.POP: CPU._op_pop,
    Op.PUSHI: CPU._op_pushi,
    Op.NOT: CPU._op_not,
    Op.NEG: CPU._op_neg,
    Op.INT: CPU._op_int,
}

#: opcode -> (handler, base cycle cost); the interpreter's single-lookup
#: dispatch table.
_DISPATCH = {op: (handler, BASE_CYCLES[op]) for op, handler in _HANDLERS.items()}
