"""Timers: the RTOS tick source and the high-resolution real-time clock.

The paper requires a "high-resolution real-time clock" and "special
alarms and time-outs" (FreeRTOS real-time properties, Section 4).  The
:class:`TickTimer` raises the periodic scheduler tick interrupt; the
:class:`RealTimeClock` exposes the free-running cycle counter and a
one-shot alarm comparator over MMIO.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.exceptions import Vector
from repro.hw.mmio import MmioDevice


class TickTimer(MmioDevice):
    """Periodic tick interrupt generator.

    MMIO registers (byte offsets):

    * ``0x00`` PERIOD - cycles between ticks (read/write; write restarts)
    * ``0x04`` ENABLE - 1 enables tick generation
    * ``0x08`` COUNT  - ticks raised so far (read-only)
    """

    REG_PERIOD = 0x00
    REG_ENABLE = 0x04
    REG_COUNT = 0x08

    def __init__(self, controller, period, vector=Vector.TIMER):
        super().__init__("tick-timer")
        if period <= 0:
            raise ConfigurationError("tick period must be positive")
        self.controller = controller
        self.period = period
        self.vector = vector
        self.enabled = False
        self.ticks = 0
        self._next_fire = None

    def start(self, now):
        """Enable the timer; first tick fires one period from ``now``."""
        self.enabled = True
        self._next_fire = now + self.period

    def stop(self):
        """Disable tick generation."""
        self.enabled = False
        self._next_fire = None

    def tick(self, now):
        """Raise the tick IRQ for every period boundary crossed."""
        if not self.enabled:
            return
        while self._next_fire is not None and now >= self._next_fire:
            self.controller.raise_irq(self.vector)
            self.ticks += 1
            self._next_fire += self.period

    def next_event(self):
        """Cycle of the next tick, or ``None`` when disabled."""
        return self._next_fire if self.enabled else None

    # -- MMIO -------------------------------------------------------------

    def reg_read(self, offset):
        if offset == self.REG_PERIOD:
            return self.period
        if offset == self.REG_ENABLE:
            return 1 if self.enabled else 0
        if offset == self.REG_COUNT:
            return self.ticks & 0xFFFFFFFF
        return super().reg_read(offset)

    def reg_write(self, offset, value):
        if offset == self.REG_PERIOD:
            if value <= 0:
                raise ConfigurationError("tick period must be positive")
            self.period = value
        elif offset == self.REG_ENABLE:
            self.enabled = bool(value)
        else:
            super().reg_write(offset, value)


class RealTimeClock(MmioDevice):
    """Free-running high-resolution clock with a one-shot alarm.

    MMIO registers:

    * ``0x00`` NOW_LO / ``0x04`` NOW_HI - 64-bit cycle counter
    * ``0x08`` ALARM_LO / ``0x0C`` ALARM_HI - one-shot alarm compare
    * ``0x10`` ALARM_EN - 1 arms the alarm
    """

    REG_NOW_LO = 0x00
    REG_NOW_HI = 0x04
    REG_ALARM_LO = 0x08
    REG_ALARM_HI = 0x0C
    REG_ALARM_EN = 0x10

    def __init__(self, clock, controller, vector=Vector.DEVICE_BASE + 0xF):
        super().__init__("rtc")
        self.clock = clock
        self.controller = controller
        self.vector = vector
        self.alarm = 0
        self.alarm_enabled = False

    def tick(self, now):
        """Fire the alarm when the counter passes the compare value."""
        if self.alarm_enabled and now >= self.alarm:
            self.controller.raise_irq(self.vector)
            self.alarm_enabled = False

    def next_event(self):
        """Cycle of the pending alarm, or ``None``."""
        return self.alarm if self.alarm_enabled else None

    # -- MMIO -------------------------------------------------------------

    def reg_read(self, offset):
        now = self.clock.now
        if offset == self.REG_NOW_LO:
            return now & 0xFFFFFFFF
        if offset == self.REG_NOW_HI:
            return (now >> 32) & 0xFFFFFFFF
        if offset == self.REG_ALARM_LO:
            return self.alarm & 0xFFFFFFFF
        if offset == self.REG_ALARM_HI:
            return (self.alarm >> 32) & 0xFFFFFFFF
        if offset == self.REG_ALARM_EN:
            return 1 if self.alarm_enabled else 0
        return super().reg_read(offset)

    def reg_write(self, offset, value):
        if offset == self.REG_ALARM_LO:
            self.alarm = (self.alarm & ~0xFFFFFFFF) | value
        elif offset == self.REG_ALARM_HI:
            self.alarm = (self.alarm & 0xFFFFFFFF) | (value << 32)
        elif offset == self.REG_ALARM_EN:
            self.alarm_enabled = bool(value)
        else:
            super().reg_write(offset, value)
