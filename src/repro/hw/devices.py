"""Synthetic sensor and actuator devices for the automotive use case.

The paper's evaluation (Section 6, Figure 2) uses a *simulated* adaptive
cruise control system: an accelerator-pedal position sensor, a radar
sensor measuring the distance/speed of the vehicle in front, and the
engine control actuator.  We model each as an MMIO device whose value
follows a scripted trace over simulated time, which preserves the code
path the paper exercises (secure tasks polling MMIO sensors and feeding
an engine-control task over secure IPC).
"""

from __future__ import annotations

from repro.hw.mmio import MmioDevice


class TraceSensor(MmioDevice):
    """A read-only sensor whose sample follows a piecewise-linear trace.

    ``trace`` is a list of ``(cycle, value)`` breakpoints; reads return
    the interpolated value at the current cycle (clamped to the ends).
    Register ``0x00`` is the current sample; register ``0x04`` counts
    reads, so tests can verify a monitoring task's polling rate.
    """

    REG_SAMPLE = 0x00
    REG_READS = 0x04

    def __init__(self, name, clock, trace, scale=1):
        super().__init__(name)
        if not trace:
            raise ValueError("sensor trace must not be empty")
        self.clock = clock
        self.trace = sorted(trace)
        self.scale = scale
        self.reads = 0

    def sample_at(self, now):
        """Interpolated sensor value at absolute cycle ``now``."""
        trace = self.trace
        if now <= trace[0][0]:
            return int(trace[0][1] * self.scale)
        if now >= trace[-1][0]:
            return int(trace[-1][1] * self.scale)
        for (t0, v0), (t1, v1) in zip(trace, trace[1:]):
            if t0 <= now <= t1:
                if t1 == t0:
                    return int(v1 * self.scale)
                frac = (now - t0) / (t1 - t0)
                return int((v0 + frac * (v1 - v0)) * self.scale)
        return int(trace[-1][1] * self.scale)  # pragma: no cover

    def reg_read(self, offset):
        if offset == self.REG_SAMPLE:
            self.reads += 1
            return self.sample_at(self.clock.now) & 0xFFFFFFFF
        if offset == self.REG_READS:
            return self.reads & 0xFFFFFFFF
        return super().reg_read(offset)


class PedalSensor(TraceSensor):
    """Accelerator pedal position, 0..1000 (per-mille of full travel)."""

    def __init__(self, clock, trace=None):
        if trace is None:
            trace = [(0, 300)]
        super().__init__("pedal", clock, trace)


class RadarSensor(TraceSensor):
    """Distance to the vehicle in front, in decimetres."""

    def __init__(self, clock, trace=None):
        if trace is None:
            trace = [(0, 800)]
        super().__init__("radar", clock, trace)


class SpeedSensor(TraceSensor):
    """Own vehicle speed, in 0.1 km/h units."""

    def __init__(self, clock, trace=None):
        if trace is None:
            trace = [(0, 500)]
        super().__init__("speed", clock, trace)


class EngineActuator(MmioDevice):
    """The engine control output.

    Register ``0x00`` receives throttle commands (0..1000); the device
    keeps a timestamped history so the use-case bench can verify the
    control loop's output rate and values.
    """

    REG_THROTTLE = 0x00
    REG_LAST = 0x04
    REG_COUNT = 0x08

    def __init__(self, clock):
        super().__init__("engine")
        self.clock = clock
        self.history = []

    @property
    def last_command(self):
        """Most recent throttle command, or ``None``."""
        return self.history[-1][1] if self.history else None

    def reg_read(self, offset):
        if offset == self.REG_LAST:
            return (self.last_command or 0) & 0xFFFFFFFF
        if offset == self.REG_COUNT:
            return len(self.history) & 0xFFFFFFFF
        return super().reg_read(offset)

    def reg_write(self, offset, value):
        if offset == self.REG_THROTTLE:
            self.history.append((self.clock.now, value))
        else:
            super().reg_write(offset, value)

    def commands_between(self, start, end):
        """Throttle commands issued in cycle window ``[start, end)``."""
        return [(t, v) for t, v in self.history if start <= t < end]
