"""Memory-mapped I/O.

Siskiyou Peak interacts with peripherals exclusively through MMIO.  An
:class:`MmioDevice` implements word-sized register reads and writes at
offsets within its window; :class:`MmioRegion` adapts a device to the
:class:`repro.hw.memory.MemoryMap` region protocol so the bus can route
accesses to it transparently.
"""

from __future__ import annotations

from repro.errors import AlignmentFault, MemoryFault


class MmioDevice:
    """Base class for memory-mapped peripherals.

    Subclasses override :meth:`reg_read` / :meth:`reg_write`, which operate
    on 32-bit registers addressed by byte offset within the device window.
    """

    #: Size of the device's MMIO window in bytes.
    WINDOW = 0x100

    def __init__(self, name):
        self.name = name

    def reg_read(self, offset):
        """Read the 32-bit register at byte ``offset``; override."""
        raise MemoryFault(offset, 4, kind="mmio read")

    def reg_write(self, offset, value):
        """Write the 32-bit register at byte ``offset``; override."""
        raise MemoryFault(offset, 4, kind="mmio write")

    def tick(self, now):
        """Advance device state to absolute cycle ``now``; optional."""

    def next_event(self):
        """Earliest absolute cycle at which this device can raise an
        IRQ, or ``None``.  The base device never interrupts; timers
        override this, and the clock's ``next_event_horizon`` takes the
        minimum over all registered sources."""
        return None


class MmioRegion:
    """Adapter exposing an :class:`MmioDevice` as a memory-map region.

    MMIO accesses must be whole, aligned 32-bit words - the device models
    have word-granular registers, as the real platform does.
    """

    def __init__(self, device, base):
        self.device = device
        self.name = "mmio:%s" % device.name
        self.base = base
        self.size = device.WINDOW

    @property
    def end(self):
        """One past the last address of the window."""
        return self.base + self.size

    def contains(self, address, size=1):
        """Whether the access range falls inside the window."""
        return self.base <= address and address + size <= self.end

    def read(self, address, size):
        """Route a bus read to the device's register file."""
        self._require_word(address, size)
        value = self.device.reg_read(address - self.base)
        return (value & 0xFFFFFFFF).to_bytes(4, "little")

    def write(self, address, payload):
        """Route a bus write to the device's register file."""
        self._require_word(address, len(payload))
        value = int.from_bytes(payload, "little")
        self.device.reg_write(address - self.base, value)

    def _require_word(self, address, size):
        if size != 4:
            raise MemoryFault(address, size, kind="non-word mmio")
        if address % 4 != 0:
            raise AlignmentFault(address, size)

    def __repr__(self):
        return "MmioRegion(%s, 0x%08X..0x%08X)" % (self.name, self.base, self.end)
