"""Per-task cycle and event accounting, fed by the event bus.

The kernel publishes a ``slice-begin``/``slice-end`` pair around every
scheduling slice; :class:`TaskAccounting` folds those (plus every other
task-attributed event) into per-task totals.  It is wired into
:class:`~repro.obs.bus.EventBus` as a built-in observer, so the numbers
are always available without registering anything:

    system.obs.accounting.report()
    system.obs.accounting.cycles_of("sensor")
"""

from __future__ import annotations


class TaskAccounting:
    """Accumulated per-task activity derived from bus events.

    Unlike the bounded event ring, the totals here never drop history -
    they are O(tasks), not O(events).
    """

    def __init__(self):
        #: task name -> {"cycles", "slices", "events"}
        self._tasks = {}

    def observe(self, event):
        """Fold one :class:`~repro.obs.bus.Event` into the totals."""
        task = event.task
        if task is None:
            return
        entry = self._tasks.get(task)
        if entry is None:
            entry = self._tasks[task] = {"cycles": 0, "slices": 0, "events": 0}
        entry["events"] += 1
        if event.kind == "slice-end":
            entry["slices"] += 1
            entry["cycles"] += event.data.get("cycles", 0)

    # -- queries ------------------------------------------------------------

    def tasks(self):
        """All task names seen, sorted."""
        return sorted(self._tasks)

    def cycles_of(self, name):
        """Total cycles ``name`` spent running (0 when unseen)."""
        entry = self._tasks.get(name)
        return entry["cycles"] if entry else 0

    def slices_of(self, name):
        """Number of scheduling slices ``name`` ran."""
        entry = self._tasks.get(name)
        return entry["slices"] if entry else 0

    def events_of(self, name):
        """Number of bus events attributed to ``name``."""
        entry = self._tasks.get(name)
        return entry["events"] if entry else 0

    def report(self):
        """``{task: {"cycles", "slices", "events"}}`` copy of the totals."""
        return {name: dict(entry) for name, entry in self._tasks.items()}

    def clear(self):
        """Drop all accumulated totals."""
        self._tasks = {}

    def __repr__(self):
        return "TaskAccounting(%d tasks)" % len(self._tasks)
