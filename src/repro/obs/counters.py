"""Counters: monotonic values and hit/miss stats behind one registry.

Every measurable quantity in the stack - fast-path cache hit rates,
delivered IPC messages, attestation reports issued - is either a plain
monotonic :class:`Counter` or a :class:`HitMissCounter`.  A
:class:`CounterRegistry` (one per :class:`~repro.obs.bus.EventBus`)
collects them so a single ``snapshot()`` call captures the whole
machine's counter state for benches, tests, and the summary exporter.

:class:`HitMissCounter` lives here (it used to be
``repro.perf.counters``; that module now re-exports it) so the perf
layer and the observability layer share one bookkeeping vocabulary.
"""

from __future__ import annotations


class Counter:
    """A named monotonic counter.

    The hot path pays one integer increment (:meth:`add`); everything
    derived is computed on demand.
    """

    __slots__ = ("name", "value")

    def __init__(self, name, value=0):
        self.name = name
        self.value = value

    def add(self, amount=1):
        """Increment by ``amount``."""
        self.value += amount

    def reset(self):
        """Zero the counter."""
        self.value = 0

    def snapshot(self):
        """Plain-dict view for JSON benches and assertions."""
        return {"value": self.value}

    def __repr__(self):
        return "Counter(%s, value=%d)" % (self.name, self.value)


class HitMissCounter:
    """Counts cache hits, misses, and invalidation events.

    The counters are plain attributes so the hot path pays a single
    integer increment; everything derived (totals, rates) is computed on
    demand by tests and benches.
    """

    __slots__ = ("name", "hits", "misses", "invalidations")

    def __init__(self, name):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def total(self):
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.total
        return self.hits / total if total else 0.0

    def reset(self):
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def snapshot(self):
        """Plain-dict view for JSON benches and assertions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __repr__(self):
        return "HitMissCounter(%s, hits=%d, misses=%d, inval=%d)" % (
            self.name,
            self.hits,
            self.misses,
            self.invalidations,
        )


class CounterRegistry:
    """A name-indexed collection of counter objects.

    Accepts anything with a ``name`` attribute and a ``snapshot()``
    method (:class:`Counter`, :class:`HitMissCounter`, or user types).
    """

    def __init__(self):
        self._counters = {}

    def register(self, counter, replace=False):
        """Add ``counter`` under its own name; returns it.

        Registering a different object under an existing name raises
        unless ``replace`` is true (re-registering the same object is a
        no-op).
        """
        existing = self._counters.get(counter.name)
        if existing is not None and existing is not counter and not replace:
            raise ValueError("counter %r already registered" % counter.name)
        self._counters[counter.name] = counter
        return counter

    def counter(self, name):
        """Get or create the plain :class:`Counter` called ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            existing = self._counters[name] = Counter(name)
        return existing

    def get(self, name):
        """The registered counter called ``name``, or ``None``."""
        return self._counters.get(name)

    def names(self):
        """All registered counter names, sorted."""
        return sorted(self._counters)

    def reset(self):
        """Reset every registered counter."""
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self):
        """``{name: counter.snapshot()}`` over every registered counter."""
        return {
            name: counter.snapshot()
            for name, counter in sorted(self._counters.items())
        }

    def __len__(self):
        return len(self._counters)

    def __repr__(self):
        return "CounterRegistry(%d counters)" % len(self._counters)
