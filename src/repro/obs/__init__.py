"""repro.obs - the unified observability bus.

One structured event stream for the whole stack, with bounded memory,
per-kind filtering, per-task cycle accounting, a machine-wide counter
registry, and three exporters (JSONL, Chrome trace-event/Perfetto,
plain-text summary).  See ``docs/OBSERVABILITY.md`` for the design and
the event taxonomy.

Typical use::

    from repro import TyTAN
    from repro.obs import write_chrome_trace

    system = TyTAN()
    ...
    system.run(max_cycles=1_000_000)
    write_chrome_trace(system.obs.events, "trace.json",
                       hz=system.platform.config.hz)

Every :class:`~repro.hw.platform.Platform` owns a bus
(``platform.obs``); the kernel, the hardware, and the trusted
components publish to it.  Disable it wholesale with
``MachineConfig(obs_enabled=False)`` or at runtime via
``bus.enabled = False``.
"""

from repro.obs.accounting import TaskAccounting
from repro.obs.bus import DEFAULT_CAPACITY, Event, EventBus
from repro.obs.counters import Counter, CounterRegistry, HitMissCounter
from repro.obs.exporters import (
    chrome_trace,
    read_jsonl,
    summary_text,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "CounterRegistry",
    "DEFAULT_CAPACITY",
    "Event",
    "EventBus",
    "HitMissCounter",
    "TaskAccounting",
    "chrome_trace",
    "read_jsonl",
    "summary_text",
    "write_chrome_trace",
    "write_jsonl",
]
