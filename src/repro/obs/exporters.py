"""Exporters: JSONL, Chrome trace-event JSON (Perfetto), plain text.

Three views of one :class:`~repro.obs.bus.EventBus` stream:

* :func:`write_jsonl` / :func:`read_jsonl` - one JSON object per line,
  lossless round trip (``read_jsonl(write_jsonl(events)) == events``);
* :func:`chrome_trace` / :func:`write_chrome_trace` - the Chrome
  trace-event format: open the file in https://ui.perfetto.dev or
  ``chrome://tracing``.  Scheduling slices become duration events on
  one track per task; trusted-component and hardware events become
  instants on their own tracks;
* :func:`summary_text` - a terminal-friendly digest (event histogram,
  per-task cycle table, counter snapshot).

Timestamps: the simulator counts cycles; Chrome wants microseconds.
``ts = cycle * 1e6 / hz`` converts using the machine's clock rate, so
the Perfetto timeline reads in real simulated time.
"""

from __future__ import annotations

import json

from repro.hw.clock import DEFAULT_HZ
from repro.obs.bus import Event

#: The single simulated process id in exported traces.
TRACE_PID = 1


# -- JSONL -----------------------------------------------------------------


def write_jsonl(events, path_or_fp):
    """Write events as JSON Lines; returns the number written."""
    if hasattr(path_or_fp, "write"):
        return _write_jsonl_fp(events, path_or_fp)
    with open(path_or_fp, "w") as handle:
        return _write_jsonl_fp(events, handle)


def _write_jsonl_fp(events, handle):
    count = 0
    for event in events:
        handle.write(json.dumps(event.to_dict(), sort_keys=True))
        handle.write("\n")
        count += 1
    return count


def read_jsonl(path_or_fp):
    """Parse a JSONL export back into :class:`Event` objects."""
    if hasattr(path_or_fp, "read"):
        lines = path_or_fp.read().splitlines()
    else:
        with open(path_or_fp) as handle:
            lines = handle.read().splitlines()
    return [Event.from_dict(json.loads(line)) for line in lines if line.strip()]


# -- Chrome trace-event format --------------------------------------------


def _track_key(event):
    """The (group, label) track an event renders on.

    One track per task, one per trusted component, one shared track per
    remaining source ("hw", "rtos") - so Perfetto shows scheduling
    slices per task with hardware/kernel instants alongside.
    """
    if event.source == "tc":
        return ("tc", event.data.get("component", "trusted"))
    if event.task is not None:
        return ("task", event.task)
    return ("sys", event.source)


def chrome_trace(events, hz=DEFAULT_HZ, process_name="tytan"):
    """Render events as a Chrome trace dict (``{"traceEvents": [...]}``).

    ``slice-begin``/``slice-end`` pairs become ``B``/``E`` duration
    events on the owning task's track; everything else becomes an
    instant (``ph: "i"``).  A dangling ``B`` (run aborted mid-slice) is
    closed at the final timestamp so viewers never see an open stack.
    """
    scale = 1e6 / float(hz)
    trace_events = []
    tids = {}
    open_slices = {}
    last_ts = 0.0

    def tid_for(key):
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "ts": 0,
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": "%s:%s" % key},
                }
            )
        return tid

    trace_events.append(
        {
            "ph": "M",
            "name": "process_name",
            "ts": 0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    )

    for event in events:
        ts = round(event.cycle * scale, 3)
        last_ts = max(last_ts, ts)
        tid = tid_for(_track_key(event))
        if event.kind == "slice-begin":
            trace_events.append(
                {
                    "ph": "B",
                    "name": event.task,
                    "cat": event.source,
                    "pid": TRACE_PID,
                    "tid": tid,
                    "ts": ts,
                    "args": dict(event.data),
                }
            )
            open_slices[tid] = event.task
        elif event.kind == "slice-end":
            if open_slices.pop(tid, None) is not None:
                trace_events.append(
                    {
                        "ph": "E",
                        "name": event.task,
                        "cat": event.source,
                        "pid": TRACE_PID,
                        "tid": tid,
                        "ts": ts,
                        "args": dict(event.data),
                    }
                )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.kind,
                    "cat": event.source,
                    "pid": TRACE_PID,
                    "tid": tid,
                    "ts": ts,
                    "args": dict(event.data),
                }
            )

    for tid, task in sorted(open_slices.items()):
        trace_events.append(
            {
                "ph": "E",
                "name": task,
                "cat": "rtos",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": last_ts,
                "args": {},
            }
        )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events, path, hz=DEFAULT_HZ, process_name="tytan"):
    """Write :func:`chrome_trace` output to ``path``; returns the dict."""
    trace = chrome_trace(events, hz=hz, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace


# -- plain-text summary ----------------------------------------------------


def summary_text(events, accounting=None, counters=None):
    """A terminal digest: event histogram, per-task cycles, counters."""
    events = list(events)
    lines = ["%d events" % len(events)]

    histogram = {}
    for event in events:
        key = (event.source, event.kind)
        histogram[key] = histogram.get(key, 0) + 1
    if histogram:
        lines.append("")
        lines.append("events by kind:")
        for (source, kind), count in sorted(
            histogram.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append("  %-6s %-22s %8d" % (source, kind, count))

    if accounting is not None and accounting.tasks():
        lines.append("")
        lines.append("per-task accounting:")
        lines.append(
            "  %-20s %12s %8s %8s" % ("task", "cycles", "slices", "events")
        )
        report = accounting.report()
        for name in sorted(report, key=lambda n: -report[n]["cycles"]):
            entry = report[name]
            lines.append(
                "  %-20s %12d %8d %8d"
                % (name, entry["cycles"], entry["slices"], entry["events"])
            )

    if counters is not None and len(counters):
        lines.append("")
        lines.append("counters:")
        for name, snapshot in counters.snapshot().items():
            detail = ", ".join(
                "%s=%s" % (key, value) for key, value in sorted(snapshot.items())
            )
            lines.append("  %-20s %s" % (name, detail))

    return "\n".join(lines) + "\n"
