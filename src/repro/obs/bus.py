"""The unified observability bus.

One structured event stream for the whole stack.  Hardware (EA-MPU
denials, exception delivery, IRQs), the RTOS (context switches, queue
and IPC operations, timer fires), and the trusted components (loader,
IPC proxy, attestation, secure storage) all publish
:class:`Event` records here; exporters (:mod:`repro.obs.exporters`)
turn the stream into JSONL, Chrome trace-event JSON (Perfetto), or a
plain-text summary.

Design constraints, in order:

1. **Zero semantic impact.** Publishing never charges simulated cycles
   and never touches simulated state; runs with the bus enabled and
   disabled are bit-identical (asserted by ``tests/test_obs_bus.py``).
2. **Negligible overhead when disabled.** ``publish`` returns after one
   attribute check; nothing allocates.
3. **Bounded memory.** Events land in a ring buffer (``capacity``
   events); per-task accounting and counters are O(tasks), not
   O(events), so long runs cannot exhaust host memory.

Event taxonomy - ``source`` is one of:

* ``"hw"`` - the simulated hardware (EA-MPU, exception engine, IRQs);
* ``"rtos"`` - the kernel (scheduling, syscalls, task lifecycle);
* ``"tc"`` - a trusted component (loader, IPC proxy, remote attest,
  secure storage, updater); ``data["component"]`` names it;
* ``"perf"`` - the simulator's own fast-path machinery (block-tier
  translate/flush lifecycle).  These describe the *host-side* engine,
  not the simulated machine, and are excluded from cache-on/off
  equivalence comparisons - the only source with that exemption.
"""

from __future__ import annotations

from collections import deque

from repro.obs.accounting import TaskAccounting
from repro.obs.counters import CounterRegistry

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65_536


class Event:
    """One structured bus event: ``(cycle, source, kind, task, data)``.

    ``task`` is the *name* of the task the event is attributed to (or
    ``None`` for system-level events); ``data`` is a flat dict of
    JSON-serialisable details.
    """

    __slots__ = ("cycle", "source", "kind", "task", "data")

    def __init__(self, cycle, source, kind, task=None, data=None):
        self.cycle = cycle
        self.source = source
        self.kind = kind
        self.task = task
        self.data = data if data is not None else {}

    def to_dict(self):
        """Plain-dict form (the JSONL wire format)."""
        return {
            "cycle": self.cycle,
            "source": self.source,
            "kind": self.kind,
            "task": self.task,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, record):
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            record["cycle"],
            record["source"],
            record["kind"],
            record.get("task"),
            dict(record.get("data", {})),
        )

    def __eq__(self, other):
        if not isinstance(other, Event):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self):
        return "Event(%d, %s/%s, task=%r, %r)" % (
            self.cycle,
            self.source,
            self.kind,
            self.task,
            self.data,
        )


class EventBus:
    """The bounded, filterable event bus.

    Parameters
    ----------
    clock:
        Object with a ``now`` attribute (the platform cycle clock) used
        to timestamp events; ``None`` stamps everything at cycle 0.
    capacity:
        Ring-buffer size in events; the oldest events are dropped first.
    enabled:
        Initial master switch.  When false, :meth:`publish` is a single
        attribute check.
    """

    def __init__(self, clock=None, capacity=DEFAULT_CAPACITY, enabled=True):
        self.clock = clock
        self.enabled = enabled
        #: The bounded event ring (oldest dropped first).
        self.events = deque(maxlen=capacity)
        #: Registry of machine counters (cache stats, component tallies).
        self.counters = CounterRegistry()
        #: Always-on per-task totals (cycles, slices, events).
        self.accounting = TaskAccounting()
        #: Count of events dropped by the ring since construction.
        self.dropped = 0
        self._muted = set()
        self._keep = None
        self._subscribers = []

    @property
    def capacity(self):
        """Ring-buffer capacity in events."""
        return self.events.maxlen

    # -- publishing ---------------------------------------------------------

    def publish(self, source, kind, task=None, **data):
        """Record one event; returns it (or ``None`` when filtered).

        The disabled path is one attribute check; the per-kind filters
        drop the event before any allocation beyond the call itself.
        """
        if not self.enabled:
            return None
        if kind in self._muted:
            return None
        keep = self._keep
        if keep is not None and kind not in keep:
            return None
        cycle = self.clock.now if self.clock is not None else 0
        event = Event(cycle, source, kind, task, data)
        ring = self.events
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(event)
        self.accounting.observe(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    # -- filtering ----------------------------------------------------------

    def mute(self, *kinds):
        """Drop future events of the given kinds."""
        self._muted.update(kinds)

    def unmute(self, *kinds):
        """Stop dropping the given kinds."""
        self._muted.difference_update(kinds)

    def keep_only(self, kinds):
        """Whitelist: record only ``kinds``; ``None`` clears the filter."""
        self._keep = None if kinds is None else set(kinds)

    def muted_kinds(self):
        """Currently muted kinds, sorted."""
        return sorted(self._muted)

    # -- subscription -------------------------------------------------------

    def subscribe(self, callback):
        """Call ``callback(event)`` on every published event; returns
        ``callback`` so it can be handed back to :meth:`unsubscribe`."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback):
        """Remove a subscriber (no-op when absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    # -- queries (EventTrace-compatible vocabulary) -------------------------

    def of_kind(self, kind):
        """All buffered events of one kind."""
        return [event for event in self.events if event.kind == kind]

    def count(self, kind):
        """Number of buffered events of one kind."""
        return sum(1 for event in self.events if event.kind == kind)

    def between(self, start, end):
        """Buffered events in cycle window ``[start, end)``."""
        return [event for event in self.events if start <= event.cycle < end]

    def last(self, kind):
        """Most recent buffered event of one kind, or ``None``."""
        result = None
        for event in self.events:
            if event.kind == kind:
                result = event
        return result

    def kinds(self):
        """``{kind: count}`` over the buffered events."""
        histogram = {}
        for event in self.events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def clear(self):
        """Drop buffered events and reset the dropped-event tally
        (accounting totals and counters are kept)."""
        self.events.clear()
        self.dropped = 0

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "EventBus(%d/%d events, %s)" % (
            len(self.events),
            self.capacity,
            "enabled" if self.enabled else "disabled",
        )
