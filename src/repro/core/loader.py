"""Dynamic task loading, unloading, and suspension.

"A new task t is loaded as follows: (1) the OS allocates memory for t;
(2) loads t into memory performing relocation; (3) prepares the stack;
then (4) the EA-MPU is configured to protect the memory of t; (5) t is
measured; and (6) the OS is notified to schedule t." (Section 4)

Two entry points:

* :meth:`TaskLoader.load` - a *generator* that performs the six steps
  with a yield between every bounded chunk of work; run it inside a
  low-priority native task (:meth:`TaskLoader.spawn_load_task`) and the
  whole load becomes preemptible, which is what keeps the 1.5 kHz tasks
  of Table 1 on their deadlines while a 27.8 ms load is in flight.
* :meth:`TaskLoader.load_synchronously` - drives the same generator to
  completion in one go (same cycle charges, no preemption); used at
  boot and by micro-benches.

Relocation (step 2) really walks the image's relocation table, adding
the load base to each 32-bit site, charging Table 5 costs per entry
(with the unaligned-site penalty that produces the paper's min/avg
split).
"""

from __future__ import annotations

from repro import cycles
from repro.errors import LoaderError
from repro.rtos.task import INBOX_BYTES, NativeCall, TaskControlBlock, TaskType

#: Loader copy-chunk size: bound on non-preemptible work per step.
#: 128 bytes * CREATE_PER_BYTE = 5,760 cycles between preemption
#: points - well under the 32,000-cycle control period of Table 1.
COPY_CHUNK = 128

#: CREATE_BASE split across the steps (documented in repro.cycles).
ALLOC_COST = 2_000
TCB_STACK_COST = 3_791
SCHEDULE_COST = 1_000

#: Accepted values of the loader's ``verify=`` admission gate.
VERIFY_MODES = ("off", "warn", "reject")


class LoadResult:
    """Mutable handle filled in as a load completes."""

    def __init__(self):
        self.task = None
        self.started_at = None
        self.finished_at = None
        self.breakdown = {}

    @property
    def total_cycles(self):
        """End-to-end load duration in cycles."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def done(self):
        """Whether the load finished."""
        return self.task is not None


class TaskLoader:
    """The dynamic task loader (an OS extension in the paper)."""

    def __init__(self, kernel, mpu_driver=None, rtm=None, verify="off"):
        self.kernel = kernel
        self.mpu_driver = mpu_driver
        self.rtm = rtm
        #: Breakdown of the most recent completed load (Table 4 hook).
        self.last_breakdown = None
        #: Default admission gate ("off" / "warn" / "reject"); each load
        #: may override it via ``load(..., verify=...)``.
        self.verify = verify
        #: Default :class:`repro.analysis.verifier.VerifyPolicy`;
        #: ``None`` derives one from the platform's MMIO window.
        self.verify_policy = None
        #: The verifier report of the most recent gated load.
        self.last_report = None

    def _publish(self, kind, task=None, **data):
        """Publish a loader event on the observability bus."""
        bus = self.kernel.obs
        if bus is not None:
            bus.publish("tc", kind, task=task, component="task-loader", **data)

    # -- the static admission gate -------------------------------------------

    def _verify_gate(self, image, task_name, verify, verify_policy):
        """Run the static verifier per the ``verify`` mode; may raise.

        The report (including the WCET and stack verdicts) is published
        as an ``analysis-report`` event; each finding additionally gets
        its own ``analysis-finding`` event so warn-mode admissions stay
        auditable on the bus.
        """
        mode = verify if verify is not None else self.verify
        if mode not in VERIFY_MODES:
            raise LoaderError("unknown verify mode %r" % mode)
        if mode == "off":
            return
        # Imported lazily: the analysis subsystem is optional tooling
        # for loads with the gate off, and it must not cycle with core.
        from repro.analysis.corpus import default_platform_policy
        from repro.analysis.verifier import verify_image

        policy = verify_policy if verify_policy is not None else self.verify_policy
        if policy is None:
            policy = default_platform_policy(self.kernel.platform.config)
        report = verify_image(image, policy)
        self.last_report = report
        self._publish(
            "analysis-report",
            task=task_name,
            ok=report.ok,
            mode=mode,
            findings=len(report.findings),
            wcet_bounded=report.wcet.bounded,
            wcet_cycles=report.wcet.cycles,
            stack_bounded=report.stack["bounded"],
            stack_depth=report.stack["max_depth"],
        )
        for finding in report.findings:
            self._publish(
                "analysis-finding",
                task=task_name,
                pass_name=finding.pass_name,
                code=finding.code,
                offset=finding.offset,
                message=finding.message,
            )
        if not report.ok and mode == "reject":
            raise LoaderError(
                "image %r rejected by the static verifier: %s"
                % (
                    image.name,
                    "; ".join(f.render() for f in report.findings[:4]),
                )
            )

    # -- the six steps, as an interruptible generator ------------------------

    def load(
        self,
        image,
        secure=False,
        priority=1,
        name=None,
        result=None,
        measure=None,
        verify=None,
        verify_policy=None,
    ):
        """Generator performing one task load; yields preemption points.

        ``measure`` defaults to ``secure`` ("The measurement is not
        required for normal tasks"); pass ``True`` to measure a normal
        task anyway.  The filled :class:`LoadResult` is also the
        generator's return value.

        ``verify`` selects the static-analysis admission gate:
        ``"reject"`` refuses images with verifier findings, ``"warn"``
        admits them but publishes every finding on the observability
        bus, ``"off"`` (the default) skips analysis.  ``None`` falls
        back to the loader-wide :attr:`verify` default.  Verification
        charges no simulated cycles - images are vetted off-line,
        before distribution, not by the device.
        """
        if secure and (self.mpu_driver is None or self.rtm is None):
            raise LoaderError("secure loading requires the EA-MPU driver and RTM")
        if measure is None:
            measure = secure
        if measure and self.rtm is None:
            raise LoaderError("measurement requires the RTM")
        if result is None:
            result = LoadResult()
        clock = self.kernel.clock
        result.started_at = clock.now
        breakdown = result.breakdown
        task_name = name if name is not None else image.name
        self._publish(
            "load-begin",
            task=task_name,
            secure=secure,
            measure=measure,
            bytes=len(image.blob),
        )

        # -- (0) static admission gate (off-line analysis, zero cycles) ---
        self._verify_gate(image, task_name, verify, verify_policy)

        # -- (1) allocate memory ------------------------------------------------
        mark = clock.now
        memory_size = len(image.blob) + image.bss_size + INBOX_BYTES + image.stack_size
        base = self.kernel.allocator.allocate(memory_size)
        yield NativeCall.charge(ALLOC_COST)
        breakdown["allocate"] = clock.now - mark

        # -- (2) load into memory, performing relocation ------------------------
        mark = clock.now
        yield from self._copy_image(image, base)
        breakdown["copy"] = clock.now - mark
        mark = clock.now
        reloc_stats = yield from self._relocate(image, base)
        breakdown["relocation"] = clock.now - mark
        breakdown["relocation_entries"] = reloc_stats["entries"]

        # -- (3) prepare the stack / TCB ---------------------------------------
        mark = clock.now
        task = TaskControlBlock(
            task_name,
            priority,
            task_type=TaskType.SECURE if secure else TaskType.NORMAL,
            entry=base + image.entry,
            base=base,
            memory_size=memory_size,
            stack_size=image.stack_size,
            image=image,
        )
        self.kernel.prepare_initial_stack(task)
        yield NativeCall.charge(TCB_STACK_COST)
        breakdown["stack"] = clock.now - mark

        # -- (4) EA-MPU configuration -------------------------------------------
        mark = clock.now
        if self.mpu_driver is not None:
            os_range = (
                self.kernel.platform.config.os_code_base,
                self.kernel.platform.config.os_code_base
                + self.kernel.platform.config.os_code_size,
            )
            self.mpu_driver.protect_task(task, os_code_range=os_range)
            yield NativeCall.charge(0)
        breakdown["eampu"] = clock.now - mark

        # -- (5) measurement (RTM) ------------------------------------------------
        mark = clock.now
        if measure:
            yield from self.rtm.measure(task, charge_invoke=True)
            self._publish(
                "task-measured",
                task=task.name,
                identity=task.identity.hex()[:16] if task.identity else None,
                cycles=clock.now - mark,
            )
        breakdown["rtm"] = clock.now - mark

        # -- (6) notify the scheduler ---------------------------------------------
        mark = clock.now
        self.kernel.scheduler.add_task(task)
        yield NativeCall.charge(SCHEDULE_COST)
        breakdown["schedule"] = clock.now - mark

        result.task = task
        result.finished_at = clock.now
        breakdown["overall"] = result.finished_at - result.started_at
        self.last_breakdown = dict(breakdown)
        self.kernel.emit(
            "task-loaded",
            name=task.name,
            secure=secure,
            cycles=breakdown["overall"],
        )
        return result

    def _copy_image(self, image, base):
        """Copy blob + zero BSS/stack, charging per byte in chunks."""
        memory = self.kernel.memory
        actor = self.kernel.os_actor
        blob = image.blob
        cursor = 0
        while cursor < len(blob):
            chunk = blob[cursor : cursor + COPY_CHUNK]
            memory.write(base + cursor, chunk, actor=actor)
            cursor += len(chunk)
            yield NativeCall.charge(len(chunk) * cycles.CREATE_PER_BYTE)
        # BSS, inbox, and stack are zeroed (allocation reuse must not
        # leak a previous task's data into the new task).
        tail = (
            image.bss_size
            + INBOX_BYTES
            + image.stack_size
        )
        cursor = 0
        while cursor < tail:
            chunk_len = min(COPY_CHUNK, tail - cursor)
            memory.write(
                base + len(blob) + cursor, bytes(chunk_len), actor=actor
            )
            cursor += chunk_len
            yield NativeCall.charge(chunk_len * cycles.CREATE_PER_BYTE)

    def _relocate(self, image, base):
        """Apply the relocation table (Table 5 costs, per entry)."""
        memory = self.kernel.memory
        actor = self.kernel.os_actor
        stats = {"entries": 0, "unaligned": 0}
        yield NativeCall.charge(cycles.RELOC_BASE)
        for offset in image.relocations:
            site = base + offset
            value = memory.read_u32(site, actor=actor)
            memory.write_u32(site, (value + base) & 0xFFFFFFFF, actor=actor)
            cost = cycles.RELOC_PER_ENTRY
            if site % 4 != 0:
                cost += cycles.RELOC_UNALIGNED_PENALTY
                stats["unaligned"] += 1
            stats["entries"] += 1
            yield NativeCall.charge(cost)
        return stats

    # -- convenience drivers ----------------------------------------------------

    def load_synchronously(self, image, **kwargs):
        """Drive :meth:`load` to completion without preemption."""
        result = LoadResult()
        for call in self.load(image, result=result, **kwargs):
            if call.kind == NativeCall.CHARGE:
                self.kernel.clock.charge(call.value)
            else:
                raise LoaderError("unexpected native call %r during sync load" % call)
        return result

    def spawn_load_task(self, image, loader_priority=0, **kwargs):
        """Run the load inside a low-priority native task.

        Returns the :class:`LoadResult`, which fills in asynchronously
        as the kernel runs.  This is the Table 1 configuration: the load
        trickles along in the background and higher-priority tasks
        preempt it at every yield.
        """
        result = LoadResult()

        def loader_body(kernel, tcb):
            yield from self.load(image, result=result, **kwargs)

        self.kernel.create_native_task(
            "loader:%s" % image.name,
            loader_priority,
            loader_body,
            task_type=TaskType.NORMAL,
            memory_size=128,
        )
        return result

    # -- unload / suspend ----------------------------------------------------------

    def unload(self, task):
        """Unload ``task``: deschedule, unprotect, unregister, reclaim.

        "Unloading a task requires deleting it from the OS scheduler and
        reclaiming its memory."  The memory is wiped before the hole is
        reusable so the next allocation cannot read residues.
        """
        self.kernel.scheduler.remove_task(task)
        if self.rtm is not None:
            self.rtm.unregister(task)
        if self.mpu_driver is not None:
            self.mpu_driver.unprotect_task(task)
        # Wipe before reclaim (trusted loader privilege: rule just freed).
        self.kernel.memory.write_raw(task.base, bytes(task.memory_size))
        self.kernel.allocator.free(task.base)
        self.kernel.clock.charge(cycles.CREATE_BASE // 4)
        self.kernel.emit("task-unloaded", name=task.name)

    def suspend(self, task):
        """Suspend: loaded "but should not be executed at the moment"."""
        self.kernel.scheduler.suspend(task)
        self.kernel.clock.charge(cycles.LIST_OP)

    def resume(self, task):
        """Resume a suspended task."""
        self.kernel.resume_task(task)
