"""The trusted interrupt multiplexer (Int Mux) and the secure entry routine.

"TyTAN uses the trusted interrupt multiplexer (Int Mux) to securely save
the context of a task to its stack before control is passed to the
interrupt handler." (Section 4)

On an interrupt of a **secure** task the Int Mux:

1. stores the eight software-saved registers onto the task's own stack
   (38 cycles - the hardware already pushed EIP and EFLAGS);
2. **wipes** the CPU registers so the untrusted handler and OS observe
   nothing of the task's state (16 cycles);
3. branches to the real interrupt handler (41 cycles).

Resuming a secure task goes through its **dedicated entry routine**
(auto-included by the TyTAN tool chain): branch + EA-MPU entry check
(106 cycles), a mode check distinguishing resume / message / first
start (24 cycles), then the register restore (254 cycles).  Normal
tasks use the plain FreeRTOS path (38 / 254 cycles) - those are the
baseline columns of Tables 2 and 3.

:class:`TyTANContextPolicy` plugs this behaviour into the kernel's
context-policy slot.
"""

from __future__ import annotations

from repro import cycles
from repro.hw.platform import FirmwareComponent
from repro.rtos.syscalls import IpcAbi


class IntMux(FirmwareComponent):
    """The Int Mux component: trusted context save for secure tasks."""

    NAME = "int-mux"

    def __init__(self, kernel):
        super().__init__()
        self.kernel = kernel
        #: Breakdown of the most recent save (Table 2 bench hook).
        self.last_save = None
        #: Count of secure-context saves performed.
        self.saves = 0

    def save_secure_context(self, task):
        """Store + wipe + branch for an interrupted secure task."""
        clock = self.kernel.clock
        store = cycles.store_context_cycles()
        wipe = cycles.wipe_context_cycles()
        branch = cycles.INTMUX_BRANCH

        clock.charge(store)
        # The Int Mux writes the frame as *itself*; the EA-MPU grants it
        # write access to task RAM via a locked boot rule.
        self.kernel.push_gpr_frame(task, actor=self.base)

        clock.charge(wipe)
        self.kernel.platform.cpu.regs.wipe_gprs()

        clock.charge(branch)
        self.saves += 1
        self.last_save = {
            "store": store,
            "wipe": wipe,
            "branch": branch,
            "overall": store + wipe + branch,
        }
        return self.last_save["overall"]


class EntryRoutine:
    """The secure task entry routine (HLE of the tool-chain template).

    "This entry routine detects whether the task has been (re)started or
    was invoked to receive a message and acts accordingly.  TyTAN
    provides this information in a CPU register, which is checked by the
    entry routine." (Section 4)
    """

    def __init__(self, kernel):
        self.kernel = kernel
        #: Breakdown of the most recent restore (Table 3 bench hook).
        self.last_restore = None

    def enter(self, task):
        """Branch into the entry routine and restore the task.

        Returns the cycle breakdown.  The restore reads the context
        frame *as the task itself* - the entry routine is task code, so
        the EA-MPU task rule authorises it.
        """
        clock = self.kernel.clock
        branch = cycles.ENTRY_BRANCH
        mode_check = cycles.ENTRY_MODE_CHECK
        restore = cycles.restore_context_cycles()
        receive = 0

        clock.charge(branch)
        clock.charge(mode_check)
        if task.resume_mode == IpcAbi.MODE_MESSAGE:
            # Message mode: copy the inbox into the task's working set.
            receive = cycles.IPC_ENTRY_ROUTINE_RECEIVE
            clock.charge(receive)
        clock.charge(restore)

        if not task.is_native:
            self.kernel.pop_gpr_frame(task, actor=task.base)
            self.kernel.platform.engine.hw_return(self.kernel.platform.cpu)
        task.resume_mode = None

        self.last_restore = {
            "branch": branch,
            "mode_check": mode_check,
            "receive": receive,
            "restore": restore,
            "overall": branch + mode_check + receive + restore,
        }
        return self.last_restore


class TyTANContextPolicy:
    """Kernel context policy routing secure tasks through the Int Mux.

    Normal tasks keep the plain FreeRTOS path, so a TyTAN system imposes
    zero context-switch overhead on normal tasks - exactly the paper's
    overhead accounting.
    """

    def __init__(self, kernel, int_mux):
        self.kernel = kernel
        self.int_mux = int_mux
        self.entry_routine = EntryRoutine(kernel)

    # -- ISA tasks ---------------------------------------------------------

    def save_context(self, task):
        """Save an interrupted task's context (Table 2 paths)."""
        if task.is_secure:
            return self.int_mux.save_secure_context(task)
        charged = cycles.store_context_cycles()
        self.kernel.clock.charge(charged)
        self.kernel.push_gpr_frame(task, actor=self.kernel.os_actor)
        return charged

    def restore_context(self, task):
        """Restore a task's context (Table 3 paths)."""
        if task.is_secure:
            return self.entry_routine.enter(task)["overall"]
        charged = cycles.restore_context_cycles()
        self.kernel.clock.charge(charged)
        self.kernel.pop_gpr_frame(task, actor=self.kernel.os_actor)
        self.kernel.platform.engine.hw_return(self.kernel.platform.cpu)
        return charged

    # -- native tasks ---------------------------------------------------------

    def save_context_native(self, task):
        """Charge the save path for a native (HLE) task."""
        if task.is_secure:
            clock = self.kernel.clock
            total = (
                cycles.store_context_cycles()
                + cycles.wipe_context_cycles()
                + cycles.INTMUX_BRANCH
            )
            clock.charge(total)
            self.int_mux.saves += 1
            return total
        charged = cycles.store_context_cycles()
        self.kernel.clock.charge(charged)
        return charged

    def restore_context_native(self, task):
        """Charge the restore path for a native (HLE) task."""
        if task.is_secure:
            return self.entry_routine.enter(task)["overall"]
        charged = cycles.restore_context_cycles()
        self.kernel.clock.charge(charged)
        return charged

    def describe(self):
        """Policy name for traces."""
        return "tytan"
