"""Runtime task update - the paper's first future-work item.

"Future work includes extending TyTAN with a mechanism to update tasks
at runtime (i.e., without stopping and restarting them) to meet the
high availability requirements of embedded applications." (Section 8)

This module implements that mechanism as an additional trusted
component, the **Task Updater**.  An update replaces a loaded task's
binary with a new version while preserving its *service continuity*:

* the task keeps its scheduling parameters, name, and priority;
* pending IPC inbox messages survive the update (senders never observe
  the service disappearing);
* sealed storage is **re-sealed** from the old identity to the new one
  - the defining problem of identity-bound storage under updates: the
  new binary hashes to a different id_t, so without re-sealing it could
  never read its predecessor's data (and *with* it, only an *authorized*
  successor can);
* the EA-MPU rule, RTM measurement, and registry entry are replaced
  atomically from the schedulers' point of view.

Authorization: updates are approved by the task's provider with an
**update token** ``HMAC(K_u, id_old | id_new)`` where
``K_u = KDF(K_p, "update", provider)`` - the same symmetric trust
model the paper uses for remote attestation (footnote 2).  A provider
cannot be impersonated without K_p, and a token authorizes exactly one
(old, new) version edge, preventing rollback to arbitrary binaries.

Like loading, the update is a generator with a preemption point after
every bounded chunk, so real-time tasks keep their deadlines while an
update is in flight (verified by the ablation bench).
"""

from __future__ import annotations

from repro import cycles
from repro.crypto.compare import constant_time_equal
from repro.crypto.hmac import hmac_sha1
from repro.crypto.kdf import derive_key
from repro.errors import LoaderError, SecurityViolation
from repro.hw.platform import FirmwareComponent
from repro.rtos.task import INBOX_BYTES, NativeCall

from repro.core.identity import identity_of_image


class _StagedImage:
    """A not-yet-live placement of a new binary, measurable by the RTM."""

    def __init__(self, name, image, base):
        self.name = "%s(staged)" % name
        self.image = image
        self.base = base
        self.identity = None


class UpdateAuthority:
    """The provider-side signer of update tokens (runs off-device)."""

    def __init__(self, platform_key, provider=b""):
        self._key = derive_key(bytes(platform_key), b"update", provider)

    def authorize(self, old_identity, new_image):
        """Issue a token approving ``old_identity -> new_image``."""
        new_identity = identity_of_image(new_image)
        return hmac_sha1(self._key, bytes(old_identity) + new_identity)


class UpdateResult:
    """Mutable handle filled in as an update completes."""

    def __init__(self):
        self.task = None
        self.started_at = None
        self.finished_at = None
        self.downtime = None
        self.old_identity = None
        self.new_identity = None

    @property
    def done(self):
        """Whether the update finished."""
        return self.task is not None

    @property
    def total_cycles(self):
        """End-to-end update duration."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class TaskUpdater(FirmwareComponent):
    """The trusted task-update component."""

    NAME = "task-updater"

    def __init__(self, kernel, loader, rtm, mpu_driver, secure_storage, key_store):
        super().__init__()
        self.kernel = kernel
        self.loader = loader
        self.rtm = rtm
        self.mpu_driver = mpu_driver
        self.secure_storage = secure_storage
        self.key_store = key_store
        #: Completed updates (diagnostics).
        self.updates_applied = 0

    def _update_key(self, provider, charge=True):
        platform_key = self.key_store.read_key(actor=self.base)
        if charge:
            self.kernel.clock.charge(cycles.KEY_DERIVATION)
        return derive_key(platform_key, b"update", provider)

    def verify_token(self, task, new_image, token, provider=b"", charge=True):
        """Check a provider's update authorization.

        ``charge=False`` lets the interruptible update path account the
        crypto cost itself (in preemptible chunks).
        """
        if task.identity is None:
            raise SecurityViolation("only measured tasks can be updated")
        key = self._update_key(provider, charge=charge)
        expected = hmac_sha1(
            key, task.identity + identity_of_image(new_image)
        )
        if charge:
            self.kernel.clock.charge(cycles.ATTEST_MAC)
        if not constant_time_equal(expected, bytes(token)):
            raise SecurityViolation(
                "update token rejected for task %s" % task.name
            )

    # -- the update procedure --------------------------------------------------

    def update(self, task, new_image, token, provider=b"", result=None):
        """Generator performing one authorized live update.

        Phases (each chunked / yielded like the loader's):

        1. verify the provider token;
        2. stage the new binary into fresh memory (copy + relocate),
           while the old version keeps running;
        3. quiesce: take the task off the CPU at a preemption boundary;
        4. carry over the inbox, re-seal storage old->new identity;
        5. swap EA-MPU protection, measure the new binary, swap the
           registry entry;
        6. resume the task at the new entry point.

        Only phase 3-6 is downtime for the task, and each step inside
        it is bounded; everything else overlaps with normal execution.
        """
        if result is None:
            result = UpdateResult()
        clock = self.kernel.clock
        result.started_at = clock.now
        result.old_identity = task.identity

        # -- 1. authorization (crypto cost in preemptible chunks) ----------
        self.verify_token(task, new_image, token, provider, charge=False)
        remaining = cycles.KEY_DERIVATION + cycles.ATTEST_MAC
        while remaining > 0:
            step = min(6_000, remaining)
            remaining -= step
            yield NativeCall.charge(step)

        # -- 2. stage the new image (old version still running) -------------
        memory_size = (
            len(new_image.blob)
            + new_image.bss_size
            + INBOX_BYTES
            + new_image.stack_size
        )
        new_base = self.kernel.allocator.allocate(memory_size)
        yield from self.loader._copy_image(new_image, new_base)
        yield from self.loader._relocate(new_image, new_base)

        # Measure the staged copy *before* taking the service down: the
        # staged region is not schedulable, so it is as immutable as a
        # protected task, and the measurement (the most expensive update
        # step) overlaps with normal service execution.
        staged = _StagedImage(task.name, new_image, new_base)
        yield from self.rtm.measure(staged, register=False)
        result.new_identity = staged.identity

        # -- 3. quiesce the old version -----------------------------------------
        if self.kernel.scheduler.current is task:
            raise LoaderError("cannot update the currently running task")
        downtime_start = clock.now
        self.kernel.scheduler.suspend(task)
        yield NativeCall.charge(cycles.LIST_OP)

        # -- 4. carry state over ---------------------------------------------------
        old_base = task.base
        old_size = task.memory_size
        old_image = task.image
        old_identity = task.identity
        # Inbox ring: byte-copy from the old location to the new one.
        old_inbox = task.inbox_base
        inbox_bytes = self.kernel.memory.read(
            old_inbox, INBOX_BYTES, actor=self.base
        )
        yield NativeCall.charge(cycles.IPC_INBOX_BASE + INBOX_BYTES // 4 * cycles.IPC_INBOX_PER_WORD)

        # Re-point the TCB at the new placement.
        task.base = new_base
        task.memory_size = memory_size
        task.stack_size = new_image.stack_size
        task.image = new_image
        self.kernel.memory.write(
            task.inbox_base, inbox_bytes, actor=self.base
        )
        self.kernel.prepare_initial_stack(task)
        yield NativeCall.charge(cycles.LIST_OP)

        # -- 5. swap protection and registry -------------------------------------
        self.mpu_driver.unprotect_task(task)
        task.entry = new_base + new_image.entry
        os_range = (
            self.kernel.platform.config.os_code_base,
            self.kernel.platform.config.os_code_base
            + self.kernel.platform.config.os_code_size,
        )
        self.mpu_driver.protect_task(task, os_code_range=os_range)
        yield NativeCall.charge(0)
        task.identity = staged.identity
        self.rtm.register(task)
        yield NativeCall.charge(cycles.LIST_OP)

        # Re-seal storage: decrypt under K_t(old), re-encrypt under
        # K_t(new), in bounded chunks so other tasks keep running.
        # Only reachable through a verified token.
        yield from self.secure_storage.reseal_steps(old_identity, task.identity)

        # -- 6. release the old memory and resume ------------------------------
        self.kernel.memory.write_raw(old_base, bytes(old_size))
        self.kernel.allocator.free(old_base)
        self.kernel.scheduler.make_ready(task)
        yield NativeCall.charge(cycles.LIST_OP)

        result.task = task
        result.finished_at = clock.now
        result.downtime = clock.now - downtime_start
        self.updates_applied += 1
        self.kernel.emit(
            "task-updated",
            name=task.name,
            old=old_identity.hex()[:12],
            new=task.identity.hex()[:12],
            downtime=result.downtime,
        )
        return result

    def update_synchronously(self, task, new_image, token, provider=b""):
        """Drive :meth:`update` to completion without preemption."""
        result = UpdateResult()
        for call in self.update(task, new_image, token, provider, result=result):
            if call.kind == NativeCall.CHARGE:
                self.kernel.clock.charge(call.value)
            else:
                raise LoaderError("unexpected native call during sync update")
        return result

    def spawn_update_task(self, task, new_image, token, provider=b"", priority=0):
        """Run the update inside a low-priority native task (preemptible)."""
        result = UpdateResult()

        def updater_body(kernel, tcb):
            yield from self.update(
                task, new_image, token, provider, result=result
            )

        self.kernel.create_native_task(
            "updater:%s" % task.name, priority, updater_body, memory_size=128
        )
        return result
