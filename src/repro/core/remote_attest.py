"""Remote attestation.

"Remote attestation on TyTAN uses Message Authentication Codes (MAC)
along with an attestation key K_a to prove the authenticity of id_t to
a remote verifier.  K_a is derivated from K_p and only accessible to
the Remote Attest task." (Section 3)

The component reads K_p through the bus as itself, so the EA-MPU rule
installed at secure boot is what actually authorises the derivation -
any other component calling :meth:`RemoteAttest.attestation_key` with
its own actor faults.  Footnote 2's per-provider keys are supported via
a provider label in the derivation.

:class:`Verifier` plays the remote party: it knows K_p (shared out of
band in this symmetric scheme), derives the same K_a, and checks
reports against a whitelist of expected identities.
"""

from __future__ import annotations

import struct

from repro import cycles
from repro.crypto.compare import constant_time_equal
from repro.crypto.hmac import hmac_sha1
from repro.crypto.kdf import derive_key
from repro.errors import AttestationError
from repro.hw.platform import FirmwareComponent


class AttestationReport:
    """A remote attestation report: (id_t, nonce, MAC)."""

    def __init__(self, identity, nonce, mac):
        self.identity = bytes(identity)
        self.nonce = bytes(nonce)
        self.mac = bytes(mac)

    def to_bytes(self):
        """Wire format: identity | nonce-length | nonce | mac."""
        return (
            self.identity
            + struct.pack("<H", len(self.nonce))
            + self.nonce
            + self.mac
        )

    @classmethod
    def from_bytes(cls, blob):
        """Parse the wire format.

        Raises :class:`AttestationError` for any blob that is not an
        exact, well-formed report: truncated headers, short identity or
        MAC slices, and trailing garbage are all rejected (a raw
        ``struct.error`` or a silently short identity would otherwise
        leak out of the wire layer).
        """
        blob = bytes(blob)
        if len(blob) < 22:
            raise AttestationError(
                "truncated attestation report (%d bytes)" % len(blob)
            )
        identity = blob[:20]
        (nonce_len,) = struct.unpack("<H", blob[20:22])
        if len(blob) != 22 + nonce_len + 20:
            raise AttestationError("malformed attestation report")
        nonce = blob[22 : 22 + nonce_len]
        mac = blob[22 + nonce_len :]
        return cls(identity, nonce, mac)

    def __repr__(self):
        return "AttestationReport(id=%s..., nonce=%s)" % (
            self.identity[:4].hex(),
            self.nonce.hex(),
        )


class RemoteAttest(FirmwareComponent):
    """The Remote Attest trusted task."""

    NAME = "remote-attest"

    def __init__(self, kernel, rtm, key_store):
        super().__init__()
        self.kernel = kernel
        self.rtm = rtm
        self.key_store = key_store
        #: Reports issued (diagnostics).
        self.reports_issued = 0

    def _publish(self, kind, task=None, **data):
        """Publish an attestation event on the observability bus."""
        bus = self.kernel.obs
        if bus is not None:
            bus.publish("tc", kind, task=task, component=self.NAME, **data)

    def attestation_key(self, provider=b""):
        """Derive K_a from K_p (EA-MPU gated read of the key fuses)."""
        platform_key = self.key_store.read_key(actor=self.base)
        self.kernel.clock.charge(cycles.KEY_DERIVATION)
        return derive_key(platform_key, b"attest", provider)

    def attest(self, task, nonce, provider=b""):
        """Produce a report proving ``task``'s identity, fresh by ``nonce``."""
        entry = self.rtm.lookup_task(task)
        if entry is None:
            raise AttestationError("task %s is not registered" % task.name)
        key = self.attestation_key(provider)
        self.kernel.clock.charge(cycles.ATTEST_MAC)
        mac = hmac_sha1(key, entry.identity + bytes(nonce))
        self.reports_issued += 1
        self._publish("attest", task=task.name, identity=entry.identity.hex()[:16])
        return AttestationReport(entry.identity, nonce, mac)

    def attest_identity(self, identity, nonce, provider=b""):
        """Report over an explicit registered identity (IPC-path use)."""
        if identity not in self.rtm.identities():
            raise AttestationError("identity not registered")
        key = self.attestation_key(provider)
        self.kernel.clock.charge(cycles.ATTEST_MAC)
        mac = hmac_sha1(key, bytes(identity) + bytes(nonce))
        self.reports_issued += 1
        self._publish("attest", identity=bytes(identity).hex()[:16])
        return AttestationReport(identity, nonce, mac)


class Verifier:
    """The remote verifier (runs off-device).

    Knows the platform key out of band; accepts a report iff the MAC
    verifies for the verifier's own nonce and the attested identity is
    in the expected set.
    """

    def __init__(self, platform_key, provider=b""):
        self._key = derive_key(bytes(platform_key), b"attest", provider)
        self.expected = set()
        self._nonce_counter = 0
        #: Nonces handed out by :meth:`fresh_nonce`, not yet consumed.
        self._issued = set()
        #: Nonces a report has already verified against - single-use.
        self._consumed = set()

    def expect(self, identity):
        """Whitelist an identity (e.g. from the provider's signed image)."""
        self.expected.add(bytes(identity))

    def fresh_nonce(self):
        """A unique challenge nonce (tracked for single-use checking)."""
        self._nonce_counter += 1
        nonce = struct.pack("<Q", self._nonce_counter)
        self._issued.add(nonce)
        return nonce

    def retire_nonce(self, nonce):
        """Evict an issued-but-unconsumed nonce (challenge expiry).

        A long-running verifier issues a fresh nonce per retry; without
        eviction the issued set grows with every timeout.  Retiring an
        expired nonce also refuses any report that later arrives for it:
        the nonce is moved to the consumed set, so a straggler response
        to an expired challenge can never verify.
        """
        nonce = bytes(nonce)
        self._issued.discard(nonce)
        self._consumed.add(nonce)

    def outstanding_nonces(self):
        """Issued, not-yet-consumed nonce count (store-growth probe)."""
        return len(self._issued)

    def verify(self, report, nonce):
        """Check ``report`` against ``nonce``; returns True/False.

        Nonces are single-use: the first successful verification
        consumes the nonce, so a captured report replayed against the
        same challenge is rejected even though its MAC still checks.
        """
        nonce = bytes(nonce)
        if nonce in self._consumed:
            return False
        if nonce != report.nonce:
            return False
        expected_mac = hmac_sha1(self._key, report.identity + report.nonce)
        if not constant_time_equal(expected_mac, report.mac):
            return False
        if report.identity not in self.expected:
            return False
        self._issued.discard(nonce)
        self._consumed.add(nonce)
        return True
