"""Secure boot.

"TyTAN's trusted software components (i.e., EA-MPU driver, Int Mux, IPC
Proxy, RTM task, Remote Attest and Secure Storage) are loaded with
secure boot and isolated from the rest of the system by the EA-MPU to
ensure their integrity. ... The EA-MPU rules for the static components
(including the EA-MPU driver itself) are set during secure boot."
(Section 3)

Boot sequence implemented here:

1. **measure** each trusted component's (pseudo-)binary and extend a
   boot measurement log - the software-visible root of trust;
2. install and **lock** the static EA-MPU rules:

   * one rule per trusted component page (only the component itself may
     touch its page),
   * the IDT is public read-only (its integrity rule),
   * the platform-key fuses are readable only by Remote Attest and
     Secure Storage,
   * OS data is accessible only to OS code,
   * Int Mux / IPC proxy may write task RAM, the RTM may read it
     (that is how they operate on task memory without owning it);

3. re-point every IDT vector at the **Int Mux**, the single trusted
   interrupt entry;
4. restrict further EA-MPU programming to the **EA-MPU driver**'s code
   region and hand the driver the remaining dynamic slots.
"""

from __future__ import annotations

from repro import cycles
from repro.crypto.sha1 import SHA1
from repro.errors import ConfigurationError
from repro.hw.ea_mpu import MpuRule, Perm
from repro.hw.exceptions import Vector


class BootLog:
    """The secure-boot measurement log (TPM-PCR-like extend chain)."""

    def __init__(self):
        self.entries = []
        self._accumulator = b"\x00" * 20

    def extend(self, name, digest):
        """Append a component measurement and fold it into the chain."""
        self.entries.append((name, bytes(digest)))
        self._accumulator = SHA1(self._accumulator + bytes(digest)).digest()

    @property
    def aggregate(self):
        """The chained boot measurement."""
        return self._accumulator


class SecureBoot:
    """Performs the boot sequence for a TyTAN system."""

    def __init__(self, platform, kernel, mpu_driver):
        self.platform = platform
        self.kernel = kernel
        self.mpu_driver = mpu_driver
        self.log = BootLog()
        self.booted = False

    def boot(self, components):
        """Run secure boot over the trusted ``components``.

        ``components`` maps role names (``int_mux``, ``ipc_proxy``,
        ``rtm``, ``remote_attest``, ``secure_storage``) to the bound
        firmware objects; the EA-MPU driver itself and the OS trap gate
        are picked up from the wiring.
        """
        if self.booted:
            raise ConfigurationError("secure boot already ran")
        mpu = self.platform.mpu
        cfg = self.platform.config
        slot = 0

        def install(rule):
            nonlocal slot
            mpu.program_slot(slot, rule, lock=True)
            slot += 1
            return slot - 1

        # -- 1. measure the trusted components -------------------------------
        for name, component in self._iter_components(components):
            pseudo_binary = self._component_image(component)
            self.log.extend(name, SHA1(pseudo_binary).digest())
            self.kernel.clock.charge(cycles.SECURE_BOOT_PER_COMPONENT)

        # -- 2. static rules ---------------------------------------------------
        # IDT: public read-only; nobody (software) can retarget vectors.
        install(
            MpuRule(
                "boot:idt",
                None,
                None,
                cfg.idt_base,
                cfg.idt_base + cfg.idt_size,
                Perm.R,
            )
        )
        # Per-component page isolation.
        for name, component in self._iter_components(components):
            install(
                MpuRule(
                    "boot:%s" % name,
                    component.base,
                    component.end,
                    component.base,
                    component.end,
                    Perm.RWX,
                )
            )
        # OS trap gate page (public execute so any task's trap can land
        # there; its contents are read-protected).
        gate = self.kernel.trap_gate
        install(
            MpuRule(
                "boot:os-gate",
                None,
                None,
                gate.base,
                gate.end,
                Perm.X,
            )
        )
        # Platform key fuses: Remote Attest + Secure Storage (+ the Task
        # Updater extension, which derives K_u from K_p) only.
        attest = components["remote_attest"]
        storage = components["secure_storage"]
        key_subjects = [(storage.base, storage.end)]
        if "task_updater" in components:
            updater = components["task_updater"]
            key_subjects.append((updater.base, updater.end))
        install(
            MpuRule(
                "boot:key-fuses",
                attest.base,
                attest.end,
                cfg.key_base,
                cfg.key_base + self.platform.key_store.size,
                Perm.R,
                extra_subjects=tuple(key_subjects),
            )
        )
        # OS data: OS code only.
        install(
            MpuRule(
                "boot:os-data",
                cfg.os_code_base,
                cfg.os_code_base + cfg.os_code_size,
                cfg.os_data_base,
                cfg.os_data_base + cfg.os_data_size,
                Perm.RW,
            )
        )
        # Trusted components reach task memory through the *per-task*
        # rules the EA-MPU driver installs at load time: the Int Mux,
        # IPC proxy, and RTM regions are added as subjects of every
        # task's rule (so a secure task's memory is accessible to the
        # task itself and the trusted components, and nothing else).
        int_mux = components["int_mux"]
        ipc_proxy = components["ipc_proxy"]
        rtm = components["rtm"]
        trusted = [
            (int_mux.base, int_mux.end, Perm.RW),
            (ipc_proxy.base, ipc_proxy.end, Perm.RW),
            (rtm.base, rtm.end, Perm.R),
        ]
        if "task_updater" in components:
            updater = components["task_updater"]
            trusted.append((updater.base, updater.end, Perm.RW))
        self.mpu_driver.trusted_subjects = tuple(trusted)

        # -- 3. vector everything through the Int Mux ---------------------------
        for vector in range(Vector.COUNT):
            self.platform.engine.install_handler(vector, int_mux.base)

        # -- 4. lock down MPU programming to the driver -------------------------
        mpu.set_driver_range(self.mpu_driver.base, self.mpu_driver.end)

        self.booted = True
        self.kernel.emit(
            "secure-boot",
            components=len(self.log.entries),
            static_rules=slot,
            aggregate=self.log.aggregate.hex(),
        )
        return self.log

    def _iter_components(self, components):
        """Deterministic iteration order: driver first, then roles."""
        yield "ea-mpu-driver", self.mpu_driver
        roles = ["int_mux", "ipc_proxy", "rtm", "remote_attest", "secure_storage"]
        if "task_updater" in components:
            roles.append("task_updater")
        for name in roles:
            yield name.replace("_", "-"), components[name]

    def _component_image(self, component):
        """The pseudo-binary secure boot measures: the component's page
        contents (HLE components have deterministic stub pages)."""
        return self.platform.memory.read_raw(component.base, component.size)
