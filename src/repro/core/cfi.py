"""Hardware-assisted runtime attack detection - control-flow integrity.

The paper's second future-work item: "new hardware-assisted runtime
attack detection" (Section 8), motivated by its own observation that
"code reuse attacks pose a severe threat on diverse platforms including
embedded systems" (footnote 6).

The EA-MPU already blocks *inter*-task code reuse (entry-point
enforcement), but a task can still be hijacked **within its own code
region**: a corrupted return address redirects execution to an
attacker-chosen gadget inside the task, which the EA-MPU cannot see.
The :class:`CfiWatchdog` closes that gap:

* at load time, :class:`ControlFlowGraph` extracts the task's valid
  control-flow edges from its (position-independent) binary - direct
  branch/call targets as encoded, plus the set of valid *return sites*
  (instructions immediately following a ``call``);
* at runtime the watchdog sits on the core's control-transfer port
  (``cpu.transfer_hook``) and validates every taken transfer inside a
  monitored region: direct branches must go where the binary says, and
  returns must land on a call site's continuation (classic
  coarse-grained CFI);
* a violation raises :class:`CfiViolation`, which the kernel treats
  like any other hardware fault: the offending task is killed, the
  platform keeps running.

The check is modelled as hardware (a couple of cycles per transfer);
the overhead bench quantifies it against unmonitored execution.
"""

from __future__ import annotations

from repro.errors import HardwareFault
from repro.hw.platform import FirmwareComponent
from repro.isa.encoding import decode
from repro.isa.opcodes import CONDITIONAL_BRANCHES, Op

#: Modelled hardware cost of one CFI edge check.
CFI_CHECK_CYCLES = 2


class CfiViolation(HardwareFault):
    """A control transfer violated the task's extracted CFG."""

    def __init__(self, from_eip, to_eip, reason):
        self.from_eip = from_eip
        self.to_eip = to_eip
        self.reason = reason
        super().__init__(
            "CFI violation: 0x%08X -> 0x%08X (%s)" % (from_eip, to_eip, reason)
        )


class ControlFlowGraph:
    """Static control-flow edges of a task image (link-base-0 offsets).

    Built by a linear sweep of the blob.  The sweep stops at the first
    undecodable byte, which in TELF images is the start of the data
    section; bytes beyond it never execute (the EA-MPU would still let
    them - code and data share the task region - so the watchdog treats
    transfers into unswept offsets as violations, catching jumps into
    data too).
    """

    def __init__(self):
        #: offset of each decoded instruction -> set of valid direct
        #: branch targets (offsets) for that instruction; empty set for
        #: non-branch instructions.
        self.branch_targets = {}
        #: offsets that are valid return sites (call continuations).
        self.return_sites = set()
        #: offsets of ``ret`` instructions.
        self.ret_offsets = set()
        #: all valid instruction-start offsets.
        self.instruction_starts = set()
        #: one past the last swept byte.
        self.swept_end = 0

    @classmethod
    def from_image(cls, image):
        """Extract the CFG from a task image."""
        cfg = cls()
        blob = image.blob
        offset = 0
        while offset < len(blob):
            try:
                insn = decode(blob, offset)
            except HardwareFault:
                break
            cfg.instruction_starts.add(offset)
            targets = set()
            opcode = insn.opcode
            if opcode == Op.JMP:
                targets.add(insn.imm)
            elif opcode in CONDITIONAL_BRANCHES:
                targets.add(insn.imm)
            elif opcode == Op.CALL:
                targets.add(insn.imm)
                cfg.return_sites.add(offset + insn.length)
            elif opcode == Op.RET:
                cfg.ret_offsets.add(offset)
            cfg.branch_targets[offset] = targets
            offset += insn.length
        cfg.swept_end = offset
        return cfg

    def validate(self, from_offset, to_offset):
        """Check one taken transfer; returns ``None`` or a reason string."""
        if from_offset not in self.instruction_starts:
            return "transfer from unknown instruction"
        if to_offset not in self.instruction_starts:
            return "target is not an instruction boundary"
        if from_offset in self.ret_offsets:
            if to_offset not in self.return_sites:
                return "return to a non-call-site"
            return None
        allowed = self.branch_targets.get(from_offset, set())
        if to_offset in allowed:
            return None
        return "branch target not in the binary's CFG"


class CfiWatchdog(FirmwareComponent):
    """The runtime attack detector.

    Conceptually a hardware block beside the EA-MPU; registered as a
    firmware component so it has an identity in the trusted-component
    inventory.  Tasks are enrolled explicitly (monitoring costs a
    couple of cycles per transfer, so an integrator enables it for the
    tasks that warrant it).
    """

    NAME = "cfi-watchdog"

    def __init__(self, kernel):
        super().__init__()
        self.kernel = kernel
        #: tid -> (base, end, ControlFlowGraph)
        self._monitored = {}
        #: Count of checks performed (overhead accounting).
        self.checks = 0
        #: Violations detected: list of CfiViolation.
        self.violations = []
        self._installed = False

    # -- enrolment ----------------------------------------------------------

    def monitor_task(self, task):
        """Extract the task's CFG and start monitoring it."""
        if task.image is None:
            raise HardwareFault("cannot monitor a task without an image")
        cfg = ControlFlowGraph.from_image(task.image)
        self._monitored[task.tid] = (task.base, task.end, cfg)
        self._install()
        return cfg

    def unmonitor_task(self, task):
        """Stop monitoring ``task`` (unload/update)."""
        self._monitored.pop(task.tid, None)

    def monitored_count(self):
        """Number of enrolled tasks."""
        return len(self._monitored)

    def _install(self):
        if not self._installed:
            self.kernel.platform.cpu.transfer_hook = self._on_transfer
            self._installed = True

    # -- the hardware check ------------------------------------------------

    def _on_transfer(self, from_eip, to_eip):
        for base, end, cfg in self._monitored.values():
            if base <= from_eip < end:
                break
        else:
            return  # transfer from unmonitored code: not our problem
        self.checks += 1
        self.kernel.clock.charge(CFI_CHECK_CYCLES)
        if not (base <= to_eip < end):
            return  # leaving the region: EA-MPU territory
        reason = cfg.validate(from_eip - base, to_eip - base)
        if reason is not None:
            violation = CfiViolation(from_eip, to_eip, reason)
            self.violations.append(violation)
            self.kernel.emit(
                "cfi-violation",
                from_eip=from_eip,
                to_eip=to_eip,
                reason=reason,
            )
            raise violation
