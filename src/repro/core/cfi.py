"""Hardware-assisted runtime attack detection - control-flow integrity.

The paper's second future-work item: "new hardware-assisted runtime
attack detection" (Section 8), motivated by its own observation that
"code reuse attacks pose a severe threat on diverse platforms including
embedded systems" (footnote 6).

The EA-MPU already blocks *inter*-task code reuse (entry-point
enforcement), but a task can still be hijacked **within its own code
region**: a corrupted return address redirects execution to an
attacker-chosen gadget inside the task, which the EA-MPU cannot see.
The :class:`CfiWatchdog` closes that gap:

* at load time, :class:`ControlFlowGraph` extracts the task's valid
  control-flow edges from its (position-independent) binary - direct
  branch/call targets as encoded, plus the set of valid *return sites*
  (instructions immediately following a ``call``);
* at runtime the watchdog sits on the core's control-transfer port
  (``cpu.transfer_hook``) and validates every taken transfer inside a
  monitored region: direct branches must go where the binary says, and
  returns must land on a call site's continuation (classic
  coarse-grained CFI);
* a violation raises :class:`CfiViolation`, which the kernel treats
  like any other hardware fault: the offending task is killed, the
  platform keeps running.

The check is modelled as hardware (a couple of cycles per transfer);
the overhead bench quantifies it against unmonitored execution.
"""

from __future__ import annotations

from repro.analysis.edges import EdgeModel
from repro.errors import HardwareFault
from repro.hw.platform import FirmwareComponent

#: Modelled hardware cost of one CFI edge check.
CFI_CHECK_CYCLES = 2


class CfiViolation(HardwareFault):
    """A control transfer violated the task's extracted CFG."""

    def __init__(self, from_eip, to_eip, reason):
        self.from_eip = from_eip
        self.to_eip = to_eip
        self.reason = reason
        super().__init__(
            "CFI violation: 0x%08X -> 0x%08X (%s)" % (from_eip, to_eip, reason)
        )


class ControlFlowGraph(EdgeModel):
    """Static control-flow edges of a task image (link-base-0 offsets).

    A thin alias over :class:`repro.analysis.edges.EdgeModel`: the
    branch-target decoding the watchdog used to carry privately now
    comes from the :class:`~repro.analysis.cfg.CodeModel` linear sweep,
    so ``repro.analysis`` owns edge extraction for both the online CFI
    check and the offline CFA path verifier.
    """


class CfiWatchdog(FirmwareComponent):
    """The runtime attack detector.

    Conceptually a hardware block beside the EA-MPU; registered as a
    firmware component so it has an identity in the trusted-component
    inventory.  Tasks are enrolled explicitly (monitoring costs a
    couple of cycles per transfer, so an integrator enables it for the
    tasks that warrant it).
    """

    NAME = "cfi-watchdog"

    def __init__(self, kernel):
        super().__init__()
        self.kernel = kernel
        #: tid -> (base, end, ControlFlowGraph)
        self._monitored = {}
        #: Count of checks performed (overhead accounting).
        self.checks = 0
        #: Violations detected: list of CfiViolation.
        self.violations = []
        self._installed = False

    # -- enrolment ----------------------------------------------------------

    def monitor_task(self, task):
        """Extract the task's CFG and start monitoring it."""
        if task.image is None:
            raise HardwareFault("cannot monitor a task without an image")
        cfg = ControlFlowGraph.from_image(task.image)
        self._monitored[task.tid] = (task.base, task.end, cfg)
        self._install()
        return cfg

    def unmonitor_task(self, task):
        """Stop monitoring ``task`` (unload/update)."""
        self._monitored.pop(task.tid, None)

    def monitored_count(self):
        """Number of enrolled tasks."""
        return len(self._monitored)

    def _install(self):
        if not self._installed:
            self.kernel.platform.cpu.transfer_hook = self._on_transfer
            self._installed = True

    # -- the hardware check ------------------------------------------------

    def _on_transfer(self, from_eip, to_eip):
        for base, end, cfg in self._monitored.values():
            if base <= from_eip < end:
                break
        else:
            return  # transfer from unmonitored code: not our problem
        self.checks += 1
        self.kernel.clock.charge(CFI_CHECK_CYCLES)
        if not (base <= to_eip < end):
            return  # leaving the region: EA-MPU territory
        reason = cfg.validate(from_eip - base, to_eip - base)
        if reason is not None:
            violation = CfiViolation(from_eip, to_eip, reason)
            self.violations.append(violation)
            self.kernel.emit(
                "cfi-violation",
                from_eip=from_eip,
                to_eip=to_eip,
                reason=reason,
            )
            raise violation
