"""Secure storage.

"Secure storage is realized as a secure task.  For each task a task key
K_t = HMAC(id_t | K_p) is generated which is bound to the task identity
(id_t) and the platform (K_p). ... All data a task sends to the secure
storage task get encrypted with K_t.  Since id_t is included in K_t a
task that tries to access data stored before will only succeed if it
has the same id_t as the task that stored the data, i.e., if it is the
same task." (Section 3)

The vault persists across task unload/reload (that is the point: a task
re-loaded later - even at a different address - recovers its data, while
a *modified* task, whose digest differs, cannot).  Blobs are encrypted
with XTEA-CTR under K_t and integrity-protected with an HMAC tag, both
keyed per task identity.
"""

from __future__ import annotations

import struct

from repro import cycles
from repro.crypto.compare import constant_time_equal
from repro.crypto.hmac import hmac_sha1
from repro.crypto.kdf import derive_task_key
from repro.crypto.xtea import xtea_ctr
from repro.errors import SecureStorageError
from repro.hw.platform import FirmwareComponent
from repro.rtos.task import NativeCall


def _chunked_charge(total, chunk):
    """Yield ``NativeCall.charge`` records summing to ``total``."""
    remaining = total
    while remaining > 0:
        step = min(chunk, remaining)
        remaining -= step
        yield NativeCall.charge(step)


class SecureStorage(FirmwareComponent):
    """The secure storage trusted task."""

    NAME = "secure-storage"

    def __init__(self, kernel, rtm, key_store):
        super().__init__()
        self.kernel = kernel
        self.rtm = rtm
        self.key_store = key_store
        #: identity -> {slot_name: (nonce, ciphertext, tag)}
        self._vault = {}
        self._nonce_counter = 0

    def _publish(self, kind, task=None, **data):
        """Publish a storage event on the observability bus."""
        bus = self.kernel.obs
        if bus is not None:
            bus.publish("tc", kind, task=task, component=self.NAME, **data)

    # -- key handling ----------------------------------------------------------

    def task_key(self, identity):
        """Derive K_t = HMAC(id_t | K_p) for a task identity."""
        platform_key = self.key_store.read_key(actor=self.base)
        self.kernel.clock.charge(cycles.KEY_DERIVATION)
        return derive_task_key(platform_key, identity)

    def _require_identity(self, task):
        entry = self.rtm.lookup_task(task)
        if entry is None:
            raise SecureStorageError(
                "task %s is not measured/registered; secure storage is "
                "identity-bound" % task.name
            )
        return entry.identity

    # -- the storage API (identification comes from secure IPC: the
    #    requesting task is whoever the kernel says sent the request,
    #    which the IPC origin check authenticated) -------------------------

    def store(self, task, slot_name, payload):
        """Encrypt ``payload`` under the caller's K_t and keep it."""
        identity = self._require_identity(task)
        key = self.task_key(identity)
        self._nonce_counter += 1
        nonce = struct.pack("<I", self._nonce_counter)
        ciphertext = xtea_ctr(key[:16], nonce, payload)
        blocks = (len(payload) + 7) // 8
        self.kernel.clock.charge(blocks * cycles.XTEA_PER_BLOCK)
        tag = hmac_sha1(key, nonce + bytes(slot_name, "utf-8") + ciphertext)
        self.kernel.clock.charge(cycles.ATTEST_MAC)
        self._vault.setdefault(bytes(identity), {})[slot_name] = (
            nonce,
            ciphertext,
            tag,
        )
        self._publish(
            "storage-store", task=task.name, slot=slot_name, bytes=len(payload)
        )

    def retrieve(self, task, slot_name):
        """Decrypt and return the caller's blob for ``slot_name``.

        Raises :class:`SecureStorageError` when the caller's identity
        has no such blob - including the case where a *modified* task
        (different digest) tries to read data its predecessor stored.
        """
        identity = self._require_identity(task)
        blobs = self._vault.get(bytes(identity), {})
        if slot_name not in blobs:
            raise SecureStorageError(
                "no blob %r stored under this task identity" % slot_name
            )
        nonce, ciphertext, tag = blobs[slot_name]
        key = self.task_key(identity)
        expected = hmac_sha1(key, nonce + bytes(slot_name, "utf-8") + ciphertext)
        self.kernel.clock.charge(cycles.ATTEST_MAC)
        if not constant_time_equal(expected, tag):
            raise SecureStorageError("blob %r failed integrity check" % slot_name)
        blocks = (len(ciphertext) + 7) // 8
        self.kernel.clock.charge(blocks * cycles.XTEA_PER_BLOCK)
        self._publish(
            "storage-retrieve",
            task=task.name,
            slot=slot_name,
            bytes=len(ciphertext),
        )
        return xtea_ctr(key[:16], nonce, ciphertext)

    def delete(self, task, slot_name):
        """Remove the caller's blob for ``slot_name``."""
        identity = self._require_identity(task)
        blobs = self._vault.get(bytes(identity), {})
        if slot_name not in blobs:
            raise SecureStorageError("no blob %r to delete" % slot_name)
        del blobs[slot_name]

    def slots_of(self, task):
        """Slot names stored under the caller's identity."""
        identity = self._require_identity(task)
        return sorted(self._vault.get(bytes(identity), {}))

    # -- live update support -----------------------------------------------------

    #: Upper bound on one non-preemptible reseal work chunk (cycles).
    RESEAL_CHUNK = 6_000

    def reseal_steps(self, old_identity, new_identity):
        """Interruptible re-seal: move every blob from one task identity
        to another, yielding :class:`NativeCall` charges in bounded
        chunks so real-time tasks keep their deadlines while an update
        is in flight.

        Only the trusted Task Updater drives this, and only after
        verifying a provider's update token - re-sealing is exactly the
        capability that must NOT exist for anyone else, since it would
        break the identity binding.  Returns the number of blobs moved
        (via the generator's ``StopIteration`` value).
        """
        old_blobs = self._vault.pop(bytes(old_identity), None)
        if not old_blobs:
            return 0
        # Key derivations (the raw_key read is EA-MPU-gated as usual).
        platform_key = self.key_store.read_key(actor=self.base)
        old_key = derive_task_key(platform_key, old_identity)
        new_key = derive_task_key(platform_key, new_identity)
        yield from _chunked_charge(2 * cycles.KEY_DERIVATION, self.RESEAL_CHUNK)

        moved = 0
        target = self._vault.setdefault(bytes(new_identity), {})
        for slot_name, (nonce, ciphertext, tag) in old_blobs.items():
            expected = hmac_sha1(
                old_key, nonce + bytes(slot_name, "utf-8") + ciphertext
            )
            if not constant_time_equal(expected, tag):
                raise SecureStorageError(
                    "blob %r failed integrity check during reseal" % slot_name
                )
            plaintext = xtea_ctr(old_key[:16], nonce, ciphertext)
            self._nonce_counter += 1
            new_nonce = struct.pack("<I", self._nonce_counter)
            new_ciphertext = xtea_ctr(new_key[:16], new_nonce, plaintext)
            new_tag = hmac_sha1(
                new_key, new_nonce + bytes(slot_name, "utf-8") + new_ciphertext
            )
            blocks = (len(plaintext) + 7) // 8
            yield from _chunked_charge(
                2 * blocks * cycles.XTEA_PER_BLOCK + 2 * cycles.ATTEST_MAC,
                self.RESEAL_CHUNK,
            )
            target[slot_name] = (new_nonce, new_ciphertext, new_tag)
            moved += 1
        return moved

    def reseal(self, old_identity, new_identity):
        """Synchronous wrapper around :meth:`reseal_steps`."""
        steps = self.reseal_steps(old_identity, new_identity)
        moved = 0
        while True:
            try:
                call = next(steps)
            except StopIteration as stop:
                moved = stop.value or 0
                break
            self.kernel.clock.charge(call.value)
        return moved

    # -- persistence oracle for tests --------------------------------------------

    def raw_blob(self, identity, slot_name):
        """The stored (nonce, ciphertext, tag) triple - flash-dump oracle
        for tests that check ciphertexts leak nothing."""
        return self._vault.get(bytes(identity), {}).get(slot_name)
