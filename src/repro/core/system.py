"""The TyTAN system facade.

:class:`TyTAN` assembles the full stack of Figure 1 - hardware platform,
FreeRTOS-like kernel, and the six trusted components - runs secure boot,
and exposes the public API a task provider or integrator uses:

* build and load tasks (from assembly source or linked images),
  normal or secure, dynamically at runtime;
* unload / suspend / resume tasks;
* secure IPC between tasks;
* local and remote attestation;
* secure storage;
* the run loop (:meth:`TyTAN.run`).

:func:`build_freertos_baseline` builds the same kernel *without* any
TyTAN component - the plain-FreeRTOS baseline every comparison table in
the paper is measured against.
"""

from __future__ import annotations

from repro.hw.exceptions import Vector
from repro.hw.platform import MachineConfig, Platform
from repro.isa.assembler import assemble
from repro.image.linker import link
from repro.rtos.kernel import Kernel

from repro.core.int_mux import IntMux, TyTANContextPolicy
from repro.core.ipc import IPCProxy
from repro.core.loader import TaskLoader
from repro.core.mpu_driver import EAMPUDriver
from repro.core.remote_attest import RemoteAttest, Verifier
from repro.core.rtm import RTM
from repro.core.secure_boot import SecureBoot
from repro.core.secure_storage import SecureStorage

#: Synchronous-IPC trap vector (async IPC uses :data:`Vector.IPC`).
VECTOR_IPC_SYNC = 0x24


def _fill_component_page(platform, component):
    """Give a component page deterministic pseudo-binary contents so
    secure boot has real bytes to measure."""
    seed = component.NAME.encode("utf-8")
    page = bytearray(component.size)
    for index in range(component.size):
        page[index] = (seed[index % len(seed)] + index * 131) & 0xFF
    platform.memory.write_raw(component.base, bytes(page))


class TyTAN:
    """A booted TyTAN system."""

    def __init__(self, config=None):
        self.platform = Platform(config if config is not None else MachineConfig())
        self.kernel = Kernel(self.platform)

        # -- trusted components --------------------------------------------
        self.mpu_driver = self.platform.register_firmware(
            EAMPUDriver(self.platform.mpu, self.platform.clock)
        )
        self.int_mux = self.platform.register_firmware(IntMux(self.kernel))
        self.rtm = self.platform.register_firmware(RTM(self.kernel))
        self.ipc = self.platform.register_firmware(
            IPCProxy(self.kernel, self.rtm, self.mpu_driver)
        )
        self.remote_attest = self.platform.register_firmware(
            RemoteAttest(self.kernel, self.rtm, self.platform.key_store)
        )
        self.secure_storage = self.platform.register_firmware(
            SecureStorage(self.kernel, self.rtm, self.platform.key_store)
        )
        for component in (
            self.kernel.trap_gate,
            self.mpu_driver,
            self.int_mux,
            self.rtm,
            self.ipc,
            self.remote_attest,
            self.secure_storage,
        ):
            _fill_component_page(self.platform, component)

        # -- context policy: secure tasks go through the Int Mux ---------
        self.kernel.context_policy = TyTANContextPolicy(self.kernel, self.int_mux)

        # -- loader ------------------------------------------------------------
        self.loader = TaskLoader(self.kernel, self.mpu_driver, self.rtm)
        # Any deleted task gives back its EA-MPU slots (native services
        # exiting on their own bypass the loader's unload path).
        self.kernel.add_delete_hook(self.mpu_driver.unprotect_task)

        # -- task updater (the paper's future-work extension) ---------------
        from repro.core.update import TaskUpdater

        self.updater = self.platform.register_firmware(
            TaskUpdater(
                self.kernel,
                self.loader,
                self.rtm,
                self.mpu_driver,
                self.secure_storage,
                self.platform.key_store,
            )
        )
        _fill_component_page(self.platform, self.updater)

        # -- CFI watchdog (future-work extension: runtime attack
        #    detection; opt-in per task via enable_cfi) -----------------
        from repro.core.cfi import CfiWatchdog

        self.cfi = self.platform.register_firmware(CfiWatchdog(self.kernel))
        _fill_component_page(self.platform, self.cfi)

        # -- CFA monitor (control-flow attestation: path-hashed
        #    execution evidence; opt-in per task via enable_cfa) --------
        from repro.cfa.engine import CfaEngine

        self.cfa = self.platform.register_firmware(
            CfaEngine(self.kernel, self.rtm, self.remote_attest)
        )
        _fill_component_page(self.platform, self.cfa)

        # -- trap wiring --------------------------------------------------------
        # Bound methods, not lambdas: a deep-copied system (the fleet's
        # snapshot-fork boot) must dispatch traps into its own IPC
        # proxy, and lambdas would keep closing over this instance.
        self.kernel.register_trap(Vector.IPC, self._ipc_trap_async)
        self.kernel.register_trap(VECTOR_IPC_SYNC, self._ipc_trap_sync)
        self.kernel.register_trap(Vector.ATTEST, self._attest_trap)
        self.kernel.register_trap(Vector.STORAGE, self._storage_trap)

        # -- secure boot -----------------------------------------------------------
        self.secure_boot = SecureBoot(self.platform, self.kernel, self.mpu_driver)
        self.boot_log = self.secure_boot.boot(
            {
                "int_mux": self.int_mux,
                "ipc_proxy": self.ipc,
                "rtm": self.rtm,
                "remote_attest": self.remote_attest,
                "secure_storage": self.secure_storage,
                "task_updater": self.updater,
            }
        )

    # -- task construction --------------------------------------------------

    def build_image(self, source, name, stack_size=512):
        """Assemble and link ``source`` into a loadable task image."""
        return link(assemble(source, name), name=name, stack_size=stack_size)

    def load_task(
        self,
        image,
        secure=True,
        priority=1,
        name=None,
        measure=None,
        verify=None,
        verify_policy=None,
    ):
        """Load a task image synchronously; returns the TCB.

        ``verify`` selects the loader's static admission gate
        (``"reject"`` / ``"warn"`` / ``"off"``); ``None`` uses the
        loader default.  See :mod:`repro.analysis`.
        """
        result = self.loader.load_synchronously(
            image,
            secure=secure,
            priority=priority,
            name=name,
            measure=measure,
            verify=verify,
            verify_policy=verify_policy,
        )
        return result.task

    def load_task_async(self, image, secure=True, priority=1, name=None, measure=None, loader_priority=0, verify=None, verify_policy=None):
        """Start an interruptible background load; returns a LoadResult."""
        return self.loader.spawn_load_task(
            image,
            loader_priority=loader_priority,
            secure=secure,
            priority=priority,
            name=name,
            measure=measure,
            verify=verify,
            verify_policy=verify_policy,
        )

    def load_source(
        self,
        source,
        name,
        secure=True,
        priority=1,
        stack_size=512,
        verify=None,
        verify_policy=None,
    ):
        """Assemble, link, and load in one call; returns the TCB."""
        return self.load_task(
            self.build_image(source, name, stack_size),
            secure=secure,
            priority=priority,
            verify=verify,
            verify_policy=verify_policy,
        )

    def unload_task(self, task):
        """Unload a task and reclaim its memory."""
        self.cfi.unmonitor_task(task)
        self.cfa.unenroll_task(task)
        self.loader.unload(task)

    def suspend_task(self, task):
        """Suspend a loaded task."""
        self.loader.suspend(task)

    def resume_task(self, task):
        """Resume a suspended task."""
        self.loader.resume(task)

    def create_service_task(
        self, name, priority, factory, secure=True, memory_size=256, protect=None
    ):
        """Create a native (HLE) task, e.g. an application service.

        Secure services get an EA-MPU rule over their memory (inbox,
        stack) like any secure task; pass ``protect=False`` to skip it
        (e.g. for large swarms of test fixtures that would exhaust the
        dynamic slots).
        """
        from repro.rtos.task import TaskType

        task = self.kernel.create_native_task(
            name,
            priority,
            factory,
            task_type=TaskType.SECURE if secure else TaskType.NORMAL,
            memory_size=memory_size,
        )
        if protect is None:
            protect = secure
        if protect:
            os_range = (
                self.platform.config.os_code_base,
                self.platform.config.os_code_base
                + self.platform.config.os_code_size,
            )
            self.mpu_driver.protect_task(
                task, os_code_range=None if secure else os_range
            )
        return task

    # -- IPC ----------------------------------------------------------------

    def send_message(self, sender, receiver_identity64, words, sync=False):
        """Native-path secure IPC send; returns the proxy status."""
        status, _ = self.ipc.send(sender, receiver_identity64, words, sync=sync)
        return status

    def read_message(self, task):
        """Read and clear ``task``'s inbox; ``None`` when empty."""
        return self.ipc.read_inbox(task)

    # -- live task update ---------------------------------------------------------

    def make_update_authority(self, provider=b""):
        """Provider-side token signer (shares K_p out of band)."""
        from repro.core.update import UpdateAuthority

        return UpdateAuthority(self.platform.key_store.raw_key(), provider)

    def update_task(self, task, new_image, token, provider=b""):
        """Apply an authorized live update synchronously; returns the
        :class:`~repro.core.update.UpdateResult`."""
        was_monitored = task.tid in self.cfi._monitored
        cfa_state = self.cfa._tasks.get(task.tid)
        was_recorded = cfa_state is not None and cfa_state.attached
        if was_recorded:
            # The path log describes the old binary; close it out.
            self.cfa.unenroll_task(task)
            self.cfa.discard(task.tid)
        result = self.updater.update_synchronously(task, new_image, token, provider)
        if was_monitored:
            # Re-extract the CFG for the new binary at its new base.
            self.cfi.monitor_task(task)
        if was_recorded:
            # Fresh recorder under the new binary's identity.
            self.cfa.enroll_task(task)
        return result

    def enable_cfi(self, task):
        """Enroll ``task`` with the runtime attack detector; returns
        the extracted control-flow graph."""
        return self.cfi.monitor_task(task)

    def enable_cfa(self, task, segment_runs=None, max_segments=None):
        """Enroll ``task`` with the control-flow-attestation monitor;
        returns its :class:`~repro.cfa.recorder.PathRecorder`."""
        return self.cfa.enroll_task(
            task, segment_runs=segment_runs, max_segments=max_segments
        )

    def cfa_evidence(self, name, nonce, provider=b""):
        """Generate a MACed CFA evidence record for task ``name``."""
        return self.cfa.evidence_report(name, nonce, provider)

    def update_task_async(self, task, new_image, token, provider=b"", priority=0):
        """Start a preemptible background update."""
        return self.updater.spawn_update_task(
            task, new_image, token, provider, priority=priority
        )

    # -- attestation ------------------------------------------------------------

    def local_attest(self, task):
        """Local attestation: the RTM-held identity of ``task``."""
        return self.rtm.local_attest(task)

    def remote_attest_task(self, task, nonce, provider=b""):
        """Produce a remote attestation report for ``task``."""
        return self.remote_attest.attest(task, nonce, provider)

    def make_verifier(self, provider=b""):
        """A :class:`Verifier` sharing this platform's key out of band."""
        return Verifier(self.platform.key_store.raw_key(), provider)

    # -- storage ----------------------------------------------------------------

    def store(self, task, slot_name, payload):
        """Store ``payload`` under ``task``'s identity-bound key."""
        self.secure_storage.store(task, slot_name, payload)

    def retrieve(self, task, slot_name):
        """Retrieve a blob stored by (the same binary as) ``task``."""
        return self.secure_storage.retrieve(task, slot_name)

    # -- execution ----------------------------------------------------------------

    def run(self, max_cycles=None, until=None):
        """Run the kernel; returns a
        :class:`~repro.rtos.kernel.RunResult`."""
        return self.kernel.run(max_cycles=max_cycles, until=until)

    @property
    def clock(self):
        """The platform cycle clock."""
        return self.platform.clock

    @property
    def obs(self):
        """The platform's observability bus (:mod:`repro.obs`)."""
        return self.platform.obs

    # -- ISA trap handlers for IPC / attest / storage -----------------------------

    def _ipc_trap_async(self, kernel, task):
        """``int 0x21``: asynchronous secure-IPC send."""
        return self.ipc.handle_trap(kernel, task, sync=False)

    def _ipc_trap_sync(self, kernel, task):
        """``int 0x24``: synchronous secure-IPC send."""
        return self.ipc.handle_trap(kernel, task, sync=True)

    def _attest_trap(self, kernel, task):
        """``int 0x22``: attest the calling task; report goes to its inbox.

        EBX carries a 32-bit nonce.  The report (identity | MAC prefix)
        is written into the task's inbox message words; EAX returns 0 on
        success, 1 when the task is unregistered.
        """
        regs = kernel.platform.cpu.regs
        nonce = regs.read(3).to_bytes(4, "little")  # EBX
        try:
            report = self.remote_attest.attest(task, nonce)
        except Exception:
            regs.write(0, 1)
            kernel.platform.engine.hw_return(kernel.platform.cpu)
            return False
        mac_words = [
            int.from_bytes(report.mac[4 * index : 4 * index + 4], "little")
            for index in range(4)
        ]
        delivered = self.ipc.deliver_system_message(
            task, mac_words, b"ATTESTSV"
        )
        regs.write(0, 0 if delivered else 2)
        kernel.platform.engine.hw_return(kernel.platform.cpu)
        return False

    def _storage_trap(self, kernel, task):
        """``int 0x23``: tiny register-level storage for ISA tasks.

        EBX selects the operation (0 = store, 1 = load), ECX is the
        slot number, EDX the value.  Values are encrypted under K_t like
        any other blob.  EAX returns 0 on success.
        """
        regs = kernel.platform.cpu.regs
        op = regs.read(3)  # EBX
        slot = "reg-slot-%d" % regs.read(1)  # ECX
        try:
            if op == 0:
                payload = regs.read(2).to_bytes(4, "little")  # EDX
                self.secure_storage.store(task, slot, payload)
                regs.write(0, 0)
            elif op == 1:
                payload = self.secure_storage.retrieve(task, slot)
                regs.write(2, int.from_bytes(payload[:4], "little"))
                regs.write(0, 0)
            else:
                regs.write(0, 0xFFFFFFFF)
        except Exception:
            regs.write(0, 1)
        kernel.platform.engine.hw_return(kernel.platform.cpu)
        return False


def build_freertos_baseline(config=None):
    """A plain FreeRTOS system: same platform and kernel, no TyTAN.

    No EA-MPU rules, no Int Mux (OS context policy), no RTM/IPC/attest.
    This is the baseline of Tables 2, 3, 4, and 8.
    """
    platform = Platform(config if config is not None else MachineConfig())
    kernel = Kernel(platform)
    loader = TaskLoader(kernel, mpu_driver=None, rtm=None)
    return platform, kernel, loader
