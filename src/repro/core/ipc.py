"""The secure IPC proxy.

"The sender S loads the message m and the identity id_R of the receiver
R into the CPU registers and issues an interrupt.  This invokes the IPC
proxy, which obtains the origin of the interrupt from the hardware and
determines S's identity id_S. ... Then the IPC proxy writes m and id_S
to the memory of R.  This implicitly authenticates m and id_S since the
EA-MPU ensures that only the IPC proxy can write to R's memory."
(Sections 3 and 4)

Reproduced behaviours:

* **Sender authentication by interrupt origin** - the proxy reads the
  latched origin EIP from the exception engine and resolves it to the
  sending task; a task cannot claim another's identity because the
  origin is hardware-provided.
* **Receiver addressing by truncated identity** - the 64-bit prefix of
  the receiver's digest (footnote 9) is looked up in the RTM registry.
* **Implicit authentication** - the message and sender identity are
  written into the receiver's inbox *by the proxy* (its EA-MPU rule is
  the only one allowing that write), so the receiver trusts them.
* **Sync vs async** - synchronous sends hand the CPU to the receiver
  (the proxy "branches to R"); asynchronous sends let the sender
  continue and the receiver finds the message at its next activation.
* **Shared memory** - for bulk data the proxy can install a dedicated
  EA-MPU rule making a buffer accessible to exactly the two endpoints.

Costs are the Section 6 numbers: the proxy path totals 1,208 cycles in
the reference configuration and the receiver's entry routine adds 116.
"""

from __future__ import annotations

from repro import cycles
from repro.errors import IPCError
from repro.hw.ea_mpu import MpuRule, Perm
from repro.hw.platform import FirmwareComponent
from repro.rtos.syscalls import IpcAbi
from repro.rtos.task import (
    INBOX_ENTRIES,
    INBOX_ENTRY_BYTES,
    INBOX_MSG,
    INBOX_RD,
    INBOX_SENDER,
    INBOX_SLOTS,
    INBOX_WR,
    TaskState,
)

#: Sender identity recorded for unmeasured (normal, anonymous) tasks.
ANONYMOUS_ID64 = b"\x00" * 8


class IPCProxy(FirmwareComponent):
    """The trusted IPC proxy component."""

    NAME = "ipc-proxy"

    def __init__(self, kernel, rtm, mpu_driver=None):
        super().__init__()
        self.kernel = kernel
        self.rtm = rtm
        self.mpu_driver = mpu_driver
        #: Count of delivered messages (diagnostics).
        self.delivered = 0
        #: Breakdown of the last send (Section 6 bench hook).
        self.last_send = None
        #: Active shared-memory windows: (task_a, task_b) -> slot.
        self._shared_windows = {}

    def _publish(self, kind, task=None, **data):
        """Publish a proxy event on the observability bus."""
        bus = self.kernel.obs
        if bus is not None:
            bus.publish("tc", kind, task=task, component=self.NAME, **data)

    # -- trap entry (ISA tasks) ---------------------------------------------

    def handle_trap(self, kernel, sender_task, sync=False):
        """Handle an ``int 0x21``/``0x24`` IPC trap from an ISA task.

        Returns ``True`` when the kernel slice must end (sync handover),
        ``False`` when the sender continues.
        """
        regs = kernel.platform.cpu.regs
        message = [regs.read(index) for index in IpcAbi.MSG_REGS]
        id_lo = regs.read(IpcAbi.ID_LO_REG)
        id_hi = regs.read(IpcAbi.ID_HI_REG)
        receiver_id64 = id_lo.to_bytes(4, "little") + id_hi.to_bytes(4, "little")

        status, receiver = self.send(
            sender_task, receiver_id64, message, sync=sync
        )
        regs.write(IpcAbi.MSG_REGS[0], status)

        if status == IpcAbi.STATUS_OK and sync:
            # Synchronous handover: park the sender, run the receiver.
            kernel.context_policy.save_context(sender_task)
            kernel.scheduler.make_ready(sender_task)
            kernel.scheduler.current = None
            return True
        # Sender keeps running: return through the hardware path.
        kernel.platform.engine.hw_return(kernel.platform.cpu)
        return False

    # -- the proxy proper ------------------------------------------------------

    def send(self, sender_task, receiver_id64, message_words, sync=False):
        """Deliver a message; returns ``(status, receiver_or_None)``.

        ``message_words`` is at most
        :data:`repro.cycles.IPC_MAX_MESSAGE_WORDS` 32-bit words.
        """
        if len(message_words) > cycles.IPC_MAX_MESSAGE_WORDS:
            raise IPCError(
                "message exceeds %d register words" % cycles.IPC_MAX_MESSAGE_WORDS
            )
        clock = self.kernel.clock
        start = clock.now

        clock.charge(cycles.IPC_ENTRY)

        # 1. Sender authentication from the hardware interrupt origin.
        clock.charge(cycles.IPC_ORIGIN_LOOKUP)
        sender_id64 = self._authenticate_sender(sender_task)

        # 2. Receiver lookup in the RTM registry (charged per entry).
        entry = self.rtm.lookup64(receiver_id64)
        if entry is None:
            self.last_send = {"status": "unknown-receiver", "cycles": clock.now - start}
            self._publish(
                "ipc-send",
                task=sender_task.name,
                status="unknown-receiver",
                cycles=clock.now - start,
            )
            return IpcAbi.STATUS_UNKNOWN_RECEIVER, None
        receiver = entry.task

        # 3. Inbox write (proxy-only by EA-MPU rule).
        inbox = receiver.inbox_base
        memory = self.kernel.memory
        clock.charge(cycles.IPC_INBOX_BASE)
        read_index = memory.read_u32(inbox + INBOX_RD, actor=self.base)
        write_index = memory.read_u32(inbox + INBOX_WR, actor=self.base)
        if (write_index - read_index) & 0xFFFFFFFF >= INBOX_SLOTS:
            self.last_send = {"status": "inbox-full", "cycles": clock.now - start}
            self._publish(
                "ipc-send",
                task=sender_task.name,
                status="inbox-full",
                receiver=receiver.name,
                cycles=clock.now - start,
            )
            return IpcAbi.STATUS_INBOX_FULL, receiver
        entry = (
            inbox + INBOX_ENTRIES + (write_index % INBOX_SLOTS) * INBOX_ENTRY_BYTES
        )
        padded = list(message_words) + [0] * (
            cycles.IPC_MAX_MESSAGE_WORDS - len(message_words)
        )
        for index, word in enumerate(padded):
            memory.write_u32(entry + INBOX_MSG + 4 * index, word, actor=self.base)
            clock.charge(cycles.IPC_INBOX_PER_WORD)
        for index in range(cycles.IPC_IDENTITY_WORDS):
            word = int.from_bytes(
                sender_id64[4 * index : 4 * index + 4], "little"
            )
            memory.write_u32(entry + INBOX_SENDER + 4 * index, word, actor=self.base)
            clock.charge(cycles.IPC_INBOX_PER_WORD)
        memory.write_u32(
            inbox + INBOX_WR, (write_index + 1) & 0xFFFFFFFF, actor=self.base
        )

        # 4. Delivery: schedule the receiver (sync puts it at the front).
        clock.charge(cycles.IPC_DELIVER)
        self._deliver(receiver, sync)

        self.delivered += 1
        self.last_send = {
            "status": "ok",
            "cycles": clock.now - start,
            "receiver": receiver.name,
        }
        self._publish(
            "ipc-send",
            task=sender_task.name,
            status="ok",
            receiver=receiver.name,
            words=len(message_words),
            sync=sync,
            cycles=clock.now - start,
        )
        return IpcAbi.STATUS_OK, receiver

    def _authenticate_sender(self, sender_task):
        """Resolve the sender's identity from the interrupt origin.

        The origin EIP must lie inside the sender's code region; a
        mismatch means the trap did not come from where the kernel
        thinks and is treated as anonymous.
        """
        origin = self.kernel.platform.engine.last_origin
        if (
            not sender_task.is_native
            and origin is not None
            and not (sender_task.base <= origin < sender_task.end)
        ):
            return ANONYMOUS_ID64
        entry = self.rtm.lookup_task(sender_task)
        if entry is None:
            return ANONYMOUS_ID64
        return entry.identity64

    def _deliver(self, receiver, sync):
        """Hand the message over.

        Synchronous sends "branch to R": the receiver is made runnable
        immediately and placed at the front of its priority level.
        Asynchronous sends leave the receiver's scheduling state alone -
        "R processes m the next time it is scheduled".
        """
        receiver.resume_mode = IpcAbi.MODE_MESSAGE
        if not sync:
            return
        scheduler = self.kernel.scheduler
        if receiver.state in (TaskState.BLOCKED, TaskState.SUSPENDED, TaskState.READY):
            scheduler.make_ready(receiver)
        level = scheduler._ready[receiver.priority]
        if receiver in level:
            level.remove(receiver)
            level.appendleft(receiver)

    def deliver_system_message(self, receiver, words, sender_id64):
        """Write a message from a trusted component into an inbox.

        Used by the attestation and storage trap paths to return data
        to ISA tasks; same ring protocol as :meth:`send`, without the
        proxy-path charging.  Returns ``False`` when the ring is full.
        """
        memory = self.kernel.memory
        inbox = receiver.inbox_base
        read_index = memory.read_u32(inbox + INBOX_RD, actor=self.base)
        write_index = memory.read_u32(inbox + INBOX_WR, actor=self.base)
        if (write_index - read_index) & 0xFFFFFFFF >= INBOX_SLOTS:
            return False
        entry = (
            inbox + INBOX_ENTRIES + (write_index % INBOX_SLOTS) * INBOX_ENTRY_BYTES
        )
        padded = list(words) + [0] * (cycles.IPC_MAX_MESSAGE_WORDS - len(words))
        for index, word in enumerate(padded):
            memory.write_u32(entry + INBOX_MSG + 4 * index, word, actor=self.base)
        for index in range(cycles.IPC_IDENTITY_WORDS):
            word = int.from_bytes(sender_id64[4 * index : 4 * index + 4], "little")
            memory.write_u32(entry + INBOX_SENDER + 4 * index, word, actor=self.base)
        memory.write_u32(
            inbox + INBOX_WR, (write_index + 1) & 0xFFFFFFFF, actor=self.base
        )
        return True

    # -- receive helpers -----------------------------------------------------

    def read_inbox(self, task):
        """Pop one message from ``task``'s inbox *as the task itself*.

        Returns ``(message_words, sender_id64)`` or ``None`` when empty.
        Native tasks call this; ISA tasks read their inbox directly with
        loads (it lies in their own protected region).  Only the read
        index is written, so receiver and proxy never race on a field.
        """
        memory = self.kernel.memory
        actor = task.base
        inbox = task.inbox_base
        read_index = memory.read_u32(inbox + INBOX_RD, actor=actor)
        write_index = memory.read_u32(inbox + INBOX_WR, actor=actor)
        if read_index == write_index:
            return None
        entry = (
            inbox + INBOX_ENTRIES + (read_index % INBOX_SLOTS) * INBOX_ENTRY_BYTES
        )
        words = [
            memory.read_u32(entry + INBOX_MSG + 4 * i, actor=actor)
            for i in range(cycles.IPC_MAX_MESSAGE_WORDS)
        ]
        sender = b"".join(
            memory.read_u32(entry + INBOX_SENDER + 4 * i, actor=actor).to_bytes(
                4, "little"
            )
            for i in range(cycles.IPC_IDENTITY_WORDS)
        )
        memory.write_u32(
            inbox + INBOX_RD, (read_index + 1) & 0xFFFFFFFF, actor=actor
        )
        self._publish("ipc-recv", task=task.name, sender=sender.hex())
        return words, sender

    # -- shared memory ------------------------------------------------------

    def setup_shared_memory(self, task_a, task_b, size):
        """Allocate a buffer accessible to exactly two tasks.

        "To efficiently transfer large amounts of data between tasks,
        the IPC proxy sets up shared memory that is accessible only to
        the communicating tasks."  Returns the buffer base address.
        """
        if self.mpu_driver is None:
            raise IPCError("shared memory needs the EA-MPU driver")
        base = self.kernel.allocator.allocate(size)
        rule = MpuRule(
            "shared:%s+%s" % (task_a.name, task_b.name),
            task_a.base,
            task_a.end,
            base,
            base + size,
            Perm.RW,
            extra_subjects=((task_b.base, task_b.end),),
        )
        slot = self.mpu_driver.configure_rule(rule)
        self._shared_windows[(task_a.tid, task_b.tid)] = (slot, base, size)
        return base

    def teardown_shared_memory(self, task_a, task_b):
        """Release a shared-memory window."""
        key = (task_a.tid, task_b.tid)
        if key not in self._shared_windows:
            raise IPCError("no shared window between these tasks")
        slot, base, _ = self._shared_windows.pop(key)
        self.mpu_driver.release_rule(slot)
        self.kernel.allocator.free(base)
