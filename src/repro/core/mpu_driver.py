"""The EA-MPU driver.

"The dynamic handling of tasks requires the EA-MPU to be dynamically
configurable.  This is performed by the EA-MPU driver, which sets the
memory access control rules in the EA-MPU when loading or unloading a
secure task." (Section 3)

The driver is the only software component allowed to program the MPU
(the MPU checks the programmer's code address).  Installing a rule is
the three-step sequence Table 6 measures:

1. **find a free slot** - linear scan, 57 + 19 cycles per slot probed;
2. **policy check** - the new rule's data range is compared against all
   18 slots for overlaps, 14 + 18 x 45 cycles;
3. **write the rule** - 225 cycles.
"""

from __future__ import annotations

from repro import cycles
from repro.errors import MPUSlotError
from repro.hw.ea_mpu import MpuRule, Perm
from repro.hw.platform import FirmwareComponent


class EAMPUDriver(FirmwareComponent):
    """Trusted driver owning the EA-MPU rule table."""

    NAME = "ea-mpu-driver"

    def __init__(self, mpu, clock):
        super().__init__()
        self.mpu = mpu
        self.clock = clock
        #: Breakdown of the last configure call (Table 6 bench hooks).
        self.last_breakdown = None
        #: Code ranges of the trusted components (Int Mux, IPC proxy,
        #: RTM) that become subjects of every task rule - set by secure
        #: boot.  They need to touch task memory to do their jobs.
        self.trusted_subjects = ()

    # -- boot-time interface -------------------------------------------------

    def install_static_rule(self, index, rule):
        """Program and lock a static rule during secure boot.

        Boot-time installs use hardware privilege and are not charged to
        the Table 6 path (they happen before the system is live).
        """
        self.mpu.program_slot(index, rule, lock=True)

    # -- runtime interface ------------------------------------------------------

    def configure_rule(self, rule):
        """Install ``rule`` in the first free slot (Table 6 sequence).

        Returns the slot index; raises :class:`MPUSlotError` when the
        table is full or the rule's data range overlaps an existing
        protected region.
        """
        slot = self._find_free_slot()
        self._policy_check(rule)
        self.mpu.program_slot(slot, rule, actor=self.base)
        self.clock.charge(cycles.EAMPU_WRITE_RULE)
        self.last_breakdown = {
            "find": cycles.EAMPU_FIND_BASE + (slot + 1) * cycles.EAMPU_FIND_PER_SLOT,
            "policy": cycles.EAMPU_POLICY_BASE
            + self.mpu.slot_count * cycles.EAMPU_POLICY_PER_SLOT,
            "write": cycles.EAMPU_WRITE_RULE,
        }
        self.last_breakdown["overall"] = sum(self.last_breakdown.values())
        return slot

    def release_rule(self, slot):
        """Free a dynamic slot (task unload)."""
        self.clock.charge(cycles.EAMPU_WRITE_RULE)
        self.mpu.clear_slot(slot, actor=self.base)

    def _find_free_slot(self):
        """Scan for the first free slot, charging per probe."""
        self.clock.charge(cycles.EAMPU_FIND_BASE)
        for index in range(self.mpu.slot_count):
            self.clock.charge(cycles.EAMPU_FIND_PER_SLOT)
            if self.mpu.slots[index] is None:
                return index
        raise MPUSlotError("EA-MPU rule table is full")

    def _policy_check(self, rule):
        """Overlap check against every slot (always walks all of them -
        constant time, as a bounded-latency primitive should be)."""
        self.clock.charge(cycles.EAMPU_POLICY_BASE)
        conflict = None
        for existing in self.mpu.slots:
            self.clock.charge(cycles.EAMPU_POLICY_PER_SLOT)
            if existing is None:
                continue
            if rule.object_overlaps(existing.data_start, existing.data_end):
                conflict = existing
        if conflict is not None:
            raise MPUSlotError(
                "rule %r overlaps protected region of %r" % (rule.name, conflict.name)
            )

    # -- rule builders -----------------------------------------------------------

    def build_task_rule(self, task, os_code_range=None):
        """The per-task protection rule the loader installs.

        Secure tasks: only the task itself may touch its memory, and it
        is enterable only at its entry point.  Normal tasks: the OS code
        range is added as a second subject ("accessible to the OS").
        """
        extra = list(self.trusted_subjects)
        entry_point = None
        if task.is_secure:
            entry_point = task.entry
        elif os_code_range is not None:
            extra.append((os_code_range[0], os_code_range[1], Perm.RW))
        return MpuRule(
            "task:%s" % task.name,
            task.base,
            task.end,
            task.base,
            task.end,
            Perm.RWX,
            entry_point=entry_point,
            extra_subjects=extra,
        )

    def protect_task(self, task, os_code_range=None):
        """Install the task rule; records the slot on the TCB."""
        rule = self.build_task_rule(task, os_code_range)
        slot = self.configure_rule(rule)
        task.mpu_slots.append(slot)
        return slot

    def unprotect_task(self, task):
        """Release every slot the task owns."""
        for slot in task.mpu_slots:
            self.release_rule(slot)
        task.mpu_slots = []
