"""TyTAN's trusted software components - the paper's core contribution.

Everything in this package is "trusted software" in Figure 1 of the
paper: loaded by secure boot, isolated by locked EA-MPU rules, and
together forming the trust anchor:

* :mod:`repro.core.secure_boot` - measures and locks the trusted
  components, installs the static EA-MPU rules, re-points the IDT at
  the Int Mux.
* :mod:`repro.core.mpu_driver` - the only software allowed to program
  EA-MPU slots; implements the Table 6 configure sequence (find free
  slot, overlap policy check, write rule).
* :mod:`repro.core.int_mux` - the trusted interrupt multiplexer: saves
  and wipes a secure task's context before the untrusted handler runs
  (Table 2), and the secure entry routine that restores it (Table 3).
* :mod:`repro.core.rtm` - the Root of Trust for Measurement: computes
  position-independent task identities with interruptible, block-wise
  SHA-1 (Table 7) and keeps the identity registry used by IPC.
* :mod:`repro.core.ipc` - the secure IPC proxy (Section 3 / Section 6).
* :mod:`repro.core.remote_attest` - MAC-based remote attestation with
  the derived key K_a.
* :mod:`repro.core.secure_storage` - per-task encrypted storage with
  ``K_t = HMAC(id_t | K_p)``.
* :mod:`repro.core.loader` - dynamic task loading/unloading/suspension
  (Table 4/5), fully interruptible (Table 1).
* :mod:`repro.core.system` - the :class:`~repro.core.system.TyTAN`
  facade: boots the whole stack and exposes the public API.
"""

from repro.core.identity import identity_of_image, measured_bytes
from repro.core.mpu_driver import EAMPUDriver
from repro.core.int_mux import IntMux, TyTANContextPolicy
from repro.core.rtm import RTM
from repro.core.ipc import IPCProxy
from repro.core.remote_attest import RemoteAttest, AttestationReport
from repro.core.secure_storage import SecureStorage
from repro.core.loader import TaskLoader
from repro.core.secure_boot import SecureBoot
from repro.core.system import TyTAN

__all__ = [
    "identity_of_image",
    "measured_bytes",
    "EAMPUDriver",
    "IntMux",
    "TyTANContextPolicy",
    "RTM",
    "IPCProxy",
    "RemoteAttest",
    "AttestationReport",
    "SecureStorage",
    "TaskLoader",
    "SecureBoot",
    "TyTAN",
]
