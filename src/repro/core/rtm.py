"""The Root of Trust for Measurement (RTM).

"To prove the integrity of a task t to a local or remote verifier, the
Root of Trust for Measurement (RTM) task computes a cryptographic hash
function over the binary code of each created task.  This hash digest
serves as identity of the task id_t.  To meet real-time requirements,
the RTM task must be interruptible during the hash calculation."
(Section 3)

Key behaviours reproduced here:

* **Interruptible measurement** - :meth:`RTM.measure` is a generator
  that hashes one 64-byte block per step and yields a
  :class:`~repro.rtos.task.NativeCall` charge between blocks; every
  yield is a kernel preemption point (Table 1's loading experiment
  depends on this).
* **Position-independent measurement** - before hashing, the RTM
  *temporarily reverts* the relocations the loader applied: for every
  relocation site it reads the loaded 32-bit word and subtracts the
  task's base address, reconstructing the link-base-0 image (Section 4,
  "RTM task"; costs from Table 7's address sub-table).
* **Immutability during measurement** - the task being measured is not
  yet schedulable and its memory is already protected by the EA-MPU, so
  it cannot change while the (interruptible) measurement runs.
* **Registry** - the RTM "maintains a list of the identities of all
  loaded tasks and their memory addresses"; the IPC proxy resolves
  receivers through it.  Only the RTM writes it (the EA-MPU would fault
  anyone else; in HLE terms the registry object lives inside the RTM).
"""

from __future__ import annotations

from repro import cycles
from repro.crypto.sha1 import SHA1
from repro.errors import AttestationError
from repro.hw.platform import FirmwareComponent
from repro.rtos.task import NativeCall

from repro.core.identity import measurement_header


class RegistryEntry:
    """One row of the RTM's task registry."""

    def __init__(self, task, identity):
        self.task = task
        self.identity = identity
        self.identity64 = identity[:8]
        self.base = task.base


class RTM(FirmwareComponent):
    """The RTM component."""

    NAME = "rtm"

    def __init__(self, kernel):
        super().__init__()
        self.kernel = kernel
        #: Ordered registry of measured, loaded tasks.
        self._registry = []
        #: Statistics of the last measurement (Table 7 bench hook).
        self.last_measurement = None

    # -- measurement -----------------------------------------------------------

    def measure(self, task, charge_invoke=False, register=True):
        """Generator measuring ``task``; yields charge calls per block.

        ``charge_invoke`` additionally charges the full RTM-task
        invocation overhead (IPC round trip, scheduling, absorbed
        interruptions) that the paper's Table 4 configuration includes -
        spread over chunks so it, too, is interruptible.

        On completion the task's identity is set and (unless
        ``register`` is false - used when measuring a staged update
        image before it goes live) registered.
        """
        if task.image is None:
            raise AttestationError("task %s has no image to measure" % task.name)
        image = task.image
        memory = self.kernel.memory
        stats = {"blocks": 0, "addresses": 0, "cycles": 0}
        start_cycle = self.kernel.clock.now

        if charge_invoke:
            # Invocation overhead, in interruptible chunks.
            remaining = cycles.RTM_INVOKE_OVERHEAD
            chunk = 6_000
            while remaining > 0:
                step = min(chunk, remaining)
                remaining -= step
                yield NativeCall.charge(step)

        yield NativeCall.charge(cycles.MEASURE_SETUP)

        # -- revert relocations (read-only: the original word is
        #    reconstructed on the fly, the loaded image is untouched) ----
        reverted = {}
        relocations = image.relocations
        if not relocations:
            yield NativeCall.charge(cycles.REVERSAL_BASE)
        else:
            yield NativeCall.charge(cycles.REVERSAL_BASE)
            for index, offset in enumerate(relocations):
                cost = (
                    cycles.REVERSAL_FIRST if index == 0 else cycles.REVERSAL_NEXT
                )
                loaded = memory.read_u32(task.base + offset, actor=self.base)
                original = (loaded - task.base) & 0xFFFFFFFF
                reverted[offset] = original
                stats["addresses"] += 1
                yield NativeCall.charge(cost)

        # -- hash header + blob, one 64-byte block at a time -------------
        digest_state = SHA1()
        digest_state.feed(measurement_header(image))
        blob_len = len(image.blob)
        cursor = 0
        while cursor < blob_len:
            take = min(cycles.MEASURE_BLOCK_BYTES, blob_len - cursor)
            chunk_bytes = bytearray(
                memory.read(task.base + cursor, take, actor=self.base)
            )
            # Patch reverted relocation words into the measured stream.
            for offset, original in reverted.items():
                for byte_index in range(4):
                    position = offset + byte_index - cursor
                    if 0 <= position < take:
                        chunk_bytes[position] = (
                            original >> (8 * byte_index)
                        ) & 0xFF
            digest_state.feed(bytes(chunk_bytes))
            compressed = digest_state.compress_pending(max_blocks=1)
            stats["blocks"] += compressed
            cursor += take
            yield NativeCall.charge(cycles.MEASURE_PER_BLOCK)

        yield NativeCall.charge(cycles.MEASURE_FINALIZE)
        identity = digest_state.digest()
        stats["blocks"] = max(
            stats["blocks"], 1
        )  # finalisation always compresses at least once
        stats["cycles"] = self.kernel.clock.now - start_cycle
        self.last_measurement = stats

        task.identity = identity
        if register:
            self.register(task)

    def measure_synchronously(self, task, charge_invoke=False):
        """Drive :meth:`measure` to completion without preemption.

        Used at boot and by benches; the charge calls still advance the
        clock, so costs are identical - only interruptibility differs.
        """
        for call in self.measure(task, charge_invoke=charge_invoke):
            if call.kind == NativeCall.CHARGE:
                self.kernel.clock.charge(call.value)
        return task.identity

    # -- registry ------------------------------------------------------------

    def register(self, task):
        """Record a measured task; replaces a stale entry for the TCB."""
        self.unregister(task)
        self._registry.append(RegistryEntry(task, task.identity))

    def register_service(self, task, label):
        """Register a native (HLE) service task under a label identity.

        Native tasks have no TELF binary; their identity is the digest
        of a ``service:`` label, standing in for the hash of the
        component binary secure boot measured.  This lets native tasks
        be IPC receivers like any measured task.
        """
        identity = SHA1(b"service:" + label.encode("utf-8")).digest()
        task.identity = identity
        self.register(task)
        return identity

    def unregister(self, task):
        """Drop the registry entry of ``task`` (unload)."""
        self._registry = [e for e in self._registry if e.task is not task]

    def lookup64(self, identity64, charge=True):
        """Resolve a truncated identity to a registry entry.

        The linear probe charges per entry inspected (the IPC proxy's
        receiver lookup cost).  Returns ``None`` when unknown.
        """
        if charge:
            self.kernel.clock.charge(cycles.IPC_REGISTRY_BASE)
        for entry in self._registry:
            if charge:
                self.kernel.clock.charge(cycles.IPC_REGISTRY_PER_ENTRY)
            if entry.identity64 == bytes(identity64):
                return entry
        return None

    def lookup_task(self, task):
        """The registry entry for a TCB, or ``None``."""
        for entry in self._registry:
            if entry.task is task:
                return entry
        return None

    def registry_size(self):
        """Number of registered (loaded, measured) tasks."""
        return len(self._registry)

    def identities(self):
        """All registered full identities, in registration order."""
        return [entry.identity for entry in self._registry]

    def local_attest(self, task):
        """Local attestation: return id_t for a loaded task.

        "For local attestation, id_t can be used as both identifier and
        attestation report of t."  The EA-MPU guarantees only the RTM
        can have written it, which is what makes the value trustworthy.
        """
        entry = self.lookup_task(task)
        if entry is None:
            raise AttestationError("task %s is not registered" % task.name)
        return entry.identity
