"""Task identities.

"Each task t has a unique identifier id_t, i.e., the hash digest of its
binary code."  The measurement covers "the code, static data, and
initial stack layout" of the task (Section 4, RTM task), taken over the
*unrelocated* image so the identity is position-independent.

:func:`measured_bytes` defines the canonical byte string the RTM hashes:
a fixed header describing the initial memory layout (entry offset, BSS
size, stack size, relocation count) followed by the link-base-0 blob.
The task's *name* is deliberately excluded - identity is the binary,
not the label.
"""

from __future__ import annotations

import struct

from repro.crypto.sha1 import SHA1

#: Header layout: entry, bss_size, stack_size, relocation count.
_HEADER = struct.Struct("<IIII")

#: Size of the measured header in bytes.
HEADER_BYTES = _HEADER.size


def measurement_header(image):
    """The fixed-size header covering the initial memory layout."""
    return _HEADER.pack(
        image.entry,
        image.bss_size,
        image.stack_size,
        len(image.relocations),
    )


def measured_bytes(image):
    """The canonical measurement input for ``image``."""
    return measurement_header(image) + image.blob


def identity_of_image(image):
    """The 20-byte identity the RTM will compute for ``image``.

    This is the *verifier-side* oracle: a task provider (or remote
    verifier) computes the expected identity from the distributed image
    and compares it against attestation reports.
    """
    return SHA1(measured_bytes(image)).digest()


def identity64_of_image(image):
    """The truncated 64-bit identity used for IPC addressing."""
    return identity_of_image(image)[:8]
