"""One fleet member: a full TyTAN machine behind a NIC.

Every :class:`FleetDevice` boots an independent
:class:`~repro.core.system.TyTAN` (secure boot, trusted components,
EA-MPU rules) with a *per-device* platform key derived from the fleet
seed, attaches a :class:`~repro.hw.nic.NetworkInterface`, and loads the
fleet agent task whose identity the verifier whitelists.  Challenges
arrive as framed datagrams through the NIC; the device decodes them,
asks its Remote Attest component for a report (charging the machine's
own cycle clock), and queues the response frame on the NIC.

A *rogue* device models a compromised member.  Two behaviours
(:class:`~repro.fleet.config.FleetConfig.rogue_mode`):

* ``"tamper"`` - the device runs a tampered agent binary, so its
  reports carry an identity the verifier will not accept: the MAC is
  valid under the device's key, but the measurement is wrong.
* ``"hijack"`` (CFA fleets) - the device runs the *shipped* agent
  binary, but a mode word in its RAM is corrupted after load and
  measurement, steering the agent through a ``pushi gadget; ret``
  return-edge hijack.  The measured identity is untouched - static
  attestation passes - and only the recorded path evidence (an
  impossible return edge) betrays the compromise.
"""

from __future__ import annotations

import struct

from repro.core.identity import identity_of_image
from repro.core.system import TyTAN
from repro.crypto.kdf import derive_key
from repro.crypto.sha1 import SHA1
from repro.errors import AttestationError
from repro.hw.platform import MachineConfig
from repro.image.linker import link
from repro.isa.assembler import assemble
from repro.net.wire import CfaChallenge, CfaResponse, Challenge, Response, decode_message
from repro.sim.workloads import synthetic_image

#: Name under which every device loads the fleet agent task.
AGENT_NAME = "fleet-agent"
#: Image seed of the genuine agent binary.
AGENT_SEED = 11
#: Image seed of the tampered (rogue) agent binary.
ROGUE_SEED = 13

#: The executable agent CFA fleets run (once, at boot) under the path
#: monitor.  Every device ships this exact binary; the trailing ``mode``
#: word decides at *run time* whether the final return is hijacked into
#: the gadget - clean devices leave it 0, hijacked devices have it
#: corrupted in RAM after measurement (see :func:`hijack_mode_address`).
CFA_AGENT_SOURCE = """
.section .text
.global start
start:
    movi ebx, mode
    ld edx, [ebx]
    movi ecx, 6
loop:
    call work
    subi ecx, 1
    cmpi ecx, 0
    jnz loop
    cmpi edx, 0
    jnz hijack
    movi eax, 2
    int 0x20
hijack:
    pushi gadget         ; overwrite the return address
    ret                  ; "returns" into the gadget
gadget:
    movi eax, 2
    int 0x20
work:
    addi eax, 3
    xori eax, 21
    ret
.section .data
mode:
    .word 0
"""

#: The tampered CFA agent (``rogue_mode="tamper"`` in a CFA fleet):
#: one constant differs, so the measured identity differs.
CFA_ROGUE_AGENT_SOURCE = CFA_AGENT_SOURCE.replace("xori eax, 21", "xori eax, 22")

#: Value a hijacked device's mode word is corrupted to.
HIJACK_MODE = 1


def fleet_task_image(rogue=False, cfa=False, rogue_mode="tamper"):
    """The agent task image a device loads.

    Static (non-CFA) fleets keep the synthetic never-executed agent;
    CFA fleets assemble the real executable agent.  ``rogue`` tampers
    the binary only in ``"tamper"`` mode - a hijacked device ships the
    genuine image by construction.
    """
    if cfa or rogue_mode == "hijack":
        tampered = rogue and rogue_mode == "tamper"
        return link(
            assemble(
                CFA_ROGUE_AGENT_SOURCE if tampered else CFA_AGENT_SOURCE,
                AGENT_NAME,
            ),
            name=AGENT_NAME,
            stack_size=256,
        )
    return synthetic_image(
        blocks=3,
        relocations=1,
        name=AGENT_NAME,
        seed=ROGUE_SEED if rogue else AGENT_SEED,
    )


def hijack_mode_offset(image):
    """Link-base-0 offset of the agent's ``mode`` word.

    The mode word is the last ``.data`` word of the agent, so it sits
    in the image's final four bytes.
    """
    return len(image.blob) - 4


def expected_fleet_identity(cfa=False):
    """The agent identity a verifier whitelists (provider-side oracle)."""
    return identity_of_image(fleet_task_image(cfa=cfa))


def device_platform_key(fleet_seed, device_id):
    """The per-device fused platform key K_p.

    Derived from a fleet master secret so device machines and the
    verifier registry agree without shipping key material around -
    this models the out-of-band K_p sharing of the paper's symmetric
    scheme at fleet scale.
    """
    master = SHA1(b"tytan-fleet-%d" % fleet_seed).digest()
    return derive_key(master, b"device", struct.pack("<I", device_id))


class FleetDevice:
    """A booted TyTAN machine speaking the attestation wire protocol."""

    def __init__(
        self,
        device_id,
        fleet_seed=0,
        rogue=False,
        provider=b"",
        obs_enabled=False,
        cfa=False,
        rogue_mode="tamper",
    ):
        self.device_id = int(device_id)
        self.fleet_seed = int(fleet_seed)
        self.provider = bytes(provider)
        self.rogue = bool(rogue)
        self.cfa = bool(cfa)
        self.rogue_mode = rogue_mode
        config = MachineConfig(
            obs_enabled=obs_enabled,
            platform_key=device_platform_key(fleet_seed, device_id),
        )
        self.machine = TyTAN(config)
        self.nic = self.machine.platform.attach_nic()
        image = fleet_task_image(rogue, cfa=cfa, rogue_mode=rogue_mode)
        self.task = self.machine.load_task(image, secure=True, name=AGENT_NAME)
        if cfa:
            # The agent genuinely executes under the path monitor; its
            # evidence outlives the task (the engine retains the path
            # log after exit), so challenges arriving later still get a
            # full report.
            self.machine.enable_cfa(self.task)
            if rogue and rogue_mode == "hijack":
                # Corrupt the mode word *after* load and measurement:
                # the identity is the genuine binary's, but the run
                # takes the gadget return edge.
                self.machine.platform.memory.write_raw(
                    self.task.base + hijack_mode_offset(image),
                    struct.pack("<I", HIJACK_MODE),
                )
            self.machine.run(max_cycles=200_000)
        #: Challenges answered.
        self.handled = 0
        #: Frames that failed to decode.
        self.malformed = 0
        #: Well-formed frames addressed to another device (dropped).
        self.misaddressed = 0

    def rekey(self, device_id=None, fleet_seed=None):
        """Re-identify this machine as another fleet member.

        Re-runs only the per-device work a cold boot would do
        differently: the platform-key derivation and the fuse write.
        Everything attestation-visible besides K_p - the measured task
        identity, the MPU rules, the agent binary - is key-independent
        (secure boot never reads K_p), so a forked-and-rekeyed machine
        answers challenges byte-identically to a cold-booted one.
        """
        if device_id is not None:
            self.device_id = int(device_id)
        if fleet_seed is not None:
            self.fleet_seed = int(fleet_seed)
        self.machine.platform.key_store.rekey(
            device_platform_key(self.fleet_seed, self.device_id)
        )
        return self

    def handle_frame(self, payload):
        """Process one datagram; returns ``(response bytes | None, cycles)``.

        ``cycles`` is the simulated compute cost the machine charged
        while producing the response (key derivation + MAC); the
        orchestrator converts it into fabric time.
        """
        self.nic.deliver(payload)
        start = self.machine.clock.now
        frame = self.nic.take_frame()
        try:
            message = decode_message(frame)
        except AttestationError:
            self.malformed += 1
            return None, self.machine.clock.now - start
        if not isinstance(message, Challenge) or message.device_id != self.device_id:
            self.misaddressed += 1
            return None, self.machine.clock.now - start
        report = self.machine.remote_attest.attest(
            self.task, message.nonce, self.provider
        )
        if isinstance(message, CfaChallenge) and self.cfa:
            evidence = self.machine.cfa_evidence(
                AGENT_NAME, message.nonce, self.provider
            )
            response = CfaResponse(self.device_id, message.seq, report, evidence)
        else:
            response = Response(self.device_id, message.seq, report)
        self.nic.transmit(response.to_bytes())
        self.handled += 1
        return self.nic.pop_outgoing(), self.machine.clock.now - start

    def __repr__(self):
        return "FleetDevice(%d%s, %d handled)" % (
            self.device_id,
            ", rogue" if self.rogue else "",
            self.handled,
        )
