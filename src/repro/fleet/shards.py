"""The sharded verifier tier.

One :class:`~repro.fleet.service.VerifierService` per shard, each
owning the nonce stores and quarantine set of only its own devices.
Devices are placed on shards by :class:`HashRing` - SHA-1 consistent
hashing with virtual nodes - so the assignment is a pure function of
``(salt, vnodes, device_id)`` per shard: growing the shard count only
moves the devices that land on the *new* shard's points, and every
other device keeps its shard (the stability property the tests pin).

:class:`ShardedVerifierService` exposes the same protocol surface as a
single service (``poll`` / ``handle`` / ``next_wakeup`` / ``done``) so
the orchestrator drives 1 shard and 64 shards identically, and rolls
per-shard health up into one :class:`FleetHealth` aggregate.
"""

from __future__ import annotations

import struct
from bisect import bisect_right

from repro.crypto.sha1 import SHA1
from repro.fleet.service import VerifierService


def _point(salt, label):
    """A 64-bit ring coordinate: the first 8 bytes of SHA-1(salt|label)."""
    digest = SHA1(salt + label).digest()
    return struct.unpack(">Q", digest[:8])[0]


class HashRing:
    """Consistent-hash placement of device ids onto shards.

    Each shard contributes ``vnodes`` points at coordinates that depend
    only on ``(salt, shard, vnode)`` - never on the total shard count -
    which is what makes assignments stable as the ring grows: a device
    moves only if a new shard's point lands between the device and its
    old successor point.
    """

    def __init__(self, shards, *, vnodes=64, salt=b"tytan-fleet-ring"):
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        self.shards = int(shards)
        self.vnodes = int(vnodes)
        self.salt = bytes(salt)
        points = []
        for shard in range(self.shards):
            for vnode in range(self.vnodes):
                label = b"shard:%d:%d" % (shard, vnode)
                points.append((_point(self.salt, label), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, device_id):
        """The shard owning ``device_id`` (successor point, wrapping)."""
        coord = _point(self.salt, b"device:%d" % device_id)
        index = bisect_right(self._points, coord)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assign(self, device_ids):
        """Partition ``device_ids`` into ``[ids_of_shard_0, ...]``."""
        buckets = [[] for _ in range(self.shards)]
        for device_id in device_ids:
            buckets[self.shard_for(device_id)].append(device_id)
        return buckets

    def __repr__(self):
        return "HashRing(%d shards x %d vnodes)" % (self.shards, self.vnodes)


class FleetHealth:
    """The fleet-wide health rollup over per-shard reports.

    Behaves as a read-only mapping (``health["attested"]`` etc.) with
    the same top-level keys a single service report has, plus
    ``"shards"``: the per-shard report list.  Latency percentiles are
    recomputed over the *merged* latency population, not averaged from
    per-shard percentiles.
    """

    _SUMMED = (
        "total",
        "attested",
        "pending",
        "quarantined",
        "challenges",
        "retries",
        "timeouts",
        "rejects",
        "stale",
        "malformed",
        "expired",
        "cfa_quarantines",
    )

    def __init__(self, shard_reports, merged_latencies):
        from repro.fleet.service import _percentile

        data = {key: 0 for key in self._SUMMED}
        quarantined = []
        attempts = {}
        for report in shard_reports:
            for key in self._SUMMED:
                data[key] += report[key]
            quarantined.extend(report["quarantined_devices"])
            for count, n in report["attempts_to_attest"].items():
                attempts[count] = attempts.get(count, 0) + n
        quarantined.sort(key=lambda entry: entry["device"])
        latencies = sorted(merged_latencies)
        latency = None
        if latencies:
            latency = {
                "count": len(latencies),
                "p50": _percentile(latencies, 50),
                "p90": _percentile(latencies, 90),
                "p99": _percentile(latencies, 99),
                "max": latencies[-1],
                "mean": round(sum(latencies) / len(latencies), 1),
            }
        data["quarantined_devices"] = quarantined
        data["attempts_to_attest"] = dict(sorted(attempts.items()))
        data["latency_us"] = latency
        data["shards"] = [
            {"shard": index, **report} for index, report in enumerate(shard_reports)
        ]
        self._data = data

    def __getitem__(self, key):
        return self._data[key]

    def __contains__(self, key):
        return key in self._data

    def __iter__(self):
        return iter(self._data)

    def keys(self):
        return self._data.keys()

    def get(self, key, default=None):
        return self._data.get(key, default)

    def to_dict(self):
        """Plain-dict form (what goes into result JSON)."""
        return dict(self._data)

    def __repr__(self):
        return "FleetHealth(%d/%d attested, %d quarantined, %d shards)" % (
            self._data["attested"],
            self._data["total"],
            self._data["quarantined"],
            len(self._data["shards"]),
        )


class ShardedVerifierService:
    """N verifier shards behind the single-service protocol surface."""

    def __init__(
        self,
        registry,
        expected_identity,
        config,
        shard_config,
        *,
        timeout_us=None,
        obs=None,
        store=None,
    ):
        self.ring = HashRing(
            shard_config.shards,
            vnodes=shard_config.vnodes,
            salt=shard_config.salt,
        )
        self.shard_config = shard_config
        self._shard_of = {}
        partitions = [dict() for _ in range(shard_config.shards)]
        for device_id in sorted(registry):
            shard = self.ring.shard_for(device_id)
            self._shard_of[device_id] = shard
            partitions[shard][device_id] = registry[device_id]
        self.shards = [
            VerifierService(
                partition,
                expected_identity,
                config,
                timeout_us=timeout_us,
                obs=obs,
                store=store,
                shard_id=index,
            )
            for index, partition in enumerate(partitions)
        ]
        #: Responses whose device id no shard owns (counted, dropped).
        self.unknown = 0

    def shard_of(self, device_id):
        """The shard index owning ``device_id`` (None if unregistered)."""
        return self._shard_of.get(device_id)

    def preload(self, settled):
        """Pre-settle resumed devices on their owning shards."""
        for shard in self.shards:
            shard.preload(settled)

    # -- protocol surface (same shape as VerifierService) -------------------

    def poll(self, now):
        """Housekeeping on every shard; challenge frames in shard order."""
        out = []
        for shard in self.shards:
            out.extend(shard.poll(now))
        return out

    def next_wakeup(self):
        """Earliest wakeup over every shard."""
        times = [t for t in (s.next_wakeup() for s in self.shards) if t is not None]
        return min(times) if times else None

    def handle(self, device_id, payload, now):
        """Route one delivered datagram to its owning shard."""
        shard = self._shard_of.get(device_id)
        if shard is None:
            self.unknown += 1
            return "unknown"
        return self.shards[shard].handle(device_id, payload, now)

    @property
    def done(self):
        """Whether every shard has settled all its devices."""
        return all(shard.done for shard in self.shards)

    def statuses(self):
        """``{device_id: status}`` across every shard."""
        merged = {}
        for shard in self.shards:
            merged.update(shard.statuses())
        return merged

    def report(self):
        """The :class:`FleetHealth` rollup."""
        merged_latencies = []
        for shard in self.shards:
            merged_latencies.extend(shard.latencies_us())
        return FleetHealth([s.report() for s in self.shards], merged_latencies)

    def __repr__(self):
        return "ShardedVerifierService(%d shards, %d devices)" % (
            len(self.shards),
            len(self._shard_of),
        )
