"""repro.fleet - multi-device attestation orchestration.

* :mod:`repro.fleet.device` - one TyTAN machine behind a NIC, speaking
  the attestation wire protocol.
* :mod:`repro.fleet.executors` - serial and multiprocessing-pool
  device stepping.
* :mod:`repro.fleet.service` - the verifier service: fresh nonces with
  expiry, retry/backoff, quarantine, health reporting.
* :mod:`repro.fleet.orchestrator` - :class:`Fleet`, the end-to-end
  deterministic fleet run.
"""

from repro.fleet.device import (
    FleetDevice,
    device_platform_key,
    expected_fleet_identity,
    fleet_task_image,
)
from repro.fleet.orchestrator import Fleet
from repro.fleet.service import VerifierService

__all__ = [
    "Fleet",
    "FleetDevice",
    "VerifierService",
    "device_platform_key",
    "expected_fleet_identity",
    "fleet_task_image",
]
