"""repro.fleet - multi-device attestation orchestration at scale.

* :mod:`repro.fleet.config` - the typed configuration objects
  (:class:`FleetConfig`, :class:`ShardConfig`, :class:`StoreConfig`;
  :class:`~repro.net.fabric.FabricProfile` re-exported), the single
  construction path of the 1.4 API.
* :mod:`repro.fleet.device` - one TyTAN machine behind a NIC, speaking
  the attestation wire protocol.
* :mod:`repro.fleet.snapshot` - snapshot-fork boot: one secure-booted
  template per device class, forked and rekeyed per device.
* :mod:`repro.fleet.executors` - serial and multiprocessing-pool
  device stepping over boot-mode-aware device pools.
* :mod:`repro.fleet.service` - one verifier shard: fresh nonces with
  tick-time expiry, retry/backoff, quarantine, health reporting.
* :mod:`repro.fleet.shards` - consistent-hash sharding of the verifier
  tier and the :class:`FleetHealth` rollup.
* :mod:`repro.fleet.store` - pluggable attestation-state persistence
  (in-memory or JSONL) with checkpoint/resume.
* :mod:`repro.fleet.orchestrator` - :class:`Fleet`, the end-to-end
  deterministic fleet run.
* :mod:`repro.fleet.result` - :class:`FleetResult`, the typed,
  schema-versioned run outcome.
"""

from repro.fleet.config import FleetConfig, ShardConfig, StoreConfig
from repro.fleet.device import (
    FleetDevice,
    device_platform_key,
    expected_fleet_identity,
    fleet_task_image,
)
from repro.fleet.orchestrator import Fleet
from repro.fleet.result import FleetResult
from repro.fleet.service import VerifierService
from repro.fleet.shards import FleetHealth, HashRing, ShardedVerifierService
from repro.fleet.snapshot import DevicePool, DeviceTemplate
from repro.fleet.store import AttestationStore, JsonlStore, MemoryStore
from repro.net.fabric import FabricProfile

__all__ = [
    "AttestationStore",
    "DevicePool",
    "DeviceTemplate",
    "FabricProfile",
    "Fleet",
    "FleetConfig",
    "FleetDevice",
    "FleetHealth",
    "FleetResult",
    "HashRing",
    "JsonlStore",
    "MemoryStore",
    "ShardConfig",
    "ShardedVerifierService",
    "StoreConfig",
    "VerifierService",
    "device_platform_key",
    "expected_fleet_identity",
    "fleet_task_image",
]
