"""Pluggable persistence for attestation protocol state.

An :class:`AttestationStore` receives the protocol's durable facts as
append-only records - challenges issued, nonces retired, devices
attested or quarantined, epoch boundaries - each stamped with *fabric*
time (never wall clock, so stored runs stay byte-comparable).  Two
backends ship:

* :class:`MemoryStore` - records kept in-process; the default.
* :class:`JsonlStore` - one JSON object per line, appended to a file;
  a run can be killed and re-run with ``StoreConfig(resume=True)`` and
  every device that already settled is not re-challenged.

Record shapes (all have ``t`` = fabric microseconds and ``kind``):

=============  =====================================================
``epoch``      ``{seed, devices, shards}`` - a run started
``challenge``  ``{device, shard, attempt}``
``expire``     ``{device, shard}`` - nonce retired on tick
``attested``   ``{device, shard, attempt, latency_us}``
``quarantine`` ``{device, shard, reason}``
``checkpoint`` ``{attested, quarantined}`` - a run finished
=============  =====================================================

Resume looks only at ``epoch``/``attested``/``quarantine`` records: a
device is *settled* if its latest outcome record in the newest epoch
with the same fleet seed says so.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError


class AttestationStore:
    """Base class: record sink plus the resume query."""

    #: Filesystem path of the backing file, or ``None``.
    path = None

    def __init__(self, resume=False):
        self.resume = bool(resume)
        #: Records appended by this process (not what was loaded).
        self.appended = 0

    # -- write side ---------------------------------------------------------

    def append(self, record):
        """Persist one record dict (must contain ``kind`` and ``t``)."""
        raise NotImplementedError

    def begin_epoch(self, now, *, seed, devices, shards):
        """Mark the start of a run."""
        self.append(
            {
                "t": int(now),
                "kind": "epoch",
                "seed": int(seed),
                "devices": int(devices),
                "shards": int(shards),
            }
        )

    def note_challenge(self, now, device_id, shard, attempt):
        """A challenge frame left the verifier tier."""
        self.append(
            {
                "t": int(now),
                "kind": "challenge",
                "device": int(device_id),
                "shard": int(shard),
                "attempt": int(attempt),
            }
        )

    def note_expire(self, now, device_id, shard):
        """A challenge nonce was retired on tick (timeout eviction)."""
        self.append(
            {"t": int(now), "kind": "expire", "device": int(device_id), "shard": int(shard)}
        )

    def note_attested(self, now, device_id, shard, attempt, latency_us):
        """A device's report verified."""
        self.append(
            {
                "t": int(now),
                "kind": "attested",
                "device": int(device_id),
                "shard": int(shard),
                "attempt": int(attempt),
                "latency_us": int(latency_us),
            }
        )

    def note_quarantined(self, now, device_id, shard, reason):
        """A device was quarantined."""
        self.append(
            {
                "t": int(now),
                "kind": "quarantine",
                "device": int(device_id),
                "shard": int(shard),
                "reason": reason,
            }
        )

    def checkpoint(self, now, *, attested, quarantined):
        """Mark the end of a run and flush everything durable."""
        self.append(
            {
                "t": int(now),
                "kind": "checkpoint",
                "attested": int(attested),
                "quarantined": int(quarantined),
            }
        )
        self.flush()

    def flush(self):
        """Make appended records durable (no-op for memory)."""

    def close(self):
        """Release the backing resource."""

    # -- read side ----------------------------------------------------------

    def records(self):
        """Every stored record, oldest first (loaded + appended)."""
        raise NotImplementedError

    def settled(self, seed):
        """``{device_id: ("attested"|"quarantined", reason|None)}``.

        The resume set: outcomes recorded in the newest epoch whose
        fleet seed matches ``seed``.  Records from epochs with a
        different seed are ignored - a store file reused across
        configurations never leaks outcomes between fleets.
        """
        epoch_matches = False
        outcome = {}
        for record in self.records():
            kind = record.get("kind")
            if kind == "epoch":
                epoch_matches = record.get("seed") == seed
                if epoch_matches:
                    outcome = {}
            elif not epoch_matches:
                continue
            elif kind == "attested":
                outcome[record["device"]] = ("attested", None)
            elif kind == "quarantine":
                outcome[record["device"]] = ("quarantined", record.get("reason"))
        return outcome


class MemoryStore(AttestationStore):
    """Records held in a list; nothing survives the process."""

    def __init__(self, resume=False):
        super().__init__(resume=resume)
        self._records = []

    def append(self, record):
        self._records.append(dict(record))
        self.appended += 1

    def records(self):
        return list(self._records)

    def __repr__(self):
        return "MemoryStore(%d records)" % len(self._records)


class JsonlStore(AttestationStore):
    """Append-only JSON-lines file; the checkpoint/resume backend.

    Keys are sorted and each record is one compact line, so two runs
    writing the same records produce byte-identical files.
    """

    def __init__(self, path, resume=False):
        if not path:
            raise ConfigurationError("jsonl store needs a path")
        super().__init__(resume=resume)
        self.path = str(path)
        # Resume appends to the existing log; a fresh run truncates it.
        self._handle = open(self.path, "a" if resume else "w")

    def append(self, record):
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self.appended += 1

    def flush(self):
        if self._handle is not None:
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def records(self):
        self.flush()
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return []
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                # A torn final line from a killed run: ignore the tail.
                break
        return records

    def __repr__(self):
        return "JsonlStore(%s, %d appended)" % (self.path, self.appended)
