"""The fleet verifier service.

Drives the challenge-response protocol for every registered device:

* **fresh-nonce issuance with expiry** - each challenge carries a nonce
  from the device's :class:`~repro.core.remote_attest.Verifier` (which
  enforces single use) and is only accepted before its deadline;
* **retry with timeout and backoff** - an unanswered challenge times
  out and is reissued with a fresh nonce after an exponentially growing
  backoff, up to ``max_attempts``;
* **quarantine** - devices that exhaust their retries, or whose reports
  are affirmatively rejected ``max_rejects`` times (bad MAC or wrong
  identity - a rogue binary), are quarantined and no longer challenged;
* **health reporting** - per-state device counts, protocol counters,
  and latency percentiles over challenge->attested round trips.

The service is transport-agnostic: :meth:`poll` returns the frames to
send, and the orchestrator feeds delivered datagrams to :meth:`handle`.
Per-device state machine::

    pending --poll--> awaiting --verify ok--> attested
       ^                 |  \\--reject x max_rejects--> quarantined
       |                 v
       +----timeout/backoff   (attempts exhausted -> quarantined)
"""

from __future__ import annotations

from repro.core.remote_attest import Verifier
from repro.errors import AttestationError
from repro.net.wire import Challenge, Response, decode_message

#: Device protocol states.
PENDING = "pending"
AWAITING = "awaiting"
ATTESTED = "attested"
QUARANTINED = "quarantined"


def _percentile(sorted_values, pct):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return None
    rank = max(1, -(-len(sorted_values) * pct // 100))  # ceil
    return sorted_values[int(rank) - 1]


class _DeviceRecord:
    """Per-device protocol state."""

    __slots__ = (
        "status",
        "attempts",
        "rejects",
        "next_at",
        "seq",
        "nonce",
        "sent_at",
        "expires_at",
        "first_sent_at",
        "latency_us",
        "quarantine_reason",
    )

    def __init__(self):
        self.status = PENDING
        self.attempts = 0
        self.rejects = 0
        self.next_at = 0
        self.seq = None
        self.nonce = None
        self.sent_at = None
        self.expires_at = None
        self.first_sent_at = None
        self.latency_us = None
        self.quarantine_reason = None


class VerifierService:
    """Challenge-response orchestration over a device registry.

    Parameters
    ----------
    registry:
        ``{device_id: platform_key}`` - the out-of-band key material.
    expected_identity:
        The agent identity every device must attest to.
    timeout_us:
        Challenge validity window (nonce expiry) in fabric microseconds.
    max_attempts:
        Challenges issued per device before quarantine.
    max_rejects:
        Affirmative verification failures before quarantine.
    backoff_us / backoff_factor:
        Retry backoff: ``backoff_us * factor**(attempt-1)``.
    obs:
        Optional event bus for ``fleet-*`` events.
    """

    def __init__(
        self,
        registry,
        expected_identity,
        provider=b"",
        *,
        timeout_us=50_000,
        max_attempts=8,
        max_rejects=3,
        backoff_us=2_000,
        backoff_factor=2,
        obs=None,
    ):
        self.timeout_us = int(timeout_us)
        self.max_attempts = int(max_attempts)
        self.max_rejects = int(max_rejects)
        self.backoff_us = int(backoff_us)
        self.backoff_factor = backoff_factor
        self.obs = obs
        self._verifiers = {}
        self._records = {}
        for device_id in sorted(registry):
            verifier = Verifier(registry[device_id], provider)
            verifier.expect(expected_identity)
            self._verifiers[device_id] = verifier
            self._records[device_id] = _DeviceRecord()
        # Protocol counters (all deterministic for a given run).
        self.challenges = 0
        self.retries = 0
        self.timeouts = 0
        self.rejects = 0
        self.stale = 0
        self.malformed = 0
        self.expired = 0
        self._latencies = []
        self._total_latencies = []

    def _publish(self, kind, device_id, **data):
        if self.obs is not None:
            self.obs.publish("fleet", kind, device=device_id, **data)

    def _backoff(self, attempts):
        return self.backoff_us * int(self.backoff_factor ** max(0, attempts - 1))

    def _quarantine(self, device_id, record, reason):
        record.status = QUARANTINED
        record.quarantine_reason = reason
        self._publish("fleet-quarantine", device_id, reason=reason)

    # -- outbound -----------------------------------------------------------

    def poll(self, now):
        """Protocol housekeeping at fabric time ``now``.

        Expires outstanding challenges, quarantines exhausted devices,
        and returns the challenge frames to send as a list of
        ``(device_id, frame_bytes)``.
        """
        out = []
        for device_id in self._records:
            record = self._records[device_id]
            if record.status == AWAITING and now >= record.expires_at:
                self.timeouts += 1
                self._publish(
                    "fleet-timeout", device_id, attempt=record.attempts
                )
                record.status = PENDING
                record.next_at = now + self._backoff(record.attempts)
            if record.status != PENDING or now < record.next_at:
                continue
            if record.attempts >= self.max_attempts:
                self._quarantine(device_id, record, "retries-exhausted")
                continue
            nonce = self._verifiers[device_id].fresh_nonce()
            record.seq = record.attempts
            record.attempts += 1
            record.nonce = nonce
            record.sent_at = now
            record.expires_at = now + self.timeout_us
            if record.first_sent_at is None:
                record.first_sent_at = now
            record.status = AWAITING
            self.challenges += 1
            if record.seq:
                self.retries += 1
                self._publish("fleet-retry", device_id, attempt=record.seq)
            self._publish("fleet-challenge", device_id, attempt=record.seq)
            out.append(
                (device_id, Challenge(device_id, record.seq, nonce).to_bytes())
            )
        return out

    def next_wakeup(self):
        """Earliest fabric time the service needs a :meth:`poll`."""
        times = []
        for record in self._records.values():
            if record.status == PENDING:
                times.append(record.next_at)
            elif record.status == AWAITING:
                times.append(record.expires_at)
        return min(times) if times else None

    # -- inbound ------------------------------------------------------------

    def handle(self, device_id, payload, now):
        """Process one delivered datagram; returns a disposition string.

        Dispositions: ``attested``, ``rejected``, ``stale`` (duplicate,
        wrong attempt, or already-settled device), ``expired`` (correct
        nonce but past its deadline), ``malformed``, ``unknown``.
        """
        record = self._records.get(device_id)
        if record is None:
            self.stale += 1
            return "unknown"
        try:
            message = decode_message(payload)
        except AttestationError:
            self.malformed += 1
            self._publish("fleet-malformed", device_id)
            return "malformed"
        if not isinstance(message, Response) or message.device_id != device_id:
            self.malformed += 1
            self._publish("fleet-malformed", device_id)
            return "malformed"
        if (
            record.status != AWAITING
            or message.seq != record.seq
            or message.report.nonce != record.nonce
        ):
            # Duplicate delivery, a response to a superseded challenge,
            # or traffic after the device settled: ignore.
            self.stale += 1
            return "stale"
        if now > record.expires_at:
            self.expired += 1
            self._publish("fleet-expired", device_id, attempt=record.seq)
            return "expired"
        if self._verifiers[device_id].verify(message.report, record.nonce):
            record.status = ATTESTED
            record.latency_us = now - record.sent_at
            self._latencies.append(record.latency_us)
            self._total_latencies.append(now - record.first_sent_at)
            self._publish(
                "fleet-attested",
                device_id,
                attempt=record.seq,
                latency_us=record.latency_us,
            )
            return "attested"
        record.rejects += 1
        self.rejects += 1
        self._publish("fleet-reject", device_id, attempt=record.seq)
        if record.rejects >= self.max_rejects:
            self._quarantine(device_id, record, "verification-rejected")
        else:
            record.status = PENDING
            record.next_at = now + self._backoff(record.attempts)
        return "rejected"

    # -- reporting ----------------------------------------------------------

    @property
    def done(self):
        """Whether every device has settled (attested or quarantined)."""
        return all(
            record.status in (ATTESTED, QUARANTINED)
            for record in self._records.values()
        )

    def statuses(self):
        """``{device_id: status}`` for every registered device."""
        return {
            device_id: record.status
            for device_id, record in self._records.items()
        }

    def report(self):
        """The fleet health report (JSON-serialisable, deterministic)."""
        by_status = {PENDING: 0, AWAITING: 0, ATTESTED: 0, QUARANTINED: 0}
        quarantined = []
        attempts_histogram = {}
        for device_id, record in self._records.items():
            by_status[record.status] += 1
            if record.status == QUARANTINED:
                quarantined.append(
                    {"device": device_id, "reason": record.quarantine_reason}
                )
            elif record.status == ATTESTED:
                key = str(record.attempts)
                attempts_histogram[key] = attempts_histogram.get(key, 0) + 1
        latencies = sorted(self._latencies)
        latency = None
        if latencies:
            latency = {
                "count": len(latencies),
                "p50": _percentile(latencies, 50),
                "p90": _percentile(latencies, 90),
                "p99": _percentile(latencies, 99),
                "max": latencies[-1],
                "mean": round(sum(latencies) / len(latencies), 1),
            }
        return {
            "total": len(self._records),
            "attested": by_status[ATTESTED],
            "pending": by_status[PENDING] + by_status[AWAITING],
            "quarantined": by_status[QUARANTINED],
            "quarantined_devices": quarantined,
            "challenges": self.challenges,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "rejects": self.rejects,
            "stale": self.stale,
            "malformed": self.malformed,
            "expired": self.expired,
            "attempts_to_attest": attempts_histogram,
            "latency_us": latency,
        }
