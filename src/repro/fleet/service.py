"""The fleet verifier service (one shard's worth).

Drives the challenge-response protocol for every registered device:

* **fresh-nonce issuance with expiry** - each challenge carries a nonce
  from the device's :class:`~repro.core.remote_attest.Verifier` (which
  enforces single use) and is only accepted before its deadline.  On
  timeout the nonce is *retired on tick* - evicted from the verifier's
  issued set and moved to consumed - so the nonce store stays bounded
  and a straggler response to an expired challenge can never verify.
  (Pre-1.4 the expiry was only checked when a response happened to
  arrive, so unanswered challenges leaked issued nonces forever.)
* **retry with timeout and backoff** - an unanswered challenge times
  out and is reissued with a fresh nonce after an exponentially growing
  backoff, up to ``max_attempts``;
* **quarantine** - devices that exhaust their retries, or whose reports
  are affirmatively rejected ``max_rejects`` times (bad MAC or wrong
  identity - a rogue binary), are quarantined and no longer challenged;
* **health reporting** - per-state device counts, protocol counters,
  and latency percentiles over challenge->attested round trips.

Scale: the service keeps a deadline *heap* over its devices, so
:meth:`poll` and :meth:`next_wakeup` cost O(due log N) instead of the
pre-1.4 O(N) scan per call - the difference between 10k devices being
a fleet and being a quadratic stall.

The canonical constructor takes a :class:`~repro.fleet.config.FleetConfig`::

    service = VerifierService(registry, identity, config)

The pre-1.4 kwarg spelling (``provider=…, timeout_us=…``) still works
behind a :class:`DeprecationWarning`.

The service is transport-agnostic: :meth:`poll` returns the frames to
send, and the orchestrator feeds delivered datagrams to :meth:`handle`.
Per-device state machine::

    pending --poll--> awaiting --verify ok--> attested
       ^                 |  \\--reject x max_rejects--> quarantined
       |                 v
       +----timeout/backoff   (attempts exhausted -> quarantined)
"""

from __future__ import annotations

import heapq
import warnings

from repro.cfa import PathVerifier, evidence_mac_ok
from repro.core.remote_attest import Verifier
from repro.errors import AttestationError
from repro.net.wire import CfaChallenge, CfaResponse, Challenge, Response, decode_message

#: Device protocol states.
PENDING = "pending"
AWAITING = "awaiting"
ATTESTED = "attested"
QUARANTINED = "quarantined"

#: Pre-1.4 default challenge expiry (legacy-shim constructions only).
LEGACY_TIMEOUT_US = 50_000


def _percentile(sorted_values, pct):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return None
    rank = max(1, -(-len(sorted_values) * pct // 100))  # ceil
    return sorted_values[int(rank) - 1]


class _DeviceRecord:
    """Per-device protocol state."""

    __slots__ = (
        "status",
        "attempts",
        "rejects",
        "next_at",
        "seq",
        "nonce",
        "sent_at",
        "expires_at",
        "first_sent_at",
        "latency_us",
        "quarantine_reason",
    )

    def __init__(self):
        self.status = PENDING
        self.attempts = 0
        self.rejects = 0
        self.next_at = 0
        self.seq = None
        self.nonce = None
        self.sent_at = None
        self.expires_at = None
        self.first_sent_at = None
        self.latency_us = None
        self.quarantine_reason = None


class VerifierService:
    """Challenge-response orchestration over a device registry.

    Parameters
    ----------
    registry:
        ``{device_id: platform_key}`` - the out-of-band key material.
    expected_identity:
        The agent identity every device must attest to.
    config:
        The :class:`~repro.fleet.config.FleetConfig` supplying the
        protocol knobs (provider, timeouts, retry policy).  Passing a
        ``bytes`` provider here instead - the pre-1.4 signature - still
        works but warns.
    timeout_us:
        Resolved challenge expiry override; the orchestrator passes the
        fleet-sized timeout here when ``config.timeout_us`` is ``None``.
    obs:
        Optional event bus for ``fleet-*`` events.
    store:
        Optional :class:`~repro.fleet.store.AttestationStore` receiving
        durable protocol records.
    shard_id:
        This service's shard index (stamped into store records).
    """

    def __init__(
        self,
        registry,
        expected_identity,
        config=None,
        provider=None,
        *,
        timeout_us=None,
        max_attempts=None,
        max_rejects=None,
        backoff_us=None,
        backoff_factor=None,
        obs=None,
        store=None,
        shard_id=0,
    ):
        if config is None or isinstance(config, (bytes, str)):
            # Pre-1.4 spelling: VerifierService(registry, id, b"prov",
            # timeout_us=..., ...).  Fold everything into a FleetConfig.
            from repro.fleet.config import FleetConfig

            warnings.warn(
                "VerifierService(provider=..., timeout_us=...) is deprecated; "
                "pass a FleetConfig as the third argument",
                DeprecationWarning,
                stacklevel=2,
            )
            legacy_provider = config if config is not None else provider
            config = FleetConfig(
                devices=max(1, len(registry)),
                provider=legacy_provider if legacy_provider is not None else b"",
                timeout_us=timeout_us if timeout_us is not None else LEGACY_TIMEOUT_US,
                max_attempts=max_attempts if max_attempts is not None else 8,
                max_rejects=max_rejects if max_rejects is not None else 3,
                backoff_us=backoff_us if backoff_us is not None else 2_000,
                backoff_factor=backoff_factor if backoff_factor is not None else 2,
            )
            timeout_us = config.timeout_us
        elif any(
            knob is not None
            for knob in (provider, max_attempts, max_rejects, backoff_us, backoff_factor)
        ):
            raise TypeError(
                "pass protocol knobs through FleetConfig, not alongside it"
            )

        resolved_timeout = timeout_us if timeout_us is not None else config.timeout_us
        if resolved_timeout is None:
            resolved_timeout = LEGACY_TIMEOUT_US
        self.config = config
        self.timeout_us = int(resolved_timeout)
        self.max_attempts = config.max_attempts
        self.max_rejects = config.max_rejects
        self.backoff_us = config.backoff_us
        self.backoff_factor = config.backoff_factor
        self.obs = obs
        self.store = store
        self.shard_id = int(shard_id)
        #: Control-flow attestation: challenge with :class:`CfaChallenge`
        #: and adjudicate the path evidence in every response.
        self.cfa = bool(getattr(config, "cfa", False))
        self._path_verifier = None
        if self.cfa:
            from repro.fleet.device import fleet_task_image

            self._path_verifier = PathVerifier()
            self._path_verifier.register(expected_identity, fleet_task_image(cfa=True))
        self._verifiers = {}
        self._records = {}
        #: Deadline heap: ``(fabric_time, device_id)``.  Every active
        #: deadline (a PENDING retry time or an AWAITING expiry) has an
        #: entry pushed at the moment it was set; superseded entries
        #: are dropped lazily when popped.
        self._heap = []
        for device_id in sorted(registry):
            verifier = Verifier(registry[device_id], config.provider)
            verifier.expect(expected_identity)
            self._verifiers[device_id] = verifier
            self._records[device_id] = _DeviceRecord()
            self._heap.append((0, device_id))
        heapq.heapify(self._heap)
        self._settled = 0
        # Protocol counters (all deterministic for a given run).
        self.challenges = 0
        self.retries = 0
        self.timeouts = 0
        self.rejects = 0
        self.stale = 0
        self.malformed = 0
        self.expired = 0
        #: Devices quarantined on path evidence (CFA verdict not clean).
        self.cfa_quarantines = 0
        self._latencies = []
        self._total_latencies = []

    def _publish(self, kind, device_id, **data):
        if self.obs is not None:
            self.obs.publish("fleet", kind, device=device_id, **data)

    def _backoff(self, attempts):
        return self.backoff_us * int(self.backoff_factor ** max(0, attempts - 1))

    def _quarantine(self, device_id, record, reason, now=0):
        record.status = QUARANTINED
        record.quarantine_reason = reason
        self._settled += 1
        self._publish("fleet-quarantine", device_id, reason=reason)
        if self.store is not None:
            self.store.note_quarantined(now, device_id, self.shard_id, reason)

    def preload(self, settled):
        """Pre-settle devices from a resumed store (no re-challenge).

        ``settled`` maps device ids to ``(status, reason)`` as returned
        by :meth:`repro.fleet.store.AttestationStore.settled`.  Devices
        the service does not own are ignored, so the same map can be
        broadcast to every shard.  Preloaded devices show up in the
        health report with zero attempts and no latency sample.
        """
        for device_id, (status, reason) in settled.items():
            record = self._records.get(device_id)
            if record is None or record.status != PENDING:
                continue
            if status == ATTESTED:
                record.status = ATTESTED
            else:
                record.status = QUARANTINED
                record.quarantine_reason = reason or "resumed"
            self._settled += 1

    # -- outbound -----------------------------------------------------------

    def poll(self, now):
        """Protocol housekeeping at fabric time ``now``.

        Pops every due deadline: expires outstanding challenges
        (retiring their nonces), quarantines exhausted devices, and
        returns the challenge frames to send as a list of
        ``(device_id, frame_bytes)``.
        """
        out = []
        heap = self._heap
        records = self._records
        while heap and heap[0][0] <= now:
            _, device_id = heapq.heappop(heap)
            record = records[device_id]
            if record.status == ATTESTED or record.status == QUARANTINED:
                continue
            if record.status == AWAITING:
                if now < record.expires_at:
                    continue  # superseded entry; the real one is later
                # Timeout: retire the nonce *now* (eviction on tick),
                # so the issued set stays bounded and a straggler
                # response to this challenge can never verify.
                self._verifiers[device_id].retire_nonce(record.nonce)
                self.timeouts += 1
                self._publish("fleet-timeout", device_id, attempt=record.attempts)
                if self.store is not None:
                    self.store.note_expire(now, device_id, self.shard_id)
                record.status = PENDING
                record.next_at = now + self._backoff(record.attempts)
                heapq.heappush(heap, (record.next_at, device_id))
                continue
            # PENDING
            if now < record.next_at:
                continue  # superseded entry
            if record.attempts >= self.max_attempts:
                self._quarantine(device_id, record, "retries-exhausted", now)
                continue
            nonce = self._verifiers[device_id].fresh_nonce()
            record.seq = record.attempts
            record.attempts += 1
            record.nonce = nonce
            record.sent_at = now
            record.expires_at = now + self.timeout_us
            if record.first_sent_at is None:
                record.first_sent_at = now
            record.status = AWAITING
            heapq.heappush(heap, (record.expires_at, device_id))
            self.challenges += 1
            if record.seq:
                self.retries += 1
                self._publish("fleet-retry", device_id, attempt=record.seq)
            self._publish("fleet-challenge", device_id, attempt=record.seq)
            if self.store is not None:
                self.store.note_challenge(now, device_id, self.shard_id, record.seq)
            challenge_cls = CfaChallenge if self.cfa else Challenge
            out.append(
                (device_id, challenge_cls(device_id, record.seq, nonce).to_bytes())
            )
        return out

    def next_wakeup(self):
        """Earliest fabric time the service needs a :meth:`poll`.

        Peeks the deadline heap, discarding entries for settled devices
        and superseded deadlines along the way.
        """
        heap = self._heap
        records = self._records
        while heap:
            when, device_id = heap[0]
            record = records[device_id]
            if record.status == PENDING:
                live = record.next_at
            elif record.status == AWAITING:
                live = record.expires_at
            else:
                heapq.heappop(heap)
                continue
            if when < live:
                heapq.heappop(heap)  # superseded
                continue
            return when
        return None

    # -- inbound ------------------------------------------------------------

    def handle(self, device_id, payload, now):
        """Process one delivered datagram; returns a disposition string.

        Dispositions: ``attested``, ``rejected``, ``quarantined`` (a
        CFA verdict affirmatively proved hijacked control flow),
        ``stale`` (duplicate, wrong attempt, or already-settled
        device), ``expired`` (correct nonce but past its deadline),
        ``malformed``, ``unknown``.
        """
        record = self._records.get(device_id)
        if record is None:
            self.stale += 1
            return "unknown"
        try:
            message = decode_message(payload)
        except AttestationError:
            self.malformed += 1
            self._publish("fleet-malformed", device_id)
            return "malformed"
        wanted = CfaResponse if self.cfa else Response
        if not isinstance(message, wanted) or message.device_id != device_id:
            self.malformed += 1
            self._publish("fleet-malformed", device_id)
            return "malformed"
        if (
            record.status != AWAITING
            or message.seq != record.seq
            or message.report.nonce != record.nonce
        ):
            # Duplicate delivery, a response to a superseded challenge,
            # or traffic after the device settled: ignore.
            self.stale += 1
            return "stale"
        if now > record.expires_at:
            self.expired += 1
            self._publish("fleet-expired", device_id, attempt=record.seq)
            return "expired"
        if self._verifiers[device_id].verify(message.report, record.nonce):
            if self.cfa:
                if not evidence_mac_ok(
                    self._verifiers[device_id]._key, message.evidence, record.nonce
                ):
                    # Unauthentic (or replayed) path evidence: treat it
                    # like any verification reject - retry, then
                    # quarantine on exhaustion.
                    return self._reject(device_id, record, now)
                verdict = self._path_verifier.verify(message.evidence)
                if not verdict.ok:
                    # The evidence is authentic and affirmatively shows
                    # an impossible path (or an unknown/broken log):
                    # no retry can change what already executed.
                    self.cfa_quarantines += 1
                    self._publish(
                        "fleet-cfa-verdict",
                        device_id,
                        verdict=verdict.verdict,
                        reason=verdict.reason,
                    )
                    self._quarantine(
                        device_id, record, "cfa-" + verdict.verdict, now
                    )
                    return "quarantined"
            record.status = ATTESTED
            record.latency_us = now - record.sent_at
            self._settled += 1
            self._latencies.append(record.latency_us)
            self._total_latencies.append(now - record.first_sent_at)
            self._publish(
                "fleet-attested",
                device_id,
                attempt=record.seq,
                latency_us=record.latency_us,
            )
            if self.store is not None:
                self.store.note_attested(
                    now, device_id, self.shard_id, record.seq, record.latency_us
                )
            return "attested"
        return self._reject(device_id, record, now)

    def _reject(self, device_id, record, now):
        """One verification reject: back off, quarantine on exhaustion."""
        record.rejects += 1
        self.rejects += 1
        self._publish("fleet-reject", device_id, attempt=record.seq)
        if record.rejects >= self.max_rejects:
            self._quarantine(device_id, record, "verification-rejected", now)
        else:
            record.status = PENDING
            record.next_at = now + self._backoff(record.attempts)
            heapq.heappush(self._heap, (record.next_at, device_id))
        return "rejected"

    # -- reporting ----------------------------------------------------------

    @property
    def done(self):
        """Whether every device has settled (attested or quarantined)."""
        return self._settled == len(self._records)

    def statuses(self):
        """``{device_id: status}`` for every registered device."""
        return {
            device_id: record.status
            for device_id, record in self._records.items()
        }

    def latencies_us(self):
        """Raw challenge->attested latency samples (for shard merges)."""
        return list(self._latencies)

    def outstanding_nonces(self):
        """Issued-but-unconsumed nonces across this shard's verifiers.

        Bounded by the number of AWAITING devices thanks to tick-time
        retirement; the pre-1.4 service grew this with every timeout.
        """
        return sum(v.outstanding_nonces() for v in self._verifiers.values())

    def report(self):
        """The shard health report (JSON-serialisable, deterministic)."""
        by_status = {PENDING: 0, AWAITING: 0, ATTESTED: 0, QUARANTINED: 0}
        quarantined = []
        attempts_histogram = {}
        for device_id, record in self._records.items():
            by_status[record.status] += 1
            if record.status == QUARANTINED:
                quarantined.append(
                    {"device": device_id, "reason": record.quarantine_reason}
                )
            elif record.status == ATTESTED:
                key = str(record.attempts)
                attempts_histogram[key] = attempts_histogram.get(key, 0) + 1
        latencies = sorted(self._latencies)
        latency = None
        if latencies:
            latency = {
                "count": len(latencies),
                "p50": _percentile(latencies, 50),
                "p90": _percentile(latencies, 90),
                "p99": _percentile(latencies, 99),
                "max": latencies[-1],
                "mean": round(sum(latencies) / len(latencies), 1),
            }
        return {
            "total": len(self._records),
            "attested": by_status[ATTESTED],
            "pending": by_status[PENDING] + by_status[AWAITING],
            "quarantined": by_status[QUARANTINED],
            "quarantined_devices": quarantined,
            "challenges": self.challenges,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "rejects": self.rejects,
            "stale": self.stale,
            "malformed": self.malformed,
            "expired": self.expired,
            "cfa_quarantines": self.cfa_quarantines,
            "attempts_to_attest": attempts_histogram,
            "latency_us": latency,
        }
