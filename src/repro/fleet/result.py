"""The typed fleet run result.

:meth:`Fleet.run` returns a :class:`FleetResult`: a read-only mapping
over the deterministic result data (so existing ``result["health"]``
call sites keep working) with typed accessors for the fields callers
actually branch on - per-shard health, the quarantine list, latency
percentiles, and the store checkpoint path.

``to_dict()`` is the JSON surface; its layout is versioned by the
top-level ``"schema"`` key (currently :data:`SCHEMA_VERSION`), which is
what ``repro.tools.fleet --json`` prints and what the CI smoke diffs
byte-for-byte between runs.
"""

from __future__ import annotations

import json

#: Version of the result-dict layout (``result["schema"]``).
#: 1 was the pre-1.4 untyped dict; 2 adds ``schema``/``shards``/
#: ``link``/``store`` sections and the per-shard health rollup.
SCHEMA_VERSION = 2


class FleetResult:
    """The outcome of one fleet attestation run (read-only mapping)."""

    def __init__(self, data):
        data = dict(data)
        data.setdefault("schema", SCHEMA_VERSION)
        self._data = data

    # -- mapping surface ----------------------------------------------------

    def __getitem__(self, key):
        return self._data[key]

    def __contains__(self, key):
        return key in self._data

    def __iter__(self):
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    def keys(self):
        return self._data.keys()

    def get(self, key, default=None):
        return self._data.get(key, default)

    def to_dict(self):
        """Plain nested-dict form (JSON-serialisable, deterministic)."""

        def plain(value):
            if hasattr(value, "to_dict"):
                return plain(value.to_dict())
            if isinstance(value, dict):
                return {key: plain(item) for key, item in value.items()}
            if isinstance(value, (list, tuple)):
                return [plain(item) for item in value]
            return value

        return plain(self._data)

    def to_json(self, indent=2):
        """The canonical JSON text (sorted keys - byte-diffable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- typed accessors ----------------------------------------------------

    @property
    def schema(self):
        """Result layout version."""
        return self._data["schema"]

    @property
    def health(self):
        """The fleet-wide health rollup (mapping)."""
        return self._data["health"]

    @property
    def shard_health(self):
        """Per-shard health report list."""
        return self._data["health"]["shards"]

    @property
    def quarantined(self):
        """``[{"device": id, "reason": ...}, ...]``, sorted by device."""
        return self._data["health"]["quarantined_devices"]

    @property
    def latency_us(self):
        """Latency percentile summary, or ``None`` if nothing attested."""
        return self._data["health"]["latency_us"]

    @property
    def checkpoint_path(self):
        """Filesystem path of the store checkpoint, or ``None``."""
        return self._data["store"]["path"]

    @property
    def reports_per_sec(self):
        """Attested reports per simulated second (host-independent)."""
        return self._data["reports_per_sec"]

    @property
    def healthy(self):
        """Whether every non-quarantined device attested."""
        health = self._data["health"]
        return health["pending"] == 0 and (
            health["attested"] + health["quarantined"] == health["total"]
        )

    def __repr__(self):
        health = self._data["health"]
        return "FleetResult(%d/%d attested, %d quarantined, %.1f reports/s)" % (
            health["attested"],
            health["total"],
            health["quarantined"],
            self._data["reports_per_sec"],
        )
