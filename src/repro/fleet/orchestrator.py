"""The fleet orchestrator: N TyTAN machines vs. one verifier service.

:class:`Fleet` wires everything together:

* a :class:`~repro.net.fabric.NetworkFabric` with one endpoint per
  device plus the verifier's, every link sharing the configured fault
  profile (latency/jitter/loss/duplication/reordering, seeded RNG);
* an executor (:mod:`repro.fleet.executors`) owning the device
  machines - serial (one compute lane) or a multiprocessing worker
  pool (``workers`` lanes);
* a :class:`~repro.fleet.service.VerifierService` driving challenges,
  retries, and quarantine.

The run loop is event-driven over fabric time: advance to the next
delivery or service deadline, step the addressed devices, and schedule
their responses.  Device compute is charged in *simulated* time - each
response occupies its executor lane for the cycles the machine's clock
actually charged, converted to fabric microseconds - so fleet
throughput (reports per simulated second) is deterministic and
host-independent: a worker pool with K lanes genuinely overlaps K
device computations where the serial executor must queue them.

Everything in :meth:`Fleet.run`'s result dict is reproducible
bit-for-bit for a given configuration and seed.
"""

from __future__ import annotations

from repro import cycles
from repro.fleet.device import device_platform_key, expected_fleet_identity
from repro.fleet.executors import PoolExecutor, SerialExecutor
from repro.fleet.service import VerifierService
from repro.hw.clock import DEFAULT_HZ
from repro.net.fabric import LinkProfile, NetworkFabric
from repro.obs.bus import EventBus

US_PER_SEC = 1_000_000

#: Cycle cost of producing one report (key derivation + MAC), used only
#: to size the default challenge timeout - the run loop charges the
#: cycles each machine *actually* spent.
_ATTEST_CYCLES = cycles.KEY_DERIVATION + cycles.ATTEST_MAC


class Fleet:
    """A simulated device fleet under one verifier service."""

    def __init__(
        self,
        devices=8,
        *,
        seed=0,
        loss=0.0,
        latency_us=200,
        jitter_us=50,
        duplicate=0.0,
        reorder=0.0,
        workers=4,
        rogue=(),
        provider=b"",
        timeout_us=None,
        max_attempts=8,
        max_rejects=3,
        backoff_us=2_000,
        obs_capacity=65_536,
        hz=DEFAULT_HZ,
    ):
        if devices < 1:
            raise ValueError("a fleet needs at least one device")
        self.devices = int(devices)
        self.seed = int(seed)
        self.workers = int(workers) if workers else 0
        self.rogue = frozenset(int(r) for r in rogue)
        if self.rogue - set(range(self.devices)):
            raise ValueError("rogue ids outside the fleet")
        self.provider = bytes(provider)
        self.hz = hz
        self.profile = LinkProfile(
            latency_us=latency_us,
            jitter_us=jitter_us,
            loss=loss,
            duplicate=duplicate,
            reorder=reorder,
        )

        self.fabric = NetworkFabric(seed=seed, default_profile=self.profile)
        #: Fleet-wide observability bus, clocked by fabric time.
        self.obs = EventBus(clock=self.fabric, capacity=obs_capacity)
        self.fabric.obs = self.obs
        self.event_counts = {}
        self.obs.subscribe(self._count_event)

        self.verifier_ep = self.fabric.attach("verifier")
        self._device_eps = {}
        self._device_of_addr = {}
        for device_id in range(self.devices):
            address = self._addr(device_id)
            self._device_eps[device_id] = self.fabric.attach(address)
            self._device_of_addr[address] = device_id

        lanes = self.workers if self.workers else 1
        if timeout_us is None:
            # Worst case: a full fleet round queued behind the lanes,
            # with 2x headroom, plus the round trip.
            attest_us = self._cycles_to_us(_ATTEST_CYCLES)
            per_round = -(-self.devices // lanes) * attest_us
            timeout_us = 2 * (latency_us + jitter_us) + 2 * per_round + 10_000
        self.timeout_us = int(timeout_us)

        registry = {
            device_id: device_platform_key(self.seed, device_id)
            for device_id in range(self.devices)
        }
        self.service = VerifierService(
            registry,
            expected_fleet_identity(),
            self.provider,
            timeout_us=self.timeout_us,
            max_attempts=max_attempts,
            max_rejects=max_rejects,
            backoff_us=backoff_us,
            obs=self.obs,
        )

        if self.workers:
            self.executor = PoolExecutor(
                range(self.devices),
                fleet_seed=self.seed,
                rogue=self.rogue,
                provider=self.provider,
                workers=self.workers,
            )
        else:
            self.executor = SerialExecutor(
                range(self.devices),
                fleet_seed=self.seed,
                rogue=self.rogue,
                provider=self.provider,
            )
        self.compute_cycles = 0
        self.responses_sent = 0

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _addr(device_id):
        return "dev-%04d" % device_id

    def _count_event(self, event):
        self.event_counts[event.kind] = self.event_counts.get(event.kind, 0) + 1

    def _cycles_to_us(self, cycle_count):
        return max(1, (cycle_count * US_PER_SEC) // self.hz)

    # -- the run loop -------------------------------------------------------

    def run(self, max_time_us=600 * US_PER_SEC):
        """Drive the protocol until every device settles.

        Returns the deterministic result dict (configuration echo,
        health report, fabric statistics, obs event histogram, and
        throughput in reports per simulated second).
        """
        fabric = self.fabric
        service = self.service
        lanes = self.executor.lanes
        lane_busy = [0] * lanes
        self.executor.start()
        try:
            while True:
                for device_id, frame in service.poll(fabric.now):
                    self.verifier_ep.send(self._addr(device_id), frame)
                if service.done:
                    break
                candidates = [
                    t
                    for t in (fabric.next_delivery(), service.next_wakeup())
                    if t is not None
                ]
                if not candidates:
                    break  # nothing in flight and nothing scheduled
                target = max(fabric.now + 1, min(candidates))
                if target > max_time_us:
                    break
                fabric.advance_to(target)

                # Step every device that received traffic (sorted, so
                # the fabric's RNG draw order is canonical).
                batch = []
                for device_id in range(self.devices):
                    endpoint = self._device_eps[device_id]
                    while True:
                        item = endpoint.recv()
                        if item is None:
                            break
                        batch.append((device_id, item[1]))
                if batch:
                    for device_id, response, spent in self.executor.process(batch):
                        self.compute_cycles += spent
                        if response is None:
                            continue
                        lane = device_id % lanes
                        start = max(fabric.now, lane_busy[lane])
                        done_at = start + self._cycles_to_us(spent)
                        lane_busy[lane] = done_at
                        self.responses_sent += 1
                        self._device_eps[device_id].send(
                            "verifier", response, at=done_at
                        )

                # Feed delivered responses to the verifier service.
                while True:
                    item = self.verifier_ep.recv()
                    if item is None:
                        break
                    source, payload = item
                    service.handle(
                        self._device_of_addr.get(source), payload, fabric.now
                    )
        finally:
            self.executor.close()
        return self._result()

    # -- results ------------------------------------------------------------

    def _result(self):
        health = self.service.report()
        elapsed_us = self.fabric.now
        reports_per_sec = (
            round(health["attested"] * US_PER_SEC / elapsed_us, 2)
            if elapsed_us
            else 0.0
        )
        return {
            "fleet": {
                "devices": self.devices,
                "seed": self.seed,
                "mode": "pool" if self.workers else "serial",
                "workers": self.workers,
                "lanes": self.executor.lanes,
                "loss": self.profile.loss,
                "latency_us": self.profile.latency_us,
                "jitter_us": self.profile.jitter_us,
                "duplicate": self.profile.duplicate,
                "reorder": self.profile.reorder,
                "timeout_us": self.timeout_us,
                "rogue": sorted(self.rogue),
            },
            "health": health,
            "fabric": dict(self.fabric.stats),
            "events": dict(sorted(self.event_counts.items())),
            "compute": {
                "cycles": self.compute_cycles,
                "responses": self.responses_sent,
            },
            "sim_elapsed_us": elapsed_us,
            "reports_per_sec": reports_per_sec,
        }

    def healthy(self, result=None):
        """Whether every non-quarantined device attested."""
        health = (result or self._result())["health"]
        return health["pending"] == 0 and (
            health["attested"] + health["quarantined"] == health["total"]
        )
