"""The fleet orchestrator: N TyTAN machines vs. a sharded verifier tier.

:class:`Fleet` wires everything together from four typed config
objects (:mod:`repro.fleet.config`)::

    fleet = Fleet(
        FleetConfig(devices=10_000, seed=7, boot_mode="snapshot"),
        shards=ShardConfig(shards=8),
        fabric=FabricProfile(latency_us=200, loss=0.1),
        store=StoreConfig(backend="jsonl", path="run.jsonl"),
    )
    result = fleet.run()          # -> FleetResult, schema 2

The pieces:

* a :class:`~repro.net.fabric.NetworkFabric` with one endpoint per
  device plus the verifier tier's, every link sharing the configured
  :class:`~repro.net.fabric.FabricProfile` (seeded RNG);
* an executor (:mod:`repro.fleet.executors`) supplying the device
  machines - snapshot-forked and recycled, or cold-booted - serially
  or on a multiprocessing worker pool (``workers`` lanes);
* a :class:`~repro.fleet.shards.ShardedVerifierService`: device ids
  consistent-hashed onto N verifier shards, each owning its own nonce
  store and quarantine set;
* an :class:`~repro.fleet.store.AttestationStore` receiving durable
  protocol records, so a run checkpoints and can resume.

The run loop is event-driven over fabric time and built for 10k-100k
devices: each iteration advances to the next delivery or service
deadline, sends the tick's challenges as *one* frame batch
(:meth:`~repro.net.fabric.NetworkFabric.send_batch` - RNG draws
amortized, bit-identical to individual sends), and steps only the
devices the fabric actually delivered to
(:meth:`~repro.net.fabric.NetworkFabric.take_touched` - O(active), not
O(fleet)).  Device compute is charged in *simulated* time - each
response occupies its executor lane for the cycles the machine's clock
actually charged, converted to fabric microseconds - so fleet
throughput (reports per simulated second) is deterministic and
host-independent: a worker pool with K lanes genuinely overlaps K
device computations where the serial executor must queue them.

Everything in the :class:`~repro.fleet.result.FleetResult` is
reproducible bit-for-bit for a given configuration and seed.

The pre-1.4 kwarg constructor (``Fleet(64, seed=7, loss=0.1)``) still
works behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro import cycles
from repro.fleet.config import FleetConfig, ShardConfig, StoreConfig
from repro.fleet.device import device_platform_key, expected_fleet_identity
from repro.fleet.executors import PoolExecutor, SerialExecutor
from repro.fleet.result import SCHEMA_VERSION, FleetResult
from repro.fleet.shards import ShardedVerifierService
from repro.fleet.store import AttestationStore
from repro.net.fabric import FabricProfile, NetworkFabric
from repro.obs.bus import EventBus

US_PER_SEC = 1_000_000

#: Cycle cost of producing one report (key derivation + MAC), used only
#: to size the default challenge timeout - the run loop charges the
#: cycles each machine *actually* spent.
_ATTEST_CYCLES = cycles.KEY_DERIVATION + cycles.ATTEST_MAC

#: Legacy kwargs accepted (with a warning) by the pre-1.4 constructor.
_LEGACY_DEFAULTS = {
    "seed": 0,
    "loss": 0.0,
    "latency_us": 200,
    "jitter_us": 50,
    "duplicate": 0.0,
    "reorder": 0.0,
    "workers": 4,
    "rogue": (),
    "provider": b"",
    "timeout_us": None,
    "max_attempts": 8,
    "max_rejects": 3,
    "backoff_us": 2_000,
    "obs_capacity": 65_536,
}


class Fleet:
    """A simulated device fleet under one (sharded) verifier tier."""

    def __init__(self, config=None, *, shards=None, fabric=None, store=None, hz=None, **legacy):
        if config is None or isinstance(config, int):
            # Pre-1.4 spelling: Fleet(devices, seed=..., loss=..., ...).
            warnings.warn(
                "Fleet(devices, seed=..., loss=...) is deprecated; construct "
                "with FleetConfig (and FabricProfile/ShardConfig/StoreConfig)",
                DeprecationWarning,
                stacklevel=2,
            )
            unknown = set(legacy) - set(_LEGACY_DEFAULTS)
            if unknown:
                raise TypeError("unknown Fleet arguments: %s" % sorted(unknown))
            opts = dict(_LEGACY_DEFAULTS, **legacy)
            config = FleetConfig(
                devices=8 if config is None else config,
                seed=opts["seed"],
                workers=opts["workers"] or 0,
                rogue=opts["rogue"],
                provider=opts["provider"],
                timeout_us=opts["timeout_us"],
                max_attempts=opts["max_attempts"],
                max_rejects=opts["max_rejects"],
                backoff_us=opts["backoff_us"],
                obs_capacity=opts["obs_capacity"],
                **({"hz": hz} if hz is not None else {}),
            )
            fabric = FabricProfile(
                latency_us=opts["latency_us"],
                jitter_us=opts["jitter_us"],
                loss=opts["loss"],
                duplicate=opts["duplicate"],
                reorder=opts["reorder"],
            )
        elif legacy or hz is not None:
            raise TypeError(
                "unknown Fleet arguments (protocol and clock knobs belong "
                "on FleetConfig): %s" % sorted(set(legacy) | ({"hz"} if hz is not None else set()))
            )

        self.config = config
        self.shard_config = shards if shards is not None else ShardConfig(1)
        self.profile = fabric if fabric is not None else FabricProfile(jitter_us=50)
        if store is None:
            store = StoreConfig("memory")
        self.store_config = store if isinstance(store, StoreConfig) else None
        self.store = store.build() if isinstance(store, StoreConfig) else store
        if not isinstance(self.store, AttestationStore):
            raise TypeError("store must be a StoreConfig or an AttestationStore")

        self.devices = config.devices
        self.seed = config.seed
        self.workers = config.workers
        self.rogue = config.rogue
        self.provider = config.provider
        self.hz = config.hz

        self.fabric = NetworkFabric(self.profile, seed=self.seed)
        #: Fleet-wide observability bus, clocked by fabric time.
        self.obs = EventBus(clock=self.fabric, capacity=config.obs_capacity)
        self.fabric.obs = self.obs
        self.event_counts = {}
        self.obs.subscribe(self._count_event)

        self.verifier_ep = self.fabric.attach("verifier")
        self._device_eps = {}
        self._device_of_addr = {}
        for device_id in range(self.devices):
            address = self._addr(device_id)
            self._device_eps[device_id] = self.fabric.attach(address)
            self._device_of_addr[address] = device_id

        lanes = self.workers if self.workers else 1
        timeout_us = config.timeout_us
        if timeout_us is None:
            # Worst case: a full fleet round queued behind the lanes,
            # with 2x headroom, plus the round trip.  A CFA response
            # additionally derives the evidence key and MACs the path
            # log (roughly another attestation's worth of cycles).
            attest_us = self._cycles_to_us(
                _ATTEST_CYCLES * (2 if config.cfa else 1)
            )
            per_round = -(-self.devices // lanes) * attest_us
            timeout_us = (
                2 * (self.profile.latency_us + self.profile.jitter_us)
                + 2 * per_round
                + 10_000
            )
        self.timeout_us = int(timeout_us)

        registry = {
            device_id: device_platform_key(self.seed, device_id)
            for device_id in range(self.devices)
        }
        self.service = ShardedVerifierService(
            registry,
            expected_fleet_identity(cfa=config.cfa),
            config,
            self.shard_config,
            timeout_us=self.timeout_us,
            obs=self.obs,
            store=self.store,
        )

        #: Devices pre-settled from a resumed store checkpoint.
        self.resumed = 0
        if self.store.resume:
            settled = self.store.settled(self.seed)
            if settled:
                self.service.preload(settled)
                self.resumed = len(
                    set(settled) & set(range(self.devices))
                )

        if self.workers:
            self.executor = PoolExecutor(
                range(self.devices),
                fleet_seed=self.seed,
                rogue=self.rogue,
                provider=self.provider,
                workers=self.workers,
                boot_mode=config.boot_mode,
                cfa=config.cfa,
                rogue_mode=config.rogue_mode,
            )
        else:
            self.executor = SerialExecutor(
                range(self.devices),
                fleet_seed=self.seed,
                rogue=self.rogue,
                provider=self.provider,
                boot_mode=config.boot_mode,
                cfa=config.cfa,
                rogue_mode=config.rogue_mode,
            )
        self.compute_cycles = 0
        self.responses_sent = 0

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _addr(device_id):
        return "dev-%05d" % device_id

    def _count_event(self, event):
        self.event_counts[event.kind] = self.event_counts.get(event.kind, 0) + 1

    def _cycles_to_us(self, cycle_count):
        return max(1, (cycle_count * US_PER_SEC) // self.hz)

    # -- the run loop -------------------------------------------------------

    def run(self, max_time_us=600 * US_PER_SEC):
        """Drive the protocol until every device settles.

        Returns the deterministic :class:`~repro.fleet.result.FleetResult`.
        """
        fabric = self.fabric
        service = self.service
        device_eps = self._device_eps
        device_of_addr = self._device_of_addr
        addr = self._addr
        lanes = self.executor.lanes
        lane_busy = [0] * lanes
        cycles_to_us = self._cycles_to_us
        self.store.begin_epoch(
            fabric.now,
            seed=self.seed,
            devices=self.devices,
            shards=self.shard_config.shards,
        )
        self.executor.start()
        try:
            while True:
                # One frame batch per tick: every challenge the verifier
                # tier wants to send right now, in shard order.
                challenges = service.poll(fabric.now)
                if challenges:
                    self.verifier_ep.send_batch(
                        [(addr(device_id), frame) for device_id, frame in challenges]
                    )
                if service.done:
                    break
                candidates = [
                    t
                    for t in (fabric.next_delivery(), service.next_wakeup())
                    if t is not None
                ]
                if not candidates:
                    break  # nothing in flight and nothing scheduled
                target = max(fabric.now + 1, min(candidates))
                if target > max_time_us:
                    break
                fabric.advance_to(target)

                # Step only the endpoints the fabric delivered to
                # (sorted by device id, so the executor batch - and
                # with it the response RNG draw order - is canonical).
                batch = []
                verifier_traffic = False
                touched_ids = []
                for name in fabric.take_touched():
                    device_id = device_of_addr.get(name)
                    if device_id is None:
                        verifier_traffic = True
                    else:
                        touched_ids.append(device_id)
                touched_ids.sort()
                for device_id in touched_ids:
                    for _, payload in device_eps[device_id].drain():
                        batch.append((device_id, payload))
                if batch:
                    for device_id, response, spent in self.executor.process(batch):
                        self.compute_cycles += spent
                        if response is None:
                            continue
                        lane = device_id % lanes
                        start = max(fabric.now, lane_busy[lane])
                        done_at = start + cycles_to_us(spent)
                        lane_busy[lane] = done_at
                        self.responses_sent += 1
                        device_eps[device_id].send("verifier", response, at=done_at)

                # Feed delivered responses to the verifier tier.
                if verifier_traffic:
                    for source, payload in self.verifier_ep.drain():
                        service.handle(
                            device_of_addr.get(source), payload, fabric.now
                        )
        finally:
            self.executor.close()
        health = self.service.report()
        self.store.checkpoint(
            fabric.now,
            attested=health["attested"],
            quarantined=health["quarantined"],
        )
        return self._result(health)

    # -- results ------------------------------------------------------------

    def _result(self, health=None):
        if health is None:
            health = self.service.report()
        elapsed_us = self.fabric.now
        reports_per_sec = (
            round(health["attested"] * US_PER_SEC / elapsed_us, 2)
            if elapsed_us
            else 0.0
        )
        store_echo = (
            self.store_config.to_dict()
            if self.store_config is not None
            else {"backend": type(self.store).__name__, "path": self.store.path, "resume": self.store.resume}
        )
        store_echo["records"] = self.store.appended
        return FleetResult(
            {
                "schema": SCHEMA_VERSION,
                "fleet": dict(
                    self.config.to_dict(),
                    mode="pool" if self.workers else "serial",
                    lanes=self.executor.lanes,
                    timeout_us=self.timeout_us,
                ),
                "shards": self.shard_config.to_dict(),
                "link": self.profile.to_dict(),
                "store": store_echo,
                "resumed": self.resumed,
                "health": health.to_dict(),
                "fabric": dict(self.fabric.stats),
                "events": dict(sorted(self.event_counts.items())),
                "compute": {
                    "cycles": self.compute_cycles,
                    "responses": self.responses_sent,
                },
                "sim_elapsed_us": elapsed_us,
                "reports_per_sec": reports_per_sec,
            }
        )

    def healthy(self, result=None):
        """Whether every non-quarantined device attested."""
        health = (result if result is not None else self._result())["health"]
        return health["pending"] == 0 and (
            health["attested"] + health["quarantined"] == health["total"]
        )
