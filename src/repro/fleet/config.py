"""Typed configuration objects for the fleet stack.

These are the single construction path for the 1.4 fleet API::

    config = FleetConfig(devices=10_000, seed=7, boot_mode="snapshot")
    fleet = Fleet(
        config,
        shards=ShardConfig(shards=8),
        fabric=FabricProfile(latency_us=200, loss=0.1),
        store=StoreConfig(backend="jsonl", path="run.jsonl"),
    )

Each object validates at construction (bad values raise
:class:`~repro.errors.ConfigurationError` immediately, not three layers
down), and each serialises itself with ``to_dict()`` so result dicts
can echo the exact configuration that produced them.

:class:`~repro.net.fabric.FabricProfile` - the fourth config type -
lives with the fabric in :mod:`repro.net.fabric` and is re-exported
here for convenience.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.clock import DEFAULT_HZ
from repro.net.fabric import FabricProfile

__all__ = ["FabricProfile", "FleetConfig", "ShardConfig", "StoreConfig"]

#: Valid device boot strategies (:class:`FleetConfig.boot_mode`).
BOOT_MODES = ("snapshot", "cold")

#: Valid attestation-store backends (:class:`StoreConfig.backend`).
STORE_BACKENDS = ("memory", "jsonl")

#: Valid rogue-device behaviours (:class:`FleetConfig.rogue_mode`).
ROGUE_MODES = ("tamper", "hijack")


class FleetConfig:
    """Everything about the fleet itself: size, seed, compute, protocol.

    Parameters
    ----------
    devices:
        Fleet size.
    seed:
        Master seed: derives every per-device platform key and seeds the
        fabric RNG.  Two runs with equal configs and seeds are
        bit-identical.
    workers:
        Worker-pool size (compute lanes); ``0`` steps devices serially
        in-process (one lane).
    boot_mode:
        ``"snapshot"`` boots one template machine per device class
        through secure boot and forks the rest from its snapshot
        (re-running only per-device key derivation); ``"cold"`` boots
        every device machine from scratch.  The two are bit-identical
        in every observable output - snapshot is simply the scale path.
    rogue:
        Device ids behaving badly (see ``rogue_mode``).
    rogue_mode:
        What a rogue device does: ``"tamper"`` runs a tampered agent
        binary (wrong identity - static attestation catches it);
        ``"hijack"`` runs the *shipped* binary but corrupts a return
        edge at run time, so static attestation passes and only
        control-flow attestation catches it.  ``"hijack"`` therefore
        requires ``cfa=True``.
    cfa:
        Enable control-flow attestation: devices run an executable
        agent under the CFA monitor and the verifier tier demands path
        evidence with every challenge.
    provider:
        Attestation provider label (Footnote 2 per-provider keys).
    timeout_us:
        Challenge expiry in fabric microseconds; ``None`` sizes it from
        the fleet (a full round queued behind the lanes, 2x headroom).
    max_attempts / max_rejects / backoff_us:
        Retry policy (see :class:`~repro.fleet.service.VerifierService`).
    hz:
        Device clock frequency for cycle -> microsecond conversion.
    obs_capacity:
        Fleet observability ring size.
    """

    def __init__(
        self,
        devices=8,
        *,
        seed=0,
        workers=4,
        boot_mode="snapshot",
        rogue=(),
        rogue_mode="tamper",
        cfa=False,
        provider=b"",
        timeout_us=None,
        max_attempts=8,
        max_rejects=3,
        backoff_us=2_000,
        backoff_factor=2,
        hz=DEFAULT_HZ,
        obs_capacity=65_536,
    ):
        if devices < 1:
            raise ConfigurationError("a fleet needs at least one device")
        if boot_mode not in BOOT_MODES:
            raise ConfigurationError(
                "boot_mode must be one of %s, got %r" % (BOOT_MODES, boot_mode)
            )
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if max_attempts < 1 or max_rejects < 1:
            raise ConfigurationError("max_attempts/max_rejects must be >= 1")
        if timeout_us is not None and timeout_us < 1:
            raise ConfigurationError("timeout_us must be positive")
        if rogue_mode not in ROGUE_MODES:
            raise ConfigurationError(
                "rogue_mode must be one of %s, got %r" % (ROGUE_MODES, rogue_mode)
            )
        if rogue_mode == "hijack" and not cfa:
            raise ConfigurationError(
                "rogue_mode='hijack' needs cfa=True (a hijacked device is "
                "invisible to static attestation)"
            )
        self.devices = int(devices)
        self.seed = int(seed)
        self.workers = int(workers)
        self.boot_mode = boot_mode
        self.rogue = frozenset(int(r) for r in rogue)
        if self.rogue - set(range(self.devices)):
            raise ConfigurationError("rogue ids outside the fleet")
        self.rogue_mode = rogue_mode
        self.cfa = bool(cfa)
        self.provider = bytes(provider)
        self.timeout_us = None if timeout_us is None else int(timeout_us)
        self.max_attempts = int(max_attempts)
        self.max_rejects = int(max_rejects)
        self.backoff_us = int(backoff_us)
        self.backoff_factor = backoff_factor
        self.hz = int(hz)
        self.obs_capacity = int(obs_capacity)

    def to_dict(self):
        """JSON-serialisable echo (goes into every result dict)."""
        return {
            "devices": self.devices,
            "seed": self.seed,
            "workers": self.workers,
            "boot_mode": self.boot_mode,
            "rogue": sorted(self.rogue),
            "rogue_mode": self.rogue_mode,
            "cfa": self.cfa,
            "provider": self.provider.hex(),
            "timeout_us": self.timeout_us,
            "max_attempts": self.max_attempts,
            "max_rejects": self.max_rejects,
            "backoff_us": self.backoff_us,
            "hz": self.hz,
        }

    def __repr__(self):
        return "FleetConfig(%d devices, seed=%d, %s boot, %d workers)" % (
            self.devices,
            self.seed,
            self.boot_mode,
            self.workers,
        )


class ShardConfig:
    """How the verifier tier is sharded.

    Device ids are placed on shards by a consistent-hash ring
    (:class:`~repro.fleet.shards.HashRing`): each shard contributes
    ``vnodes`` virtual points, so adding a shard only moves the devices
    that land on the new shard's points - every other assignment is
    stable.

    Parameters
    ----------
    shards:
        Verifier shard count (1 = the unsharded service).
    vnodes:
        Virtual points per shard on the ring; more vnodes = smoother
        balance, slightly larger ring.
    salt:
        Ring salt, mixed into every hash; lets two rings over the same
        ids disagree (e.g. test fixtures).
    """

    def __init__(self, shards=1, *, vnodes=64, salt=b"tytan-fleet-ring"):
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.shards = int(shards)
        self.vnodes = int(vnodes)
        self.salt = bytes(salt)

    def to_dict(self):
        """JSON-serialisable echo of the shard layout."""
        return {
            "shards": self.shards,
            "vnodes": self.vnodes,
            "salt": self.salt.hex(),
        }

    def __repr__(self):
        return "ShardConfig(%d shards, %d vnodes)" % (self.shards, self.vnodes)


class StoreConfig:
    """Where attestation protocol state is persisted.

    Parameters
    ----------
    backend:
        ``"memory"`` (records kept in-process, lost at exit) or
        ``"jsonl"`` (append-only JSON-lines file at ``path``).
    path:
        Backing file for the ``jsonl`` backend (required there,
        ignored for ``memory``).
    resume:
        When True, settled outcomes (attested / quarantined devices)
        recorded by a previous run with the same fleet seed are loaded
        before the run starts, and those devices are not re-challenged.
    """

    def __init__(self, backend="memory", *, path=None, resume=False):
        if backend not in STORE_BACKENDS:
            raise ConfigurationError(
                "store backend must be one of %s, got %r"
                % (STORE_BACKENDS, backend)
            )
        if backend == "jsonl" and not path:
            raise ConfigurationError("jsonl store needs a path")
        self.backend = backend
        self.path = path
        self.resume = bool(resume)

    def build(self):
        """Construct the configured :class:`AttestationStore`."""
        from repro.fleet.store import JsonlStore, MemoryStore

        if self.backend == "jsonl":
            return JsonlStore(self.path, resume=self.resume)
        return MemoryStore(resume=self.resume)

    def to_dict(self):
        """JSON-serialisable echo of the store configuration."""
        return {
            "backend": self.backend,
            "path": self.path,
            "resume": self.resume,
        }

    def __repr__(self):
        return "StoreConfig(%s%s)" % (
            self.backend,
            ", path=%s" % self.path if self.path else "",
        )
