"""Snapshot-fork device boot: the fleet's lazy, pooled boot path.

Cold-booting a TyTAN machine runs the full secure-boot measurement
chain - tens of host milliseconds per device, which is fine for 8
devices and absurd for 100k.  The observation that makes scale cheap:
**everything attestation-visible about a booted fleet device except
K_p is identical across the fleet** (per device class).  Secure boot
measures the component binaries, never the key; the agent's identity
is a function of its image; and the attestation key is derived from
K_p freshly at attest time.  So the fleet boots *one template machine
per device class* through real secure boot, snapshots its full
architectural state, and mints devices by forking the snapshot and
re-running only the per-device key derivation
(:meth:`~repro.fleet.device.FleetDevice.rekey`).

A fork is verified bit-identical to a cold boot by the equivalence
suite (``tests/test_fleet_snapshot.py``) and can be re-checked at run
time with :meth:`DeviceTemplate.selfcheck`.

:class:`DevicePool` adds the second scale lever: machines are
*recycled*.  Challenge responses are pure functions of
``(fleet_seed, device_id, challenge)`` - :meth:`handle_frame` charges
a fixed cycle cost and drains its NIC queues every call - so one live
machine per device class, rekeyed per datagram, answers for the whole
fleet without holding 10k multi-megabyte machine images in memory.
"""

from __future__ import annotations

import copy

from repro.fleet.device import FleetDevice

#: Device id templates boot as (immediately rekeyed away on fork).
TEMPLATE_DEVICE_ID = 0


class DeviceTemplate:
    """One secure-booted machine image for a device class.

    A *device class* is ``(rogue, provider)``: the only things that
    change which binaries a device runs.  The template cold-boots once
    at construction; every :meth:`fork` is a deep copy plus a rekey.
    """

    def __init__(
        self,
        fleet_seed=0,
        rogue=False,
        provider=b"",
        obs_enabled=False,
        cfa=False,
        rogue_mode="tamper",
    ):
        self.fleet_seed = int(fleet_seed)
        self.rogue = bool(rogue)
        self.provider = bytes(provider)
        self.cfa = bool(cfa)
        self.rogue_mode = rogue_mode
        self._image = FleetDevice(
            TEMPLATE_DEVICE_ID,
            fleet_seed,
            rogue=rogue,
            provider=provider,
            obs_enabled=obs_enabled,
            cfa=cfa,
            rogue_mode=rogue_mode,
        )
        #: Forks minted from this template.
        self.forks = 0

    def fork(self, device_id):
        """Mint the fleet member ``device_id`` from the snapshot."""
        device = copy.deepcopy(self._image)
        device.rekey(device_id, self.fleet_seed)
        self.forks += 1
        return device

    def selfcheck(self, device_id=1, nonce=b"\x42" * 8):
        """Assert a fork answers exactly like a cold boot (slow: boots).

        Compares the full response bytes and the charged cycle count
        for one challenge.  Returns True; raises ``AssertionError``
        with the differing field otherwise.
        """
        from repro.net.wire import Challenge

        frame = Challenge(device_id, 0, nonce).to_bytes()
        forked = self.fork(device_id)
        cold = FleetDevice(
            device_id,
            self.fleet_seed,
            rogue=self.rogue,
            provider=self.provider,
            cfa=self.cfa,
            rogue_mode=self.rogue_mode,
        )
        fork_response, fork_cycles = forked.handle_frame(frame)
        cold_response, cold_cycles = cold.handle_frame(frame)
        if fork_response != cold_response:
            raise AssertionError("fork response differs from cold boot")
        if fork_cycles != cold_cycles:
            raise AssertionError(
                "fork charged %d cycles, cold boot %d" % (fork_cycles, cold_cycles)
            )
        return True

    def __repr__(self):
        return "DeviceTemplate(%s%s, %d forks)" % (
            "rogue" if self.rogue else "genuine",
            ", provider=%s" % self.provider.hex() if self.provider else "",
            self.forks,
        )


class DevicePool:
    """Per-lane device supply: boot-mode aware, memory-bounded.

    ``boot_mode="snapshot"`` keeps one recycled machine per device
    class (forked from a lazily booted :class:`DeviceTemplate`) and
    rekeys it to whichever device a datagram addresses - O(classes)
    live machines regardless of fleet size.

    ``boot_mode="cold"`` cold-boots and caches one machine per device
    id (the pre-1.4 behaviour) - exact per-device machines, O(devices)
    memory; right for small fleets and for the equivalence tests.
    """

    def __init__(
        self,
        fleet_seed=0,
        rogue=(),
        provider=b"",
        boot_mode="snapshot",
        cfa=False,
        rogue_mode="tamper",
    ):
        if boot_mode not in ("snapshot", "cold"):
            raise ValueError("unknown boot mode %r" % boot_mode)
        self.fleet_seed = int(fleet_seed)
        self.rogue = frozenset(rogue)
        self.provider = bytes(provider)
        self.boot_mode = boot_mode
        self.cfa = bool(cfa)
        self.rogue_mode = rogue_mode
        self._templates = {}  # class -> DeviceTemplate
        self._recycled = {}  # class -> FleetDevice (snapshot mode)
        self._booted = {}  # device_id -> FleetDevice (cold mode)
        #: Supply counters (cold boots are the expensive one).
        self.cold_boots = 0
        self.rekeys = 0

    def _template(self, rogue):
        template = self._templates.get(rogue)
        if template is None:
            template = DeviceTemplate(
                self.fleet_seed,
                rogue=rogue,
                provider=self.provider,
                cfa=self.cfa,
                rogue_mode=self.rogue_mode,
            )
            self._templates[rogue] = template
            self.cold_boots += 1
        return template

    def acquire(self, device_id):
        """A machine currently identifying as ``device_id``."""
        rogue = device_id in self.rogue
        if self.boot_mode == "cold":
            device = self._booted.get(device_id)
            if device is None:
                device = FleetDevice(
                    device_id,
                    self.fleet_seed,
                    rogue=rogue,
                    provider=self.provider,
                    cfa=self.cfa,
                    rogue_mode=self.rogue_mode,
                )
                self._booted[device_id] = device
                self.cold_boots += 1
            return device
        device = self._recycled.get(rogue)
        if device is None:
            device = self._template(rogue).fork(device_id)
            self._recycled[rogue] = device
            self.rekeys += 1
            return device
        if device.device_id != device_id:
            device.rekey(device_id)
            self.rekeys += 1
        return device

    def handle(self, device_id, payload):
        """Step the addressed device through one datagram."""
        return self.acquire(device_id).handle_frame(payload)

    def live_machines(self):
        """Machines currently held alive (the memory footprint)."""
        count = len(self._recycled) + len(self._booted) + len(self._templates)
        return count

    def close(self):
        """Drop every machine."""
        self._templates.clear()
        self._recycled.clear()
        self._booted.clear()

    def __repr__(self):
        return "DevicePool(%s, %d live, %d cold boots, %d rekeys)" % (
            self.boot_mode,
            self.live_machines(),
            self.cold_boots,
            self.rekeys,
        )
