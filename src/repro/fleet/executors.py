"""Device executors: who steps the fleet's machines.

The orchestrator hands an executor batches of ``(device_id, payload)``
datagrams and gets back ``(device_id, response | None, cycles)``
triples.  Responses are pure functions of the device state and the
challenge, so both executors produce byte-identical results - they
differ only in *who* does the work:

* :class:`SerialExecutor` - every machine lives in this process and is
  stepped one after another (one compute lane).
* :class:`PoolExecutor` - a ``multiprocessing`` worker pool; each
  worker boots and caches the machines it is handed and steps its
  batch share, giving ``workers`` concurrent compute lanes (and real
  host parallelism on multi-core machines).

The executor's ``lanes`` count is what the orchestrator uses to model
simulated compute concurrency, so fleet throughput comparisons are
deterministic and host-independent.
"""

from __future__ import annotations

import multiprocessing

from repro.fleet.device import FleetDevice


class SerialExecutor:
    """All devices in-process, stepped sequentially."""

    def __init__(self, device_ids, fleet_seed=0, rogue=(), provider=b""):
        self.device_ids = list(device_ids)
        self.fleet_seed = fleet_seed
        self.rogue = frozenset(rogue)
        self.provider = bytes(provider)
        self.devices = None

    @property
    def lanes(self):
        """Concurrent compute lanes this executor models."""
        return 1

    def start(self):
        """Boot every device machine."""
        self.devices = {
            device_id: FleetDevice(
                device_id,
                self.fleet_seed,
                rogue=device_id in self.rogue,
                provider=self.provider,
            )
            for device_id in self.device_ids
        }

    def process(self, batch):
        """Step each addressed device through its datagram."""
        results = []
        for device_id, payload in batch:
            response, cycles = self.devices[device_id].handle_frame(payload)
            results.append((device_id, response, cycles))
        return results

    def close(self):
        """Release the devices."""
        self.devices = None


#: Per-worker state: the booted device cache and the fleet parameters.
_WORKER = {"config": None, "devices": {}}


def _worker_init(fleet_seed, rogue, provider):
    """Pool initializer: record the fleet parameters for lazy boots."""
    _WORKER["config"] = (fleet_seed, frozenset(rogue), bytes(provider))
    _WORKER["devices"] = {}


def _worker_handle(item):
    """Step one datagram in a worker, booting the device on first use.

    Devices are cached per worker process; a device whose retries land
    on a different worker is simply booted again there - responses are
    pure functions of (seed, device_id, challenge), so placement never
    changes the bytes, only host-side wall clock.
    """
    device_id, payload = item
    fleet_seed, rogue, provider = _WORKER["config"]
    device = _WORKER["devices"].get(device_id)
    if device is None:
        device = FleetDevice(
            device_id, fleet_seed, rogue=device_id in rogue, provider=provider
        )
        _WORKER["devices"][device_id] = device
    response, cycles = device.handle_frame(payload)
    return device_id, response, cycles


class PoolExecutor:
    """A multiprocessing pool of device-stepping workers."""

    def __init__(self, device_ids, fleet_seed=0, rogue=(), provider=b"", workers=4):
        if workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        self.device_ids = list(device_ids)
        self.fleet_seed = fleet_seed
        self.rogue = frozenset(rogue)
        self.provider = bytes(provider)
        self.workers = int(workers)
        self._pool = None

    @property
    def lanes(self):
        return self.workers

    def start(self):
        """Spin up the worker pool (devices boot lazily per worker)."""
        self._pool = multiprocessing.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(self.fleet_seed, self.rogue, self.provider),
        )

    def process(self, batch):
        if not batch:
            return []
        chunksize = max(1, len(batch) // self.workers)
        return self._pool.map(_worker_handle, batch, chunksize=chunksize)

    def close(self):
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
