"""Device executors: who steps the fleet's machines.

The orchestrator hands an executor batches of ``(device_id, payload)``
datagrams and gets back ``(device_id, response | None, cycles)``
triples.  Responses are pure functions of the device state and the
challenge, so every executor/boot-mode combination produces
byte-identical results - they differ only in *who* does the work and
*how machines come to exist*:

* :class:`SerialExecutor` - one in-process :class:`DevicePool`, stepped
  sequentially (one compute lane).
* :class:`PoolExecutor` - a ``multiprocessing`` worker pool; each
  worker owns its own :class:`DevicePool` and steps its batch share,
  giving ``workers`` concurrent compute lanes (and real host
  parallelism on multi-core machines).

Boot modes come from :class:`~repro.fleet.config.FleetConfig`:
``snapshot`` (fork-from-template, machines recycled by rekey - the
10k-device path) or ``cold`` (one booted machine per device id).

The executor's ``lanes`` count is what the orchestrator uses to model
simulated compute concurrency, so fleet throughput comparisons are
deterministic and host-independent.
"""

from __future__ import annotations

import multiprocessing

from repro.fleet.snapshot import DevicePool


class SerialExecutor:
    """All devices supplied by one in-process pool, stepped sequentially."""

    def __init__(
        self,
        device_ids,
        fleet_seed=0,
        rogue=(),
        provider=b"",
        boot_mode="snapshot",
        cfa=False,
        rogue_mode="tamper",
    ):
        self.device_ids = list(device_ids)
        self.fleet_seed = fleet_seed
        self.rogue = frozenset(rogue)
        self.provider = bytes(provider)
        self.boot_mode = boot_mode
        self.cfa = bool(cfa)
        self.rogue_mode = rogue_mode
        self.pool = None

    @property
    def lanes(self):
        """Concurrent compute lanes this executor models."""
        return 1

    def start(self):
        """Create the device pool (machines boot lazily)."""
        self.pool = DevicePool(
            self.fleet_seed,
            rogue=self.rogue,
            provider=self.provider,
            boot_mode=self.boot_mode,
            cfa=self.cfa,
            rogue_mode=self.rogue_mode,
        )

    def process(self, batch):
        """Step each addressed device through its datagram."""
        pool = self.pool
        results = []
        for device_id, payload in batch:
            response, cycles = pool.handle(device_id, payload)
            results.append((device_id, response, cycles))
        return results

    def close(self):
        """Release the devices."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None


#: Per-worker state: the device pool supplying this worker's machines.
_WORKER = {"pool": None}


def _worker_init(fleet_seed, rogue, provider, boot_mode, cfa=False, rogue_mode="tamper"):
    """Pool initializer: build this worker's device pool."""
    _WORKER["pool"] = DevicePool(
        fleet_seed,
        rogue=rogue,
        provider=provider,
        boot_mode=boot_mode,
        cfa=cfa,
        rogue_mode=rogue_mode,
    )


def _worker_handle(item):
    """Step one datagram in a worker.

    In snapshot mode the worker's pool holds one recycled machine per
    device class and rekeys it to the addressed device; in cold mode it
    boots and caches per-device machines.  Either way a device whose
    retries land on a different worker is simply supplied again there -
    responses are pure functions of (seed, device_id, challenge), so
    placement never changes the bytes, only host-side wall clock.
    """
    device_id, payload = item
    response, cycles = _WORKER["pool"].handle(device_id, payload)
    return device_id, response, cycles


class PoolExecutor:
    """A multiprocessing pool of device-stepping workers."""

    def __init__(
        self,
        device_ids,
        fleet_seed=0,
        rogue=(),
        provider=b"",
        workers=4,
        boot_mode="snapshot",
        cfa=False,
        rogue_mode="tamper",
    ):
        if workers < 2:
            raise ValueError("a worker pool needs at least 2 workers")
        self.device_ids = list(device_ids)
        self.fleet_seed = fleet_seed
        self.rogue = frozenset(rogue)
        self.provider = bytes(provider)
        self.workers = int(workers)
        self.boot_mode = boot_mode
        self.cfa = bool(cfa)
        self.rogue_mode = rogue_mode
        self._pool = None

    @property
    def lanes(self):
        return self.workers

    def start(self):
        """Spin up the worker pool (device pools build lazily per worker)."""
        self._pool = multiprocessing.Pool(
            self.workers,
            initializer=_worker_init,
            initargs=(
                self.fleet_seed,
                self.rogue,
                self.provider,
                self.boot_mode,
                self.cfa,
                self.rogue_mode,
            ),
        )

    def process(self, batch):
        if not batch:
            return []
        chunksize = max(1, len(batch) // self.workers)
        return self._pool.map(_worker_handle, batch, chunksize=chunksize)

    def close(self):
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
