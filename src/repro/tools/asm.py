"""``repro-asm``: assemble TyTAN assembly into a TELF object file.

Usage::

    python -m repro.tools.asm input.s [-o output.obj] [--name NAME]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import AssemblerError
from repro.isa.assembler import assemble


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-asm", description="Assemble TyTAN assembly into TELF objects."
    )
    parser.add_argument("source", help="assembly source file (.s)")
    parser.add_argument(
        "-o", "--output", help="output object path (default: <source>.obj)"
    )
    parser.add_argument(
        "--name", help="object name recorded in the container (default: stem)"
    )
    return parser


def main(argv=None):
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    source_path = Path(args.source)
    try:
        source = source_path.read_text()
    except OSError as exc:
        print("repro-asm: cannot read %s: %s" % (source_path, exc), file=sys.stderr)
        return 2
    name = args.name or source_path.stem
    try:
        obj = assemble(source, name)
    except AssemblerError as exc:
        print("repro-asm: %s: %s" % (source_path, exc), file=sys.stderr)
        return 1
    output = Path(args.output) if args.output else source_path.with_suffix(".obj")
    output.write_bytes(obj.to_bytes())
    text = obj.sections.get(".text")
    data = obj.sections.get(".data")
    print(
        "%s: %d bytes text, %d bytes data, %d symbols, %d relocations -> %s"
        % (
            name,
            text.size if text else 0,
            data.size if data else 0,
            len(obj.symbols),
            len(obj.relocations),
            output,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
