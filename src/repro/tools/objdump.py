"""``repro-objdump``: inspect TELF object files and task images.

Usage::

    python -m repro.tools.objdump file.obj            # headers + symbols
    python -m repro.tools.objdump file.img -d         # + disassembly
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ImageFormatError
from repro.image.telf import IMG_MAGIC, OBJ_MAGIC, ObjectFile, TaskImage
from repro.isa.disassembler import disassemble


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-objdump", description="Inspect TELF containers."
    )
    parser.add_argument("file", help="object (.obj) or image (.img) file")
    parser.add_argument(
        "-d", "--disassemble", action="store_true", help="disassemble code"
    )
    return parser


def dump_object(obj, show_disassembly, out):
    """Print an object file's contents."""
    print("TELF object: %s" % obj.name, file=out)
    for name in sorted(obj.sections):
        section = obj.sections[name]
        print("  section %-7s %6d bytes" % (name, section.size), file=out)
    print("  symbols:", file=out)
    for name in sorted(obj.symbols):
        sym = obj.symbols[name]
        print(
            "    %-24s %s+0x%04X%s"
            % (name, sym.section, sym.offset, "  GLOBAL" if sym.is_global else ""),
            file=out,
        )
    print("  relocations:", file=out)
    for reloc in obj.relocations:
        print(
            "    %s+0x%04X -> %s" % (reloc.section, reloc.offset, reloc.symbol),
            file=out,
        )
    if show_disassembly:
        print("  disassembly (.text):", file=out)
        for address, text in disassemble(bytes(obj.section(".text").data)):
            print("    %06X:  %s" % (address, text), file=out)


def dump_image(image, show_disassembly, out):
    """Print a task image's contents."""
    from repro.core.identity import identity_of_image

    print("TELF image: %s" % image.name, file=out)
    print(
        "  blob %d bytes, bss %d, stack %d, entry 0x%X"
        % (len(image.blob), image.bss_size, image.stack_size, image.entry),
        file=out,
    )
    print("  identity: %s" % identity_of_image(image).hex(), file=out)
    print(
        "  relocations (%d): %s"
        % (
            len(image.relocations),
            " ".join("0x%X" % offset for offset in image.relocations[:16])
            + (" ..." if len(image.relocations) > 16 else ""),
        ),
        file=out,
    )
    if show_disassembly:
        print("  disassembly:", file=out)
        for address, text in disassemble(image.blob):
            print("    %06X:  %s" % (address, text), file=out)


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        blob = Path(args.file).read_bytes()
    except OSError as exc:
        print("repro-objdump: %s" % exc, file=sys.stderr)
        return 2
    try:
        if blob[:4] == OBJ_MAGIC:
            dump_object(ObjectFile.from_bytes(blob), args.disassemble, out)
        elif blob[:4] == IMG_MAGIC:
            dump_image(TaskImage.from_bytes(blob), args.disassemble, out)
        else:
            print("repro-objdump: not a TELF container", file=sys.stderr)
            return 1
    except ImageFormatError as exc:
        print("repro-objdump: %s" % exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
