"""``repro-trace``: run a workload and export an observability trace.

Usage::

    python -m repro.tools.trace --demo --out trace.json
    python -m repro.tools.trace task.img [more.img ...] --ms 10 \
        --out trace.json --jsonl trace.jsonl --summary

Runs task images (or, with ``--demo`` / no images, a built-in demo
workload: two secure periodic tasks, a normal compute task, an
attestation and a secure-storage round trip) on a booted TyTAN and
exports the event-bus stream:

* ``--out`` - Chrome trace-event JSON: open it at
  https://ui.perfetto.dev or in ``chrome://tracing`` (one track per
  task, one per trusted component);
* ``--jsonl`` - raw events, one JSON object per line;
* ``--summary`` - print the plain-text digest (event histogram,
  per-task cycle accounting, counter registry).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import TyTAN
from repro.errors import ImageFormatError, TyTANError
from repro.image.telf import TaskImage
from repro.obs import summary_text, write_chrome_trace, write_jsonl
from repro.sim.workloads import busy_loop_source, counter_task_source


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace a TyTAN run and export it for Perfetto.",
    )
    parser.add_argument(
        "images", nargs="*", help="task image files (.img); empty = demo workload"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run the built-in demo workload (default when no images given)",
    )
    parser.add_argument(
        "--ms", type=float, default=10.0, help="simulated milliseconds to run"
    )
    parser.add_argument(
        "--normal", action="store_true", help="load images as normal (not secure) tasks"
    )
    parser.add_argument("--priority", type=int, default=3, help="task priority")
    parser.add_argument(
        "--out",
        default="trace.json",
        metavar="PATH",
        help="Chrome trace-event JSON output (default trace.json)",
    )
    parser.add_argument(
        "--jsonl", metavar="PATH", help="also write raw events as JSON Lines"
    )
    parser.add_argument(
        "--summary", action="store_true", help="print the plain-text summary"
    )
    return parser


def _load_demo(system):
    """Load the demo workload; returns the loaded tasks."""
    sensor = system.load_source(
        counter_task_source(period_ticks=1, store_symbol="ticks"),
        "sensor",
        secure=True,
        priority=4,
    )
    logger = system.load_source(
        counter_task_source(period_ticks=3, store_symbol="lines"),
        "logger",
        secure=True,
        priority=3,
    )
    cruncher = system.load_source(
        busy_loop_source(5_000), "cruncher", secure=False, priority=1
    )
    return [sensor, logger, cruncher]


def _demo_trusted_round_trip(system, tasks):
    """Exercise attestation and secure storage so the trace shows the
    trusted-component tracks."""
    for task in tasks:
        if task.identity is None or task.tid not in system.kernel.scheduler.tasks:
            continue
        verifier = system.make_verifier()
        verifier.expect(task.identity)
        nonce = verifier.fresh_nonce()
        report = system.remote_attest_task(task, nonce)
        verifier.verify(report, nonce)
        system.store(task, "trace-demo", b"observability")
        system.retrieve(task, "trace-demo")


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    system = TyTAN()
    tasks = []
    if args.images:
        for path in args.images:
            try:
                image = TaskImage.from_bytes(Path(path).read_bytes())
            except (OSError, ImageFormatError) as exc:
                print("repro-trace: %s: %s" % (path, exc), file=sys.stderr)
                return 2
            try:
                tasks.append(
                    system.load_task(
                        image, secure=not args.normal, priority=args.priority
                    )
                )
            except TyTANError as exc:
                print(
                    "repro-trace: loading %s failed: %s" % (path, exc),
                    file=sys.stderr,
                )
                return 1
    if args.demo or not args.images:
        tasks.extend(_load_demo(system))

    budget = int(args.ms * system.platform.config.hz / 1000)
    result = system.run(max_cycles=budget)
    if args.demo or not args.images:
        _demo_trusted_round_trip(system, tasks)

    bus = system.obs
    events = list(bus.events)
    write_chrome_trace(
        events, args.out, hz=system.platform.config.hz, process_name="tytan"
    )
    print(
        "ran %.2f ms simulated (%d cycles, %d insns, stop: %s)"
        % (
            system.clock.cycles_to_ms(result.cycles),
            result.cycles,
            result.retired,
            result.stop_reason,
        ),
        file=out,
    )
    print(
        "%d events captured (%d dropped) -> %s  [open in https://ui.perfetto.dev]"
        % (len(events), bus.dropped, args.out),
        file=out,
    )
    if args.jsonl:
        count = write_jsonl(events, args.jsonl)
        print("%d events -> %s (JSONL)" % (count, args.jsonl), file=out)
    if args.summary:
        print("", file=out)
        print(
            summary_text(events, accounting=bus.accounting, counters=bus.counters),
            file=out,
            end="",
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
