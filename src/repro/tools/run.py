"""``repro-run``: boot a TyTAN system and run task images on it.

Usage::

    python -m repro.tools.run task.img [more.img ...] \
        [--ms 10] [--normal] [--priority 3] [--attest] [--trace]

Each image is loaded dynamically (secure by default), the system runs
for the requested simulated time, and a summary is printed: per-task
state, identities, fault log, and (with ``--attest``) a remote
attestation round trip for every secure task.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import TyTAN
from repro.core.identity import identity_of_image
from repro.errors import ImageFormatError, TyTANError
from repro.image.telf import TaskImage
from repro.sim.trace import EventTrace


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-run", description="Run task images on a simulated TyTAN."
    )
    parser.add_argument("images", nargs="+", help="task image files (.img)")
    parser.add_argument(
        "--ms", type=float, default=10.0, help="simulated milliseconds to run"
    )
    parser.add_argument(
        "--normal", action="store_true", help="load as normal (not secure) tasks"
    )
    parser.add_argument("--priority", type=int, default=3, help="task priority")
    parser.add_argument(
        "--attest", action="store_true", help="remote-attest each secure task"
    )
    parser.add_argument(
        "--trace", action="store_true", help="print the kernel event trace"
    )
    parser.add_argument(
        "--vcd", metavar="FILE", help="write a VCD waveform of task states"
    )
    return parser


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)

    system = TyTAN()
    trace = EventTrace(system.kernel) if args.trace else None
    vcd_recorder = None
    if args.vcd:
        from repro.sim.vcd import VcdRecorder

        vcd_recorder = VcdRecorder(system.kernel)
    tasks = []
    for path in args.images:
        try:
            image = TaskImage.from_bytes(Path(path).read_bytes())
        except (OSError, ImageFormatError) as exc:
            print("repro-run: %s: %s" % (path, exc), file=sys.stderr)
            return 2
        try:
            task = system.load_task(
                image, secure=not args.normal, priority=args.priority
            )
        except TyTANError as exc:
            print("repro-run: loading %s failed: %s" % (path, exc), file=sys.stderr)
            return 1
        tasks.append((task, image))
        print(
            "loaded %s at 0x%08X (%s)"
            % (task.name, task.base, "secure" if task.is_secure else "normal"),
            file=out,
        )

    budget = int(args.ms * system.platform.config.hz / 1000)
    system.run(max_cycles=budget)
    print(
        "\nran %.2f ms simulated (%d cycles)"
        % (system.clock.cycles_to_ms(system.clock.now), system.clock.now),
        file=out,
    )

    for task, image in tasks:
        if task in system.kernel.faulted:
            state = "FAULTED: %s" % system.kernel.faulted[task]
        elif task.tid not in system.kernel.scheduler.tasks:
            state = "exited"
        else:
            state = task.state
        identity = task.identity.hex() if task.identity else "(unmeasured)"
        print("  %-16s %-10s id=%s" % (task.name, state, identity[:16]), file=out)
        if args.attest and task.identity is not None and task.tid in system.kernel.scheduler.tasks:
            verifier = system.make_verifier()
            verifier.expect(identity_of_image(image))
            nonce = verifier.fresh_nonce()
            report = system.remote_attest_task(task, nonce)
            print(
                "    remote attestation: %s"
                % ("OK" if verifier.verify(report, nonce) else "FAILED"),
                file=out,
            )

    if trace is not None:
        print("\nevent trace:", file=out)
        for cycle, kind, data in trace.events[:200]:
            print("  %10d %-14s %s" % (cycle, kind, data), file=out)

    if vcd_recorder is not None:
        vcd_recorder.dump(args.vcd)
        print("\nwaveform written to %s" % args.vcd, file=out)

    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
