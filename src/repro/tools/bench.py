"""``repro-bench``: regenerate the paper's tables from the command line.

Usage::

    python -m repro.tools.bench               # every experiment
    python -m repro.tools.bench table7 ipc    # selected experiments
    python -m repro.tools.bench --list
    python -m repro.tools.bench --throughput  # CPU-core insns/sec bench
    python -m repro.tools.bench --wcet        # static vs dynamic WCET
    python -m repro.tools.bench --fleet       # fleet attestation bench
    python -m repro.tools.bench --cfa         # CFA recording overhead

The throughput mode runs the CPU bench (:mod:`repro.perf.bench_core`):
three workloads (alu / mem / irq), each in baseline, fast-path,
block-translation, and trace-JIT mode, appending to the run history in
``BENCH_cpu_core.json``.  ``--no-blocks`` skips both JIT tiers and
``--no-traces`` skips just the trace JIT (the ablation modes CI runs);
``--check`` turns the run into a CI gate that fails when a JIT tier
regresses - blocks vs. fastpath on every workload, traces vs. blocks
on alu/mem, traces at least 2x blocks on irq (horizon-split prefix
admission), traces vs. fastpath on irq (the architectural-equivalence
check is always on: any divergence between modes raises before a
report is written).  Gate runs never append to the report history;
``--no-record`` requests the same for a plain run.
The WCET mode runs the static-analysis soundness experiments
(:mod:`repro.analysis.bench`): each benchmark workload's statically
computed cycle bound next to the cycles the core actually charged.
The fleet mode runs the attestation-service lane-scaling bench
(:mod:`repro.perf.bench_fleet`): reports per simulated second vs.
device count across 1/2/4 worker lanes (sharded verifier tier,
snapshot boot), appending to ``BENCH_fleet.json``; with ``--check``
it fails when the top lane count scales below 0.7x linear over one
lane at the largest device count.
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.experiments import EXPERIMENTS


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the TyTAN paper's evaluation tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--throughput",
        action="store_true",
        help="run the CPU-core throughput bench (cached vs. uncached)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=150_000,
        metavar="N",
        help="instructions per throughput run (default 150000)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="report path (default BENCH_cpu_core.json, or "
        "BENCH_fleet.json with --fleet)",
    )
    parser.add_argument(
        "--wcet",
        action="store_true",
        help="run the static-vs-dynamic WCET soundness experiments",
    )
    parser.add_argument(
        "--cfa",
        action="store_true",
        help="run the control-flow-attestation overhead bench "
        "(path recording on vs. off, every execution tier)",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="run the fleet attestation scaling bench (serial vs. pool)",
    )
    parser.add_argument(
        "--fleet-devices",
        default="64,1024,10240",
        metavar="N,N,...",
        help="device counts swept by the fleet bench (default 64,1024,10240)",
    )
    parser.add_argument(
        "--fleet-lanes",
        default="1,2,4",
        metavar="K,K,...",
        help="worker-lane counts swept by the fleet bench (default 1,2,4)",
    )
    parser.add_argument(
        "--no-blocks",
        dest="blocks",
        action="store_false",
        help="skip both JIT tiers of the throughput bench",
    )
    parser.add_argument(
        "--no-traces",
        dest="traces",
        action="store_false",
        help="skip the trace-JIT mode of the throughput bench "
        "(the block tier still runs)",
    )
    parser.add_argument(
        "--no-record",
        dest="record",
        action="store_false",
        help="do not append this throughput run to the report history "
        "(implied by --check: gate runs must not pollute the history)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if a JIT tier regresses on any throughput "
        "workload (blocks vs. fastpath everywhere; traces vs. blocks "
        "on alu/mem and >= 2x on irq; traces vs. fastpath on irq)",
    )
    return parser


#: ``--check`` gates: (speedup key, minimum ratio, workloads it covers;
#: None = all).  The irq traces-vs-blocks floor is 2x: horizon-split
#: prefix admission keeps the trace tier running between 400-cycle
#: ticks, so "barely no slower than blocks" would be a regression.
_THROUGHPUT_GATES = (
    ("blocks_vs_fastpath", 1.0, None),
    ("traces_vs_blocks", 1.0, ("alu", "mem")),
    ("traces_vs_blocks", 2.0, ("irq",)),
    ("traces_vs_fastpath", 1.0, ("irq",)),
)


def check_throughput(result, out):
    """CI gate over a throughput result; returns offending workloads."""
    slower = []
    for name in sorted(result["workloads"]):
        entry = result["workloads"][name]
        for key, floor, only in _THROUGHPUT_GATES:
            if only is not None and name not in only:
                continue
            ratio = entry["speedups"].get(key)
            if ratio is not None and ratio < floor:
                slower.append(name)
                print(
                    "check: %s: %s is %.2fx (gate: >= %.2fx)"
                    % (name, key, ratio, floor),
                    file=out,
                )
    return slower


def render_wcet(results, out):
    """Print the WCET soundness table; returns unsound-result count."""
    print(
        "\nWCET soundness - static bound vs. measured cycles", file=out
    )
    print(
        "  %-16s %12s %12s %8s %8s"
        % ("workload", "static", "dynamic", "slack", "sound"),
        file=out,
    )
    unsound = 0
    for row in results:
        static = row["static_wcet"]
        if not row["sound"]:
            unsound += 1
        print(
            "  %-16s %12s %12s %8s %8s"
            % (
                row["workload"],
                _fmt(static) if static is not None else "-",
                _fmt(row["dynamic_cycles"]),
                "%s%%" % row["slack_pct"] if row["slack_pct"] is not None else "-",
                "yes" if row["sound"] else "NO",
            ),
            file=out,
        )
    return unsound


def render(name, description, rows, out):
    """Print one paper-vs-measured table."""
    print("\n%s - %s" % (name, description), file=out)
    print("  %-36s %14s %14s %8s" % ("row", "paper", "measured", "delta"), file=out)
    worst = 0.0
    for label, paper, measured in rows:
        if paper:
            delta = (measured - paper) / paper
            delta_text = "%+.1f%%" % (100 * delta)
            worst = max(worst, abs(delta))
        else:
            delta_text = "-"
        print(
            "  %-36s %14s %14s %8s"
            % (label, _fmt(paper), _fmt(measured), delta_text),
            file=out,
        )
    return worst


def _fmt(value):
    if isinstance(value, float):
        return "%.2f" % value
    return "{:,}".format(value)


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.wcet:
        from repro.analysis.bench import wcet_experiments

        unsound = render_wcet(wcet_experiments(), out)
        return 0 if unsound == 0 else 1
    if args.cfa:
        from repro.perf.bench_core import write_cfa_report

        # The cross-tier evidence gate is built in: any digest/cycle
        # divergence between tiers raises before a report is written.
        write_cfa_report(
            path=args.json or "BENCH_cpu_core.json",
            instructions=args.instructions,
            out=out,
            record=args.record and not args.check,
        )
        return 0
    if args.fleet:
        from repro.perf.bench_fleet import check_fleet, write_report

        counts = [int(n) for n in args.fleet_devices.split(",") if n.strip()]
        lanes = [int(n) for n in args.fleet_lanes.split(",") if n.strip()]
        result = write_report(
            path=args.json or "BENCH_fleet.json",
            device_counts=counts,
            lanes=lanes,
            out=out,
        )
        if args.check:
            return 0 if check_fleet(result, out) else 1
        return 0
    if args.throughput:
        from repro.perf.bench_core import write_report

        result = write_report(
            path=args.json or "BENCH_cpu_core.json",
            instructions=args.instructions,
            out=out,
            blocks=args.blocks,
            traces=args.traces,
            record=args.record and not args.check,
        )
        if args.check:
            if not args.blocks:
                print("check: nothing to gate without the block tier", file=out)
                return 2
            return 1 if check_throughput(result, out) else 0
        return 0
    if args.list:
        for name, (description, _) in EXPERIMENTS.items():
            print("%-8s %s" % (name, description), file=out)
        return 0
    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print("repro-bench: unknown experiment(s): %s" % ", ".join(unknown), file=sys.stderr)
        return 2
    for name in selected:
        description, driver = EXPERIMENTS[name]
        rows = driver()
        render(name, description, rows, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
