"""``repro-link``: link TELF objects into a loadable task image.

Usage::

    python -m repro.tools.link a.obj b.obj -o task.img \
        [--entry start] [--stack 512] [--name NAME]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ImageFormatError, LinkError
from repro.image.linker import link
from repro.image.telf import ObjectFile


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-link", description="Link TELF objects into a task image."
    )
    parser.add_argument("objects", nargs="+", help="input object files")
    parser.add_argument("-o", "--output", required=True, help="output image path")
    parser.add_argument("--entry", default="start", help="entry symbol")
    parser.add_argument("--stack", type=int, default=512, help="stack bytes")
    parser.add_argument("--name", help="image name (default: first object's)")
    return parser


def main(argv=None):
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    objects = []
    for path in args.objects:
        try:
            objects.append(ObjectFile.from_bytes(Path(path).read_bytes()))
        except (OSError, ImageFormatError) as exc:
            print("repro-link: %s: %s" % (path, exc), file=sys.stderr)
            return 2
    try:
        image = link(
            objects, name=args.name, entry_symbol=args.entry, stack_size=args.stack
        )
    except LinkError as exc:
        print("repro-link: %s" % exc, file=sys.stderr)
        return 1
    Path(args.output).write_bytes(image.to_bytes())
    from repro.core.identity import identity_of_image

    print(
        "%s: %d bytes blob + %d bss + %d stack, entry 0x%X, %d relocations"
        % (
            image.name,
            len(image.blob),
            image.bss_size,
            image.stack_size,
            image.entry,
            len(image.relocations),
        )
    )
    print("identity (id_t): %s" % identity_of_image(image).hex())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
