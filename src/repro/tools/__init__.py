"""Command-line developer tools for the TyTAN toolchain.

These mirror the binutils a task developer would expect:

* ``python -m repro.tools.asm``     - assemble ``.s`` into TELF objects
* ``python -m repro.tools.link``    - link objects into a task image
* ``python -m repro.tools.objdump`` - inspect objects and images
* ``python -m repro.tools.run``     - boot TyTAN and run task images

Each module exposes ``main(argv)`` for tests and scripting.
"""
