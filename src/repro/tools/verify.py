"""``repro-verify``: statically verify task images before deployment.

Usage::

    python -m repro.tools.verify task.img             # text report
    python -m repro.tools.verify task.img --json      # JSON report
    python -m repro.tools.verify task.s               # assemble + verify
    python -m repro.tools.verify task.s --cfa         # + run under the CFA
                                                      #   monitor and verify
                                                      #   the path evidence
    python -m repro.tools.verify --builtin            # shipped-corpus gate

Policy knobs::

    --privileged                 allow cli/sti/iret/hlt
    --wcet-budget N              require a static WCET <= N cycles
    --loop-bound OFFSET=N        annotate a loop header (repeatable)
    --allow LO:HI                allowed absolute window (repeatable)

``--builtin`` is the CI regression gate: every shipped clean image
(use-case, workloads, benign examples) must verify with zero findings,
every known-bad fixture must be rejected by its pass, and every
malware-containment attacker must produce findings.  Exit code 0 only
when all three hold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import TyTANError
from repro.image.telf import IMG_MAGIC, TaskImage


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Static task-image verifier (CFG, WCET, MPU safety).",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="task images (.img) or assembly sources to verify",
    )
    parser.add_argument(
        "--builtin",
        action="store_true",
        help="verify the shipped corpus (clean images, fixtures, attackers)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON reports")
    parser.add_argument(
        "--privileged",
        action="store_true",
        help="allow privileged opcodes (cli/sti/iret/hlt)",
    )
    parser.add_argument(
        "--wcet-budget",
        type=int,
        default=None,
        metavar="N",
        help="require a static WCET of at most N cycles",
    )
    parser.add_argument(
        "--loop-bound",
        action="append",
        default=[],
        metavar="OFFSET=N",
        help="loop-bound annotation (header blob offset = max iterations)",
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="LO:HI",
        help="allowed absolute address window (half-open; repeatable)",
    )
    parser.add_argument(
        "--cfa",
        action="store_true",
        help="also execute the image under the control-flow-attestation "
        "monitor on a reference machine and verify the recorded path "
        "evidence against the image's CFG (uses --loop-bound annotations)",
    )
    return parser


def _parse_int(text):
    return int(text, 0)


def build_policy(args):
    """Translate CLI knobs into a :class:`VerifyPolicy`."""
    from repro.analysis.verifier import VerifyPolicy

    loop_bounds = {}
    for item in args.loop_bound:
        offset, _, bound = item.partition("=")
        loop_bounds[_parse_int(offset)] = _parse_int(bound)
    windows = None
    if args.allow:
        windows = []
        for item in args.allow:
            lo, _, hi = item.partition(":")
            windows.append((_parse_int(lo), _parse_int(hi)))
    return VerifyPolicy(
        privileged=args.privileged,
        allowed_absolute_ranges=windows,
        loop_bounds=loop_bounds,
        wcet_budget=args.wcet_budget,
    )


def load_input(path):
    """Load one CLI input: a serialised image or assembly source."""
    raw = Path(path).read_bytes()
    if raw[:4] == IMG_MAGIC:
        return TaskImage.from_bytes(raw)
    # Anything else is treated as assembly source.
    from repro.image.linker import link
    from repro.isa.assembler import assemble

    name = Path(path).stem
    return link(assemble(raw.decode("utf-8"), name), name=name)


def cfa_check(image, loop_bounds):
    """Run ``image`` under the CFA monitor and verify its path evidence.

    Boots a reference TyTAN machine, enrols the task with the
    control-flow-attestation engine, runs it, and checks the MACed
    evidence record against the image's own CFG - the full
    device-to-verifier round on one host.  Returns a JSON-serialisable
    dict with the verdict.
    """
    from repro.cfa import PathVerifier, evidence_mac_ok
    from repro.core.identity import identity_of_image
    from repro.core.system import TyTAN
    from repro.crypto.kdf import derive_key

    system = TyTAN()
    task = system.load_task(image, secure=True, name="cfa-check")
    recorder = system.enable_cfa(task)
    system.run(max_cycles=2_000_000)
    nonce = b"repro-verify-cfa"
    evidence = system.cfa_evidence("cfa-check", nonce)
    key = derive_key(system.platform.key_store.raw_key(), b"attest", b"")
    mac_ok = evidence_mac_ok(key, evidence, nonce)
    verifier = PathVerifier()
    verifier.register(identity_of_image(image), image, loop_bounds or None)
    verdict = verifier.verify(evidence)
    return {
        "verdict": verdict.verdict,
        "reason": verdict.reason,
        "mac_ok": mac_ok,
        "edges": evidence.edges,
        "segments": len(evidence.segments),
        "dropped": evidence.dropped,
        "recorded_runs": recorder.edges,
        "ok": bool(mac_ok and verdict.ok),
    }


def verify_files(paths, policy, as_json, out, cfa=False):
    """Verify each file; returns the number of failing images."""
    from repro.analysis.verifier import verify_image

    failures = 0
    reports = []
    for path in paths:
        image = load_input(path)
        report = verify_image(image, policy)
        cfa_result = None
        if cfa:
            cfa_result = cfa_check(image, policy.loop_bounds)
        reports.append((report, cfa_result))
        if not report.ok or (cfa_result is not None and not cfa_result["ok"]):
            failures += 1
        if not as_json:
            print(report.render_text(), file=out)
            if cfa_result is not None:
                line = "cfa: %s (%d edges, %d segments, mac %s)" % (
                    cfa_result["verdict"],
                    cfa_result["edges"],
                    cfa_result["segments"],
                    "ok" if cfa_result["mac_ok"] else "BAD",
                )
                if cfa_result["reason"]:
                    line += " - %s" % cfa_result["reason"]
                print(line, file=out)
    if as_json:
        payload = []
        for report, cfa_result in reports:
            entry = report.to_dict()
            if cfa_result is not None:
                entry["cfa"] = cfa_result
            payload.append(entry)
        json.dump(payload[0] if len(payload) == 1 else payload, out, indent=2)
        out.write("\n")
    return failures


def verify_builtin(as_json, out):
    """The shipped-corpus regression gate; returns failure count."""
    from repro.analysis.corpus import (
        attacker_entries,
        clean_entries,
        rejection_fixtures,
    )
    from repro.analysis.verifier import verify_image

    failures = 0
    results = []

    for entry in clean_entries():
        report = verify_image(entry.image, entry.policy)
        ok = report.ok
        results.append(("clean", entry.name, ok, report))
        failures += 0 if ok else 1
    for entry in rejection_fixtures():
        report = verify_image(entry.image, entry.policy)
        ok = any(f.pass_name == entry.pass_name for f in report.findings)
        results.append(("fixture", entry.name, ok, report))
        failures += 0 if ok else 1
    for entry in attacker_entries():
        report = verify_image(entry.image, entry.policy)
        ok = not report.ok
        results.append(("attacker", entry.name, ok, report))
        failures += 0 if ok else 1

    if as_json:
        payload = [
            {
                "kind": kind,
                "name": name,
                "expected": (
                    "zero findings" if kind == "clean" else "findings"
                ),
                "ok": ok,
                "report": report.to_dict(),
            }
            for kind, name, ok, report in results
        ]
        json.dump(payload, out, indent=2)
        out.write("\n")
    else:
        for kind, name, ok, report in results:
            status = "ok" if ok else "UNEXPECTED"
            detail = (
                "clean"
                if report.ok
                else "%d findings" % len(report.findings)
            )
            print(
                "%-8s %-34s %-10s (%s)" % (kind, name, status, detail),
                file=out,
            )
        print(
            "builtin corpus: %d entries, %d unexpected"
            % (len(results), failures),
            file=out,
        )
    return failures


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if not args.builtin and not args.files:
        build_parser().print_usage(sys.stderr)
        return 2
    try:
        failures = 0
        if args.builtin:
            failures += verify_builtin(args.json, out)
        if args.files:
            failures += verify_files(
                args.files, build_policy(args), args.json, out, cfa=args.cfa
            )
    except (OSError, TyTANError) as exc:
        print("repro-verify: %s" % exc, file=sys.stderr)
        return 2
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
