"""``repro-fleet``: run a simulated fleet attestation round.

Usage::

    python -m repro.tools.fleet --devices 10000 --shards 8 --loss 0.1
    python -m repro.tools.fleet --devices 64 --seed 7 --json
    python -m repro.tools.fleet --devices 16 --rogue 3,9 --serial
    python -m repro.tools.fleet --devices 2000 --store run.jsonl --resume

Boots N TyTAN machines - by default *snapshot* boot: one template
machine per device class goes through full secure boot, every other
device is forked from its snapshot with only per-device key derivation
re-run (``--boot-mode cold`` boots each machine from scratch instead;
the outputs are bit-identical).  Devices connect to a consistent-hash
sharded verifier tier (``--shards``) over the simulated fabric with
the requested fault profile, and the challenge-response protocol runs
until every device is attested or quarantined.  With ``--store`` the
protocol's durable facts are checkpointed to a JSONL file, and
``--resume`` skips devices that file already settled.

``--json`` prints the full schema-2 result (``"schema": 2``); it is
bit-identical across runs with the same arguments (everything is
seeded, and no wall-clock values are included), so two invocations can
be diffed as a determinism check.  The exit code is 0 iff every
non-quarantined device attested.
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.config import FleetConfig, ShardConfig, StoreConfig
from repro.fleet.orchestrator import Fleet
from repro.net.fabric import FabricProfile


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Drive remote attestation for a simulated TyTAN fleet.",
    )
    parser.add_argument("--devices", type=int, default=16, metavar="N")
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="verifier shard count (default 1)",
    )
    parser.add_argument(
        "--boot-mode", choices=("snapshot", "cold"), default="snapshot",
        help="device boot strategy (default snapshot; cold boots every "
        "machine through full secure boot)",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="checkpoint protocol state to this JSONL file",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip devices the --store file already settled",
    )
    parser.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-datagram loss probability (default 0)",
    )
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument(
        "--workers", type=int, default=4, metavar="K",
        help="worker-pool size (default 4)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="step devices in-process instead of using the worker pool",
    )
    parser.add_argument("--latency-us", type=int, default=200, metavar="US")
    parser.add_argument("--jitter-us", type=int, default=50, metavar="US")
    parser.add_argument("--duplicate", type=float, default=0.0, metavar="P")
    parser.add_argument("--reorder", type=float, default=0.0, metavar="P")
    parser.add_argument(
        "--timeout-us", type=int, default=None, metavar="US",
        help="challenge expiry (default: sized from fleet and latency)",
    )
    parser.add_argument("--max-attempts", type=int, default=8, metavar="N")
    parser.add_argument(
        "--rogue", default="", metavar="IDS",
        help="comma-separated device ids behaving badly (see --rogue-mode)",
    )
    parser.add_argument(
        "--rogue-mode", choices=("tamper", "hijack"), default="tamper",
        help="what rogue devices do: tamper runs a modified binary "
        "(static attestation catches it); hijack runs the shipped "
        "binary with a corrupted return edge (needs --cfa, only path "
        "evidence catches it)",
    )
    parser.add_argument(
        "--cfa", action="store_true",
        help="control-flow attestation: devices run the executable "
        "agent under the path monitor and every challenge demands "
        "MACed path evidence",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full schema-2 result as deterministic JSON",
    )
    return parser


def _render(result, out):
    """Human-readable fleet summary."""
    fleet = result["fleet"]
    shards = result["shards"]
    link = result["link"]
    health = result["health"]
    fabric = result["fabric"]
    print(
        "fleet: %d devices, %s mode (%d lanes), %s boot, seed %d"
        % (
            fleet["devices"],
            fleet["mode"],
            fleet["lanes"],
            fleet["boot_mode"],
            fleet["seed"],
        ),
        file=out,
    )
    if fleet.get("cfa"):
        print(
            "cfa  : path evidence required with every challenge"
            + (
                " (rogue mode: %s)" % fleet["rogue_mode"]
                if fleet.get("rogue")
                else ""
            ),
            file=out,
        )
    print(
        "tier : %d verifier shard%s (%d vnodes)"
        % (shards["shards"], "" if shards["shards"] == 1 else "s", shards["vnodes"]),
        file=out,
    )
    print(
        "link : %dus +/-%dus, loss %.0f%%, dup %.0f%%, reorder %.0f%%"
        % (
            link["latency_us"],
            link["jitter_us"],
            100 * link["loss"],
            100 * link["duplicate"],
            100 * link["reorder"],
        ),
        file=out,
    )
    if result["resumed"]:
        print("resume: %d devices already settled" % result["resumed"], file=out)
    print(
        "health: %d attested, %d pending, %d quarantined (of %d)"
        % (
            health["attested"],
            health["pending"],
            health["quarantined"],
            health["total"],
        ),
        file=out,
    )
    for entry in health["quarantined_devices"]:
        print(
            "  quarantined: device %d (%s)" % (entry["device"], entry["reason"]),
            file=out,
        )
    print(
        "proto : %d challenges, %d retries, %d timeouts, %d rejects, %d stale"
        % (
            health["challenges"],
            health["retries"],
            health["timeouts"],
            health["rejects"],
            health["stale"],
        ),
        file=out,
    )
    print(
        "fabric: %d sent, %d dropped, %d duplicated, %d reordered, %d delivered"
        % (
            fabric["sent"],
            fabric["dropped"],
            fabric["duplicated"],
            fabric["reordered"],
            fabric["delivered"],
        ),
        file=out,
    )
    latency = health["latency_us"]
    if latency:
        print(
            "latency: p50 %dus, p90 %dus, p99 %dus, max %dus"
            % (latency["p50"], latency["p90"], latency["p99"], latency["max"]),
            file=out,
        )
    if result["store"]["path"]:
        print(
            "store : %d records -> %s"
            % (result["store"]["records"], result["store"]["path"]),
            file=out,
        )
    print(
        "done in %dus simulated: %.1f reports/sec"
        % (result["sim_elapsed_us"], result["reports_per_sec"]),
        file=out,
    )


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    rogue = [int(x) for x in args.rogue.split(",") if x.strip() != ""]
    store = StoreConfig("memory")
    if args.store:
        store = StoreConfig("jsonl", path=args.store, resume=args.resume)
    fleet = Fleet(
        FleetConfig(
            devices=args.devices,
            seed=args.seed,
            workers=0 if args.serial else args.workers,
            boot_mode=args.boot_mode,
            rogue=rogue,
            rogue_mode=args.rogue_mode,
            cfa=args.cfa,
            timeout_us=args.timeout_us,
            max_attempts=args.max_attempts,
        ),
        shards=ShardConfig(shards=args.shards),
        fabric=FabricProfile(
            latency_us=args.latency_us,
            jitter_us=args.jitter_us,
            loss=args.loss,
            duplicate=args.duplicate,
            reorder=args.reorder,
        ),
        store=store,
    )
    result = fleet.run()
    fleet.store.close()
    if args.json:
        print(result.to_json(), file=out)
    else:
        _render(result, out)
    return 0 if result.healthy else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
