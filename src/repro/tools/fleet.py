"""``repro-fleet``: run a simulated fleet attestation round.

Usage::

    python -m repro.tools.fleet --devices 64 --loss 0.1 --seed 7
    python -m repro.tools.fleet --devices 64 --loss 0.1 --seed 7 --json
    python -m repro.tools.fleet --devices 16 --rogue 3,9 --serial

Boots N independent TyTAN machines (a multiprocessing worker pool by
default; ``--serial`` steps them in-process), connects them to a
verifier service over the simulated fabric with the requested fault
profile, and drives the challenge-response protocol until every device
is attested or quarantined.

``--json`` prints the full result dict; it is bit-identical across
runs with the same arguments (everything is seeded, and no wall-clock
values are included), so two invocations can be diffed as a
determinism check.  The exit code is 0 iff every non-quarantined
device attested.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fleet.orchestrator import Fleet


def build_parser():
    """The tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Drive remote attestation for a simulated TyTAN fleet.",
    )
    parser.add_argument("--devices", type=int, default=16, metavar="N")
    parser.add_argument(
        "--loss", type=float, default=0.0, metavar="P",
        help="per-datagram loss probability (default 0)",
    )
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument(
        "--workers", type=int, default=4, metavar="K",
        help="worker-pool size (default 4)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="step devices in-process instead of using the worker pool",
    )
    parser.add_argument("--latency-us", type=int, default=200, metavar="US")
    parser.add_argument("--jitter-us", type=int, default=50, metavar="US")
    parser.add_argument("--duplicate", type=float, default=0.0, metavar="P")
    parser.add_argument("--reorder", type=float, default=0.0, metavar="P")
    parser.add_argument(
        "--timeout-us", type=int, default=None, metavar="US",
        help="challenge expiry (default: sized from fleet and latency)",
    )
    parser.add_argument("--max-attempts", type=int, default=8, metavar="N")
    parser.add_argument(
        "--rogue", default="", metavar="IDS",
        help="comma-separated device ids running a tampered agent binary",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full result as deterministic JSON",
    )
    return parser


def _render(result, out):
    """Human-readable fleet summary."""
    fleet = result["fleet"]
    health = result["health"]
    fabric = result["fabric"]
    print(
        "fleet: %d devices, %s mode (%d lanes), seed %d"
        % (fleet["devices"], fleet["mode"], fleet["lanes"], fleet["seed"]),
        file=out,
    )
    print(
        "link : %dus +/-%dus, loss %.0f%%, dup %.0f%%, reorder %.0f%%"
        % (
            fleet["latency_us"],
            fleet["jitter_us"],
            100 * fleet["loss"],
            100 * fleet["duplicate"],
            100 * fleet["reorder"],
        ),
        file=out,
    )
    print(
        "health: %d attested, %d pending, %d quarantined (of %d)"
        % (
            health["attested"],
            health["pending"],
            health["quarantined"],
            health["total"],
        ),
        file=out,
    )
    for entry in health["quarantined_devices"]:
        print(
            "  quarantined: device %d (%s)" % (entry["device"], entry["reason"]),
            file=out,
        )
    print(
        "proto : %d challenges, %d retries, %d timeouts, %d rejects, %d stale"
        % (
            health["challenges"],
            health["retries"],
            health["timeouts"],
            health["rejects"],
            health["stale"],
        ),
        file=out,
    )
    print(
        "fabric: %d sent, %d dropped, %d duplicated, %d reordered, %d delivered"
        % (
            fabric["sent"],
            fabric["dropped"],
            fabric["duplicated"],
            fabric["reordered"],
            fabric["delivered"],
        ),
        file=out,
    )
    latency = health["latency_us"]
    if latency:
        print(
            "latency: p50 %dus, p90 %dus, p99 %dus, max %dus"
            % (latency["p50"], latency["p90"], latency["p99"], latency["max"]),
            file=out,
        )
    print(
        "done in %dus simulated: %.1f reports/sec"
        % (result["sim_elapsed_us"], result["reports_per_sec"]),
        file=out,
    )


def main(argv=None, out=None):
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    rogue = [int(x) for x in args.rogue.split(",") if x.strip() != ""]
    fleet = Fleet(
        args.devices,
        seed=args.seed,
        loss=args.loss,
        latency_us=args.latency_us,
        jitter_us=args.jitter_us,
        duplicate=args.duplicate,
        reorder=args.reorder,
        workers=0 if args.serial else args.workers,
        rogue=rogue,
        timeout_us=args.timeout_us,
        max_attempts=args.max_attempts,
    )
    result = fleet.run()
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True), file=out)
    else:
        _render(result, out)
    return 0 if fleet.healthy(result) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
