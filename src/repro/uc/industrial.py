"""Industrial control scenario - the paper's other motivating domain.

The introduction motivates TyTAN with "industrial control systems, and
critical infrastructures" and cites SCADA/PLC attacks ([19], [23]).
This scenario models a PLC-class pressure-control loop with the
defensive structure TyTAN enables:

* a **pump controller** (secure task) holds the pressure setpoint with
  a proportional controller driving the pump actuator;
* a **safety monitor** (separate secure task, different stakeholder:
  the plant operator rather than the integrator) independently watches
  the pressure and orders an emergency stop over secure IPC when
  bounds are exceeded - because the tasks are mutually isolated, a
  compromised controller cannot silence the monitor;
* an **operator station** (off-device verifier) periodically
  remote-attests the controller - a tampered replacement is detected
  on the next attestation round even though it "works".

The pressure sensor and pump reuse the platform's generic trace-sensor
and actuator devices.
"""

from __future__ import annotations

from repro.rtos.task import NativeCall
from repro.sim.trace import ActivationRecorder

#: Control period: 500 Hz loop (industrial loops are slower than the
#: automotive 1.5 kHz).
CONTROL_PERIOD_CYCLES = 96_000

#: Pressure band (sensor units, 0.01 bar): setpoint and hard limits.
SETPOINT = 400
HIGH_LIMIT = 520
LOW_LIMIT = 150


class IndustrialControlSystem:
    """Builds the pump-control scenario on a TyTAN instance.

    The platform's ``speed`` sensor plays the pressure transmitter and
    the engine actuator plays the pump's variable-speed drive.
    """

    def __init__(self, system, period=CONTROL_PERIOD_CYCLES):
        self.system = system
        self.period = period
        self.recorder = ActivationRecorder(system.clock)
        #: Emergency-stop events: (cycle, pressure) tuples.
        self.estops = []
        #: Attestation rounds: (cycle, ok) tuples.
        self.attestation_log = []

        self._build_controller()
        self._build_safety_monitor()

    # -- the pump controller -------------------------------------------------

    def _build_controller(self):
        system = self.system
        period = self.period
        recorder = self.recorder
        sensor_base = system.platform.speed_base
        pump_base = system.platform.engine_base
        state = {"stopped": False}
        self.controller_state = state

        def controller_body(kernel, task):
            next_deadline = kernel.clock.now + period
            while True:
                recorder.mark("controller")
                message = system.ipc.read_inbox(task)
                while message is not None:
                    words, sender = message
                    if sender == self._monitor_id and words[0] == 0xE570:
                        state["stopped"] = True
                    message = system.ipc.read_inbox(task)
                if state["stopped"]:
                    kernel.memory.write_u32(pump_base, 0, actor=task.base)
                else:
                    pressure = kernel.memory.read_u32(
                        sensor_base, actor=task.base
                    )
                    command = self._control_law(pressure)
                    kernel.memory.write_u32(pump_base, command, actor=task.base)
                yield NativeCall.charge(2_000)
                yield NativeCall.delay_until(next_deadline)
                next_deadline += period

        self.controller = system.create_service_task(
            "pump-controller", 4, controller_body
        )
        self.controller_identity = system.rtm.register_service(
            self.controller, "pump-controller"
        )
        self._monitor_id = None

    def _control_law(self, pressure):
        """Proportional control toward the setpoint (pump per-mille)."""
        error = SETPOINT - pressure
        command = 500 + 3 * error
        return max(0, min(1000, command))

    # -- the safety monitor -----------------------------------------------------

    def _build_safety_monitor(self):
        system = self.system
        period = self.period
        recorder = self.recorder
        sensor_base = system.platform.speed_base
        estops = self.estops

        def monitor_body(kernel, task):
            next_deadline = kernel.clock.now + period
            while True:
                recorder.mark("monitor")
                pressure = kernel.memory.read_u32(sensor_base, actor=task.base)
                if pressure > HIGH_LIMIT or pressure < LOW_LIMIT:
                    if not estops or kernel.clock.now - estops[-1][0] > period:
                        estops.append((kernel.clock.now, pressure))
                        system.ipc.send(
                            task, self.controller_identity[:8], [0xE570, pressure]
                        )
                yield NativeCall.charge(900)
                yield NativeCall.delay_until(next_deadline)
                next_deadline += period

        self.monitor = system.create_service_task(
            "safety-monitor", 5, monitor_body
        )
        self._monitor_id = system.rtm.register_service(
            self.monitor, "safety-monitor"
        )[:8]

    # -- the operator station ------------------------------------------------------

    def make_operator_station(self):
        """An off-device verifier trusting exactly this controller."""
        verifier = self.system.make_verifier(provider=b"plant-operator")
        verifier.expect(self.controller_identity)
        return verifier

    def attestation_round(self, verifier):
        """One operator attestation of the controller; logs and returns
        the verdict."""
        nonce = verifier.fresh_nonce()
        try:
            report = self.system.remote_attest.attest_identity(
                self.controller.identity, nonce, provider=b"plant-operator"
            )
            ok = verifier.verify(report, nonce)
        except Exception:
            ok = False
        self.attestation_log.append((self.system.clock.now, ok))
        return ok

    # -- reporting ------------------------------------------------------------------

    @property
    def pump(self):
        """The pump actuator device (command history)."""
        return self.system.platform.engine_actuator

    @property
    def emergency_stopped(self):
        """Whether the controller latched an emergency stop."""
        return self.controller_state["stopped"]
