"""Adaptive cruise control - the Figure 2 / Table 1 scenario.

Topology (paper, Figure 2)::

    pedal sensor --> t1 --\\
                           +--> t0 --> engine actuator
    radar sensor --> t2 --/

* **t1** (secure, always present) samples the pedal at 1.5 kHz and
  forwards the position to t0 over secure IPC.
* **t2** (secure, loaded *on demand* when the driver activates cruise
  control) samples the radar at 1.5 kHz and forwards the distance.
  Its image is deliberately large so that loading takes tens of
  milliseconds - far longer than the 1.5 kHz period - which is exactly
  the situation Table 1 stresses: the load must be preemptible or t0
  and t1 would miss deadlines.
* **t0** (secure, highest priority) runs the control law at 1.5 kHz
  and writes throttle commands to the engine actuator.

t0 and t1 are native secure tasks (registered service identities); t2
is a real ISA task, assembled, linked, loaded with relocation, measured
by the RTM, and executing on the simulated core - it sends its radar
samples through the ``int 0x21`` IPC trap like any third-party binary
would.
"""

from __future__ import annotations

from repro.rtos.task import NativeCall
from repro.sim.deadline import RateMonitor
from repro.sim.trace import ActivationRecorder
from repro.sim.workloads import periodic_sender_source

#: 1.5 kHz at the 48 MHz platform clock.
CONTROL_PERIOD_CYCLES = 32_000

#: Padding that sizes t2 so its load takes ~27.8 ms (paper, Section 6).
T2_PAD_WORDS = 2_037
T2_PAD_RELOCS = 24

#: Per-activation work budgets (cycles of computation per sample).
T1_WORK = 900
T0_WORK = 1_400


class CruiseControlSystem:
    """Builds and drives the use case on a :class:`~repro.core.system.TyTAN`."""

    def __init__(self, system, period=CONTROL_PERIOD_CYCLES):
        self.system = system
        self.period = period
        self.recorder = ActivationRecorder(system.clock)
        self.monitor = RateMonitor(self.recorder, system.platform.config.hz)

        self.t0 = None
        self.t1 = None
        self.t2_result = None
        self.t2_image = None
        #: Latest sensor values as seen by t0.
        self.state = {"pedal": 0, "radar": None}

        self._build_t0()
        self._build_t1()
        self.t2_image = self._build_t2_image()

    # -- t0: engine control ---------------------------------------------------

    def _build_t0(self):
        system = self.system
        period = self.period
        recorder = self.recorder
        state = self.state
        engine_base = system.platform.engine_base

        def t0_body(kernel, task):
            next_deadline = kernel.clock.now + period
            while True:
                recorder.mark("t0")
                # Drain the inbox: pedal (tag 0 is implicit - sender id
                # distinguishes the sources; word 0 carries the sample).
                message = system.ipc.read_inbox(task)
                while message is not None:
                    words, sender = message
                    if sender == self._t1_id:
                        state["pedal"] = words[0]
                    elif self._t2_id is not None and sender == self._t2_id:
                        state["radar"] = words[0]
                    message = system.ipc.read_inbox(task)
                throttle = self._control_law(state["pedal"], state["radar"])
                kernel.memory.write_u32(engine_base, throttle, actor=task.base)
                yield NativeCall.charge(T0_WORK)
                yield NativeCall.delay_until(next_deadline)
                next_deadline += period

        self.t0 = system.create_service_task("t0-engine-control", 5, t0_body)
        self._t0_id = system.rtm.register_service(self.t0, "t0-engine-control")
        self._t1_id = None
        self._t2_id = None

    # -- t1: pedal monitor ---------------------------------------------------

    def _build_t1(self):
        system = self.system
        period = self.period
        recorder = self.recorder
        pedal_base = system.platform.pedal_base

        def t1_body(kernel, task):
            next_deadline = kernel.clock.now + period
            while True:
                recorder.mark("t1")
                sample = kernel.memory.read_u32(pedal_base, actor=task.base)
                system.ipc.send(task, self._t0_id[:8], [sample])
                yield NativeCall.charge(T1_WORK)
                yield NativeCall.delay_until(next_deadline)
                next_deadline += period

        self.t1 = system.create_service_task("t1-pedal-monitor", 4, t1_body)
        self._t1_id = system.rtm.register_service(self.t1, "t1-pedal-monitor")[:8]

    # -- t2: radar monitor (ISA task, loaded on demand) --------------------

    def _build_t2_image(self):
        source = periodic_sender_source(
            self.system.platform.radar_base,
            self._t0_id[:8],
            period_cycles=self.period,
            pad_words=T2_PAD_WORDS,
            pad_relocs=T2_PAD_RELOCS,
        )
        return self.system.build_image(source, "t2-radar-monitor", stack_size=512)

    def activate_cruise_control(self):
        """Driver switches cruise control on: start loading t2.

        The load runs in a priority-0 native loader task, fully
        preemptible by t0 and t1.  Returns the (asynchronously filled)
        load result.
        """
        from repro.core.identity import identity_of_image

        self._t2_id = identity_of_image(self.t2_image)[:8]
        self.t2_result = self.system.load_task_async(
            self.t2_image, secure=True, priority=3
        )
        return self.t2_result

    @property
    def t2(self):
        """The loaded t2 TCB, or ``None`` while loading."""
        return self.t2_result.task if self.t2_result is not None else None

    # -- instrumentation hooks ------------------------------------------------

    def t2_activation_hook(self):
        """Install an event hook marking t2 activations.

        t2 is an ISA task, so its activations are observed at the radar
        device: each MMIO read is one sample.  We poll the device's read
        counter through a kernel event sink.
        """
        radar = self.system.platform.radar
        recorder = self.recorder
        last_count = {"reads": radar.reads}

        def sink(cycle, kind, data):
            if radar.reads > last_count["reads"]:
                for _ in range(radar.reads - last_count["reads"]):
                    recorder.mark("t2")
                last_count["reads"] = radar.reads

        self.system.kernel.add_event_sink(sink)

    def _control_law(self, pedal, radar):
        """The engine control law (per-mille throttle).

        Driver demand from the pedal, clamped by a distance-keeping
        term when radar data is available (adaptive cruise control).
        """
        demand = min(1000, max(0, pedal))
        if radar is None:
            return demand
        # Keep distance: back off proportionally under 500 dm.
        if radar < 500:
            ceiling = max(0, radar * 2)
            return min(demand, ceiling)
        return demand

    # -- reporting --------------------------------------------------------------

    def rates(self, start, end, names=("t0", "t1", "t2")):
        """Rate reports (kHz) per task over the cycle window."""
        return {
            name: self.monitor.report(name, start, end, period=self.period)
            for name in names
        }
