"""The paper's automotive use case (Section 6, Figure 2).

An adaptive cruise control system: task t1 monitors the accelerator
pedal, task t2 (loaded on demand when the driver activates cruise
control) monitors the radar, and task t0 runs the engine control law
from both inputs.  All three are secure tasks scheduled at 1.5 kHz.
"""

from repro.uc.cruise_control import CruiseControlSystem, CONTROL_PERIOD_CYCLES
from repro.uc.industrial import IndustrialControlSystem

__all__ = [
    "CruiseControlSystem",
    "CONTROL_PERIOD_CYCLES",
    "IndustrialControlSystem",
]
