"""TyTAN: Tiny Trust Anchor for Tiny Devices - a behavioural reproduction.

This package reproduces the DAC 2015 paper *TyTAN: Tiny Trust Anchor
for Tiny Devices* (Brasser, El Mahjoub, Sadeghi, Wachsmann, Koeberl):
a security architecture for low-end embedded systems providing
hardware-assisted isolation of dynamically loaded tasks, secure IPC,
local/remote attestation, and real-time guarantees.

Layers (bottom up):

* :mod:`repro.hw` - the simulated Siskiyou Peak platform: 32-bit core,
  EA-MPU, exception engine, timers, MMIO sensors, platform key.
* :mod:`repro.isa` / :mod:`repro.image` - instruction set, assembler,
  relocatable TELF binaries, and linker.
* :mod:`repro.crypto` - from-scratch SHA-1 / HMAC / KDF / XTEA.
* :mod:`repro.rtos` - the FreeRTOS-like preemptive real-time kernel.
* :mod:`repro.core` - TyTAN's trusted components and the
  :class:`~repro.core.system.TyTAN` facade.
* :mod:`repro.sim` - tracing, rate monitoring, footprint model,
  synthetic workloads.
* :mod:`repro.uc` - the adaptive cruise control use case.

Quickstart::

    from repro import TyTAN

    system = TyTAN()
    task = system.load_source(SOURCE, "my-task", secure=True)
    system.run(max_cycles=1_000_000)
    print(system.local_attest(task).hex())
"""

from repro.core.system import TyTAN, build_freertos_baseline
from repro.hw.platform import MachineConfig

__version__ = "1.0.0"

__all__ = ["TyTAN", "build_freertos_baseline", "MachineConfig", "__version__"]
