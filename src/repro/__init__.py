"""TyTAN: Tiny Trust Anchor for Tiny Devices - a behavioural reproduction.

This package reproduces the DAC 2015 paper *TyTAN: Tiny Trust Anchor
for Tiny Devices* (Brasser, El Mahjoub, Sadeghi, Wachsmann, Koeberl):
a security architecture for low-end embedded systems providing
hardware-assisted isolation of dynamically loaded tasks, secure IPC,
local/remote attestation, and real-time guarantees.

Layers (bottom up):

* :mod:`repro.hw` - the simulated Siskiyou Peak platform: 32-bit core,
  EA-MPU, exception engine, timers, MMIO sensors, platform key.
* :mod:`repro.isa` / :mod:`repro.image` - instruction set, assembler,
  relocatable TELF binaries, and linker.
* :mod:`repro.crypto` - from-scratch SHA-1 / HMAC / KDF / XTEA.
* :mod:`repro.rtos` - the FreeRTOS-like preemptive real-time kernel.
* :mod:`repro.core` - TyTAN's trusted components and the
  :class:`~repro.core.system.TyTAN` facade.
* :mod:`repro.sim` - tracing, rate monitoring, footprint model,
  synthetic workloads.
* :mod:`repro.uc` - the adaptive cruise control use case.

Quickstart::

    from repro import TyTAN

    system = TyTAN()
    task = system.load_source(SOURCE, "my-task", secure=True)
    result = system.run(max_cycles=1_000_000)
    print(result.stop_reason, result.retired)
    print(system.local_attest(task).hex())

Stable public surface
---------------------

Import from ``repro`` directly rather than deep-importing submodules;
everything in ``__all__`` below is covered by compatibility guarantees:

* :class:`TyTAN`, :func:`build_freertos_baseline`,
  :class:`MachineConfig` - system construction;
* :class:`RunResult` - what ``TyTAN.run`` / ``Kernel.run`` return;
* :class:`Verifier` - the off-device attestation verifier;
* :mod:`repro.obs` (re-exported as ``obs``) with :class:`Event` and
  :class:`EventBus` - the unified observability bus; every system
  exposes one at ``system.obs`` / ``platform.obs``;
* the fleet stack (:mod:`repro.fleet`): :class:`Fleet` constructed
  from the typed configs :class:`FleetConfig` / :class:`ShardConfig` /
  :class:`FabricProfile` / :class:`StoreConfig`, returning a
  :class:`FleetResult`.

Fleet quickstart::

    from repro import Fleet, FleetConfig, ShardConfig

    fleet = Fleet(FleetConfig(devices=10_000, seed=7),
                  shards=ShardConfig(shards=8))
    result = fleet.run()
    print(result.reports_per_sec, result.quarantined)
"""

from repro import obs
from repro.core.remote_attest import Verifier
from repro.core.system import TyTAN, build_freertos_baseline
from repro.fleet import (
    Fleet,
    FleetConfig,
    FleetResult,
    ShardConfig,
    StoreConfig,
)
from repro.hw.platform import MachineConfig
from repro.net.fabric import FabricProfile
from repro.obs import Event, EventBus
from repro.rtos.kernel import RunResult

__version__ = "1.4.0"

__all__ = [
    "Event",
    "EventBus",
    "FabricProfile",
    "Fleet",
    "FleetConfig",
    "FleetResult",
    "MachineConfig",
    "RunResult",
    "ShardConfig",
    "StoreConfig",
    "TyTAN",
    "Verifier",
    "build_freertos_baseline",
    "obs",
    "__version__",
]
