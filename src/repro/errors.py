"""Exception hierarchy for the TyTAN reproduction.

Every error raised by the simulator derives from :class:`TyTANError` so
applications can catch simulator faults separately from programming errors.
Hardware-level faults (memory protection, illegal instructions) derive from
:class:`HardwareFault` and carry enough context to diagnose which component
performed the offending access.
"""

from __future__ import annotations


class TyTANError(Exception):
    """Base class for all errors raised by the TyTAN simulator."""


class ConfigurationError(TyTANError):
    """A component was configured inconsistently (bad memory map, etc.)."""


class HardwareFault(TyTANError):
    """Base class for faults raised by simulated hardware."""


class MemoryFault(HardwareFault):
    """An access fell outside any mapped memory or MMIO region."""

    def __init__(self, address, size=1, kind="access"):
        self.address = address
        self.size = size
        self.kind = kind
        super().__init__(
            "unmapped %s of %d byte(s) at 0x%08X" % (kind, size, address)
        )


class ProtectionFault(HardwareFault):
    """The EA-MPU denied an access.

    Attributes mirror the information a real EA-MPU would latch into its
    fault status registers: the faulting address, the access kind
    (``'read'``, ``'write'``, or ``'execute'``), and the code region that
    performed the access.
    """

    def __init__(self, address, kind, actor, detail=""):
        self.address = address
        self.kind = kind
        self.actor = actor
        self.detail = detail
        msg = "EA-MPU denied %s at 0x%08X by %r" % (kind, address, actor)
        if detail:
            msg += " (%s)" % detail
        super().__init__(msg)


class EntryPointFault(ProtectionFault):
    """Control entered a protected code region anywhere but its entry point."""

    def __init__(self, address, actor, entry_point):
        self.entry_point = entry_point
        super().__init__(
            address,
            "execute",
            actor,
            detail="region may only be entered at 0x%08X" % entry_point,
        )


class IllegalInstruction(HardwareFault):
    """The CPU decoded an unknown or malformed instruction."""

    def __init__(self, address, opcode):
        self.address = address
        self.opcode = opcode
        super().__init__(
            "illegal instruction 0x%02X at 0x%08X" % (opcode, address)
        )


class StackOverflow(HardwareFault):
    """A task's stack grew below its allocated floor.

    Detected when a context frame would be stored outside the stack
    area - the FreeRTOS-style overflow check, raised at save time so
    the overflowing task is killed before it corrupts its own inbox.
    """

    def __init__(self, task_name, esp, floor):
        self.task_name = task_name
        self.esp = esp
        self.floor = floor
        super().__init__(
            "stack overflow in %s: esp=0x%08X below floor 0x%08X"
            % (task_name, esp, floor)
        )


class AlignmentFault(HardwareFault):
    """A multi-byte access was required to be aligned but was not."""

    def __init__(self, address, size):
        self.address = address
        self.size = size
        super().__init__(
            "unaligned %d-byte access at 0x%08X" % (size, address)
        )


class MPUSlotError(TyTANError):
    """EA-MPU slot management failed (no free slot, overlap, bad index)."""


class AssemblerError(TyTANError):
    """The assembler rejected a source file."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class LinkError(TyTANError):
    """The linker could not resolve or combine object files."""


class ImageFormatError(TyTANError):
    """A TELF image was malformed or failed verification."""


class LoaderError(TyTANError):
    """Dynamic task loading failed (no memory, bad image, MPU conflict)."""


class SchedulerError(TyTANError):
    """The RTOS scheduler was driven into an invalid state."""


class KernelPanic(TyTANError):
    """An unrecoverable kernel condition (double fault, stack overflow)."""


class IPCError(TyTANError):
    """Secure IPC failed (unknown receiver, oversized message)."""


class AttestationError(TyTANError):
    """Local or remote attestation failed verification."""


class NetworkError(TyTANError):
    """The simulated network fabric was misused (unknown endpoint,
    invalid link profile) - distinct from in-band faults like loss,
    which the fabric models rather than raises."""


class SecureStorageError(TyTANError):
    """Secure storage rejected a request (wrong identity, corrupt blob)."""


class SecurityViolation(TyTANError):
    """An operation violated TyTAN's security policy (not a HW fault).

    Raised by trusted software components when a caller asks for something
    the policy forbids, e.g. a normal task requesting the attestation key.
    """
