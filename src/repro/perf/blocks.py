"""Superblock discovery: hot straight-line runs of the instruction stream.

A *superblock* is a maximal straight-line run of translatable
instructions starting at a dispatch address (typically a branch target
or loop head).  Discovery terminates at:

* control transfers (``jmp``/``call``/``ret``/``iret``/conditional
  branches) and software traps (``int``);
* privileged / interrupt-window opcodes (``hlt``/``cli``/``sti``) -
  blocks therefore execute with EFLAGS.IF provably constant;
* ``div`` (it can deliver a divide-error exception mid-stream);
* the end of the backing RAM region (MMIO windows are never treated as
  code, mirroring the decoded-instruction cache);
* the boundary of the EA-MPU *entry-point coverage cell* containing the
  block (see :meth:`repro.perf.decision_cache.MPUDecisionCache.cell_bounds`),
  so every sequential advance inside the block is provably free of
  entry-point checks - the hoisted form of the CPU's per-instruction
  ``_advance`` check;
* any instruction whose execute permission cannot be proven
  (:meth:`repro.hw.ea_mpu.EAMPU.probe` - a pure probe, so a denial is
  still raised and logged by the single-step path when the instruction
  is actually reached).

All hoisted verdicts are valid for exactly one EA-MPU rule-table epoch;
the :class:`BlockCache` is flushed wholesale when the epoch moves, and
individual blocks are invalidated by the same write-snoop port the
decoded-instruction cache uses (page-granular, checked and raw writes
alike).  Addresses where discovery cannot form a worthwhile block are
remembered as *no-block markers* so dispatch stays a single dict probe.
"""

from __future__ import annotations

from repro.errors import IllegalInstruction
from repro.hw.memory import RamRegion
from repro.isa.encoding import decode
from repro.isa.opcodes import BASE_CYCLES, CONDITIONAL_BRANCHES, LENGTHS, Op
from repro.obs.counters import HitMissCounter

#: log2 of the invalidation granule (256-byte pages, like the insn cache).
PAGE_SHIFT = 8

#: Longest instruction encoding; discovery reads this many bytes.
_MAX_INSN_BYTES = max(LENGTHS.values())

#: One past the top of the 32-bit physical address space.
_TOP = 0x1_0000_0000

#: Upper bound on instructions per superblock (keeps the static cycle
#: cost small relative to realistic event horizons).
MAX_BLOCK_INSNS = 64

#: Blocks shorter than this are not worth the dispatch overhead; the
#: address gets a no-block marker instead.
MIN_BLOCK_INSNS = 3

#: Dispatch misses at one address before it is considered hot enough to
#: translate (cold straight-line code is visited once per address and
#: never translated; loop heads reach the threshold on re-entry).
HOT_THRESHOLD = 2

#: Bound on the visit-count table (cleared wholesale when exceeded).
HEAT_LIMIT = 65_536

#: Opcodes that end a superblock (never included in one).
BLOCK_ENDERS = (
    frozenset(
        {Op.HLT, Op.CLI, Op.STI, Op.RET, Op.IRET, Op.JMP, Op.CALL, Op.INT, Op.DIV}
    )
    | CONDITIONAL_BRANCHES
)

#: Pure register/ALU opcodes translated to inline closure statements.
ALU_OPS = frozenset(
    {
        Op.NOP,
        Op.MOV,
        Op.ADD,
        Op.SUB,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.CMP,
        Op.SHL,
        Op.SHR,
        Op.MUL,
        Op.MOVI,
        Op.ADDI,
        Op.SUBI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.CMPI,
        Op.SHLI,
        Op.SHRI,
        Op.NOT,
        Op.NEG,
    }
)

#: Memory-touching opcodes translated with a hoisted EA-MPU window.
MEM_OPS = frozenset(
    {Op.LD, Op.ST, Op.LDB, Op.STB, Op.LDH, Op.STH, Op.PUSH, Op.POP, Op.PUSHI}
)

#: Everything a superblock may contain.
TRANSLATABLE_OPS = ALU_OPS | MEM_OPS


class SuperBlock:
    """One discovered straight-line run, translated or marker.

    ``insns`` is a tuple of ``(address, Instruction)`` pairs; an empty
    tuple marks an address where no worthwhile block exists (``run``
    stays ``None``).  ``cost`` is the exact simulated cycle total the
    block charges when no instruction takes a fault or fallback exit -
    and an upper bound in every case, which is what the event-horizon
    admission test relies on.
    """

    __slots__ = ("start", "end", "insns", "cost", "windows", "valid", "run", "source")

    def __init__(self, start, end, insns, cost):
        self.start = start
        self.end = end
        self.insns = insns
        self.cost = cost
        #: Per-memory-instruction hoisted allow windows, filled lazily
        #: at run time: ``(lo, hi_minus_size, region)`` or ``None``.
        self.windows = []
        #: Cleared by the write snoop; checked by the running closure
        #: after every store so self-modifying code aborts the block.
        self.valid = True
        #: The compiled closure ``run(cpu, block)`` (``None`` = marker).
        self.run = None
        #: Generated Python source (debugging / obs).
        self.source = None

    def is_marker(self):
        """Whether this entry marks a no-block address."""
        return not self.insns

    def __repr__(self):
        return "SuperBlock(0x%X..0x%X, %d insns, %d cycles%s)" % (
            self.start,
            self.end,
            len(self.insns),
            self.cost,
            ", marker" if not self.insns else "",
        )


def discover(memory, eip, min_insns=MIN_BLOCK_INSNS):
    """Discover the superblock starting at ``eip``.

    Always returns a :class:`SuperBlock`; one with no instructions is a
    no-block marker (its ``end`` still spans the bytes whose change
    would make the verdict stale, so the write snoop invalidates it).

    ``min_insns`` is the shortest run worth returning (shorter runs
    become markers).  The block tier uses :data:`MIN_BLOCK_INSNS`; the
    trace builder passes 1, because even a one-instruction segment is
    worth stitching when it extends a multi-block trace.
    """
    mpu = memory.mpu
    region = memory.map.try_find(eip, 1)
    marker_end = eip + 1
    insns = []
    cost = 0
    pc = eip
    if isinstance(region, RamRegion):
        if mpu is not None and mpu.decisions is not None:
            _, cell_hi, _ = mpu.decisions.cell_bounds(eip)
        else:
            cell_hi = _TOP
        limit = region.end
        while len(insns) < MAX_BLOCK_INSNS:
            if pc >= limit:
                break
            window = limit - pc
            if window > _MAX_INSN_BYTES:
                window = _MAX_INSN_BYTES
            try:
                insn = decode(region.read(pc, window), 0, address=pc)
            except IllegalInstruction:
                break
            marker_end = pc + 1
            opcode = insn.opcode
            if opcode not in TRANSLATABLE_OPS:
                break
            nxt = pc + insn.length
            if nxt >= cell_hi:
                # The sequential advance out of this instruction would
                # cross an entry-point rule boundary: that advance needs
                # a real transfer check, so it stays on the single-step
                # path.
                break
            if mpu is not None and not mpu.probe("execute", pc, 1, pc):
                break
            insns.append((pc, insn))
            cost += BASE_CYCLES[opcode]
            pc = nxt
    if len(insns) < min_insns:
        end = marker_end if marker_end > eip else eip + 1
        return SuperBlock(eip, end, (), 0)
    return SuperBlock(eip, pc, tuple(insns), cost)


class BlockCache:
    """Entry-EIP -> :class:`SuperBlock`, snooped and epoch-flushed.

    Mirrors the decoded-instruction cache's invalidation contract:
    every bus write (checked or raw) drops the blocks whose span shares
    a 256-byte page with the written range, and marks them invalid so a
    block that is *currently executing* aborts at its next store.
    """

    def __init__(self):
        self.entries = {}
        self._pages = {}
        #: Dispatch-miss visit counts (the hot-threshold heuristic).
        self.heat = {}
        #: EA-MPU rule-table epoch the cached blocks were built under
        #: (``None`` until the first sync; blocks survive exactly one
        #: epoch, like the decision cache's memoized verdicts).
        self.epoch = None
        self.stats = HitMissCounter("block")

    def __len__(self):
        return len(self.entries)

    def put(self, block):
        """Register ``block`` (or marker) for dispatch and snooping."""
        self.entries[block.start] = block
        pages = self._pages
        first = block.start >> PAGE_SHIFT
        last = (block.end - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            bucket = pages.get(page)
            if bucket is None:
                bucket = pages[page] = set()
            bucket.add(block.start)

    def note_write(self, address, size):
        """Snoop a write; drop every block on a touched page."""
        pages = self._pages
        if not pages or size <= 0:
            return
        first = address >> PAGE_SHIFT
        last = (address + size - 1) >> PAGE_SHIFT
        entries = self.entries
        for page in range(first, last + 1):
            bucket = pages.pop(page, None)
            if bucket is None:
                continue
            for eip in bucket:
                block = entries.pop(eip, None)
                if block is not None:
                    block.valid = False
            self.stats.invalidations += 1

    def flush(self):
        """Drop everything (EA-MPU epoch change)."""
        for block in self.entries.values():
            block.valid = False
        self.entries.clear()
        self._pages.clear()
        self.stats.invalidations += 1

    def note_miss(self, eip):
        """Count a dispatch miss; returns True once ``eip`` is hot."""
        heat = self.heat
        count = heat.get(eip, 0) + 1
        if count >= HOT_THRESHOLD:
            heat.pop(eip, None)
            return True
        if len(heat) >= HEAT_LIMIT:
            heat.clear()
        heat[eip] = count
        return False
