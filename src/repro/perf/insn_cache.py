"""Decoded-instruction cache with write-snoop invalidation.

Decoding allocates a fresh :class:`~repro.isa.encoding.Instruction` on
every fetch; for loops that is pure waste.  The cache maps EIP to the
decoded object and snoops **every** memory write (checked or raw - both
funnel through :meth:`repro.hw.memory.PhysicalMemory.write_raw`) so that
self-modifying code, task loads, and live updates are re-decoded.

Invalidation is page-granular: each cached instruction registers the
256-byte page(s) its encoding occupies; a write drops every cached
instruction registered on the pages it touches.  Dropping a superset of
the strictly affected instructions is always safe - the next fetch just
decodes again.
"""

from __future__ import annotations

from repro.perf.counters import HitMissCounter

#: log2 of the invalidation granule (256-byte pages).
PAGE_SHIFT = 8


class DecodedInsnCache:
    """EIP -> ``[Instruction, exec_epoch]``, invalidated by code writes.

    Each entry carries the EA-MPU rule-table epoch at which the execute
    check for its EIP last passed.  While the epoch is unchanged the
    check is provably still an allow, so the CPU skips it entirely; a
    stale epoch forces a re-check (which updates the entry in place).
    """

    __slots__ = ("stats", "_insns", "_pages")

    #: Epoch sentinel for entries cached with no MPU attached; never
    #: equals a real MPU epoch, so attaching an MPU forces re-checks.
    NO_MPU_EPOCH = -1

    def __init__(self):
        self.stats = HitMissCounter("insn")
        self._insns = {}
        #: page index -> set of cached EIPs whose encoding touches it.
        self._pages = {}

    def __len__(self):
        return len(self._insns)

    def get(self, eip):
        """The ``[insn, epoch]`` entry at ``eip`` or ``None`` (counted)."""
        entry = self._insns.get(eip)
        if entry is not None:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return entry

    def put(self, eip, insn, epoch=NO_MPU_EPOCH):
        """Cache ``insn`` as the decoding of the bytes at ``eip``."""
        self._insns[eip] = [insn, epoch]
        pages = self._pages
        for page in range(eip >> PAGE_SHIFT, ((eip + insn.length - 1) >> PAGE_SHIFT) + 1):
            bucket = pages.get(page)
            if bucket is None:
                bucket = pages[page] = set()
            bucket.add(eip)

    def note_write(self, address, size):
        """Snoop a write of ``size`` bytes at ``address``.

        Wired as a :class:`~repro.hw.memory.PhysicalMemory` write
        listener; drops every cached instruction on a touched page.
        """
        pages = self._pages
        if not pages or size <= 0:
            return
        first = address >> PAGE_SHIFT
        last = (address + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            bucket = pages.pop(page, None)
            if bucket is None:
                continue
            insns = self._insns
            for eip in bucket:
                insns.pop(eip, None)
            self.stats.invalidations += 1

    def clear(self):
        """Drop every cached instruction (keeps the counters)."""
        self._insns.clear()
        self._pages.clear()
