"""Fast-path caching layer for the simulator's per-instruction hot path.

The simulator's value is running TyTAN workloads (attestation, IPC,
real-time latency benches) at scale, so the per-instruction enforcement
path must be cached rather than recomputed.  This package holds the
cache structures shared by the CPU, the EA-MPU, and the memory map:

* :class:`~repro.perf.insn_cache.DecodedInsnCache` - decoded
  instructions keyed by EIP, invalidated when any write (checked or
  raw) lands in a cached code range;
* :class:`~repro.perf.decision_cache.MPUDecisionCache` - memoized
  EA-MPU *allow* verdicts for data accesses and control transfers,
  invalidated by the MPU's epoch counter (bumped on every
  ``program_slot``/``clear_slot``);
* :class:`~repro.obs.counters.HitMissCounter` - hit/miss/invalidation
  counters (now part of :mod:`repro.obs`; re-exported here), registered
  with each platform's ``obs.counters`` registry for tests and benches;
* :mod:`repro.perf.blocks` / :mod:`repro.perf.translate` - the
  block-translation tier: hot straight-line superblocks compiled to
  single Python closures with hoisted EA-MPU checks and batched cycle
  charging, admitted only when they fit inside the event horizon
  (``CycleClock.next_event_horizon``).  Exposed lazily here to keep the
  package import-light (``repro.hw.memory`` imports this package);
* :mod:`repro.perf.traces` - the trace-recording JIT stacked on the
  block tier: hot block-to-block edges stitched into multi-block traces
  with guarded side exits, registers held in Python locals, counted
  loops unrolled, and loads/stores served by direct memory-slab
  indexing inside the hoisted allow windows.  Also exposed lazily.

The invariant all of these preserve: **caches change wall-clock speed
only, never simulated semantics**.  Faults, fault logs, trace and
transfer hooks, and cycle accounting are bit-for-bit identical with
caches on or off (``tests/test_perf_equivalence.py`` and
``tests/test_perf_blocks.py`` assert this).
"""

from repro.perf.counters import HitMissCounter
from repro.perf.decision_cache import MPUDecisionCache
from repro.perf.insn_cache import DecodedInsnCache

__all__ = [
    "BlockCache",
    "BlockEngine",
    "DecodedInsnCache",
    "HitMissCounter",
    "MPUDecisionCache",
    "SuperBlock",
    "Trace",
    "TraceCache",
    "TraceJIT",
]


def __getattr__(name):
    # Lazy exports: repro.hw.memory imports this package, and the block
    # modules import repro.hw.memory, so eager imports here would cycle.
    if name in ("BlockCache", "SuperBlock"):
        from repro.perf import blocks

        return getattr(blocks, name)
    if name == "BlockEngine":
        from repro.perf.translate import BlockEngine

        return BlockEngine
    if name in ("Trace", "TraceCache", "TraceJIT"):
        from repro.perf import traces

        return getattr(traces, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
