"""Fast-path caching layer for the simulator's per-instruction hot path.

The simulator's value is running TyTAN workloads (attestation, IPC,
real-time latency benches) at scale, so the per-instruction enforcement
path must be cached rather than recomputed.  This package holds the
cache structures shared by the CPU, the EA-MPU, and the memory map:

* :class:`~repro.perf.insn_cache.DecodedInsnCache` - decoded
  instructions keyed by EIP, invalidated when any write (checked or
  raw) lands in a cached code range;
* :class:`~repro.perf.decision_cache.MPUDecisionCache` - memoized
  EA-MPU *allow* verdicts for data accesses and control transfers,
  invalidated by the MPU's epoch counter (bumped on every
  ``program_slot``/``clear_slot``);
* :class:`~repro.obs.counters.HitMissCounter` - hit/miss/invalidation
  counters (now part of :mod:`repro.obs`; re-exported here), registered
  with each platform's ``obs.counters`` registry for tests and benches.

The invariant all of these preserve: **caches change wall-clock speed
only, never simulated semantics**.  Faults, fault logs, trace and
transfer hooks, and cycle accounting are bit-for-bit identical with
caches on or off (``tests/test_perf_equivalence.py`` asserts this).
"""

from repro.perf.counters import HitMissCounter
from repro.perf.decision_cache import MPUDecisionCache
from repro.perf.insn_cache import DecodedInsnCache

__all__ = [
    "DecodedInsnCache",
    "HitMissCounter",
    "MPUDecisionCache",
]
