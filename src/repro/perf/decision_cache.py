"""Memoized EA-MPU verdicts, invalidated by the rule-table epoch.

The EA-MPU's ``check``/``check_transfer`` scan every rule slot on every
access; for the per-instruction execute check and the sequential-advance
transfer check that linear scan dominates simulation time.  This cache
memoizes **allow** verdicts only:

* denials are never cached - a denied access must re-run the full check
  so it raises and appends to ``fault_log`` every single time, exactly
  as the uncached hardware model does;
* allow verdicts are valid precisely until the rule table changes, so
  the whole cache is flushed lazily whenever the MPU's ``epoch``
  counter (bumped by every successful ``program_slot``/``clear_slot``)
  moves.

For control transfers there is additionally a *coverage-cell* fast
path: the object ranges of all entry-point rules partition the address
space into cells inside which every rule's subject/object membership is
constant.  A transfer whose source and target lie in the same cell can
never trip an entry-point check, so it is provably allowed without
consulting any rule.  The CPU uses :meth:`MPUDecisionCache.cell_bounds`
to skip the sequential-advance transfer check entirely while execution
stays inside one cell.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.perf.counters import HitMissCounter

#: One past the top of the 32-bit physical address space.
_TOP = 0x1_0000_0000


class MPUDecisionCache:
    """Allow-verdict memo for one :class:`~repro.hw.ea_mpu.EAMPU`."""

    __slots__ = (
        "_mpu",
        "_epoch",
        "_access",
        "_transfer",
        "_bounds",
        "_data_bounds",
        "access_stats",
        "transfer_stats",
    )

    def __init__(self, mpu):
        self._mpu = mpu
        self._epoch = mpu.epoch
        #: (kind, address, size, eip) -> True (allow verdicts only).
        self._access = {}
        #: {(from_eip, to_eip)} transfers proven allowed.
        self._transfer = set()
        #: Sorted entry-point rule boundaries (built lazily per epoch).
        self._bounds = None
        #: Sorted object-range boundaries of *all* rules (lazy, per
        #: epoch); partitions the address space into data cells inside
        #: which every rule's object membership is constant.
        self._data_bounds = None
        self.access_stats = HitMissCounter("mpu-access")
        self.transfer_stats = HitMissCounter("mpu-transfer")

    # -- epoch bookkeeping ---------------------------------------------------

    def _sync(self):
        """Flush everything if the rule table changed since last use."""
        epoch = self._mpu.epoch
        if epoch != self._epoch:
            self._epoch = epoch
            self._access.clear()
            self._transfer.clear()
            self._bounds = None
            self._data_bounds = None
            self.access_stats.invalidations += 1
            self.transfer_stats.invalidations += 1

    @property
    def epoch(self):
        """Rule-table epoch the cached verdicts are valid for."""
        return self._epoch

    # -- data/execute access verdicts ---------------------------------------

    def lookup_access(self, key):
        """Whether ``key = (kind, address, size, eip)`` is a known allow."""
        self._sync()
        if key in self._access:
            self.access_stats.hits += 1
            return True
        self.access_stats.misses += 1
        return False

    def store_access(self, key):
        """Record an allow verdict computed by the full check."""
        self._access[key] = True

    # -- control-transfer verdicts ------------------------------------------

    def lookup_transfer(self, from_eip, to_eip):
        """Whether the transfer is provably allowed (cell or memo hit)."""
        self._sync()
        bounds = self._bounds
        if bounds is None:
            bounds = self._rebuild_bounds()
        if bisect_right(bounds, from_eip) == bisect_right(bounds, to_eip):
            self.transfer_stats.hits += 1
            return True
        if (from_eip, to_eip) in self._transfer:
            self.transfer_stats.hits += 1
            return True
        self.transfer_stats.misses += 1
        return False

    def store_transfer(self, from_eip, to_eip):
        """Record a transfer the full check allowed."""
        self._transfer.add((from_eip, to_eip))

    # -- coverage cells ------------------------------------------------------

    def _rebuild_bounds(self):
        edges = set()
        for rule in self._mpu.slots:
            if rule is not None and rule.entry_point is not None:
                edges.add(rule.data_start)
                edges.add(rule.data_end)
        bounds = sorted(edges)
        self._bounds = bounds
        return bounds

    def _rebuild_data_bounds(self):
        edges = set()
        for rule in self._mpu.slots:
            if rule is not None:
                edges.add(rule.data_start)
                edges.add(rule.data_end)
        bounds = sorted(edges)
        self._data_bounds = bounds
        return bounds

    def allow_window(self, address):
        """``(lo, hi)``: the data cell containing ``address``.

        The object ranges of **all** programmed rules partition the
        address space; within ``[lo, hi)`` every rule's object
        membership is constant, so an *allow* verdict for one access
        ``(kind, size, eip)`` at ``address`` holds for the same access
        at any address whose whole ``size``-byte span stays inside the
        cell.  The block-translation engine hoists one full
        :meth:`~repro.hw.ea_mpu.EAMPU.check` per memory instruction
        into such a window (further clamped to the backing RAM region)
        and re-validates it only when the rule-table epoch moves.
        """
        self._sync()
        bounds = self._data_bounds
        if bounds is None:
            bounds = self._rebuild_data_bounds()
        index = bisect_right(bounds, address)
        lo = bounds[index - 1] if index > 0 else 0
        hi = bounds[index] if index < len(bounds) else _TOP
        return lo, hi

    def cell_bounds(self, address):
        """``(lo, hi, epoch)``: the coverage cell containing ``address``.

        Any control transfer with both endpoints in ``[lo, hi)`` is
        allowed while the MPU's epoch still equals ``epoch`` - no
        entry-point rule boundary lies strictly inside the cell, so
        source and target always share every rule's object membership.
        """
        self._sync()
        bounds = self._bounds
        if bounds is None:
            bounds = self._rebuild_bounds()
        index = bisect_right(bounds, address)
        lo = bounds[index - 1] if index > 0 else 0
        hi = bounds[index] if index < len(bounds) else _TOP
        return lo, hi, self._epoch
