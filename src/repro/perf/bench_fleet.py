"""Fleet attestation throughput bench: serial vs. worker pool.

For each device count the bench runs the identical fleet configuration
twice - once on the serial executor (one compute lane) and once on the
multiprocessing worker pool (``workers`` lanes) - and reports
*reports per simulated second*: attested devices divided by the fabric
time the full round took.  Device compute is charged in simulated time
from each machine's own cycle clock, so the headline numbers are
deterministic and host-independent; host wall-clock is recorded
alongside for context (it depends on the runner's core count and is
**not** gated).

The bench asserts every device attests in every run (loss defaults to
0 here - fault-model behaviour is the fleet CLI's and smoke tests'
job; this bench isolates executor scaling).

Reports are cumulative: ``BENCH_fleet.json`` keeps a timestamped
``history`` list like ``BENCH_cpu_core.json`` does.
"""

from __future__ import annotations

import json
import time

from repro.fleet.orchestrator import Fleet

#: Device counts swept by default (the last one is the gated point).
DEFAULT_COUNTS = (4, 16, 64)

#: Pool size used for the pool mode.
DEFAULT_WORKERS = 4

#: The CI gate: pool must be at least this much faster than serial at
#: the largest device count.
GATE_SPEEDUP = 2.0


def bench_one(devices, workers, seed=7, loss=0.0):
    """One fleet run; returns its throughput row.

    Raises :class:`AssertionError` if any device fails to attest - a
    bench over a sick fleet would measure the wrong thing.
    """
    started = time.perf_counter()
    fleet = Fleet(
        devices,
        seed=seed,
        loss=loss,
        workers=workers,
        jitter_us=0,
    )
    result = fleet.run()
    wall = time.perf_counter() - started
    health = result["health"]
    if health["attested"] != devices:
        raise AssertionError(
            "fleet bench: %d/%d devices attested (mode %s)"
            % (health["attested"], devices, result["fleet"]["mode"])
        )
    return {
        "devices": devices,
        "mode": result["fleet"]["mode"],
        "lanes": result["fleet"]["lanes"],
        "attested": health["attested"],
        "sim_elapsed_us": result["sim_elapsed_us"],
        "reports_per_sec": result["reports_per_sec"],
        "latency_p50_us": health["latency_us"]["p50"],
        "latency_p99_us": health["latency_us"]["p99"],
        "wall_seconds": round(wall, 3),
    }


def run_bench(device_counts=DEFAULT_COUNTS, seed=7, loss=0.0, workers=DEFAULT_WORKERS):
    """Sweep serial vs. pool over ``device_counts``; returns the result."""
    results = {}
    for devices in device_counts:
        serial = bench_one(devices, 0, seed=seed, loss=loss)
        pool = bench_one(devices, workers, seed=seed, loss=loss)
        results[str(devices)] = {
            "serial": serial,
            "pool": pool,
            "speedup": round(
                pool["reports_per_sec"] / serial["reports_per_sec"], 2
            ),
        }
    return {
        "bench": "fleet",
        "seed": seed,
        "loss": loss,
        "workers": workers,
        "device_counts": list(device_counts),
        "results": results,
    }


def check_fleet(result, out):
    """CI gate; returns True when the pool clears :data:`GATE_SPEEDUP`."""
    top = str(max(int(count) for count in result["results"]))
    speedup = result["results"][top]["speedup"]
    if speedup < GATE_SPEEDUP:
        print(
            "check: fleet pool speedup %.2fx at %s devices is below the "
            "%.1fx gate" % (speedup, top, GATE_SPEEDUP),
            file=out,
        )
        return False
    return True


def _history_entry(result):
    """Compact trajectory record appended to the report's history."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workers": result["workers"],
        "reports_per_sec": {
            count: {
                "serial": entry["serial"]["reports_per_sec"],
                "pool": entry["pool"]["reports_per_sec"],
                "speedup": entry["speedup"],
            }
            for count, entry in result["results"].items()
        },
    }


def _load_history(path):
    """The history list of an existing report, if any."""
    try:
        with open(path) as handle:
            old = json.load(handle)
    except (OSError, ValueError):
        return []
    history = old.get("history")
    return history if isinstance(history, list) else []


def write_report(
    path="BENCH_fleet.json",
    device_counts=DEFAULT_COUNTS,
    seed=7,
    loss=0.0,
    workers=DEFAULT_WORKERS,
    out=None,
):
    """Run the bench and write the cumulative JSON report to ``path``."""
    result = run_bench(device_counts, seed=seed, loss=loss, workers=workers)
    result["history"] = _load_history(path) + [_history_entry(result)]
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if out is not None:
        for count in result["device_counts"]:
            entry = result["results"][str(count)]
            print(
                "fleet %3d devices: %8.1f -> %8.1f reports/sec "
                "(%.2fx pool, %d lanes)"
                % (
                    count,
                    entry["serial"]["reports_per_sec"],
                    entry["pool"]["reports_per_sec"],
                    entry["speedup"],
                    entry["pool"]["lanes"],
                ),
                file=out,
            )
        print("report: %s" % path, file=out)
    return result
