"""Fleet attestation throughput bench: lane-scaling sweep.

For each device count the bench runs the identical fleet configuration
once per worker-lane count (1 lane = the serial executor, then 2- and
4-lane worker pools) and reports *reports per simulated second*:
attested devices divided by the fabric time the full round took.
Device compute is charged in simulated time from each machine's own
cycle clock, so the headline numbers are deterministic and
host-independent; host wall-clock is recorded alongside for context
(it depends on the runner's core count and is **not** gated).

The CI gate (:func:`check_fleet`) asserts the 4-lane run scales at
least :data:`GATE_SCALING` x *linearly* over the 1-lane run at the
largest device count: ``rps(4) / rps(1) >= 0.7 * 4``.  Attestation
compute (~1ms simulated per report) dominates the 200us link, so lane
scaling should be near-ideal; a drop below 0.7x ideal means the
orchestrator serialised something it shouldn't have.

Every run uses snapshot boot (the scale path); the bench asserts every
device attests in every run (loss is 0 here - fault-model behaviour is
the fleet CLI's and smoke tests' job; this bench isolates lane
scaling).

Reports are cumulative: ``BENCH_fleet.json`` keeps a timestamped
``history`` list like ``BENCH_cpu_core.json`` does.
"""

from __future__ import annotations

import json
import time

from repro.fleet.config import FleetConfig, ShardConfig
from repro.fleet.orchestrator import Fleet
from repro.net.fabric import FabricProfile

#: Device counts swept by default (the last one is the gated point).
DEFAULT_COUNTS = (64, 1024, 10240)

#: Worker-lane counts swept per device count (1 = serial executor).
DEFAULT_LANES = (1, 2, 4)

#: Verifier shards used for every bench run.
DEFAULT_SHARDS = 8

#: The CI gate: the 4-lane run must reach at least this fraction of
#: ideal linear scaling over the 1-lane run at the largest count.
GATE_SCALING = 0.7


def bench_one(devices, lanes, seed=7, loss=0.0, shards=DEFAULT_SHARDS):
    """One fleet run; returns its throughput row.

    Raises :class:`AssertionError` if any device fails to attest - a
    bench over a sick fleet would measure the wrong thing.
    """
    started = time.perf_counter()
    fleet = Fleet(
        FleetConfig(
            devices=devices,
            seed=seed,
            workers=0 if lanes == 1 else lanes,
            boot_mode="snapshot",
        ),
        shards=ShardConfig(shards=shards),
        fabric=FabricProfile(latency_us=200, jitter_us=0, loss=loss),
    )
    result = fleet.run()
    wall = time.perf_counter() - started
    health = result["health"]
    if health["attested"] != devices:
        raise AssertionError(
            "fleet bench: %d/%d devices attested (%d lanes)"
            % (health["attested"], devices, lanes)
        )
    return {
        "devices": devices,
        "lanes": lanes,
        "mode": result["fleet"]["mode"],
        "attested": health["attested"],
        "sim_elapsed_us": result["sim_elapsed_us"],
        "reports_per_sec": result["reports_per_sec"],
        "latency_p50_us": health["latency_us"]["p50"],
        "latency_p99_us": health["latency_us"]["p99"],
        "wall_seconds": round(wall, 3),
    }


def run_bench(
    device_counts=DEFAULT_COUNTS,
    seed=7,
    loss=0.0,
    lanes=DEFAULT_LANES,
    shards=DEFAULT_SHARDS,
):
    """Sweep lane counts over ``device_counts``; returns the result."""
    results = {}
    for devices in device_counts:
        rows = {}
        for lane_count in lanes:
            rows[str(lane_count)] = bench_one(
                devices, lane_count, seed=seed, loss=loss, shards=shards
            )
        base = rows[str(min(lanes))]["reports_per_sec"]
        scaling = {
            str(lane_count): round(
                rows[str(lane_count)]["reports_per_sec"] / base, 2
            )
            for lane_count in lanes
        }
        results[str(devices)] = {"lanes": rows, "speedup": scaling}
    return {
        "bench": "fleet",
        "seed": seed,
        "loss": loss,
        "shards": shards,
        "lane_counts": list(lanes),
        "device_counts": list(device_counts),
        "gate_scaling": GATE_SCALING,
        "results": results,
    }


def check_fleet(result, out):
    """CI gate; True when the top lane count clears the scaling floor."""
    top_devices = str(max(int(count) for count in result["results"]))
    entry = result["results"][top_devices]
    top_lanes = max(int(n) for n in result["lane_counts"])
    speedup = entry["speedup"][str(top_lanes)]
    floor = GATE_SCALING * top_lanes
    if speedup < floor:
        print(
            "check: fleet %d-lane speedup %.2fx at %s devices is below the "
            "%.2fx gate (%.0f%% of linear)"
            % (top_lanes, speedup, top_devices, floor, 100 * GATE_SCALING),
            file=out,
        )
        return False
    return True


def _history_entry(result):
    """Compact trajectory record appended to the report's history."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "shards": result["shards"],
        "reports_per_sec": {
            count: {
                lanes: row["reports_per_sec"]
                for lanes, row in entry["lanes"].items()
            }
            for count, entry in result["results"].items()
        },
        "speedup": {
            count: entry["speedup"] for count, entry in result["results"].items()
        },
    }


def _load_history(path):
    """The history list of an existing report, if any."""
    try:
        with open(path) as handle:
            old = json.load(handle)
    except (OSError, ValueError):
        return []
    history = old.get("history")
    return history if isinstance(history, list) else []


def write_report(
    path="BENCH_fleet.json",
    device_counts=DEFAULT_COUNTS,
    seed=7,
    loss=0.0,
    lanes=DEFAULT_LANES,
    shards=DEFAULT_SHARDS,
    out=None,
):
    """Run the bench and write the cumulative JSON report to ``path``."""
    result = run_bench(
        device_counts, seed=seed, loss=loss, lanes=lanes, shards=shards
    )
    result["history"] = _load_history(path) + [_history_entry(result)]
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if out is not None:
        for count in result["device_counts"]:
            entry = result["results"][str(count)]
            lanes_sorted = sorted(entry["lanes"], key=int)
            rates = " -> ".join(
                "%.1f" % entry["lanes"][n]["reports_per_sec"] for n in lanes_sorted
            )
            top = lanes_sorted[-1]
            print(
                "fleet %6d devices: %s reports/sec (1->%s lanes, %.2fx)"
                % (count, rates, top, entry["speedup"][top]),
                file=out,
            )
        print("report: %s" % path, file=out)
    return result
