"""Hit/miss bookkeeping shared by every fast-path cache.

:class:`HitMissCounter` moved to :mod:`repro.obs.counters` when the
observability bus absorbed the counters layer; this module re-exports
it so existing imports keep working.  New code should import from
:mod:`repro.obs` and register counters with a
:class:`~repro.obs.counters.CounterRegistry` (every platform exposes
one at ``platform.obs.counters``).

This module also defines :class:`TraceCounters`, the trace-JIT's
counter bundle.  The trace tier's behaviour is otherwise invisible by
design (bit-identical architectural state), so these counters are the
only way ``repro.tools.trace`` summaries and benches can show what the
JIT actually did: how many traces were compiled and flushed, how often
guards bailed to the interpreter, and what fraction of translated
loads/stores hit the direct memory-slab fast path.
"""

from __future__ import annotations

from repro.obs.counters import Counter, HitMissCounter


class TraceCounters:
    """The trace-JIT counter bundle, registry-ready.

    * ``compiles`` - traces stitched and compiled;
    * ``guard_exits`` - side exits taken because a guard's recorded
      branch direction did not match at run time;
    * ``flushes`` - wholesale trace-cache flushes (EA-MPU epoch moves);
    * ``slab_loads`` / ``slab_stores`` - translated memory accesses
      served by direct slab indexing (hits) vs. the checked slow path
      or the write-snoop broadcast path (misses).
    """

    __slots__ = ("compiles", "guard_exits", "flushes", "slab_loads", "slab_stores")

    def __init__(self):
        self.compiles = Counter("trace-compiles")
        self.guard_exits = Counter("trace-guard-exits")
        self.flushes = Counter("trace-flushes")
        self.slab_loads = HitMissCounter("slab-load")
        self.slab_stores = HitMissCounter("slab-store")

    def all(self):
        """Every counter, for registration with an obs registry."""
        return [
            self.compiles,
            self.guard_exits,
            self.flushes,
            self.slab_loads,
            self.slab_stores,
        ]

    def snapshot(self):
        """Plain-dict view for benches and assertions."""
        return {
            "compiles": self.compiles.value,
            "guard_exits": self.guard_exits.value,
            "flushes": self.flushes.value,
            "slab_load": self.slab_loads.snapshot(),
            "slab_store": self.slab_stores.snapshot(),
        }


__all__ = ["Counter", "HitMissCounter", "TraceCounters"]
