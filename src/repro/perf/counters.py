"""Hit/miss bookkeeping shared by every fast-path cache.

:class:`HitMissCounter` moved to :mod:`repro.obs.counters` when the
observability bus absorbed the counters layer; this module re-exports
it so existing imports keep working.  New code should import from
:mod:`repro.obs` and register counters with a
:class:`~repro.obs.counters.CounterRegistry` (every platform exposes
one at ``platform.obs.counters``).
"""

from __future__ import annotations

from repro.obs.counters import HitMissCounter

__all__ = ["HitMissCounter"]
