"""Hit/miss bookkeeping shared by every fast-path cache."""

from __future__ import annotations


class HitMissCounter:
    """Counts cache hits, misses, and invalidation events.

    The counters are plain attributes so the hot path pays a single
    integer increment; everything derived (totals, rates) is computed on
    demand by tests and benches.
    """

    __slots__ = ("name", "hits", "misses", "invalidations")

    def __init__(self, name):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @property
    def total(self):
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.total
        return self.hits / total if total else 0.0

    def reset(self):
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def snapshot(self):
        """Plain-dict view for JSON benches and assertions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __repr__(self):
        return "HitMissCounter(%s, hits=%d, misses=%d, inval=%d)" % (
            self.name,
            self.hits,
            self.misses,
            self.invalidations,
        )
