"""Hit/miss bookkeeping shared by every fast-path cache.

:class:`HitMissCounter` moved to :mod:`repro.obs.counters` when the
observability bus absorbed the counters layer; this module re-exports
it so existing imports keep working.  New code should import from
:mod:`repro.obs` and register counters with a
:class:`~repro.obs.counters.CounterRegistry` (every platform exposes
one at ``platform.obs.counters``).

This module also defines :class:`TraceCounters`, the trace-JIT's
counter bundle.  The trace tier's behaviour is otherwise invisible by
design (bit-identical architectural state), so these counters are the
only way ``repro.tools.trace`` summaries and benches can show what the
JIT actually did: how many traces were compiled and flushed, how often
guards bailed to the interpreter, how horizon admission split between
whole bodies and prefix checkpoints, and what fraction of translated
loads/stores (per access width) hit the direct memory-slab fast path.
"""

from __future__ import annotations

from repro.obs.counters import Counter, HitMissCounter


class TraceCounters:
    """The trace-JIT counter bundle, registry-ready.

    * ``compiles`` - traces stitched and compiled;
    * ``guard_exits`` - side exits taken because a guard's recorded
      branch direction did not match at run time;
    * ``flushes`` - wholesale trace-cache flushes (EA-MPU epoch moves);
    * ``admits_full`` / ``admits_prefix`` / ``admits_reject`` -
      event-horizon admission outcomes: the whole body (or whole loop
      iterations) fit, only a checkpoint prefix fit, or not even the
      first checkpoint fit (the dispatch fell back a tier);
    * ``slab_loads`` / ``slab_stores`` (32-bit) and their ``_u16`` /
      ``_u8`` twins - translated memory accesses served by direct slab
      indexing (hits) vs. the checked slow path, a misaligned-access
      bail, or the write-snoop broadcast path (misses).
    """

    __slots__ = (
        "compiles",
        "guard_exits",
        "flushes",
        "admits_full",
        "admits_prefix",
        "admits_reject",
        "slab_loads",
        "slab_stores",
        "slab_loads_u16",
        "slab_stores_u16",
        "slab_loads_u8",
        "slab_stores_u8",
    )

    def __init__(self):
        self.compiles = Counter("trace-compiles")
        self.guard_exits = Counter("trace-guard-exits")
        self.flushes = Counter("trace-flushes")
        self.admits_full = Counter("trace-admit-full")
        self.admits_prefix = Counter("trace-admit-prefix")
        self.admits_reject = Counter("trace-admit-reject")
        self.slab_loads = HitMissCounter("slab-load")
        self.slab_stores = HitMissCounter("slab-store")
        self.slab_loads_u16 = HitMissCounter("slab-load-u16")
        self.slab_stores_u16 = HitMissCounter("slab-store-u16")
        self.slab_loads_u8 = HitMissCounter("slab-load-u8")
        self.slab_stores_u8 = HitMissCounter("slab-store-u8")

    def all(self):
        """Every counter, for registration with an obs registry."""
        return [
            self.compiles,
            self.guard_exits,
            self.flushes,
            self.admits_full,
            self.admits_prefix,
            self.admits_reject,
            self.slab_loads,
            self.slab_stores,
            self.slab_loads_u16,
            self.slab_stores_u16,
            self.slab_loads_u8,
            self.slab_stores_u8,
        ]

    def snapshot(self):
        """Plain-dict view for benches and assertions."""
        return {
            "compiles": self.compiles.value,
            "guard_exits": self.guard_exits.value,
            "flushes": self.flushes.value,
            "admit": {
                "full": self.admits_full.value,
                "prefix": self.admits_prefix.value,
                "reject": self.admits_reject.value,
            },
            "slab_load": self.slab_loads.snapshot(),
            "slab_store": self.slab_stores.snapshot(),
            "slab_load_u16": self.slab_loads_u16.snapshot(),
            "slab_store_u16": self.slab_stores_u16.snapshot(),
            "slab_load_u8": self.slab_loads_u8.snapshot(),
            "slab_store_u8": self.slab_stores_u8.snapshot(),
        }


__all__ = ["Counter", "HitMissCounter", "TraceCounters"]
