"""Superblock translation: compile straight-line runs to Python closures.

This is the simulator's equivalent of QEMU's TCG / Embra's block
translation: each discovered :class:`~repro.perf.blocks.SuperBlock` is
turned into **one** generated Python function that executes the whole
run with

* inline ALU statements operating directly on the GPR list (dead flag
  computation elided: a flag-writing instruction only materializes
  EFLAGS when it is the last writer before a point where flags are
  architecturally observable - a potential fault site or the block
  end);
* one *hoisted* EA-MPU check per memory instruction: the first
  execution runs the full :meth:`repro.hw.ea_mpu.EAMPU.check` (so a
  denial faults and logs exactly like single-stepping), and the allow
  verdict is widened to the surrounding data cell
  (:meth:`repro.perf.decision_cache.MPUDecisionCache.allow_window`)
  clamped to the backing RAM region; subsequent executions compare the
  effective address against that window and go straight to the region
  bytes;
* one batched cycle-counter update: cycles accumulate in a local and
  are flushed in a single ``clock.charge`` - but always *before*
  anything externally visible (an MMIO access, a potential fault, the
  block exit), so every observer still sees the same ``clock.now`` it
  would under single-stepping;
* the PR 3 constant-propagation idea at translation time: a ``movi``
  whose register reaches a load/store unclobbered folds the effective
  address to a literal (see :mod:`repro.analysis.constprop`, the static
  twin of this dict).

Bit-identical equivalence contract (the same one the PR 1 caches obey):
registers, memory, ``clock.now``, ``retired``, faults, fault logs, and
non-``perf`` obs events are indistinguishable from single-stepping.
Anything the translator cannot prove equivalent falls off the fast
path: MMIO accesses route through the checked bus and abort the block,
faults propagate from the exact instruction boundary with EIP/ESP
already matching the single-step state, and a store that invalidates
the executing block (self-modifying code) finishes its instruction and
aborts.
"""

from __future__ import annotations

from repro.hw.memory import RamRegion
from repro.isa.opcodes import BASE_CYCLES, Op
from repro.obs.counters import Counter
from repro.perf.blocks import ALU_OPS, MEM_OPS, BlockCache, discover
from repro.perf.traces import TraceJIT

_M = 0xFFFFFFFF
_SIGN = 0x80000000
#: EFLAGS with the four ALU result flags (CF|ZF|SF|OF) cleared.
_FLAG_KEEP = 0xFFFFF73E

#: Instructions whose handlers write EFLAGS result flags.
_FLAG_WRITERS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.CMP,
        Op.SHL,
        Op.SHR,
        Op.MUL,
        Op.ADDI,
        Op.SUBI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.CMPI,
        Op.SHLI,
        Op.SHRI,
        Op.NOT,
        Op.NEG,
    }
)

#: Instructions that write their ``reg`` operand (kills a known const).
_REG_KILLERS = frozenset(
    {
        Op.MOV,
        Op.ADD,
        Op.SUB,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.MUL,
        Op.ADDI,
        Op.SUBI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.SHLI,
        Op.SHRI,
        Op.NOT,
        Op.NEG,
        Op.LD,
        Op.LDB,
        Op.POP,
    }
)

_ESP = 4  # Reg.ESP

_SIZE_MASK = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}

#: load/store width in bytes by opcode (mem-format ops only).
_WIDTH = {Op.LD: 4, Op.ST: 4, Op.LDH: 2, Op.STH: 2, Op.LDB: 1, Op.STB: 1}

#: width -> (alignment mask, index shift) for slab-view indexing.
_ALIGN_SHIFT = {4: (3, 2), 2: (1, 1), 1: (0, 0)}


def _flag_liveness(insns):
    """Which flag writers must materialize EFLAGS.

    Backward scan: flags written by instruction ``i`` are observable iff
    no later flag writer overwrites them before the next *sync point* -
    a memory instruction (whose fault would expose EFLAGS to the
    handler) or the end of the block (where the terminator may branch on
    them).
    """
    needs = [False] * len(insns)
    live = True
    for i in range(len(insns) - 1, -1, -1):
        opcode = insns[i][1].opcode
        if opcode in MEM_OPS:
            live = True
        elif opcode in _FLAG_WRITERS:
            needs[i] = live
            live = False
    return needs


class _Emitter:
    """Tiny indented-source builder for the generated closure."""

    def __init__(self):
        self.lines = []

    def emit(self, indent, text):
        self.lines.append("    " * indent + text)

    def source(self):
        return "\n".join(self.lines) + "\n"


def _emit_flags(out, indent, carry=None, overflow=None, zero_sign_of="res"):
    """The common tail of a flag-materializing ALU instruction."""
    out.emit(indent, "f = regs.eflags & %d" % _FLAG_KEEP)
    if carry is not None:
        out.emit(indent, "if %s:" % carry)
        out.emit(indent + 1, "f |= 1")
    out.emit(indent, "if %s == 0:" % zero_sign_of)
    out.emit(indent + 1, "f |= 64")
    out.emit(indent, "if %s & %d:" % (zero_sign_of, _SIGN))
    out.emit(indent + 1, "f |= 128")
    if overflow is not None:
        out.emit(indent, "if %s:" % overflow)
        out.emit(indent + 1, "f |= 2048")
    out.emit(indent, "regs.eflags = f")


def generate(block):
    """Generate the Python source for ``block``'s closure.

    The closure signature is ``__block__(cpu, blk)``; it assumes the
    dispatcher has already verified the EA-MPU epoch, the event
    horizon, and ``blk.valid``.
    """
    insns = block.insns
    count = len(insns)
    needs_flags = _flag_liveness(insns)
    out = _Emitter()
    out.emit(0, "def __block__(cpu, blk):")
    out.emit(1, "regs = cpu.regs")
    out.emit(1, "r = regs.gpr")
    out.emit(1, "memory = cpu.memory")
    out.emit(1, "clock = cpu.clock")
    out.emit(1, "W = blk.windows")
    if any(
        insn.opcode in (Op.ST, Op.STB, Op.STH, Op.PUSH, Op.PUSHI)
        for _, insn in insns
    ):
        out.emit(1, "S = memory.snooped_pages")
    out.emit(1, "p = 0")

    #: reg index -> constant value (the runtime twin of the PR 3
    #: constprop pass: only ``movi`` defines, any other write kills).
    known = {}
    pend = 0  # batched base cycles of fully inlined instructions
    done = 0  # instructions whose retirement is already credited
    mem_index = 0

    def flush_pend(indent):
        nonlocal pend
        if pend:
            out.emit(indent, "p += %d" % pend)
            pend = 0

    def slow_prologue(i, address, base):
        """Fall off the fast path: make cpu state bit-identical to
        single-stepping *before* instruction ``i`` touches the bus."""
        out.emit(2, "if p:")
        out.emit(3, "clock.charge(p)")
        out.emit(3, "p = 0")
        if i - done:
            out.emit(2, "cpu.retired += %d" % (i - done))
        out.emit(2, "regs.eip = %d" % address)
        out.emit(2, "clock.charge(%d)" % base)

    def addr_expr(insn):
        base = known.get(insn.reg2)
        if base is not None:
            return str((base + insn.imm) & _M)
        if insn.imm:
            return "(r[%d] + %d) & %d" % (insn.reg2, insn.imm, _M)
        return "r[%d]" % insn.reg2

    for i, (address, insn) in enumerate(insns):
        opcode = insn.opcode
        x = insn.reg
        y = insn.reg2
        base = BASE_CYCLES[opcode]
        nxt = address + insn.length

        if opcode in ALU_OPS:
            pend += base
            flags = needs_flags[i]
            if opcode is Op.NOP:
                pass
            elif opcode is Op.MOV:
                out.emit(1, "r[%d] = r[%d]" % (x, y))
            elif opcode is Op.MOVI:
                out.emit(1, "r[%d] = %d" % (x, insn.imm))
                known[x] = insn.imm
                continue  # movi defines; skip the generic kill below
            elif opcode in (Op.ADD, Op.ADDI):
                b_expr = "r[%d]" % y if opcode is Op.ADD else str(insn.imm & _M)
                if not flags:
                    out.emit(1, "r[%d] = (r[%d] + %s) & %d" % (x, x, b_expr, _M))
                else:
                    out.emit(1, "a = r[%d]" % x)
                    out.emit(1, "b = %s" % b_expr)
                    out.emit(1, "raw = a + b")
                    out.emit(1, "res = raw & %d" % _M)
                    out.emit(1, "r[%d] = res" % x)
                    _emit_flags(
                        out,
                        1,
                        carry="raw > %d" % _M,
                        overflow="not ((a ^ b) & %d) and ((a ^ res) & %d)"
                        % (_SIGN, _SIGN),
                    )
            elif opcode in (Op.SUB, Op.SUBI, Op.CMP, Op.CMPI, Op.NEG):
                if opcode is Op.NEG:
                    a_expr, b_expr = "0", "r[%d]" % x
                elif opcode in (Op.SUB, Op.CMP):
                    a_expr, b_expr = "r[%d]" % x, "r[%d]" % y
                else:
                    a_expr, b_expr = "r[%d]" % x, str(insn.imm & _M)
                writes = opcode not in (Op.CMP, Op.CMPI)
                if not flags:
                    if opcode is Op.NEG:
                        out.emit(1, "r[%d] = (-r[%d]) & %d" % (x, x, _M))
                    elif writes:
                        out.emit(1, "r[%d] = (%s - %s) & %d" % (x, a_expr, b_expr, _M))
                    # a flag-dead cmp/cmpi is a pure cycle charge
                else:
                    out.emit(1, "a = %s" % a_expr)
                    out.emit(1, "b = %s" % b_expr)
                    out.emit(1, "raw = a - b")
                    out.emit(1, "res = raw & %d" % _M)
                    if writes:
                        out.emit(1, "r[%d] = res" % x)
                    _emit_flags(
                        out,
                        1,
                        carry="raw < 0",
                        overflow="((a ^ b) & %d) and ((a ^ res) & %d)"
                        % (_SIGN, _SIGN),
                    )
            elif opcode is Op.MUL:
                if not flags:
                    out.emit(1, "r[%d] = (r[%d] * r[%d]) & %d" % (x, x, y, _M))
                else:
                    out.emit(1, "raw = r[%d] * r[%d]" % (x, y))
                    out.emit(1, "res = raw & %d" % _M)
                    out.emit(1, "r[%d] = res" % x)
                    # MUL sets CF and OF together (raw overflowed 32 bits)
                    out.emit(1, "f = regs.eflags & %d" % _FLAG_KEEP)
                    out.emit(1, "if raw > %d:" % _M)
                    out.emit(2, "f |= 2049")
                    out.emit(1, "if res == 0:")
                    out.emit(2, "f |= 64")
                    out.emit(1, "if res & %d:" % _SIGN)
                    out.emit(2, "f |= 128")
                    out.emit(1, "regs.eflags = f")
            else:
                # the logic family: AND/OR/XOR/SHL/SHR (+imm forms), NOT
                if opcode is Op.AND:
                    expr = "r[%d] & r[%d]" % (x, y)
                elif opcode is Op.OR:
                    expr = "r[%d] | r[%d]" % (x, y)
                elif opcode is Op.XOR:
                    expr = "r[%d] ^ r[%d]" % (x, y)
                elif opcode is Op.ANDI:
                    expr = "r[%d] & %d" % (x, insn.imm & _M)
                elif opcode is Op.ORI:
                    expr = "r[%d] | %d" % (x, insn.imm & _M)
                elif opcode is Op.XORI:
                    expr = "r[%d] ^ %d" % (x, insn.imm & _M)
                elif opcode is Op.SHL:
                    expr = "(r[%d] << (r[%d] & 31)) & %d" % (x, y, _M)
                elif opcode is Op.SHR:
                    expr = "r[%d] >> (r[%d] & 31)" % (x, y)
                elif opcode is Op.SHLI:
                    expr = "(r[%d] << %d) & %d" % (x, insn.imm & 31, _M)
                elif opcode is Op.SHRI:
                    expr = "r[%d] >> %d" % (x, insn.imm & 31)
                elif opcode is Op.NOT:
                    expr = "(~r[%d]) & %d" % (x, _M)
                else:  # pragma: no cover - ALU_OPS is closed
                    raise AssertionError("untranslatable ALU op %r" % opcode)
                if not flags:
                    out.emit(1, "r[%d] = %s" % (x, expr))
                else:
                    out.emit(1, "res = %s" % expr)
                    out.emit(1, "r[%d] = res" % x)
                    _emit_flags(out, 1)  # logic clears CF and OF
            if opcode in _REG_KILLERS:
                known.pop(x, None)
            continue

        # -- memory instructions: hoisted-window fast path + checked
        #    slow path that is bit-identical to single-stepping --------
        flush_pend(1)
        k = mem_index
        mem_index += 1
        credit = i + 1 - done

        if opcode in (Op.LD, Op.LDH, Op.LDB):
            size = _WIDTH[opcode]
            mask, shift = _ALIGN_SHIFT[size]
            out.emit(1, "addr = %s" % addr_expr(insn))
            out.emit(1, "w = W[%d]" % k)
            # The align guard keeps the direct index exact; misaligned
            # (but in-window) accesses take the checked slow path.
            if mask:
                out.emit(
                    1,
                    "if w is not None and w[0] <= addr <= w[1] and not addr & %d:" % mask,
                )
            else:
                out.emit(1, "if w is not None and w[0] <= addr <= w[1]:")
            if shift:
                out.emit(2, "r[%d] = w[2][(addr >> %d) - w[3]]" % (x, shift))
            else:
                out.emit(2, "r[%d] = w[2][addr - w[3]]" % x)
            out.emit(2, "p += %d" % base)
            out.emit(2, "cpu.retired += %d" % credit)
            out.emit(1, "else:")
            slow_prologue(i, address, base)
            out.emit(2, "v, ram = slow_load(cpu, blk, %d, addr, %d, %d)" % (k, size, address))
            out.emit(2, "r[%d] = v" % x)
            out.emit(2, "cpu.retired += 1")
            out.emit(2, "if not ram:")
            out.emit(3, "regs.eip = %d" % nxt)
            out.emit(3, "return")
            known.pop(x, None)
            done = i + 1
            continue

        if opcode in (Op.ST, Op.STH, Op.STB):
            size = _WIDTH[opcode]
            mask, shift = _ALIGN_SHIFT[size]
            value = "r[%d]" % x if size == 4 else "(r[%d] & %d)" % (x, _SIZE_MASK[size])
            out.emit(1, "addr = %s" % addr_expr(insn))
            out.emit(1, "w = W[%d]" % k)
            if mask:
                out.emit(
                    1,
                    "if w is not None and w[0] <= addr <= w[1] and not addr & %d:" % mask,
                )
            else:
                out.emit(1, "if w is not None and w[0] <= addr <= w[1]:")
            # An aligned access never crosses the 256-byte snoop page,
            # so a single page probe decides broadcast vs. slab write.
            out.emit(2, "if addr >> 8 in S:")
            out.emit(3, 'memory.write_raw(addr, %s.to_bytes(%d, "little"))' % (value, size))
            out.emit(3, "p += %d" % base)
            out.emit(3, "cpu.retired += %d" % credit)
            out.emit(3, "if not blk.valid:")
            out.emit(4, "clock.charge(p)")
            out.emit(4, "regs.eip = %d" % nxt)
            out.emit(4, "return")
            out.emit(2, "else:")
            if shift:
                out.emit(3, "w[2][(addr >> %d) - w[3]] = %s" % (shift, value))
            else:
                out.emit(3, "w[2][addr - w[3]] = %s" % value)
            out.emit(3, "p += %d" % base)
            out.emit(3, "cpu.retired += %d" % credit)
            out.emit(1, "else:")
            slow_prologue(i, address, base)
            out.emit(
                2,
                "ram = slow_store(cpu, blk, %d, addr, r[%d], %d, %d)" % (k, x, size, address),
            )
            out.emit(2, "cpu.retired += 1")
            out.emit(2, "if not ram or not blk.valid:")
            out.emit(3, "regs.eip = %d" % nxt)
            out.emit(3, "return")
            done = i + 1
            continue

        if opcode in (Op.PUSH, Op.PUSHI):
            # push reads its operand *before* decrementing ESP (so
            # ``push esp`` stores the old value), and a faulting store
            # leaves ESP already decremented - both exactly as
            # CPU.push does.
            value = "r[%d]" % x if opcode is Op.PUSH else str(insn.imm & _M)
            out.emit(1, "v = %s" % value)
            out.emit(1, "addr = (r[%d] - 4) & %d" % (_ESP, _M))
            out.emit(1, "w = W[%d]" % k)
            out.emit(1, "if w is not None and w[0] <= addr <= w[1] and not addr & 3:")
            out.emit(2, "r[%d] = addr" % _ESP)
            out.emit(2, "if addr >> 8 in S:")
            out.emit(3, 'memory.write_raw(addr, v.to_bytes(4, "little"))')
            out.emit(3, "p += %d" % base)
            out.emit(3, "cpu.retired += %d" % credit)
            out.emit(3, "if not blk.valid:")
            out.emit(4, "clock.charge(p)")
            out.emit(4, "regs.eip = %d" % nxt)
            out.emit(4, "return")
            out.emit(2, "else:")
            out.emit(3, "w[2][(addr >> 2) - w[3]] = v")
            out.emit(3, "p += %d" % base)
            out.emit(3, "cpu.retired += %d" % credit)
            out.emit(1, "else:")
            slow_prologue(i, address, base)
            out.emit(2, "r[%d] = addr" % _ESP)
            out.emit(2, "ram = slow_store(cpu, blk, %d, addr, v, 4, %d)" % (k, address))
            out.emit(2, "cpu.retired += 1")
            out.emit(2, "if not ram or not blk.valid:")
            out.emit(3, "regs.eip = %d" % nxt)
            out.emit(3, "return")
            known.pop(_ESP, None)
            done = i + 1
            continue

        if opcode is Op.POP:
            # pop loads first (a faulting load leaves ESP and the
            # destination untouched), then bumps ESP, then writes the
            # destination - so ``pop esp`` ends with the loaded value.
            out.emit(1, "addr = r[%d]" % _ESP)
            out.emit(1, "w = W[%d]" % k)
            out.emit(1, "if w is not None and w[0] <= addr <= w[1] and not addr & 3:")
            out.emit(2, "v = w[2][(addr >> 2) - w[3]]")
            out.emit(2, "r[%d] = (addr + 4) & %d" % (_ESP, _M))
            out.emit(2, "r[%d] = v" % x)
            out.emit(2, "p += %d" % base)
            out.emit(2, "cpu.retired += %d" % credit)
            out.emit(1, "else:")
            slow_prologue(i, address, base)
            out.emit(2, "v, ram = slow_load(cpu, blk, %d, addr, 4, %d)" % (k, address))
            out.emit(2, "r[%d] = (addr + 4) & %d" % (_ESP, _M))
            out.emit(2, "r[%d] = v" % x)
            out.emit(2, "cpu.retired += 1")
            out.emit(2, "if not ram:")
            out.emit(3, "regs.eip = %d" % nxt)
            out.emit(3, "return")
            known.pop(_ESP, None)
            known.pop(x, None)
            done = i + 1
            continue

        raise AssertionError(  # pragma: no cover - discovery filters ops
            "untranslatable op %r at 0x%X" % (opcode, address)
        )

    flush_pend(1)
    out.emit(1, "if p:")
    out.emit(2, "clock.charge(p)")
    if count - done:
        out.emit(1, "cpu.retired += %d" % (count - done))
    out.emit(1, "regs.eip = %d" % block.end)
    return out.source()


def translate(block):
    """Compile ``block`` in place: fills ``run``, ``source``, ``windows``."""
    source = generate(block)
    namespace = {"slow_load": _slow_load, "slow_store": _slow_store}
    code = compile(source, "<block@0x%X>" % block.start, "exec")
    exec(code, namespace)
    block.windows = [None] * sum(
        1 for _, insn in block.insns if insn.opcode in MEM_OPS
    )
    block.source = source
    block.run = namespace["__block__"]
    return block


# -- slow-path helpers referenced by the generated code -------------------


def _window_tuple(region, lo, hi, size):
    """Width-specialized window over ``region``: ``(lo, hi - size,
    slab_view, shifted_base, byte_slab, base)``.

    ``slab_view`` is the region's typed cast for ``size`` (``words``,
    ``halves``, or the raw byte slab) and ``shifted_base`` the region
    base pre-shifted to that view's element index space, so the
    generated fast path is one index expression:
    ``view[(addr >> shift) - shifted_base]``.  The typed mapping is
    exact only for accesses aligned to ``size`` - the generated code
    guards alignment - and only when the region base itself is aligned;
    an unaligned or castless region gets no window (every access takes
    the checked slow path, which handles any alignment).

    The trailing ``(byte_slab, base)`` pair is the region's raw byte
    slab and unshifted base: the window's *range* proves MPU permission
    for any in-bounds start address regardless of alignment, so trace
    bodies serve in-window misaligned loads straight off the byte slab
    instead of paying a checked slow call per access.
    """
    base = region.base
    if size == 4:
        view = region.words if not base & 3 else None
        shift = 2
    elif size == 2:
        view = region.halves if not base & 1 else None
        shift = 1
    else:
        view = region.data
        shift = 0
    if view is None:
        return None
    return (lo, hi - size, view, base >> shift, region.data, base)


def _window_for(mpu, region, address, size):
    """Widen an allow verdict at ``address`` to its data cell.

    The verdict just computed by the full check holds for any access of
    the same (kind, size, actor) whose whole span stays inside the cell
    and inside the backing region; the window stores the inclusive
    address range ``[lo, hi - size]`` a future effective address may
    start at, plus the slab view/base of :func:`_window_tuple`.
    """
    decisions = mpu.decisions
    if decisions is None:
        return None
    lo, hi = decisions.allow_window(address)
    if lo < region.base:
        lo = region.base
    if hi > region.end:
        hi = region.end
    if hi - size < lo:
        return None
    return _window_tuple(region, lo, hi, size)


def _slow_load(cpu, blk, index, address, size, actor):
    """Checked load for a window miss; returns ``(value, ram)``.

    Runs the full EA-MPU check (denials raise and log exactly as
    single-stepping does, because this *is* the single check for this
    execution), then installs the widened window for next time.  A
    non-RAM target takes the checked bus path - the device sees the
    fully flushed clock - and returns ``ram=False`` so the block aborts
    (the access may have changed device state or the event horizon).
    """
    memory = cpu.memory
    region = memory.map.try_find(address, size)
    if isinstance(region, RamRegion):
        mpu = memory.mpu
        if mpu is not None:
            mpu.check("read", address, size, actor)
            window = _window_for(mpu, region, address, size)
        else:
            window = _window_tuple(region, region.base, region.end, size)
        # Traces keep a per-site victim slot: demoting the displaced
        # window lets a load whose EA alternates between two regions
        # hit the slab both ways instead of re-installing every miss.
        victims = getattr(blk, "windows2", None)
        if victims is not None:
            old = blk.windows[index]
            if old is not None:
                victims[index] = old
        blk.windows[index] = window
        return int.from_bytes(region.read(address, size), "little"), True
    payload = memory.read(address, size, actor=actor)
    return int.from_bytes(payload, "little"), False


def _slow_store(cpu, blk, index, address, value, size, actor):
    """Checked store for a window miss; returns ``ram``.

    Mirrors :func:`_slow_load`; the RAM slow path still goes through
    ``write_raw`` so every write listener (instruction cache, block
    cache) snoops it.
    """
    memory = cpu.memory
    payload = (value & _SIZE_MASK[size]).to_bytes(size, "little")
    region = memory.map.try_find(address, size)
    if isinstance(region, RamRegion):
        mpu = memory.mpu
        if mpu is not None:
            mpu.check("write", address, size, actor)
            blk.windows[index] = _window_for(mpu, region, address, size)
        else:
            blk.windows[index] = _window_tuple(
                region, region.base, region.end, size
            )
        memory.write_raw(address, payload)
        return True
    memory.write(address, payload, actor=actor)
    return False


class BlockEngine:
    """Dispatcher: block cache + heat + horizon + epoch management.

    One per CPU (see :meth:`repro.hw.cpu.CPU.enable_blocks`).  The
    engine owns the :class:`~repro.perf.blocks.BlockCache`, registers
    it on the memory write-snoop port, and decides per dispatch whether
    a translated block may run:

    * never while a trace hook or memory watchpoint is attached (their
      callbacks must see every instruction / access);
    * never when the EA-MPU has no decision cache (the hoisting proofs
      come from it);
    * only when the block's whole static cycle cost fits at or before
      the event horizon - the earliest cycle any IRQ can become
      pending - so the poll/deliver point after the block observes
      exactly the state single-stepping would have produced.
    """

    def __init__(self, cpu, horizon=None, traces=True):
        self.cpu = cpu
        #: Callable returning the earliest cycle an IRQ can become
        #: pending, or ``None`` for "no scheduled events".
        self.horizon = horizon
        self.cache = BlockCache()
        #: Observability bus (optional); block lifecycle events publish
        #: under the diagnostic ``perf`` source, which equivalence
        #: comparisons exclude (it only exists when blocks are on).
        self.obs = None
        self.stats = self.cache.stats
        self.translations = Counter("block-translations")
        self.executions = Counter("block-executions")
        self.deferrals = Counter("block-horizon-deferrals")
        cpu.memory.add_write_listener(self.cache.note_write)
        #: CFA enrolment generation the cached traces were built under
        #: (trace bodies embed hash updates for the enrolled regions,
        #: so an enrolment change flushes them like an MPU epoch move).
        self._cfa_generation = 0
        #: The trace tier (PR 6) stacked on top of the block tier, or
        #: ``None`` when disabled (``--no-traces`` ablation).
        self.traces = TraceJIT(self, cpu) if traces else None

    def counters(self):
        """All counters, for registration with an obs registry."""
        counters = [self.stats, self.translations, self.executions, self.deferrals]
        if self.traces is not None:
            counters.append(self.traces.cache.stats)
            counters.extend(self.traces.counters.all())
        return counters

    def snapshot(self):
        """One dict with every block-tier statistic."""
        snap = self.stats.snapshot()
        snap["translations"] = self.translations.value
        snap["executions"] = self.executions.value
        snap["horizon_deferrals"] = self.deferrals.value
        snap["cached_blocks"] = len(self.cache)
        if self.traces is not None:
            trace_snap = self.traces.counters.snapshot()
            trace_snap["cache"] = self.traces.cache.stats.snapshot()
            trace_snap["cached_traces"] = len(self.traces.cache)
            snap["traces"] = trace_snap
        return snap

    def try_execute(self, cpu):
        """Run the block at the current EIP if provably safe.

        Returns the cycles charged, or ``None`` to single-step.
        """
        memory = cpu.memory
        mpu = memory.mpu
        cache = self.cache
        jit = self.traces
        if mpu is not None:
            if mpu.decisions is None:
                return None
            if cache.epoch != mpu.epoch:
                if cache.entries:
                    cache.flush()
                    if self.obs is not None:
                        self.obs.publish("perf", "block-flush", reason="mpu-epoch")
                if jit is not None:
                    jit.epoch_flush()
                cache.epoch = mpu.epoch
        generation = 0 if cpu.cfa is None else cpu.cfa.generation
        if generation != self._cfa_generation:
            # Cached trace bodies bake the CFA hash updates of the
            # enrolment set they were compiled under; an enrol/unenrol
            # invalidates them (blocks contain no transfers, so the
            # block cache is unaffected).
            self._cfa_generation = generation
            if jit is not None:
                jit.epoch_flush(reason="cfa-generation")
        if (
            cpu.trace_hook is not None
            or cpu.transfer_hook is not None
            or memory.has_watchpoints()
        ):
            # A transfer hook (e.g. the CFI watchdog) must observe every
            # taken transfer; compiled bodies would bypass it silently,
            # so the whole perf tier deoptimises to the interpreter.
            return None
        eip = cpu.regs.eip
        if jit is not None:
            charged = jit.dispatch(cpu, eip)
            if charged is not None:
                return charged
        block = cache.entries.get(eip)
        stats = cache.stats
        if block is None:
            stats.misses += 1
            if not cache.note_miss(eip):
                return None
            block = discover(memory, eip)
            if block.insns:
                translate(block)
                self.translations.add()
                if self.obs is not None:
                    self.obs.publish(
                        "perf",
                        "block-translate",
                        start=block.start,
                        end=block.end,
                        insns=len(block.insns),
                        cost=block.cost,
                    )
            cache.put(block)
            # Every page a cached verdict spans must broadcast stores
            # (trace-tier slab writes bypass the bus otherwise).
            memory.note_snooped_range(block.start, block.end)
            if block.run is None:
                return None
        elif block.run is None:
            stats.misses += 1
            return None
        else:
            stats.hits += 1
        clock = cpu.clock
        horizon = self.horizon
        if horizon is not None:
            limit = horizon()
            if limit is not None and clock.now + block.cost > limit:
                # The block could retire past the point where an IRQ
                # becomes pending: single-step up to it instead.
                self.deferrals.add()
                return None
        before = clock.now
        self.executions.add()
        block.run(cpu, block)
        if jit is not None:
            # The block exits at its ender (a branch or other
            # non-translatable op); the next dispatch address closes a
            # profile edge for the trace builder.
            jit.pending_edge = cpu.regs.eip
        return clock.now - before
