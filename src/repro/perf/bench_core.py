"""CPU-core throughput bench: baseline / fast path / blocks / traces.

Runs three self-terminating workloads through identically configured
rigs (one per mode) and reports wall-clock instructions/sec, the
speedups, and the cache hit rates:

* ``alu`` - a long straight-line ALU loop: the block translator's best
  case (one superblock per iteration, all flag writes dead except the
  loop counter's).
* ``mem`` - a load/store-heavy loop: every iteration pays data-access
  EA-MPU checks, so this is the workload that exercises the
  ``mpu_access`` decision memo (the ALU loop never touches it: fetches
  go through the *transfer* memo and the instruction cache's epoch
  check, not the access memo) and the block tier's hoisted windows.
* ``irq`` - the ALU body under a live tick timer whose handler counts
  ticks: blocks may only run inside the event horizon, so this measures
  the tier with real interrupt batching (and proves delivery lands on
  the same instruction boundary in every mode).

The modes are ``baseline`` (every cache off), ``fastpath`` (PR 1's
caches), ``blocks`` (fast path plus the superblock tier, trace JIT
ablated), and ``traces`` (the full stack with the trace-recording
JIT).  All runs of one workload must be *architecturally identical* - same
retired count, same simulated cycles, same registers, memory, fault
log, and timer ticks - which the bench asserts before reporting
numbers.

Reports are cumulative: ``BENCH_cpu_core.json`` keeps a timestamped
``history`` list so the performance trajectory is tracked from PR to
PR (a pre-existing report in the old single-workload schema is folded
into the history rather than discarded).
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.hw.clock import CycleClock
from repro.hw.cpu import CPU
from repro.hw.ea_mpu import EAMPU, MpuRule, Perm
from repro.hw.exceptions import ExceptionEngine, Vector
from repro.hw.memory import MemoryMap, PhysicalMemory, RamRegion
from repro.hw.timer import TickTimer
from repro.image.linker import link
from repro.isa.assembler import assemble

CODE_BASE = 0x1000
STACK_BASE = 0x3000
DATA_BASE = 0x6000
OTHER_BASE = 0x8000
IDT_BASE = 0x0

#: The execution modes, cheapest-configured first.  ``blocks`` runs the
#: superblock tier with the trace JIT disabled (the ablation the trace
#: speedup is measured against); ``traces`` stacks the trace-recording
#: JIT on top.
MODES = ("baseline", "fastpath", "blocks", "traces")

#: Cycles between tick interrupts in the ``irq`` workload - short
#: enough that the event horizon genuinely constrains block admission.
IRQ_TICK_PERIOD = 400

#: ALU block repeated inside the loop body (straight-line hot path).
_ALU_BLOCK = """\
addi eax, 1
xori ebx, 0x55AA
andi edx, 0xFFFF
ori esi, 3
subi edi, 1
shli ebp, 1
add eax, ebx
xor edx, esi
"""

#: Instructions per iteration of each workload's loop (used to size the
#: iteration count from the requested instruction budget).
_ALU_REPEATS = 6
_ALU_PER_ITER = 8 * _ALU_REPEATS + 2
_MEM_PER_ITER = 14


def _alu_source(iterations):
    """Straight-line ALU body looped ``iterations`` times, then halt."""
    body = _ALU_BLOCK * _ALU_REPEATS
    return "start:\nmovi ecx, %d\nloop:\n%ssubi ecx, 1\njnz loop\nhlt\n" % (
        iterations,
        body,
    )


def _mem_source(iterations):
    """Load/store-heavy loop: word and byte traffic plus stack pushes."""
    return """\
start:
movi ebx, %d
movi ecx, %d
loop:
ld eax, [ebx+0]
addi eax, 1
st [ebx+0], eax
ld edx, [ebx+8]
xor edx, eax
st [ebx+8], edx
ldb esi, [ebx+4]
stb esi, [ebx+5]
push eax
push edx
pop edx
pop eax
subi ecx, 1
jnz loop
hlt
""" % (DATA_BASE, iterations)


def _irq_source(ticks):
    """ALU work polled against a tick counter the IRQ handler bumps.

    The handler lives in the same code region as the task; hardware
    delivery and IRET are privileged transfers, so no extra EA-MPU
    rules are needed.  The main loop spins on the tick counter at
    ``DATA_BASE`` and exits after ``ticks`` interrupts.
    """
    return """\
start:
movi ebx, %d
st [ebx+0], eax
sti
loop:
%sld esi, [ebx+0]
cmpi esi, %d
jl loop
cli
hlt
irq_handler:
push eax
push ebx
movi ebx, %d
ld eax, [ebx+0]
addi eax, 1
st [ebx+0], eax
pop ebx
pop eax
iret
""" % (DATA_BASE, _ALU_BLOCK, ticks, DATA_BASE)


def build_rig(fastpath, source=None):
    """Assemble the workload into a CPU+EA-MPU rig; returns the CPU."""
    memory = PhysicalMemory(MemoryMap())
    memory.map.cache_enabled = fastpath
    memory.map.add(RamRegion("idt", IDT_BASE, 0x400))
    memory.map.add(RamRegion("code", CODE_BASE, 0x1000))
    memory.map.add(RamRegion("stack", STACK_BASE, 0x1000))
    memory.map.add(RamRegion("data", DATA_BASE, 0x1000))
    memory.map.add(RamRegion("other", OTHER_BASE, 0x1000))
    mpu = EAMPU(decision_cache=fastpath)
    memory.attach_mpu(mpu)
    clock = CycleClock()
    cpu = CPU(memory, clock, fastpath=fastpath)

    image = link(assemble(source or _alu_source(3000)), stack_size=64)
    blob = bytearray(image.blob)
    for offset in image.relocations:
        value = int.from_bytes(blob[offset : offset + 4], "little")
        blob[offset : offset + 4] = ((value + CODE_BASE) & 0xFFFFFFFF).to_bytes(
            4, "little"
        )
    memory.write_raw(CODE_BASE, bytes(blob))
    entry = CODE_BASE + image.entry

    # Representative rule table: locked code + stack rules, a data rule,
    # and decoy task rules so every uncached check scans real slots.
    code = (CODE_BASE, CODE_BASE + 0x1000)
    mpu.program_slot(
        0,
        MpuRule("bench:code", code[0], code[1], code[0], code[1], Perm.RX, entry_point=entry),
        lock=True,
    )
    mpu.program_slot(
        1,
        MpuRule("bench:stack", code[0], code[1], STACK_BASE, STACK_BASE + 0x1000, Perm.RW),
        lock=True,
    )
    mpu.program_slot(
        2,
        MpuRule("bench:data", code[0], code[1], DATA_BASE, DATA_BASE + 0x1000, Perm.RW),
    )
    for slot in range(3, 7):
        base = OTHER_BASE + (slot - 3) * 0x100
        mpu.program_slot(
            slot,
            MpuRule(
                "bench:decoy%d" % slot,
                base,
                base + 0x100,
                base,
                base + 0x100,
                Perm.RX,
                entry_point=base,
            ),
        )

    cpu.regs.eip = entry
    cpu.regs.esp = STACK_BASE + 0x1000
    return cpu


def _build_mode_rig(source, mode, irq=False):
    """A ``build_rig`` CPU configured for one mode; returns (cpu, timer)."""
    cpu = build_rig(fastpath=mode != "baseline", source=source)
    timer = None
    if irq:
        engine = ExceptionEngine(cpu.memory, IDT_BASE)
        cpu.attach_engine(engine)
        timer = TickTimer(engine.controller, IRQ_TICK_PERIOD)
        cpu.clock.add_event_source(timer.next_event)
        handler = CODE_BASE + link(
            assemble(source), entry_symbol="irq_handler", stack_size=64
        ).entry
        engine.install_handler(Vector.TIMER, handler)
        timer.start(cpu.clock.now)
    if mode == "blocks":
        cpu.enable_blocks(cpu.clock.next_event_horizon, traces=False)
    elif mode == "traces":
        cpu.enable_blocks(cpu.clock.next_event_horizon, traces=True)
    return cpu, timer


def _run(cpu, timer):
    """Run the rig to completion (halt); returns wall-clock seconds.

    Mirrors the platform's slice loop: poll the timer, take a pending
    interrupt, step - so interrupt latency is at most one instruction
    (or one horizon-admitted block, which is the same boundary).
    """
    step = cpu.step
    start = time.perf_counter()
    if timer is None:
        while not cpu.halted:
            step()
    else:
        clock = cpu.clock
        tick = timer.tick
        take = cpu.maybe_take_interrupt
        while not cpu.halted:
            tick(clock.now)
            take()
            step()
    return time.perf_counter() - start


def _snapshot(cpu, timer):
    """Everything architectural a run produced (for equivalence checks)."""
    memory = cpu.memory
    snap = {
        "retired": cpu.retired,
        "cycles": cpu.clock.now,
        "gpr": list(cpu.regs.gpr),
        "eip": cpu.regs.eip,
        "eflags": cpu.regs.eflags,
        "data_sha": hashlib.sha256(memory.read_raw(DATA_BASE, 0x1000)).hexdigest(),
        "stack_sha": hashlib.sha256(memory.read_raw(STACK_BASE, 0x1000)).hexdigest(),
        "faults": [str(fault) for fault in memory.mpu.fault_log],
    }
    if timer is not None:
        snap["ticks"] = timer.ticks
    return snap


def _workloads(instructions):
    """The bench's workload table, sized to the instruction budget."""
    alu_iters = max(1, instructions // _ALU_PER_ITER)
    mem_iters = max(1, instructions // _MEM_PER_ITER)
    irq_ticks = max(8, instructions // 200)
    return [
        (
            "alu",
            "straight-line ALU loop, EA-MPU live (%d iterations)" % alu_iters,
            _alu_source(alu_iters),
            False,
        ),
        (
            "mem",
            "load/store-heavy loop: word+byte+stack traffic (%d iterations)"
            % mem_iters,
            _mem_source(mem_iters),
            False,
        ),
        (
            "irq",
            "ALU loop under a %d-cycle tick timer (%d ticks)"
            % (IRQ_TICK_PERIOD, irq_ticks),
            _irq_source(irq_ticks),
            True,
        ),
    ]


def run_bench(instructions=150_000, blocks=True, traces=True):
    """Run every workload in every mode; returns the result dict.

    ``blocks=False`` drops both JIT tiers; ``traces=False`` keeps the
    block tier but ablates the trace JIT.  Raises
    :class:`AssertionError` if any two modes of one workload disagree
    on any architectural outcome.
    """
    if not blocks:
        modes = MODES[:2]
    elif not traces:
        modes = MODES[:3]
    else:
        modes = MODES
    workloads = {}
    for name, description, source, irq in _workloads(instructions):
        reference = None
        entry = {"description": description, "modes": {}}
        for mode in modes:
            cpu, timer = _build_mode_rig(source, mode, irq=irq)
            seconds = _run(cpu, timer)
            snap = _snapshot(cpu, timer)
            if reference is None:
                reference = (modes[0], snap)
            elif snap != reference[1]:
                diverged = sorted(
                    key for key in snap if snap[key] != reference[1][key]
                )
                raise AssertionError(
                    "%s: modes %r and %r diverged on %s"
                    % (name, reference[0], mode, ", ".join(diverged))
                )
            result = {
                "seconds": round(seconds, 6),
                "insns_per_sec": round(snap["retired"] / seconds, 1),
            }
            if mode != "baseline":
                result["cache_stats"] = cpu.cache_stats()
            entry["modes"][mode] = result
        entry["retired"] = reference[1]["retired"]
        entry["simulated_cycles"] = reference[1]["cycles"]
        if irq:
            entry["timer_ticks"] = reference[1]["ticks"]
        per = {m: entry["modes"][m]["insns_per_sec"] for m in modes}
        entry["speedups"] = {
            "fastpath_vs_baseline": round(per["fastpath"] / per["baseline"], 2)
        }
        if blocks:
            entry["speedups"]["blocks_vs_fastpath"] = round(
                per["blocks"] / per["fastpath"], 2
            )
            entry["speedups"]["blocks_vs_baseline"] = round(
                per["blocks"] / per["baseline"], 2
            )
        if "traces" in per:
            entry["speedups"]["traces_vs_blocks"] = round(
                per["traces"] / per["blocks"], 2
            )
            entry["speedups"]["traces_vs_fastpath"] = round(
                per["traces"] / per["fastpath"], 2
            )
            entry["speedups"]["traces_vs_baseline"] = round(
                per["traces"] / per["baseline"], 2
            )
        workloads[name] = entry
    return {
        "bench": "cpu_core",
        "instructions": instructions,
        "modes": list(modes),
        "workloads": workloads,
    }


def run_cfa_bench(instructions=150_000):
    """Path-recording overhead: the alu workload, recording off vs on.

    Runs the straight-line ALU loop in every mode twice - once bare and
    once with a :class:`~repro.cfa.recorder.CfaCore` folding every taken
    transfer into the path hash - and reports the wall-clock insns/sec
    cost of recording per tier, plus the modelled cycle cost (the
    per-edge charge the interpreter pays and the trace tier bakes into
    its closed-form bodies).  The run doubles as the cross-tier evidence
    gate: all four recording runs must retire the same count, charge the
    same cycles, and chain to the same path digest - divergence means a
    JIT's baked hash updates drifted from the interpreter's.
    """
    from repro.cfa.recorder import CfaCore, PathRecorder

    iters = max(1, instructions // _ALU_PER_ITER)
    source = _alu_source(iters)
    modes_out = {}
    reference = None
    off_reference = None
    for mode in MODES:
        timings = {}
        evidence = None
        for recording in (False, True):
            cpu, timer = _build_mode_rig(source, mode)
            recorder = None
            if recording:
                recorder = PathRecorder()
                cpu.cfa = CfaCore(cpu.clock)
                cpu.cfa.attach_region(CODE_BASE, CODE_BASE + 0x1000, recorder)
            seconds = _run(cpu, timer)
            timings[recording] = (cpu.retired, cpu.clock.now, seconds)
            state = (list(cpu.regs.gpr), cpu.regs.eip, cpu.regs.eflags)
            if recording:
                if state != off_state:
                    raise AssertionError(
                        "cfa: %s architectural state differs with recording on"
                        % mode
                    )
            else:
                off_state = state
            if recording:
                recorder.seal()
                evidence = (
                    recorder.path_digest().hex(),
                    recorder.edges,
                    cpu.clock.now,
                    cpu.retired,
                )
        off_retired, off_cycles, off_seconds = timings[False]
        on_retired, on_cycles, on_seconds = timings[True]
        if off_retired != on_retired:
            raise AssertionError(
                "cfa: %s retired %d recording vs %d bare"
                % (mode, on_retired, off_retired)
            )
        if reference is None:
            reference = (mode, evidence)
            off_reference = (mode, (off_retired, off_cycles))
        else:
            if evidence != reference[1]:
                raise AssertionError(
                    "cfa: modes %r and %r diverged on recorded evidence"
                    % (reference[0], mode)
                )
            if (off_retired, off_cycles) != off_reference[1]:
                raise AssertionError(
                    "cfa: modes %r and %r diverged on the bare run"
                    % (off_reference[0], mode)
                )
        off_rate = round(off_retired / off_seconds, 1)
        on_rate = round(on_retired / on_seconds, 1)
        modes_out[mode] = {
            "off_insns_per_sec": off_rate,
            "on_insns_per_sec": on_rate,
            "recording_overhead_pct": round(100.0 * (off_rate - on_rate) / off_rate, 1),
        }
    digest, edges, on_cycles, retired = reference[1]
    off_cycles = off_reference[1][1]
    return {
        "bench": "cfa_overhead",
        "workload": "alu",
        "instructions": instructions,
        "retired": retired,
        "edges": edges,
        "path_digest": digest,
        "cycles_recording_off": off_cycles,
        "cycles_recording_on": on_cycles,
        "cycle_overhead_pct": round(100.0 * (on_cycles - off_cycles) / off_cycles, 2),
        "modes": modes_out,
    }


def write_cfa_report(
    path="BENCH_cpu_core.json",
    instructions=150_000,
    out=None,
    record=True,
):
    """Run the CFA overhead bench; publish it into the core report.

    The result lands under the ``"cfa"`` key of the existing report at
    ``path`` (created if absent) - :func:`write_report` preserves that
    section across throughput runs, so one JSON file carries both the
    tier trajectory and the latest recording-overhead numbers.
    """
    result = run_cfa_bench(instructions)
    if record:
        report = _load_report(path)
        report.setdefault("bench", "cpu_core")
        report["cfa"] = result
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if out is not None:
        for mode in MODES:
            entry = result["modes"][mode]
            print(
                "cfa %-8s: %9.0f -> %9.0f insns/sec (%.1f%% recording overhead)"
                % (
                    mode,
                    entry["off_insns_per_sec"],
                    entry["on_insns_per_sec"],
                    entry["recording_overhead_pct"],
                ),
                file=out,
            )
        print(
            "cfa evidence: %d edges, digest %s, +%.2f%% simulated cycles"
            % (
                result["edges"],
                result["path_digest"][:16],
                result["cycle_overhead_pct"],
            ),
            file=out,
        )
        if record:
            print("report: %s" % path, file=out)
        else:
            print("report: (check run, history not recorded)", file=out)
    return result


def _history_entry(result):
    """Compact trajectory record appended to the report's history."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "instructions": result["instructions"],
        "workloads": {
            name: {
                "insns_per_sec": {
                    mode: entry["modes"][mode]["insns_per_sec"]
                    for mode in entry["modes"]
                },
                "speedups": entry["speedups"],
            }
            for name, entry in result["workloads"].items()
        },
    }


def _legacy_history_entry(old):
    """Fold a pre-block-tier (single-workload) report into the history."""
    return {
        "timestamp": "(before run-history tracking)",
        "instructions": old.get("instructions"),
        "workloads": {
            "alu": {
                "insns_per_sec": {
                    "baseline": old["baseline"]["insns_per_sec"],
                    "fastpath": old["fastpath"]["insns_per_sec"],
                },
                "speedups": {"fastpath_vs_baseline": old["speedup"]},
            }
        },
    }


def _load_report(path):
    """The existing report at ``path`` as a dict ({} if absent/bad)."""
    try:
        with open(path) as handle:
            old = json.load(handle)
    except (OSError, ValueError):
        return {}
    return old if isinstance(old, dict) else {}


def _history_of(old):
    """The history list of an existing report, in either schema."""
    if isinstance(old.get("history"), list):
        return old["history"]
    if "baseline" in old and "fastpath" in old:
        try:
            return [_legacy_history_entry(old)]
        except (KeyError, TypeError):
            return []
    return []


def write_report(
    path="BENCH_cpu_core.json",
    instructions=150_000,
    out=None,
    blocks=True,
    traces=True,
    record=True,
):
    """Run the bench and write the JSON report to ``path``.

    The report carries a cumulative timestamped ``history`` of past
    runs (read back from any existing report at ``path``), so repeated
    bench runs track the trajectory instead of overwriting it.  With
    ``record=False`` (gate/CI checks) the report file is left untouched
    and only the result is returned - check runs must not pollute the
    history.  A dedupe guard also drops an append whose payload matches
    the previous entry exactly (timestamp aside), so re-running the
    same bench back-to-back records one trajectory point, not two.
    """
    result = run_bench(instructions, blocks=blocks, traces=traces)
    if record:
        old = _load_report(path)
        history = _history_of(old)
        entry = _history_entry(result)
        if history:
            previous = dict(history[-1], timestamp=None)
            if previous == dict(entry, timestamp=None):
                history = history[:-1]
        result["history"] = history + [entry]
        if "cfa" in old:
            # --cfa runs publish into the same report; keep their section.
            result["cfa"] = old["cfa"]
        with open(path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if out is not None:
        for name, entry in sorted(result["workloads"].items()):
            per = entry["modes"]
            line = "cpu_core %-3s: %8.0f" % (
                name,
                per["baseline"]["insns_per_sec"],
            )
            line += " -> %8.0f (%.2fx fastpath)" % (
                per["fastpath"]["insns_per_sec"],
                entry["speedups"]["fastpath_vs_baseline"],
            )
            if "blocks" in per:
                line += " -> %8.0f (%.2fx blocks)" % (
                    per["blocks"]["insns_per_sec"],
                    entry["speedups"]["blocks_vs_baseline"],
                )
            if "traces" in per:
                line += " -> %8.0f (%.2fx traces)" % (
                    per["traces"]["insns_per_sec"],
                    entry["speedups"]["traces_vs_baseline"],
                )
            line += " insns/sec"
            print(line, file=out)
        if record:
            print("report: %s" % path, file=out)
        else:
            print("report: (check run, history not recorded)", file=out)
    return result
