"""CPU-core throughput bench: fast path vs. uncached baseline.

Runs the same straight-line ALU workload through two identically
configured rigs - one with every fast-path cache enabled, one with the
caches off - and reports wall-clock instructions/sec for both, the
speedup, and the cache hit rates.  The result is written to
``BENCH_cpu_core.json`` so the performance trajectory is tracked from
PR to PR.

The rig is deliberately representative of a real TyTAN machine: a
multi-region memory map, an 18-slot EA-MPU with locked code/stack rules
plus decoy task rules (so the uncached path pays the genuine linear
slot scans), and an entry-point-protected code region (so the transfer
check is live on every sequential advance).

The two runs must also be *architecturally identical* - same retired
count, same simulated cycle count - which the bench asserts before
reporting numbers.
"""

from __future__ import annotations

import json
import time

from repro.hw.clock import CycleClock
from repro.hw.cpu import CPU
from repro.hw.ea_mpu import EAMPU, MpuRule, Perm
from repro.hw.memory import MemoryMap, PhysicalMemory, RamRegion
from repro.image.linker import link
from repro.isa.assembler import assemble

CODE_BASE = 0x1000
STACK_BASE = 0x3000
DATA_BASE = 0x6000
OTHER_BASE = 0x8000

#: ALU block repeated inside the loop body (straight-line hot path).
_ALU_BLOCK = """\
addi eax, 1
xori ebx, 0x55AA
andi edx, 0xFFFF
ori esi, 3
subi edi, 1
shli ebp, 1
add eax, ebx
xor edx, esi
"""


def _workload_source(block_repeats=6):
    """A long straight-line ALU body in an effectively infinite loop."""
    body = _ALU_BLOCK * block_repeats
    return "start:\nmovi ecx, 0x7FFFFFFF\nloop:\n%ssubi ecx, 1\njnz loop\nhlt\n" % body


def build_rig(fastpath, source=None):
    """Assemble the workload into a CPU+EA-MPU rig; returns the CPU."""
    memory = PhysicalMemory(MemoryMap())
    memory.map.cache_enabled = fastpath
    memory.map.add(RamRegion("idt", 0x0, 0x400))
    memory.map.add(RamRegion("code", CODE_BASE, 0x1000))
    memory.map.add(RamRegion("stack", STACK_BASE, 0x1000))
    memory.map.add(RamRegion("data", DATA_BASE, 0x1000))
    memory.map.add(RamRegion("other", OTHER_BASE, 0x1000))
    mpu = EAMPU(decision_cache=fastpath)
    memory.attach_mpu(mpu)
    clock = CycleClock()
    cpu = CPU(memory, clock, fastpath=fastpath)

    image = link(assemble(source or _workload_source()), stack_size=64)
    blob = bytearray(image.blob)
    for offset in image.relocations:
        value = int.from_bytes(blob[offset : offset + 4], "little")
        blob[offset : offset + 4] = ((value + CODE_BASE) & 0xFFFFFFFF).to_bytes(
            4, "little"
        )
    memory.write_raw(CODE_BASE, bytes(blob))
    entry = CODE_BASE + image.entry

    # Representative rule table: locked code + stack rules, a data rule,
    # and decoy task rules so every uncached check scans real slots.
    code = (CODE_BASE, CODE_BASE + 0x1000)
    mpu.program_slot(
        0,
        MpuRule("bench:code", code[0], code[1], code[0], code[1], Perm.RX, entry_point=entry),
        lock=True,
    )
    mpu.program_slot(
        1,
        MpuRule("bench:stack", code[0], code[1], STACK_BASE, STACK_BASE + 0x1000, Perm.RW),
        lock=True,
    )
    mpu.program_slot(
        2,
        MpuRule("bench:data", code[0], code[1], DATA_BASE, DATA_BASE + 0x1000, Perm.RW),
    )
    for slot in range(3, 7):
        base = OTHER_BASE + (slot - 3) * 0x100
        mpu.program_slot(
            slot,
            MpuRule(
                "bench:decoy%d" % slot,
                base,
                base + 0x100,
                base,
                base + 0x100,
                Perm.RX,
                entry_point=base,
            ),
        )

    cpu.regs.eip = entry
    cpu.regs.esp = STACK_BASE + 0x1000
    return cpu


def _run(cpu, instructions):
    """Execute ``instructions`` steps; returns (seconds, cycles)."""
    step = cpu.step
    target = instructions
    start = time.perf_counter()
    while cpu.retired < target:
        step()
    elapsed = time.perf_counter() - start
    return elapsed, cpu.clock.now


def run_bench(instructions=150_000):
    """Run both modes and return the result dict (see module docstring)."""
    baseline_cpu = build_rig(fastpath=False)
    base_seconds, base_cycles = _run(baseline_cpu, instructions)

    fast_cpu = build_rig(fastpath=True)
    fast_seconds, fast_cycles = _run(fast_cpu, instructions)

    if baseline_cpu.retired != fast_cpu.retired or base_cycles != fast_cycles:
        raise AssertionError(
            "cached and uncached runs diverged: retired %d/%d cycles %d/%d"
            % (baseline_cpu.retired, fast_cpu.retired, base_cycles, fast_cycles)
        )

    return {
        "bench": "cpu_core",
        "workload": "straight-line ALU loop, EA-MPU live (%d insns)" % instructions,
        "instructions": instructions,
        "simulated_cycles": fast_cycles,
        "baseline": {
            "seconds": round(base_seconds, 6),
            "insns_per_sec": round(instructions / base_seconds, 1),
        },
        "fastpath": {
            "seconds": round(fast_seconds, 6),
            "insns_per_sec": round(instructions / fast_seconds, 1),
            "cache_stats": fast_cpu.cache_stats(),
        },
        "speedup": round(base_seconds / fast_seconds, 2),
    }


def write_report(path="BENCH_cpu_core.json", instructions=150_000, out=None):
    """Run the bench and write the JSON report to ``path``."""
    result = run_bench(instructions)
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if out is not None:
        print(
            "cpu_core throughput: %.0f -> %.0f insns/sec (%.2fx), report %s"
            % (
                result["baseline"]["insns_per_sec"],
                result["fastpath"]["insns_per_sec"],
                result["speedup"],
                path,
            ),
            file=out,
        )
    return result
