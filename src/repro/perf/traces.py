"""Trace-recording JIT: hot block-to-block paths compiled as one unit.

The block tier (PR 4) stops compiling at every branch, so block-to-block
dispatch and per-block entry/exit bookkeeping dominate loop-heavy
workloads.  This module adds the classic meta-tracing tier on top:

* the :class:`~repro.perf.translate.BlockEngine` records **hot edges** -
  (branch address, next dispatch address) pairs observed after block
  exits;
* when an edge gets hot, the :class:`TraceBuilder` logic stitches a
  *trace* starting at the edge target: straight-line segments (reusing
  :func:`repro.perf.blocks.discover`) joined across conditional
  branches in their observed-hot direction, each protected by a
  **guard**; a trace whose stitched path returns to its own head is a
  *looping trace* and compiles to a counted ``while`` loop;
* the whole trace compiles to one Python function that keeps the CPU
  registers in **Python locals**, folds chains of register operations
  symbolically (six ``subi edi, 1`` become one ``r7 = (r7 - 6) &
  0xFFFFFFFF``), elides dead flag computation, performs translated
  loads/stores as **direct slab indexing** (:class:`repro.hw.memory`'s
  ``memoryview`` word views) inside hoisted EA-MPU allow windows, and
  charges cycles in one batch per trace segment;
* counted loops proven by :func:`repro.analysis.constprop.counted_loop_counter`
  get a second, *specialized* loop body with the guard and every dead
  flag update removed - the unrolled fast path for the first
  ``counter - 1`` iterations.

Guard semantics (the correctness core): a guard tests the recorded
branch direction against the live EFLAGS.  On mismatch the trace takes
a **side exit**: it writes back every register, EFLAGS, the retired
count, and the batched cycles, sets EIP to the *branch address itself*,
and returns - the branch has not executed, so the interpreter (or the
block tier) re-executes it with full transfer checks, hooks, and fault
semantics.  The architectural state at a side exit is therefore
bit-identical to single-stepping up to that branch, by construction.

Event-horizon admission is *granular*: a linear trace whose whole cycle
cost fits before the horizon runs in full; a looping trace computes how
many whole iterations fit (``(horizon - now) // iter_cost``) and runs
at most that many, exiting at the loop head.  What does **not** fit
whole falls to the *horizon-split prefix body*: every trace also
carries a checkpoint cost table (a cut after each stitched branch and
every :data:`CHECKPOINT_INSNS` straight-line instructions) and a third
compiled function that executes exactly the largest checkpoint prefix
fitting the remaining budget, writing back registers, EFLAGS, the
exact cycle/retire charge, and the boundary EIP - bit-identical to
single-stepping the same instructions.  Interrupt delivery therefore
lands on exactly the same instruction boundary as single-stepping (the
same contract the block tier obeys), while the 400-cycle-tick tail
that used to single-step now runs at trace speed.

Invalidation mirrors the block cache: page-granular write snooping
(checked and raw writes alike) plus a wholesale flush when the EA-MPU
rule-table epoch moves.  A store issued from *inside* a running trace
that lands in a snooped page takes the broadcast ``write_raw`` path and
aborts the trace at the next instruction boundary when the trace
invalidated itself (self-modifying code).
"""

from __future__ import annotations

from bisect import bisect_right

from repro.analysis.constprop import _FLAG_WRITERS, counted_loop_counter
from repro.errors import IllegalInstruction
from repro.hw.memory import SNOOP_PAGE_SHIFT, RamRegion
from repro.isa.encoding import decode
from repro.isa.opcodes import BASE_CYCLES, CONDITIONAL_BRANCHES, LENGTHS, Op
from repro.cycles import CFA_EDGE_CYCLES, INSN_BRANCH_TAKEN
from repro.perf.blocks import ALU_OPS, MEM_OPS, PAGE_SHIFT, discover
from repro.perf.counters import HitMissCounter, TraceCounters

_M = 0xFFFFFFFF
_SIGN = 0x80000000
#: EFLAGS with the four ALU result flags (CF|ZF|SF|OF) cleared.
_FLAG_KEEP = 0xFFFFF73E

_MAX_INSN_BYTES = max(LENGTHS.values())

#: Edge visit count before the target is considered a trace head.
TRACE_HOT_EDGE = 8

#: Bound on the edge-profile table (cleared wholesale when exceeded).
EDGE_TABLE_LIMIT = 4096

#: Caps on trace size (segments stitched / total instructions).
MAX_TRACE_BLOCKS = 8
MAX_TRACE_INSNS = 192

#: Traces shorter than this are not worth the dispatch overhead.
MIN_TRACE_INSNS = 3

#: Iterations a looping trace may run per dispatch with no event
#: horizon (bench rigs without timers; bounds single-step latency).
DEFAULT_LOOP_ITERS = 16_384

#: Hard per-dispatch iteration cap even under a distant horizon.
MAX_LOOP_ITERS = 65_536

#: Branch opcodes a trace may stitch through.
_STITCHABLE = CONDITIONAL_BRANCHES | {Op.JMP}

#: opcode -> expression over the local ``fl`` that is truthy exactly
#: when the branch is taken (mirrors ``repro.hw.cpu._CONDITIONS``;
#: CF=bit0, ZF=bit6, SF=bit7, OF=bit11).
_COND_EXPR = {
    Op.JZ: "fl & 64",
    Op.JNZ: "not fl & 64",
    Op.JC: "fl & 1",
    Op.JNC: "not fl & 1",
    Op.JS: "fl & 128",
    Op.JNS: "not fl & 128",
    Op.JG: "not fl & 64 and not (fl >> 7 ^ fl >> 11) & 1",
    Op.JL: "(fl >> 7 ^ fl >> 11) & 1",
    Op.JGE: "not (fl >> 7 ^ fl >> 11) & 1",
    Op.JLE: "fl & 64 or (fl >> 7 ^ fl >> 11) & 1",
}


class Trace:
    """One stitched, compiled trace (or a no-trace marker).

    ``items`` is the flattened path: ``("insn", address, insn)`` for
    straight-line instructions, ``("guard", address, insn,
    chosen_taken, target)`` for stitched conditional branches, and
    ``("jmp", address, insn, target)`` for stitched unconditional
    jumps.  ``iter_cost``/``iter_retire`` are the exact cycle/retire
    totals of the full straight path (one iteration, for looping
    traces) - upper bounds for every admitted execution, which is what
    the event-horizon test relies on.
    """

    __slots__ = (
        "start",
        "items",
        "looping",
        "exit_eip",
        "iter_cost",
        "iter_retire",
        "counter_reg",
        "windows",
        "windows2",
        "pages",
        "valid",
        "run",
        "run_fast",
        "run_prefix",
        "checkpoints",
        "cfa",
        "source",
    )

    def __init__(self, start, items, looping, exit_eip):
        self.start = start
        self.items = items
        self.looping = looping
        #: EIP a linear trace exits at (``None`` for looping traces,
        #: which exit at their own head).
        self.exit_eip = exit_eip
        self.iter_cost = 0
        self.iter_retire = 0
        #: Loop-counter register proven by the constprop pass, or None.
        self.counter_reg = None
        #: Per-memory-site hoisted allow windows, filled at run time:
        #: ``(lo, hi_minus_size, slab_view, shifted_base)`` or None
        #: (see :func:`repro.perf.translate._window_tuple`).
        self.windows = []
        #: Per-load-site *victim* windows: when a slow load installs a
        #: fresh window it demotes the old one here, so a site whose EA
        #: alternates between two regions (a poll flipping between data
        #: and stack, say) hits slab speed on both instead of thrashing
        #: the single slot into a slow call every iteration.
        self.windows2 = []
        #: Snoop pages spanned by the trace's code bytes.
        self.pages = frozenset()
        #: Cleared by the write snoop; checked after broadcast stores.
        self.valid = True
        #: Compiled ``__trace__(cpu, tr, n)`` (``None`` = marker).
        self.run = None
        #: Specialized counted-loop body (guard and dead flags elided).
        self.run_fast = None
        #: Horizon-split body ``__trace_prefix__(cpu, tr, n)``: runs the
        #: first ``n`` checkpoints' worth of the straight path, then
        #: exits at the checkpoint boundary.  Compiled lazily on the
        #: first prefix admission.
        self.run_prefix = None
        #: Cumulative cycle cost at each countdown checkpoint, in body
        #: order (strictly increasing; the admission table).
        self.checkpoints = ()
        #: Item indices whose stitched taken transfer is recorded by
        #: the CFA monitor (both endpoints inside an enrolled region at
        #: build time).  The compiled bodies emit the same hash update
        #: the interpreter performs, and the per-edge cost is baked
        #: into ``iter_cost``/``checkpoints``; the generation check in
        #: the block engine flushes traces when enrolment changes.
        self.cfa = frozenset()
        self.source = None

    def is_marker(self):
        """Whether this entry marks a no-trace address."""
        return not self.items

    def __repr__(self):
        return "Trace(0x%X, %d items%s%s)" % (
            self.start,
            len(self.items),
            ", looping" if self.looping else "",
            ", marker" if not self.items else "",
        )


def _trace_pages(items):
    """Snoop pages covered by the trace's instruction bytes."""
    pages = set()
    for item in items:
        address = item[1]
        last = (address + item[2].length - 1) >> PAGE_SHIFT
        pages.update(range(address >> PAGE_SHIFT, last + 1))
    return frozenset(pages)


class TraceCache:
    """Entry-EIP -> :class:`Trace`, snooped and epoch-flushed.

    Same invalidation contract as the block cache: every bus write
    (checked or raw) drops the traces whose code bytes share a 256-byte
    page with the written range and marks them invalid so a trace that
    is *currently executing* aborts after its next broadcast store.
    """

    def __init__(self):
        self.entries = {}
        self._pages = {}
        #: EA-MPU rule-table epoch the cached traces were built under.
        self.epoch = None
        self.stats = HitMissCounter("trace")

    def __len__(self):
        return len(self.entries)

    def put(self, trace):
        """Register ``trace`` (or marker) for dispatch and snooping."""
        self.entries[trace.start] = trace
        pages = self._pages
        for page in trace.pages:
            bucket = pages.get(page)
            if bucket is None:
                bucket = pages[page] = set()
            bucket.add(trace.start)

    def note_write(self, address, size):
        """Snoop a write; drop every trace on a touched page."""
        pages = self._pages
        if not pages or size <= 0:
            return
        first = address >> PAGE_SHIFT
        last = (address + size - 1) >> PAGE_SHIFT
        entries = self.entries
        for page in range(first, last + 1):
            bucket = pages.pop(page, None)
            if bucket is None:
                continue
            for eip in bucket:
                trace = entries.pop(eip, None)
                if trace is not None:
                    trace.valid = False
            self.stats.invalidations += 1

    def flush(self):
        """Drop everything (EA-MPU epoch change)."""
        for trace in self.entries.values():
            trace.valid = False
        self.entries.clear()
        self._pages.clear()
        self.stats.invalidations += 1


class EdgeProfile:
    """Block-to-block edge counts: the trace-head heuristic.

    ``edges[branch_address][target] = count``.  The same table feeds
    the trace builder's direction choice at each stitched conditional
    (hot direction inlined, cold direction guarded out) - and is
    exactly the path evidence a control-flow attestation pass would
    consume.
    """

    def __init__(self):
        self.edges = {}

    def note(self, source, target):
        """Count one traversal; returns True when the edge just got hot."""
        edges = self.edges
        bucket = edges.get(source)
        if bucket is None:
            if len(edges) >= EDGE_TABLE_LIMIT:
                edges.clear()
            bucket = edges[source] = {}
        count = bucket.get(target, 0) + 1
        bucket[target] = count
        return count >= TRACE_HOT_EDGE

    def flush(self):
        """Forget all counts (trace-cache flush keeps profiles fresh)."""
        self.edges.clear()


def _decode_at(memory, pc):
    """Decode the instruction at ``pc`` from RAM, or ``None``."""
    region = memory.map.try_find(pc, 1)
    if not isinstance(region, RamRegion):
        return None
    window = region.end - pc
    if window <= 0:
        return None
    if window > _MAX_INSN_BYTES:
        window = _MAX_INSN_BYTES
    try:
        return decode(region.read(pc, window), 0, address=pc)
    except IllegalInstruction:
        return None


def build_trace(memory, head, profile, cfa=None):
    """Stitch the hot path starting at ``head``; returns Trace or None.

    Every hoisted verdict consulted here (execute probes inside
    :func:`~repro.perf.blocks.discover`, transfer proofs via
    ``decisions.lookup_transfer``) is valid for exactly the current
    EA-MPU epoch; the cache holding the result is flushed when the
    epoch moves, which is what makes building-time hoisting sound.

    ``cfa`` is the CPU's CFA monitor port (or ``None``): stitched taken
    transfers it covers are flagged on ``trace.cfa`` so codegen emits
    the matching hash updates, and their modelled cost joins the static
    cycle totals.  The flags are valid for exactly one CFA enrolment
    generation, enforced the same way as the MPU epoch (cache flush on
    generation change in the block engine's dispatch).
    """
    mpu = memory.mpu
    decisions = mpu.decisions if mpu is not None else None
    edges = profile.edges
    items = []
    pc = head
    seen = set()
    looping = False
    exit_eip = None
    total = 0
    segments = 0
    while True:
        if pc in seen:
            exit_eip = pc  # inner cycle not through the head: stop here
            break
        seen.add(pc)
        segment = discover(memory, pc, min_insns=1)
        end = segment.end if segment.insns else pc
        for address, insn in segment.insns:
            items.append(("insn", address, insn))
        total += len(segment.insns)
        segments += 1
        if total > MAX_TRACE_INSNS or segments > MAX_TRACE_BLOCKS:
            exit_eip = end
            break
        ender = _decode_at(memory, end)
        if ender is None or ender.opcode not in _STITCHABLE:
            exit_eip = end
            break
        if mpu is not None and not mpu.probe("execute", end, 1, end):
            exit_eip = end
            break
        if ender.opcode is Op.JMP:
            target = ender.imm
            if decisions is None or not decisions.lookup_transfer(end, target):
                exit_eip = end
                break
            items.append(("jmp", end, ender, target))
            total += 1
            if target == head:
                looping = True
                break
            pc = target
            continue
        taken = ender.imm
        fallthrough = end + ender.length
        bucket = edges.get(end) or {}
        chosen_taken = bucket.get(taken, 0) >= bucket.get(fallthrough, 0)
        chosen = taken if chosen_taken else fallthrough
        if decisions is None or not decisions.lookup_transfer(end, chosen):
            exit_eip = end
            break
        items.append(("guard", end, ender, chosen_taken, chosen))
        total += 1
        if chosen == head:
            looping = True
            break
        pc = chosen
    if total < MIN_TRACE_INSNS:
        return None
    if not any(item[0] != "insn" for item in items):
        return None  # a single unstitched segment is the block tier's job
    trace = Trace(head, tuple(items), looping, None if looping else exit_eip)
    flagged = set()
    if cfa is not None:
        for idx, item in enumerate(items):
            if item[0] == "jmp":
                if cfa.covers(item[1], item[3]):
                    flagged.add(idx)
            elif item[0] == "guard" and item[3]:
                if cfa.covers(item[1], item[4]):
                    flagged.add(idx)
    trace.cfa = frozenset(flagged)
    cost = 0
    retire = 0
    for idx, item in enumerate(items):
        opcode = item[2].opcode
        cost += BASE_CYCLES[opcode]
        retire += 1
        if item[0] == "jmp" or (item[0] == "guard" and item[3]):
            cost += INSN_BRANCH_TAKEN
            if idx in flagged:
                cost += CFA_EDGE_CYCLES
    trace.iter_cost = cost
    trace.iter_retire = retire
    trace.pages = _trace_pages(items)
    if looping and items[-1][0] == "guard" and items[-1][3]:
        body = items[:-1]
        if all(item[0] == "insn" for item in body):
            trace.counter_reg = counted_loop_counter(
                [(address, insn) for _, address, insn in body],
                items[-1][2].opcode,
            )
    return trace


# -- trace code generation: symbolic register-chain folding ----------------


class _Source:
    """Tiny indented-source builder (trace twin of translate's)."""

    def __init__(self):
        self.lines = []

    def emit(self, indent, text):
        self.lines.append("    " * indent + text)

    def source(self):
        return "\n".join(self.lines) + "\n"


class _FoldEmitter:
    """Emits the trace body with register values held in Python locals.

    Each GPR lives in a local ``r0``..``r7``.  Flag-dead register
    operations do not emit statements immediately: they accumulate
    *symbolically* as a base (the local, a known constant, or a copied
    expression) plus a chain of pending ops, and adjacent ops fold
    (``subi edi,1`` six times renders as one ``r7 = (r7 - 6) &
    4294967295``).  A chain materializes into a single assignment only
    when forced:

    * another chain captured this register's local and that local is
      about to be reassigned (dependency flush - chains always render
      against the local values they were captured from);
    * a flag-live computation or memory operand needs the value in a
      temp;
    * the loop-bottom fixpoint (the loop-top assumption is "every
      register is in its local", so the bottom restores exactly that);
    * an exit writeback - which *peeks* (renders without resetting), so
      the main line keeps folding across guard side exits.

    Truncation to 32 bits commutes with ``+ - * & | ^ <<`` and with
    ``& 31`` shift amounts, so intermediate values may run dirty
    (negative / over-wide); the emitter tracks cleanliness and masks
    only where required - before a ``>>`` and at materialization.
    """

    INLINE_OPS = 2  # longest chain worth inlining into another chain
    INLINE_USES = 2  # times one pending chain may be inlined
    CHAIN_LIMIT = 6  # pending ops per register before forced spill

    def __init__(self, out, indent):
        self.out = out
        self.indent = indent
        # base[i]: None = local holds the value; int = known constant;
        # ("expr", text, deps, clean) = copied expression (mov).
        self.base = [None] * 8
        self.ops = [[] for _ in range(8)]
        self.inl = [0] * 8

    def emit(self, text):
        self.out.emit(self.indent, text)

    # -- rendering ---------------------------------------------------

    def render(self, j):
        """Peek ``j``'s current value: ``(expr, deps, clean)``.

        ``deps`` is the set of register locals the text references;
        ``clean`` says the value is already in ``[0, 2^32)``.
        """
        base = self.base[j]
        if base is None:
            expr, deps, clean = "r%d" % j, {j}, True
        elif isinstance(base, int):
            expr, deps, clean = str(base), set(), True
        else:
            expr, deps, clean = base[1], set(base[2]), base[3]
        for op in self.ops[j]:
            tag = op[0]
            if tag == "add":
                parts = [expr]
                for sign, term, tdeps in op[1]:
                    parts.append("+" if sign > 0 else "-")
                    parts.append(term)
                    deps |= tdeps
                const = op[2]
                if const:
                    parts.append("+" if const > 0 else "-")
                    parts.append(str(abs(const)))
                expr = "(%s)" % " ".join(parts)
                clean = False
            elif tag == "neg":
                expr = "(-%s)" % expr
                clean = False
            elif tag in ("shl", "shr"):
                if len(op) == 2:
                    amount, adeps = str(op[1]), set()
                else:
                    amount, adeps = op[1], op[2]
                if tag == "shr" and not clean:
                    expr = "(%s & 4294967295)" % expr
                expr = "(%s %s %s)" % (expr, "<<" if tag == "shl" else ">>", amount)
                deps |= adeps
                clean = tag == "shr"
            elif tag == "mul":
                if len(op) == 2:
                    operand, odeps = str(op[1]), set()
                else:
                    operand, odeps = op[1], op[2]
                expr = "(%s * %s)" % (expr, operand)
                deps |= odeps
                clean = False
            else:  # and / or / xor
                if len(op) == 2:
                    operand, odeps, oclean = str(op[1]), set(), True
                else:
                    operand, odeps, oclean = op[1], op[2], op[3]
                symbol = "&" if tag == "and" else ("|" if tag == "or" else "^")
                expr = "(%s %s %s)" % (expr, symbol, operand)
                deps |= odeps
                if tag == "and":
                    # masking by either clean operand bounds the result
                    clean = clean or oclean
                else:
                    clean = clean and oclean
        return expr, deps, clean

    def render_clean(self, j):
        # Parenthesized: callers embed this text inside higher-precedence
        # contexts (``>>``, ``*``), where a bare ``expr & 4294967295``
        # would rebind - e.g. ``X & 4294967295 >> 24`` masks by 255.
        expr, _, clean = self.render(j)
        return expr if clean else "(%s & 4294967295)" % expr

    def _pending(self, j):
        return self.base[j] is not None or bool(self.ops[j])

    # -- state transitions -------------------------------------------

    def _closure(self, seed):
        """Pending regs entangled with ``seed`` under will-be-reassigned.

        Every reg in the returned set gets its local reassigned, so any
        pending chain *reading* one of those locals must join the set
        (its captured text refers to the pre-assignment value) - and so
        on transitively.
        """
        members = set(seed)
        changed = True
        while changed:
            changed = False
            for i in range(8):
                if i in members or not self._pending(i):
                    continue
                if self.render(i)[1] & members:
                    members.add(i)
                    changed = True
        return members

    def _spill(self, regs):
        """Materialize ``regs`` in one *parallel* assignment.

        Chains may read each other's locals - even cyclically
        (``add eax, edx`` folded alongside ``add edx, eax``) - so no
        sequential assignment order is universally correct.  A tuple
        assignment evaluates every right-hand side against the
        pre-assignment locals, which is exactly the state each chain
        was captured under.
        """
        pending = sorted(i for i in regs if self._pending(i))
        if not pending:
            return
        if len(pending) == 1:
            j = pending[0]
            self.emit("r%d = %s" % (j, self.render_clean(j)))
        else:
            targets = ", ".join("r%d" % j for j in pending)
            values = ", ".join(self.render_clean(j) for j in pending)
            self.emit("%s = %s" % (targets, values))
        for j in pending:
            self.base[j] = None
            self.ops[j] = []
            self.inl[j] = 0

    def materialize(self, j):
        """Spill ``j``'s symbolic value into its local.

        Drags along (in the same parallel assignment) every pending
        chain that reads a local being reassigned.
        """
        if not self._pending(j):
            return
        self._spill(self._closure({j}))

    def flush_dependents(self, j):
        """Materialize every chain whose text references local ``j``.

        Must run before any assignment to ``r{j}`` (captured chain text
        refers to the value the local held at capture time).
        """
        seed = {
            i
            for i in range(8)
            if i != j and self._pending(i) and j in self.render(i)[1]
        }
        if seed:
            self._spill(self._closure(seed))

    def drop(self, j):
        """Forget ``j``'s symbolic value (dead: about to be overwritten).

        Caller must have run :meth:`flush_dependents` for ``j`` first.
        """
        self.base[j] = None
        self.ops[j] = []
        self.inl[j] = 0

    def materialize_all(self):
        for j in range(8):
            self.materialize(j)

    def value_expr(self, consumer, j, need_clean=True):
        """``j``'s value as an operand for ``consumer``'s chain.

        Short chains inline (bounded by the INLINE_* knobs); anything
        else - including a would-be dependency cycle with ``consumer`` -
        materializes first.  Returns ``(expr, deps, clean)``.
        """
        ops = self.ops[j]
        if not ops:
            base = self.base[j]
            if base is None:
                return "r%d" % j, {j}, True
            if isinstance(base, int):
                return str(base), set(), True
        expr, deps, clean = self.render(j)
        if len(ops) <= self.INLINE_OPS and self.inl[j] < self.INLINE_USES and consumer not in deps:
            self.inl[j] += 1
            if need_clean and not clean:
                return "(%s & 4294967295)" % expr, deps, True
            return expr, deps, clean
        self.materialize(j)
        return "r%d" % j, {j}, True

    # -- op application (flag-dead folding) --------------------------

    def _push(self, x, op):
        if len(self.ops[x]) >= self.CHAIN_LIMIT:
            self.materialize(x)
        self.ops[x].append(op)

    def apply_add(self, x, sign, operand):
        """``operand`` is an unsigned const int or ``(expr, deps)``."""
        ops = self.ops[x]
        if isinstance(operand, int):
            delta = operand & _M
            if delta >= _SIGN:
                delta -= _M + 1
            if sign < 0:
                delta = -delta
            if delta == 0:
                return
            base = self.base[x]
            if not ops and isinstance(base, int):
                self.base[x] = (base + delta) & _M
                return
            if ops and ops[-1][0] == "add":
                merged = ops[-1][2] + delta
                if not merged and not ops[-1][1]:
                    # balanced const adds (push/pop pairs) cancel whole
                    ops.pop()
                else:
                    ops[-1] = ("add", ops[-1][1], merged)
                return
            self._push(x, ("add", [], delta))
            return
        expr, deps = operand
        if ops and ops[-1][0] == "add":
            ops[-1][1].append((sign, expr, deps))
            return
        self._push(x, ("add", [(sign, expr, deps)], 0))

    def apply_logic(self, x, tag, operand):
        """``tag`` in and/or/xor; const int or ``(expr, deps, clean)``."""
        ops = self.ops[x]
        if isinstance(operand, int):
            v = operand & _M
            base = self.base[x]
            if not ops and isinstance(base, int):
                if tag == "and":
                    self.base[x] = base & v
                elif tag == "or":
                    self.base[x] = base | v
                else:
                    self.base[x] = base ^ v
                return
            if ops and ops[-1][0] == tag and len(ops[-1]) == 2:
                prev = ops[-1][1]
                if tag == "and":
                    merged = prev & v
                elif tag == "or":
                    merged = prev | v
                else:
                    merged = prev ^ v
                if tag != "and" and merged == 0:
                    # ``xor 0`` / ``or 0`` is a no-op (paired ``xori``s
                    # cancel); ``and`` keeps even an all-ones mask - it
                    # doubles as the cleanliness bound on dirty values.
                    ops.pop()
                else:
                    ops[-1] = (tag, merged)
                return
            if tag != "and" and v == 0:
                return
            self._push(x, (tag, v))
            return
        expr, deps, clean = operand
        self._push(x, (tag, expr, deps, clean))

    def apply_shift(self, x, tag, amount):
        """``amount`` is a raw const int or ``(expr, deps)`` (& 31 added)."""
        ops = self.ops[x]
        if isinstance(amount, int):
            amount &= 31
            if amount == 0:
                return  # value unchanged mod 2^32
            base = self.base[x]
            if not ops and isinstance(base, int):
                if tag == "shl":
                    self.base[x] = (base << amount) & _M
                else:
                    self.base[x] = base >> amount
                return
            if ops and ops[-1][0] == tag and len(ops[-1]) == 2:
                ops[-1] = (tag, ops[-1][1] + amount)
                return
            self._push(x, (tag, amount))
            return
        expr, deps = amount
        self._push(x, (tag, "(%s & 31)" % expr, deps))

    def apply_mul(self, x, operand):
        ops = self.ops[x]
        if isinstance(operand, int):
            v = operand & _M
            base = self.base[x]
            if not ops and isinstance(base, int):
                self.base[x] = (base * v) & _M
                return
            if ops and ops[-1][0] == "mul" and len(ops[-1]) == 2:
                ops[-1] = ("mul", (ops[-1][1] * v) & _M)
                return
            self._push(x, ("mul", v))
            return
        expr, deps = operand
        self._push(x, ("mul", expr, deps))

    def apply_neg(self, x):
        ops = self.ops[x]
        base = self.base[x]
        if not ops and isinstance(base, int):
            self.base[x] = (-base) & _M
            return
        if ops and ops[-1][0] == "neg":
            ops.pop()  # double negation cancels exactly (mod 2^32)
            return
        self._push(x, ("neg",))

    def set_const(self, x, value):
        self.flush_dependents(x)
        self.drop(x)
        self.base[x] = value & _M

    def set_copy(self, x, triple):
        """``mov x, y``: adopt ``(expr, deps, clean)`` as the new base."""
        self.flush_dependents(x)
        self.drop(x)
        expr, deps, clean = triple
        if not deps and clean and expr.isdigit():
            self.base[x] = int(expr)
        else:
            self.base[x] = ("expr", expr, frozenset(deps), clean)


_ESP = 4  # Reg.ESP

#: Opcodes reading their ``reg2`` operand.
_TWO_REG = frozenset(
    {Op.MOV, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.CMP, Op.SHL,
     Op.SHR, Op.MUL, Op.LD, Op.LDB, Op.LDH, Op.ST, Op.STB, Op.STH}
)

#: Opcodes writing their ``reg`` operand.
_REG_WRITES = frozenset(
    {Op.MOV, Op.MOVI, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL,
     Op.SHR, Op.MUL, Op.ADDI, Op.SUBI, Op.ANDI, Op.ORI, Op.XORI,
     Op.SHLI, Op.SHRI, Op.NOT, Op.NEG, Op.LD, Op.LDB, Op.LDH, Op.POP}
)

_LOAD_SITES = frozenset({Op.LD, Op.LDB, Op.LDH, Op.POP})
_STORE_SITES = frozenset({Op.ST, Op.STB, Op.STH, Op.PUSH, Op.PUSHI})

#: Access width by memory-site opcode (stack ops are word-sized).
_SITE_WIDTH = {
    Op.LD: 4, Op.ST: 4, Op.LDH: 2, Op.STH: 2, Op.LDB: 1, Op.STB: 1,
    Op.POP: 4, Op.PUSH: 4, Op.PUSHI: 4,
}

#: width -> (alignment mask, index shift) for slab-view indexing.
_ALIGN_SHIFT = {4: (3, 2), 2: (1, 1), 1: (0, 0)}

#: width -> store-value truncation mask (sub-word stores only).
_SIZE_MASKS = {1: 0xFF, 2: 0xFFFF}

#: Sentinel "window" whose bounds test always fails (``lo=1 > hi=0``),
#: so hoisted per-site window locals need no per-access ``None`` check.
_NO_WINDOW = (1, 0, None, 0, None, 0)

#: Straight-line instructions between countdown checkpoints in the
#: horizon-split prefix body (stitched branches always get one).
CHECKPOINT_INSNS = 4

_WIDTHS = (4, 2, 1)


def _checkpoint_plan(items, cfa_flags=frozenset()):
    """Checkpoint placement for the horizon-split prefix body.

    Returns ``(cuts, costs)``: ``cuts[idx]`` marks a countdown
    checkpoint *after* item ``idx``, and ``costs`` holds the exact
    cumulative cycle cost at each checkpoint in body order (strictly
    increasing - the dispatcher bisects it against the remaining
    horizon budget).  A checkpoint lands after every stitched branch
    and after every :data:`CHECKPOINT_INSNS` straight-line
    instructions; the final item gets none (the body's own exit
    already covers the full path, and full execution is the whole-body
    dispatcher's job).  ``cfa_flags`` (``trace.cfa``) adds the modelled
    CFA hash-update cost at the flagged stitched transfers, keeping the
    cumulative table exact when recording is on.
    """
    cuts = [False] * len(items)
    costs = []
    cost = 0
    since = 0
    last = len(items) - 1
    for idx, item in enumerate(items):
        cost += BASE_CYCLES[item[2].opcode]
        if item[0] == "jmp" or (item[0] == "guard" and item[3]):
            cost += INSN_BRANCH_TAKEN
            if idx in cfa_flags:
                cost += CFA_EDGE_CYCLES
        since += 1
        if idx == last:
            break
        if item[0] != "insn" or since >= CHECKPOINT_INSNS:
            cuts[idx] = True
            costs.append(cost)
            since = 0
    return cuts, tuple(costs)


def _steady_plan(items):
    """Loop-invariant EA descriptors for a counted body's memory sites.

    Returns one ``(base_reg, offset)`` pair per memory site, in site
    order, such that the site's effective address every iteration is
    ``(r[base_reg]_at_loop_entry + offset) & 2^32-1`` - or ``None``
    when any site's address cannot be proven loop-invariant.  This is
    what lets the counted-loop fast body check each site's window,
    alignment, and snoop preconditions *once* and run the whole loop on
    raw slab indexing:

    * a ``[base+disp]`` site is invariant when nothing in the body
      writes ``base``;
    * ``push``/``pop`` sites (and ``[esp+disp]`` sites) are invariant
      when ESP is only moved by the body's own pushes and pops and the
      net movement over one iteration is zero - each site's offset is
      the static ESP displacement at that point.

    Same deliberately conservative style as ``counted_loop_counter``:
    a proof, not a heuristic (a ``movi`` rebasing a pointer mid-body,
    ``pop esp``, or unbalanced stack traffic all return ``None``).
    """
    written = set()
    for item in items:
        insn = item[2]
        if insn.opcode in _REG_WRITES:
            written.add(insn.reg)
    esp_clean = _ESP not in written
    plan = []
    off = 0
    for item in items:
        insn = item[2]
        opcode = insn.opcode
        if opcode in (Op.PUSH, Op.PUSHI):
            if not esp_clean:
                return None
            off -= 4
            plan.append((_ESP, off))
        elif opcode is Op.POP:
            if not esp_clean:
                return None
            plan.append((_ESP, off))
            off += 4
        elif opcode in _LOAD_SITES or opcode in _STORE_SITES:
            base = insn.reg2
            if base == _ESP:
                if not esp_clean:
                    return None
                plan.append((_ESP, off + insn.imm))
            elif base in written:
                return None
            else:
                plan.append((base, insn.imm))
    if off:
        return None
    return plan


def _reg_usage(items):
    """``(used, written)`` register sets over the trace body."""
    used = set()
    written = set()
    for item in items:
        if item[0] != "insn":
            continue
        insn = item[2]
        opcode = insn.opcode
        if opcode is Op.NOP:
            continue
        if opcode in (Op.PUSH, Op.PUSHI, Op.POP):
            used.add(_ESP)
            written.add(_ESP)
        if opcode is Op.PUSHI:
            continue
        used.add(insn.reg)
        if opcode in _TWO_REG:
            used.add(insn.reg2)
        if opcode in _REG_WRITES:
            written.add(insn.reg)
    return used | written, written


def _flag_needs(items, cuts=None):
    """Which flag-writing items must keep ``fl`` current.

    Same backward scan as the block translator, with guards as an extra
    observation point (they branch on ``fl``).  For looping traces the
    closing guard/jmp is the last item, so a writer near the bottom is
    observed before the next iteration's writers can kill it -
    cross-iteration liveness needs no special casing.

    ``cuts`` (prefix bodies only) adds each countdown checkpoint as an
    observation point: a checkpoint exit writes EFLAGS back, so the
    last flag writer before every cut must be live.
    """
    needs = [False] * len(items)
    live = True
    for idx in range(len(items) - 1, -1, -1):
        if cuts is not None and cuts[idx]:
            live = True
        kind = items[idx][0]
        if kind == "guard":
            live = True
        elif kind == "insn":
            opcode = items[idx][2].opcode
            if opcode in MEM_OPS:
                live = True
            elif opcode in _FLAG_WRITERS:
                needs[idx] = live
                live = False
    return needs


def _simple(text):
    """Whether ``text`` is a bare local or literal (no temp needed)."""
    return text.isdigit() or (len(text) == 2 and text[0] == "r" and text[1].isdigit())


def generate_trace(trace, fast=False, prefix=False):
    """Generate the Python source for one of ``trace``'s bodies.

    The signature is ``__trace__(cpu, tr, n)``: ``n`` is the admitted
    iteration budget for looping traces (1 for linear ones).  With
    ``fast=True`` the *counted-loop specialization* is generated
    instead: the closing guard and every dead flag update are elided,
    valid for up to ``counter - 1`` iterations (the engine enforces the
    bound), with the counter's final flags reconstructed closed-form.

    With ``prefix=True`` the *horizon-split* body is generated: the
    straight path rendered linearly (one iteration, for looping traces)
    with a countdown checkpoint at each :func:`_checkpoint_plan` cut.
    Called as ``__trace_prefix__(cpu, tr, n)`` it executes exactly the
    first ``n`` checkpoints' worth of instructions, then writes back
    every register, EFLAGS, the exact cycle/retire charge, and the
    checkpoint's boundary EIP - architectural state bit-identical to
    single-stepping the same instructions.  Checkpoints are flag
    observation points, so the prefix body elides less than the full
    body; it only ever runs for the sub-horizon tail of a dispatch.
    """
    items = trace.items[:-1] if fast else trace.items
    looping = trace.looping and not prefix  # the prefix body is linear
    used, written = _reg_usage(items)
    cuts = _checkpoint_plan(items)[0] if prefix else None
    needs = [False] * len(items) if fast else _flag_needs(items, cuts)
    load_n = {1: 0, 2: 0, 4: 0}
    store_n = {1: 0, 2: 0, 4: 0}
    site_meta = []  # (width, is_store) per memory site, in site order
    for it in items:
        if it[0] != "insn":
            continue
        opcode = it[2].opcode
        if opcode in _LOAD_SITES:
            load_n[_SITE_WIDTH[opcode]] += 1
            site_meta.append((_SITE_WIDTH[opcode], False))
        elif opcode in _STORE_SITES:
            store_n[_SITE_WIDTH[opcode]] += 1
            site_meta.append((_SITE_WIDTH[opcode], True))
    sites = len(site_meta)
    load_sites = sum(load_n.values())
    store_sites = sum(store_n.values())
    has_mem = bool(sites)
    #: Fast bodies with memory run in *steady state*: every EA is
    #: loop-invariant (:func:`_steady_plan`), so the prologue checks
    #: each site's window/alignment/snoop preconditions once and the
    #: loop itself is raw slab indexing.  Any precondition failure
    #: returns ``False`` before touching state - the dispatcher falls
    #: back to the general body, whose slow paths install the windows.
    plan = _steady_plan(items) if fast and has_mem else None
    assert plan is not None or not (fast and has_mem)
    #: When the counter register is touched by nothing but its own
    #: ``subi reg, 1`` (the common dedicated-counter loop), even the
    #: per-iteration decrement is dead inside the fast body: no other
    #: item observes the intermediate values, so the whole countdown is
    #: applied closed-form (``r -= n``) after the loop.
    counter_lone = False
    if fast:
        counter = trace.counter_reg
        counter_lone = True
        for it in items:
            if it[0] != "insn":
                continue
            op = it[2].opcode
            if op in (Op.PUSHI, Op.NOP):
                continue
            if it[2].reg == counter and not (op is Op.SUBI and it[2].imm == 1):
                counter_lone = False
                break
            if op in _TWO_REG and it[2].reg2 == counter:
                counter_lone = False
                break
    #: Looping bodies re-run every memory site each iteration, so the
    #: window bounds/view/base are hoisted into per-site locals once
    #: per dispatch (refreshed whenever a slow path installs a window).
    hoist = looping and has_mem and not fast
    out = _Source()
    name = (
        "__trace_prefix__" if prefix
        else ("__trace_fast__" if fast else "__trace__")
    )
    out.emit(0, "def %s(cpu, tr, n):" % name)
    out.emit(1, "regs = cpu.regs")
    out.emit(1, "r = regs.gpr")
    if has_mem:
        out.emit(1, "memory = cpu.memory")
        out.emit(1, "W = tr.windows")
        if load_sites and not fast:
            out.emit(1, "W2 = tr.windows2")
    if store_sites:
        out.emit(1, "S = memory.snooped_pages")
    out.emit(1, "clock = cpu.clock")
    if fast:
        cfa_used = (len(trace.items) - 1) in trace.cfa
    else:
        cfa_used = bool(trace.cfa)
    if cfa_used:
        # Bound once per dispatch; the enrolment-generation flush in
        # the block engine guarantees cpu.cfa is live whenever a body
        # compiled with CFA flags runs.
        out.emit(1, "CF = cpu.cfa")
    out.emit(1, "fl = regs.eflags")
    for j in sorted(used):
        out.emit(1, "r%d = r[%d]" % (j, j))
    if not fast:
        out.emit(1, "p = 0")
        out.emit(1, "ret = 0")
        if looping and has_mem:
            out.emit(1, "n0 = n")
    if hoist:
        for site in range(sites):
            out.emit(1, "w = W[%d]" % site)
            out.emit(1, "if w is None:")
            out.emit(2, "w = NW")
            out.emit(
                1,
                "w%dl, w%dh, w%dv, w%db = w[:4]" % (site, site, site, site),
            )
    if plan is not None:
        # steady preconditions: one window/alignment/snoop check per
        # site covers all n iterations, because the EAs are proven
        # loop-invariant.  Pure reads only before any return False.
        for site, (breg, off) in enumerate(plan):
            width, is_store = site_meta[site]
            if not off:
                ea = "r%d" % breg
            elif off < 0:
                ea = "(r%d - %d) & 4294967295" % (breg, -off)
            else:
                ea = "(r%d + %d) & 4294967295" % (breg, off)
            out.emit(1, "e = %s" % ea)
            out.emit(1, "w = W[%d]" % site)
            mask, shift = _ALIGN_SHIFT[width]
            cond = "w is None or not w[0] <= e <= w[1]"
            if mask:
                cond += " or e & %d" % mask
            if is_store:
                cond += " or e >> 8 in S"
            out.emit(1, "if %s:" % cond)
            out.emit(2, "return False")
            out.emit(1, "m%d = w[2]" % site)
            if shift:
                out.emit(1, "i%d = (e >> %d) - w[3]" % (site, shift))
            else:
                out.emit(1, "i%d = e - w[3]" % site)
    if fast:
        out.emit(1, "for _ in range(n):")
        em = _FoldEmitter(out, 2)
    elif looping:
        out.emit(1, "while n:")
        out.emit(2, "n -= 1")
        em = _FoldEmitter(out, 2)
    else:
        em = _FoldEmitter(out, 1)

    def emit_writebacks(ind):
        for j in sorted(written):
            expr, _, clean = em.render(j)
            if expr == "r%d" % j:
                out.emit(ind, "r[%d] = r%d" % (j, j))
            else:
                out.emit(ind, "r[%d] = %s" % (j, expr if clean else "%s & 4294967295" % expr))

    def emit_slab_hits(ind, kl, ks, loop_end=False):
        """Per-width slab hit credit at an exit point.

        ``kl``/``ks`` count the load/store sites *passed* at this point
        in the current iteration (miss paths pre-decrement the counter,
        so passed == hit).  Looping bodies add the completed-iteration
        term; ``loop_end`` is the natural while-exit where all ``n0``
        iterations completed.
        """
        for name_, totals, counts in (("SL", load_n, kl), ("SS", store_n, ks)):
            for width in _WIDTHS:
                per_iter = totals[width]
                if not per_iter and not counts.get(width):
                    continue
                if looping:
                    if loop_end:
                        expr = "n0 * %d" % per_iter
                    elif counts.get(width):
                        expr = "(n0 - n - 1) * %d + %d" % (per_iter, counts[width])
                    else:
                        expr = "(n0 - n - 1) * %d" % per_iter
                elif counts.get(width):
                    expr = "%d" % counts[width]
                else:
                    continue
                out.emit(ind, "%s%d.hits += %s" % (name_, width, expr))

    def emit_exit(ind, eip, ret_k, cyc, kl, ks, guard=False):
        emit_writebacks(ind)
        out.emit(ind, "regs.eflags = fl")
        if ret_k:
            out.emit(ind, "cpu.retired += ret + %d" % ret_k)
        else:
            out.emit(ind, "cpu.retired += ret")
        if cyc:
            out.emit(ind, "q = p + %d" % cyc)
        else:
            out.emit(ind, "q = p")
        out.emit(ind, "if q:")
        out.emit(ind + 1, "clock.charge(q)")
        emit_slab_hits(ind, kl, ks)
        out.emit(ind, "regs.eip = %d" % eip)
        if guard:
            out.emit(ind, "ge()")
        out.emit(ind, "return")

    def slow_entry(ind, address, base_c, ret_k, cyc):
        """Bit-identical single-step state before a checked bus access."""
        total = cyc + base_c
        out.emit(ind, "q = p + %d" % total)
        out.emit(ind, "if q:")
        out.emit(ind + 1, "clock.charge(q)")
        out.emit(ind, "p = %d" % -total)
        if ret_k:
            out.emit(ind, "cpu.retired += ret + %d" % ret_k)
        else:
            out.emit(ind, "cpu.retired += ret")
        out.emit(ind, "ret = %d" % -(ret_k + 1))
        out.emit(ind, "regs.eip = %d" % address)
        out.emit(ind, "regs.eflags = fl")
        emit_writebacks(ind)

    def win_cond(site, width, ea):
        """Window-hit test (bounds + alignment) for memory site ``site``."""
        mask = _ALIGN_SHIFT[width][0]
        if hoist:
            cond = "w%dl <= %s <= w%dh" % (site, ea, site)
        else:
            cond = "w is not None and w[0] <= %s <= w[1]" % ea
        if mask:
            cond += " and not %s & %d" % (ea, mask)
        return cond

    def win_index(site, width, ea):
        """Direct slab-view index expression for a window hit."""
        shift = _ALIGN_SHIFT[width][1]
        view = "w%dv" % site if hoist else "w[2]"
        base_l = "w%db" % site if hoist else "w[3]"
        if shift:
            return "%s[(%s >> %d) - %s]" % (view, ea, shift, base_l)
        return "%s[%s - %s]" % (view, ea, base_l)

    def victim_cond(width, ea):
        """Victim-window hit test (the ``w2`` local holds ``W2[site]``).

        Checked between the primary window and the slow path, so a load
        whose EA alternates between two regions stays on the slab
        instead of thrashing one slot into a slow call per iteration."""
        mask = _ALIGN_SHIFT[width][0]
        cond = "w2 is not None and w2[0] <= %s <= w2[1]" % ea
        if mask:
            cond += " and not %s & %d" % (ea, mask)
        return cond

    def victim_index(width, ea):
        shift = _ALIGN_SHIFT[width][1]
        if shift:
            return "w2[2][(%s >> %d) - w2[3]]" % (ea, shift)
        return "w2[2][%s - w2[3]]" % ea

    def emit_unaligned_loads(ind, site, x, size, ea):
        """In-window *misaligned* load arms (widths 2/4 only), tried
        after the aligned victim test and before the slow path.

        The window's range already proves MPU read permission for any
        start address in ``[lo, hi - size]`` - only the typed slab view
        needs alignment - so a misaligned hit reads its span off the
        region's byte slab (``w[4]``/``w[5]`` of the window tuple)
        instead of paying a checked slow call.  Without this, a load
        whose EA alternates between an aligned and a misaligned target
        takes the slow path every other access even with the victim
        slot holding both windows."""
        if hoist:
            bounds = "w%dl <= %s <= w%dh" % (site, ea, site)
        else:
            bounds = "w is not None and w[0] <= %s <= w[1]" % ea
        out.emit(ind, "elif %s:" % bounds)
        if hoist:
            out.emit(ind + 1, "w = W[%d]" % site)
        out.emit(ind + 1, "j = %s - w[5]" % ea)
        out.emit(ind + 1, 'r%d = int.from_bytes(w[4][j:j + %d], "little")' % (x, size))
        out.emit(ind, "elif w2 is not None and w2[0] <= %s <= w2[1]:" % ea)
        out.emit(ind + 1, "j = %s - w2[5]" % ea)
        out.emit(ind + 1, 'r%d = int.from_bytes(w2[4][j:j + %d], "little")' % (x, size))

    def win_refresh(ind, site):
        """Re-read a site's hoisted window locals after a slow path
        (which may have installed or re-installed the window)."""
        if not hoist:
            return
        out.emit(ind, "w = W[%d]" % site)
        out.emit(ind, "if w is not None:")
        out.emit(
            ind + 1,
            "w%dl, w%dh, w%dv, w%db = w[:4]" % (site, site, site, site),
        )

    def emit_fl(carry=None, overflow=None):
        em.emit("fl = fl & %d" % _FLAG_KEEP)
        if carry is not None:
            em.emit("if %s:" % carry)
            out.emit(em.indent + 1, "fl |= 1")
        em.emit("if res == 0:")
        out.emit(em.indent + 1, "fl |= 64")
        em.emit("if res & %d:" % _SIGN)
        out.emit(em.indent + 1, "fl |= 128")
        if overflow is not None:
            em.emit("if %s:" % overflow)
            out.emit(em.indent + 1, "fl |= 2048")

    def operand(consumer, j):
        """Flag-dead operand: const int, or ``(expr, deps)``."""
        expr, deps, clean = em.value_expr(consumer, j, need_clean=False)
        if not deps and clean and expr.isdigit():
            return int(expr)
        return expr, deps

    def addr_text(insn):
        """Effective-address expression (clean) for a ld/st operand."""
        y = insn.reg2
        if not em.ops[y] and isinstance(em.base[y], int):
            return str((em.base[y] + insn.imm) & _M)
        expr, _, __ = em.value_expr(None, y, need_clean=True)
        if insn.imm:
            return "(%s + %d) & 4294967295" % (expr, insn.imm)
        return expr

    def emit_store_paths(site, ea, value, size, address, nxt, base_c, ret_k, cyc):
        """Window-hit fast path (single snoop-page probe + direct slab
        write) and checked slow path of a store; both end with the
        self-modification abort.  An access aligned to its own width
        never crosses a 256-byte snoop page, so one probe suffices -
        the window test already proved the alignment."""
        bytes_of = "(%s)" % value if value.isdigit() else value
        if not hoist:
            em.emit("w = W[%d]" % site)
        em.emit("if %s:" % win_cond(site, size, ea))
        ind = em.indent + 1
        out.emit(ind, "if %s >> 8 in S:" % ea)
        out.emit(ind + 1, 'memory.write_raw(%s, %s.to_bytes(%d, "little"))' % (ea, bytes_of, size))
        out.emit(ind + 1, "SS%d.misses += 1" % size)
        out.emit(ind + 1, "SS%d.hits -= 1" % size)
        out.emit(ind + 1, "if not tr.valid:")
        ks2 = dict(KS)
        ks2[size] += 1
        emit_exit(ind + 2, nxt, ret_k + 1, cyc + base_c, dict(KL), ks2)
        out.emit(ind, "else:")
        out.emit(ind + 1, "%s = %s" % (win_index(site, size, ea), value))
        em.emit("else:")
        slow_entry(ind, address, base_c, ret_k, cyc)
        out.emit(ind, "ram = slow_store(cpu, tr, %d, %s, %s, %d, %d)" % (site, ea, value, size, address))
        out.emit(ind, "cpu.retired += 1")
        out.emit(ind, "SS%d.misses += 1" % size)
        out.emit(ind, "if not ram or not tr.valid:")
        emit_slab_hits(ind + 1, dict(KL), dict(KS))
        out.emit(ind + 1, "regs.eip = %d" % nxt)
        out.emit(ind + 1, "return")
        out.emit(ind, "SS%d.hits -= 1" % size)
        win_refresh(ind, site)

    K = 0  # instructions retired before the current item (one iteration)
    C = 0  # cycles accrued before the current item (one iteration)
    KL = {1: 0, 2: 0, 4: 0}  # load sites passed so far, by width
    KS = {1: 0, 2: 0, 4: 0}  # store sites passed so far, by width
    k = 0  # memory-site index (window slot)

    def emit_checkpoint(idx, eip):
        """Countdown checkpoint (prefix bodies): exit at the boundary
        with exact architectural state once the admitted budget runs
        out.  Reads ``K``/``C``/``KL``/``KS`` at call time, i.e. the
        state *after* the item the cut follows."""
        if cuts is None or not cuts[idx]:
            return
        em.emit("n -= 1")
        em.emit("if not n:")
        emit_exit(em.indent + 1, eip, K, C, dict(KL), dict(KS))

    for idx, item in enumerate(items):
        kind = item[0]
        address = item[1]
        insn = item[2]
        opcode = insn.opcode
        base_c = BASE_CYCLES[opcode]
        if kind == "guard":
            chosen_taken = item[3]
            cond = _COND_EXPR[opcode]
            if chosen_taken:
                em.emit("if not (%s):" % cond)
            else:
                em.emit("if %s:" % cond)
            emit_exit(em.indent + 1, address, K, C, dict(KL), dict(KS), guard=True)
            K += 1
            C += base_c + (INSN_BRANCH_TAKEN if chosen_taken else 0)
            if idx in trace.cfa:
                # The guard passed, so the stitched taken transfer is
                # committed: fold it into the CFA path hash exactly as
                # the interpreter would (its cost is already in C; a
                # guard *failure* exits with the branch unexecuted, and
                # the interpreter records it on re-execution).
                em.emit("CF.record_edge(%d, %d)" % (address, item[4]))
                C += CFA_EDGE_CYCLES
            emit_checkpoint(idx, item[4])
            continue
        if kind == "jmp":
            K += 1
            C += base_c + INSN_BRANCH_TAKEN
            if idx in trace.cfa:
                em.emit("CF.record_edge(%d, %d)" % (address, item[3]))
                C += CFA_EDGE_CYCLES
            emit_checkpoint(idx, item[3])
            continue
        x = insn.reg
        y = insn.reg2
        nxt = address + insn.length
        if opcode in ALU_OPS:
            flags = needs[idx]
            if (
                counter_lone
                and opcode is Op.SUBI
                and x == trace.counter_reg
                and insn.imm == 1
            ):
                pass  # countdown applied closed-form after the loop
            elif opcode is Op.NOP or opcode in (Op.CMP, Op.CMPI) and not flags:
                pass
            elif opcode is Op.MOVI:
                em.set_const(x, insn.imm)
            elif opcode is Op.MOV:
                if x != y:
                    em.set_copy(x, em.value_expr(x, y, need_clean=False))
            elif not flags:
                if opcode in (Op.ADD, Op.SUB):
                    em.apply_add(x, 1 if opcode is Op.ADD else -1, operand(x, y))
                elif opcode in (Op.ADDI, Op.SUBI):
                    em.apply_add(x, 1 if opcode is Op.ADDI else -1, insn.imm)
                elif opcode in (Op.AND, Op.OR, Op.XOR):
                    tag = "and" if opcode is Op.AND else ("or" if opcode is Op.OR else "xor")
                    expr, deps, clean = em.value_expr(x, y, need_clean=False)
                    if not deps and clean and expr.isdigit():
                        em.apply_logic(x, tag, int(expr))
                    else:
                        em.apply_logic(x, tag, (expr, deps, clean))
                elif opcode in (Op.ANDI, Op.ORI, Op.XORI):
                    tag = "and" if opcode is Op.ANDI else ("or" if opcode is Op.ORI else "xor")
                    em.apply_logic(x, tag, insn.imm)
                elif opcode is Op.NOT:
                    em.apply_logic(x, "xor", _M)
                elif opcode is Op.NEG:
                    em.apply_neg(x)
                elif opcode in (Op.SHL, Op.SHR):
                    em.apply_shift(x, "shl" if opcode is Op.SHL else "shr", operand(x, y))
                elif opcode in (Op.SHLI, Op.SHRI):
                    em.apply_shift(x, "shl" if opcode is Op.SHLI else "shr", insn.imm)
                elif opcode is Op.MUL:
                    em.apply_mul(x, operand(x, y))
                else:  # pragma: no cover - ALU_OPS is closed
                    raise AssertionError("untranslatable ALU op %r" % opcode)
            else:
                # flag-live: explicit temps, flags into the fl local
                em.flush_dependents(x)
                if opcode in (Op.ADD, Op.ADDI):
                    if opcode is Op.ADD:
                        b_expr, _, __ = em.value_expr(x, y, need_clean=True)
                    else:
                        b_expr = str(insn.imm & _M)
                    em.emit("a = %s" % em.render_clean(x))
                    em.emit("b = %s" % b_expr)
                    em.emit("raw = a + b")
                    em.emit("res = raw & 4294967295")
                    em.drop(x)
                    em.emit("r%d = res" % x)
                    emit_fl(
                        carry="raw > %d" % _M,
                        overflow="not ((a ^ b) & %d) and ((a ^ res) & %d)" % (_SIGN, _SIGN),
                    )
                elif opcode in (Op.SUB, Op.SUBI, Op.CMP, Op.CMPI, Op.NEG):
                    if opcode is Op.NEG:
                        a_expr, b_expr = "0", em.render_clean(x)
                    elif opcode in (Op.SUB, Op.CMP):
                        b_expr, _, __ = em.value_expr(x, y, need_clean=True)
                        a_expr = em.render_clean(x)
                    else:
                        a_expr, b_expr = em.render_clean(x), str(insn.imm & _M)
                    writes = opcode not in (Op.CMP, Op.CMPI)
                    em.emit("a = %s" % a_expr)
                    em.emit("b = %s" % b_expr)
                    em.emit("raw = a - b")
                    em.emit("res = raw & 4294967295")
                    if writes:
                        em.drop(x)
                        em.emit("r%d = res" % x)
                    emit_fl(
                        carry="raw < 0",
                        overflow="((a ^ b) & %d) and ((a ^ res) & %d)" % (_SIGN, _SIGN),
                    )
                elif opcode is Op.MUL:
                    b_expr, _, __ = em.value_expr(x, y, need_clean=True)
                    em.emit("raw = %s * %s" % (em.render_clean(x), b_expr))
                    em.emit("res = raw & 4294967295")
                    em.drop(x)
                    em.emit("r%d = res" % x)
                    # MUL sets CF and OF together (raw overflowed 32 bits)
                    em.emit("fl = fl & %d" % _FLAG_KEEP)
                    em.emit("if raw > %d:" % _M)
                    out.emit(em.indent + 1, "fl |= 2049")
                    em.emit("if res == 0:")
                    out.emit(em.indent + 1, "fl |= 64")
                    em.emit("if res & %d:" % _SIGN)
                    out.emit(em.indent + 1, "fl |= 128")
                else:
                    # the logic family: AND/OR/XOR/SHL/SHR (+imm), NOT
                    if opcode in (Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR):
                        b_expr, _, __ = em.value_expr(x, y, need_clean=opcode is not Op.SHL)
                    a_expr = em.render_clean(x)
                    if opcode is Op.AND:
                        expr = "%s & %s" % (a_expr, b_expr)
                    elif opcode is Op.OR:
                        expr = "%s | %s" % (a_expr, b_expr)
                    elif opcode is Op.XOR:
                        expr = "%s ^ %s" % (a_expr, b_expr)
                    elif opcode is Op.ANDI:
                        expr = "%s & %d" % (a_expr, insn.imm & _M)
                    elif opcode is Op.ORI:
                        expr = "%s | %d" % (a_expr, insn.imm & _M)
                    elif opcode is Op.XORI:
                        expr = "%s ^ %d" % (a_expr, insn.imm & _M)
                    elif opcode is Op.SHL:
                        expr = "(%s << (%s & 31)) & 4294967295" % (a_expr, b_expr)
                    elif opcode is Op.SHR:
                        expr = "%s >> (%s & 31)" % (a_expr, b_expr)
                    elif opcode is Op.SHLI:
                        expr = "(%s << %d) & 4294967295" % (a_expr, insn.imm & 31)
                    elif opcode is Op.SHRI:
                        expr = "%s >> %d" % (a_expr, insn.imm & 31)
                    elif opcode is Op.NOT:
                        expr = "(~%s) & 4294967295" % a_expr
                    else:  # pragma: no cover - ALU_OPS is closed
                        raise AssertionError("untranslatable ALU op %r" % opcode)
                    em.emit("res = %s" % expr)
                    em.drop(x)
                    em.emit("r%d = res" % x)
                    emit_fl()  # logic clears CF and OF
            K += 1
            C += base_c
            emit_checkpoint(idx, nxt)
            continue

        # -- memory items ----------------------------------------------
        if fast:
            # steady body: the prologue proved window hit, alignment,
            # and (for stores) a snoop-free page for this site's
            # invariant EA, so the access is a raw slab index.  Cycles,
            # retires, and slab hit counters are all charged closed-form
            # after the loop.
            if opcode in (Op.LD, Op.LDH, Op.LDB):
                em.flush_dependents(x)
                em.emit("r%d = m%d[i%d]" % (x, k, k))
                em.drop(x)
            elif opcode in (Op.ST, Op.STH, Op.STB):
                size = _SITE_WIDTH[opcode]
                # Spill a pending value chain into its register local
                # instead of rendering it into the store: in a steady
                # loop the chain almost always feeds later uses too, and
                # inlining would compute it here and again at the
                # loop-bottom spill.
                if not em.ops[x] and isinstance(em.base[x], int):
                    value = str(em.base[x])
                else:
                    em.materialize(x)
                    value = "r%d" % x
                if size != 4:
                    mask = _SIZE_MASKS[size]
                    value = (
                        str(int(value) & mask) if value.isdigit()
                        else "(%s & %d)" % (value, mask)
                    )
                em.emit("m%d[i%d] = %s" % (k, k, value))
            elif opcode in (Op.PUSH, Op.PUSHI):
                # value read before the ESP move (push esp stores the
                # old value); the EA itself comes from the plan.
                if opcode is Op.PUSH and x != _ESP:
                    # same spill-don't-inline policy as the store arm
                    if not em.ops[x] and isinstance(em.base[x], int):
                        value = str(em.base[x])
                    else:
                        em.materialize(x)
                        value = "r%d" % x
                elif opcode is Op.PUSH:
                    # push esp: render inline so the pending ESP chain
                    # (which balanced push/pop cancellation may yet
                    # erase) is not spilled mid-iteration.
                    value, _, __ = em.value_expr(None, x, need_clean=True)
                else:
                    value = str(insn.imm & _M)
                em.emit("m%d[i%d] = %s" % (k, k, value))
                em.apply_add(_ESP, -1, 4)
            else:  # POP (pop esp is rejected by the plan)
                em.flush_dependents(x)
                em.emit("r%d = m%d[i%d]" % (x, k, k))
                em.apply_add(_ESP, 1, 4)
                em.drop(x)
            k += 1
            K += 1
            C += base_c
            continue
        if opcode in (Op.LD, Op.LDH, Op.LDB):
            size = _SITE_WIDTH[opcode]
            ea = addr_text(insn)
            if not _simple(ea):
                em.emit("ea = %s" % ea)
                ea = "ea"
            em.flush_dependents(x)
            if not hoist:
                em.emit("w = W[%d]" % k)
            em.emit("if %s:" % win_cond(k, size, ea))
            ind = em.indent + 1
            out.emit(ind, "r%d = %s" % (x, win_index(k, size, ea)))
            em.emit("else:")
            out.emit(ind, "w2 = W2[%d]" % k)
            out.emit(ind, "if %s:" % victim_cond(size, ea))
            out.emit(ind + 1, "r%d = %s" % (x, victim_index(size, ea)))
            if _ALIGN_SHIFT[size][0]:
                emit_unaligned_loads(ind, k, x, size, ea)
            out.emit(ind, "else:")
            ind += 1
            slow_entry(ind, address, base_c, K, C)
            out.emit(ind, "v, ram = slow_load(cpu, tr, %d, %s, %d, %d)" % (k, ea, size, address))
            out.emit(ind, "cpu.retired += 1")
            out.emit(ind, "SL%d.misses += 1" % size)
            out.emit(ind, "r%d = v" % x)
            out.emit(ind, "if not ram:")
            out.emit(ind + 1, "r[%d] = v" % x)
            emit_slab_hits(ind + 1, dict(KL), dict(KS))
            out.emit(ind + 1, "regs.eip = %d" % nxt)
            out.emit(ind + 1, "return")
            out.emit(ind, "SL%d.hits -= 1" % size)
            win_refresh(ind, k)
            em.drop(x)
            KL[size] += 1
            k += 1
        elif opcode in (Op.ST, Op.STH, Op.STB):
            size = _SITE_WIDTH[opcode]
            ea = addr_text(insn)
            if not _simple(ea):
                em.emit("ea = %s" % ea)
                ea = "ea"
            value, _, __ = em.value_expr(None, x, need_clean=True)
            if size != 4:
                mask = _SIZE_MASKS[size]
                value = (
                    str(int(value) & mask) if value.isdigit()
                    else "(%s & %d)" % (value, mask)
                )
            if not _simple(value):
                em.emit("v = %s" % value)
                value = "v"
            emit_store_paths(k, ea, value, size, address, nxt, base_c, K, C)
            KS[size] += 1
            k += 1
        elif opcode in (Op.PUSH, Op.PUSHI):
            # push reads its operand *before* decrementing ESP (so
            # ``push esp`` stores the old value), and a faulting store
            # leaves ESP already decremented - exactly as CPU.push does.
            if opcode is Op.PUSH:
                value, vdeps, _ = em.value_expr(None, x, need_clean=True)
                if not _simple(value) or _ESP in vdeps:
                    em.emit("v = %s" % value)
                    value = "v"
            else:
                value = str(insn.imm & _M)
            em.apply_add(_ESP, -1, 4)
            em.materialize(_ESP)
            emit_store_paths(k, "r4", value, 4, address, nxt, base_c, K, C)
            KS[4] += 1
            k += 1
        elif opcode is Op.POP:
            # pop loads first (a faulting load leaves ESP and the
            # destination untouched), then bumps ESP, then writes the
            # destination - so ``pop esp`` ends with the loaded value.
            em.materialize(_ESP)
            em.flush_dependents(x)
            if not hoist:
                em.emit("w = W[%d]" % k)
            em.emit("if %s:" % win_cond(k, 4, "r4"))
            ind = em.indent + 1
            out.emit(ind, "v = %s" % win_index(k, 4, "r4"))
            em.emit("else:")
            out.emit(ind, "w2 = W2[%d]" % k)
            out.emit(ind, "if %s:" % victim_cond(4, "r4"))
            out.emit(ind + 1, "v = %s" % victim_index(4, "r4"))
            out.emit(ind, "else:")
            ind += 1
            slow_entry(ind, address, base_c, K, C)
            out.emit(ind, "v, ram = slow_load(cpu, tr, %d, r4, 4, %d)" % (k, address))
            out.emit(ind, "cpu.retired += 1")
            out.emit(ind, "SL4.misses += 1")
            out.emit(ind, "if not ram:")
            out.emit(ind + 1, "r4 = (r4 + 4) & 4294967295")
            out.emit(ind + 1, "r%d = v" % x)
            out.emit(ind + 1, "r[4] = r4")
            if x != _ESP:
                out.emit(ind + 1, "r[%d] = r%d" % (x, x))
            emit_slab_hits(ind + 1, dict(KL), dict(KS))
            out.emit(ind + 1, "regs.eip = %d" % nxt)
            out.emit(ind + 1, "return")
            out.emit(ind, "SL4.hits -= 1")
            win_refresh(ind, k)
            em.emit("r4 = (r4 + 4) & 4294967295")
            em.emit("r%d = v" % x)
            em.drop(x)
            KL[4] += 1
            k += 1
        else:  # pragma: no cover - the builder filters opcodes
            raise AssertionError("untranslatable op %r at 0x%X" % (opcode, address))
        K += 1
        C += base_c
        emit_checkpoint(idx, nxt)

    if fast:
        # loop-bottom fixpoint, then closed-form accounting: the body
        # ran n whole iterations with the counter's subi as the last
        # flag writer, the guard provably taken, and nothing else
        # observable in between.
        em.materialize_all()
        counter = trace.counter_reg
        if counter_lone:
            # the elided per-iteration decrements, applied at once
            # (the bound keeps the counter >= 1, so no wraparound)
            out.emit(1, "r%d = r%d - n" % (counter, counter))
        out.emit(1, "fl = fl & %d" % _FLAG_KEEP)
        out.emit(1, "if r%d & %d:" % (counter, _SIGN))
        out.emit(2, "fl |= 128")
        out.emit(1, "if r%d == %d:" % (counter, _SIGN - 1))
        out.emit(2, "fl |= 2048")
        out.emit(1, "cpu.retired += n * %d" % trace.iter_retire)
        out.emit(1, "clock.charge(n * %d)" % trace.iter_cost)
        if cfa_used:
            # Each of the n elided closing guards was provably taken:
            # one bulk hash update, exactly equivalent to n single
            # records (the PathRecorder run-fold contract).
            guard = trace.items[-1]
            out.emit(1, "CF.record_edge_run(%d, %d, n)" % (guard[1], guard[4]))
        for width in _WIDTHS:
            if load_n[width]:
                out.emit(1, "SL%d.hits += n * %d" % (width, load_n[width]))
            if store_n[width]:
                out.emit(1, "SS%d.hits += n * %d" % (width, store_n[width]))
        emit_writebacks(1)
        out.emit(1, "regs.eflags = fl")
        out.emit(1, "regs.eip = %d" % trace.start)
    elif looping:
        # fixpoint: restore the loop-top assumption (all registers in
        # their locals), then batch the iteration's cycles/retires.
        em.materialize_all()
        out.emit(2, "p += %d" % trace.iter_cost)
        out.emit(2, "ret += %d" % trace.iter_retire)
        # natural exit at the head after n iterations
        emit_writebacks(1)
        out.emit(1, "regs.eflags = fl")
        out.emit(1, "cpu.retired += ret")
        out.emit(1, "if p:")
        out.emit(2, "clock.charge(p)")
        emit_slab_hits(1, {}, {}, loop_end=True)
        out.emit(1, "regs.eip = %d" % trace.start)
    else:
        # linear trace, or the linearized prefix body: a prefix body
        # that outlives its last checkpoint ran the whole straight
        # path, so a looping trace's prefix ends back at the head.
        final_eip = trace.start if trace.looping else trace.exit_eip
        emit_exit(1, final_eip, K, C, dict(KL), dict(KS))
    return out.source()


def _trace_namespace(counters):
    """Globals shared by every generated trace body."""
    # Deferred import: repro.perf.translate imports this module at load
    # time (the engine owns the JIT), so the module-level direction of
    # the dependency has to stay one-way.
    from repro.perf.translate import _slow_load, _slow_store

    return {
        "slow_load": _slow_load,
        "slow_store": _slow_store,
        "NW": _NO_WINDOW,
        "SL4": counters.slab_loads,
        "SS4": counters.slab_stores,
        "SL2": counters.slab_loads_u16,
        "SS2": counters.slab_stores_u16,
        "SL1": counters.slab_loads_u8,
        "SS1": counters.slab_stores_u8,
        "ge": counters.guard_exits.add,
    }


def translate_trace(trace, counters):
    """Compile ``trace`` in place: fills ``run``, ``source``, ``windows``,
    ``checkpoints`` (and ``run_fast`` for provably counted loop bodies
    that are memory-free or whose every memory EA is loop-invariant,
    see :func:`_steady_plan`).  The prefix body compiles lazily on
    first prefix admission (:meth:`TraceJIT._compile_prefix`) - most
    traces never need one."""
    namespace = _trace_namespace(counters)
    source = generate_trace(trace)
    code = compile(source, "<trace@0x%X>" % trace.start, "exec")
    exec(code, namespace)
    mem_sites = sum(
        1 for item in trace.items
        if item[0] == "insn" and item[2].opcode in MEM_OPS
    )
    trace.windows = [None] * mem_sites
    trace.windows2 = [None] * mem_sites
    trace.checkpoints = _checkpoint_plan(trace.items, trace.cfa)[1]
    trace.source = source
    trace.run = namespace["__trace__"]
    if trace.counter_reg is not None and (
        mem_sites == 0 or _steady_plan(trace.items[:-1]) is not None
    ):
        fast_source = generate_trace(trace, fast=True)
        fast_code = compile(fast_source, "<trace-fast@0x%X>" % trace.start, "exec")
        exec(fast_code, namespace)
        trace.run_fast = namespace["__trace_fast__"]
        trace.source = source + "\n" + fast_source
    return trace


class TraceJIT:
    """Trace dispatcher: edge profile, trace cache, horizon admission.

    Owned by the :class:`~repro.perf.translate.BlockEngine` (dispatch
    order per step: trace, then block, then single-step).  The engine
    consults it only after its own refusal checks (trace hook,
    watchpoints, decision cache present, epoch synced); the JIT adds
    one of its own - a ``transfer_hook`` (CFI-style) must observe every
    control transfer, and stitched branches would bypass it.
    """

    def __init__(self, engine, cpu):
        self.engine = engine
        self.cpu = cpu
        self.cache = TraceCache()
        self.profile = EdgeProfile()
        self.counters = TraceCounters()
        #: Exit address of the last trace/block execution; the next
        #: dispatch at a *different* address closes the edge.
        self.pending_edge = None
        cpu.memory.add_write_listener(self.cache.note_write)

    def epoch_flush(self, reason="mpu-epoch"):
        """Drop all traces and profiles (EA-MPU rule-table epoch moved,
        or the CFA enrolment generation changed)."""
        if self.cache.entries:
            self.cache.flush()
            self.counters.flushes.add()
            obs = self.engine.obs
            if obs is not None:
                obs.publish("perf", "trace-flush", reason=reason)
        self.profile.flush()
        self.pending_edge = None

    def maybe_build(self, eip):
        """Stitch, compile, and cache the trace headed at ``eip``."""
        memory = self.cpu.memory
        mpu = memory.mpu
        if mpu is not None and mpu.decisions is None:
            return
        cache = self.cache
        if eip in cache.entries:
            return
        trace = build_trace(memory, eip, self.profile, self.cpu.cfa)
        if trace is None:
            # Remember the refusal, but snoop the head's page so the
            # marker drops when the code there changes.
            marker = Trace(eip, (), False, None)
            marker.pages = frozenset({eip >> PAGE_SHIFT})
            cache.put(marker)
            memory.snooped_pages.add(eip >> SNOOP_PAGE_SHIFT)
            return
        translate_trace(trace, self.counters)
        cache.put(trace)
        # Block-cache pages and memory snoop pages share the 256-byte
        # granule, so the page sets interchange directly.
        memory.snooped_pages.update(trace.pages)
        self.counters.compiles.add()
        obs = self.engine.obs
        if obs is not None:
            obs.publish(
                "perf",
                "trace-compile",
                start=trace.start,
                insns=len(trace.items),
                looping=trace.looping,
                cost=trace.iter_cost,
                counted=trace.counter_reg is not None,
            )

    def dispatch(self, cpu, eip):
        """Run the trace at ``eip`` if present and admitted.

        Returns the cycles charged, or ``None`` to fall through to the
        block tier.  Also consumes the pending exit edge (building a
        new trace when the edge crosses the hot threshold).
        """
        pending = self.pending_edge
        if pending is not None and pending != eip:
            self.pending_edge = None
            if self.profile.note(pending, eip):
                self.maybe_build(eip)
        if cpu.transfer_hook is not None:
            return None
        cache = self.cache
        trace = cache.entries.get(eip)
        if trace is None or trace.run is None:
            return None
        clock = cpu.clock
        horizon = self.engine.horizon
        limit = horizon() if horizon is not None else None
        counters = self.counters
        if trace.looping:
            if limit is None:
                iters = DEFAULT_LOOP_ITERS
            else:
                iters = (limit - clock.now) // trace.iter_cost
                if iters <= 0:
                    # Not even one whole iteration fits before an IRQ
                    # can become pending: admit a checkpoint prefix of
                    # a single iteration instead of falling back a tier.
                    return self._dispatch_prefix(cpu, trace, limit)
                if iters > MAX_LOOP_ITERS:
                    iters = MAX_LOOP_ITERS
            cache.stats.hits += 1
            counters.admits_full.add()
            before = clock.now
            if trace.run_fast is not None:
                bound = cpu.regs.gpr[trace.counter_reg] - 1
                if bound > iters:
                    bound = iters
                # A steady body (counted loop with memory) returns False
                # without touching state when a window/alignment/snoop
                # precondition fails; the general body below then runs
                # and its slow paths install the missing windows.
                if bound >= 1 and trace.run_fast(cpu, trace, bound) is not False:
                    self._prefix_tail(cpu, trace, limit)
                    self.pending_edge = cpu.regs.eip
                    return clock.now - before
            trace.run(cpu, trace, iters)
            self._prefix_tail(cpu, trace, limit)
            self.pending_edge = cpu.regs.eip
            return clock.now - before
        if limit is not None and clock.now + trace.iter_cost > limit:
            # The whole straight path does not fit: admit its largest
            # checkpoint prefix instead.
            return self._dispatch_prefix(cpu, trace, limit)
        cache.stats.hits += 1
        counters.admits_full.add()
        before = clock.now
        trace.run(cpu, trace, 1)
        self.pending_edge = cpu.regs.eip
        return clock.now - before

    def _compile_prefix(self, trace):
        """Lazily compile the horizon-split prefix body (most traces
        never need one, so :func:`translate_trace` skips it)."""
        namespace = _trace_namespace(self.counters)
        source = generate_trace(trace, prefix=True)
        code = compile(source, "<trace-prefix@0x%X>" % trace.start, "exec")
        exec(code, namespace)
        run_prefix = namespace["__trace_prefix__"]
        trace.run_prefix = run_prefix
        trace.source = (trace.source or "") + "\n" + source
        return run_prefix

    def _dispatch_prefix(self, cpu, trace, limit):
        """Admit the largest checkpoint prefix of one body iteration.

        ``trace.checkpoints`` holds the exact cumulative cycle cost at
        each countdown checkpoint, strictly increasing, so one bisect
        finds how many checkpoints fit before the horizon.  Zero means
        the dispatch falls back a tier (counted as a reject *and* an
        engine deferral, like the old whole-body refusal).
        """
        counters = self.counters
        clock = cpu.clock
        n = bisect_right(trace.checkpoints, limit - clock.now)
        if n <= 0:
            counters.admits_reject.add()
            self.engine.deferrals.add()
            return None
        run_prefix = trace.run_prefix
        if run_prefix is None:
            run_prefix = self._compile_prefix(trace)
        self.cache.stats.hits += 1
        counters.admits_prefix.add()
        before = clock.now
        run_prefix(cpu, trace, n)
        self.pending_edge = cpu.regs.eip
        return clock.now - before

    def _prefix_tail(self, cpu, trace, limit):
        """Spend the sub-iteration remainder of the horizon budget.

        Called after a fully-admitted looping run: when the trace is
        still valid and execution ended back at the loop head with less
        than one whole iteration of budget left, the largest checkpoint
        prefix of the next iteration still fits by construction - the
        checkpoint costs are a prefix of the iteration cost the
        admission test already bounded.
        """
        if limit is None or not trace.valid:
            return
        if cpu.regs.eip != trace.start:
            return  # guard exit or self-modification abort mid-body
        clock = cpu.clock
        if limit - clock.now >= trace.iter_cost:
            # A whole iteration still fits (counted loop ran out of
            # counter, not budget): leave it to the next dispatch.
            return
        n = bisect_right(trace.checkpoints, limit - clock.now)
        if n <= 0:
            return
        run_prefix = trace.run_prefix
        if run_prefix is None:
            run_prefix = self._compile_prefix(trace)
        self.counters.admits_prefix.add()
        run_prefix(cpu, trace, n)
