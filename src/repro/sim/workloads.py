"""Synthetic workloads for the benchmark harness.

The micro-bench tables sweep task parameters:

* Table 5 - relocation count (and site alignment: the min column is
  the all-aligned case, the avg column includes unaligned sites);
* Table 7 - measured memory size in 64-byte blocks, and reverted
  relocation count;
* Table 4 - a reference task of ~62 blocks with 9 relocations;
* Table 1 - a large (~tens of ms to load) radar task.

:func:`synthetic_image` builds :class:`~repro.image.telf.TaskImage`
objects with exact block/relocation counts directly (no assembler
round-trip), with relocation sites holding addend 0 so the image stays
loadable.  :func:`periodic_sender_source` and friends generate real
assembly for runnable tasks.
"""

from __future__ import annotations

from repro import cycles
from repro.core.identity import HEADER_BYTES
from repro.image.telf import TaskImage


def synthetic_image(
    blocks=1,
    relocations=0,
    aligned_relocs=True,
    stack_size=512,
    name=None,
    seed=1,
):
    """A task image measuring exactly ``blocks`` 64-byte blocks.

    The measured stream is the 16-byte header plus the blob, so the
    blob is sized ``blocks * 64 - HEADER_BYTES``.  Relocation sites are
    placed in the blob's tail, word-aligned when ``aligned_relocs`` is
    true and deliberately offset by 1..3 bytes otherwise (the unaligned
    penalty produces Table 5's avg column).

    The blob starts with a single ``hlt`` so the task is technically
    executable; these images exist to be loaded and measured, not run.
    """
    if blocks < 1:
        raise ValueError("need at least one block")
    blob_len = blocks * cycles.MEASURE_BLOCK_BYTES - HEADER_BYTES
    min_needed = 8 * relocations + 8
    if blob_len < min_needed:
        raise ValueError(
            "%d blocks cannot hold %d relocations" % (blocks, relocations)
        )
    blob = bytearray(blob_len)
    blob[0] = 0x01  # hlt
    for index in range(1, blob_len):
        blob[index] = (seed * 167 + index * 31) & 0xFF

    sites = []
    # Leave slack between sites so unaligned nudges cannot collide.
    cursor = blob_len - 8 * relocations
    cursor -= cursor % 4  # word-align the relocation area
    for index in range(relocations):
        site = cursor + 8 * index
        # With random layouts 3 of 4 sites land unaligned; the seed
        # phases the pattern so averaging over seeds 0..3 reproduces
        # exactly that 3/4 ratio (Table 5's avg column).
        if not aligned_relocs and (seed + index) % 4 != 0:
            site = max(4, site + 1 + (seed + index) % 3)
        # Sites must not overlap; nudge until free.
        while any(abs(site - other) < 4 for other in sites):
            site += 4
        if site + 4 > blob_len:
            site = blob_len - 4
            while any(abs(site - other) < 4 for other in sites):
                site -= 4
        sites.append(site)
        blob[site : site + 4] = (0).to_bytes(4, "little")

    image_name = name or ("synthetic-b%d-r%d" % (blocks, relocations))
    return TaskImage(
        image_name,
        bytes(blob),
        entry=0,
        relocations=sites,
        bss_size=0,
        stack_size=stack_size,
    )


def reference_table4_image(stack_size=512):
    """The Table 4 reference task: 62 measured blocks, 9 relocations.

    (The paper's footnote 11: "With 9 relocations and a memory size of
    3,962 Bytes"; 62 blocks of SHA-1 input covers that image size.)
    """
    return synthetic_image(
        blocks=62, relocations=9, stack_size=stack_size, name="table4-ref"
    )


def periodic_sender_source(
    mmio_address,
    receiver_id64,
    period_cycles=32_000,
    pad_words=0,
    pad_relocs=0,
):
    """Assembly for a periodic sensor task: read MMIO, IPC, sleep.

    ``receiver_id64`` is the 8-byte truncated identity of the receiver,
    embedded as immediates (footnote 3: "Provisioning S with id_R is
    left to the task developer").  ``pad_words``/``pad_relocs`` grow the
    image (Table 1 loads a deliberately large radar task).
    """
    id_lo = int.from_bytes(bytes(receiver_id64)[:4], "little")
    id_hi = int.from_bytes(bytes(receiver_id64)[4:8], "little")
    lines = [
        ".section .text",
        ".global start",
        "start:",
        "    movi ebp, 0x%X" % mmio_address,
        "again:",
        "    ld eax, [ebp]        ; sensor sample -> message word 0",
        "    movi ebx, 0",
        "    movi ecx, 0",
        "    movi edx, 0",
        "    movi esi, 0x%X" % id_lo,
        "    movi edi, 0x%X" % id_hi,
        "    int 0x21             ; async secure IPC",
        "    movi eax, 7          ; DELAY_CYCLES",
        "    movi ebx, %d" % period_cycles,
        "    int 0x20",
        "    jmp again",
    ]
    if pad_words or pad_relocs:
        lines.append(".section .data")
        lines.append("pad_base:")
        for index in range(pad_relocs):
            lines.append("    .word pad_base   ; padding relocation %d" % index)
        if pad_words:
            lines.append("    .space %d" % (4 * pad_words))
    return "\n".join(lines) + "\n"


def busy_loop_source(iterations):
    """Assembly for a pure compute task that exits when done."""
    return "\n".join(
        [
            ".section .text",
            ".global start",
            "start:",
            "    movi ecx, %d" % iterations,
            "    movi eax, 0",
            "spin:",
            "    addi eax, 1",
            "    subi ecx, 1",
            "    cmpi ecx, 0",
            "    jnz spin",
            "    movi eax, 2          ; EXIT",
            "    int 0x20",
        ]
    ) + "\n"


def counter_task_source(period_ticks=1, store_symbol="counter"):
    """Assembly for a task bumping a counter every ``period_ticks``."""
    return "\n".join(
        [
            ".section .text",
            ".global start",
            "start:",
            "    movi esi, %s" % store_symbol,
            "again:",
            "    ld eax, [esi]",
            "    addi eax, 1",
            "    st [esi], eax",
            "    movi eax, 1          ; DELAY (ticks)",
            "    movi ebx, %d" % period_ticks,
            "    int 0x20",
            "    jmp again",
            ".section .data",
            "%s:" % store_symbol,
            "    .word 0",
        ]
    ) + "\n"
