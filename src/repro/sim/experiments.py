"""Programmatic experiment drivers: regenerate every paper table.

The pytest benches under ``benchmarks/`` assert tolerances; this module
provides the same measurements as plain functions returning
``(label, paper_value, measured_value)`` rows, so the reproduction can
be driven without pytest (``python -m repro.tools.bench``) or embedded
in other tooling.
"""

from __future__ import annotations

from repro import TyTAN, build_freertos_baseline, cycles
from repro.hw.ea_mpu import MpuRule, Perm
from repro.isa.assembler import assemble
from repro.image.linker import link
from repro.rtos.task import NativeCall
from repro.sim.footprint import (
    freertos_footprint,
    overhead_percent,
    total_bytes,
    tytan_footprint,
)
from repro.sim.workloads import reference_table4_image, synthetic_image

_SPIN = ".global start\nstart:\n    jmp start"


def measure_table1():
    """Use-case task frequencies before/while/after loading t2 (kHz)."""
    from repro.uc.cruise_control import CONTROL_PERIOD_CYCLES, CruiseControlSystem

    system = TyTAN()
    uc = CruiseControlSystem(system)
    uc.t2_activation_hook()
    hz = system.platform.config.hz
    phase = int(0.030 * hz)
    a0 = system.clock.now
    system.run(max_cycles=phase)
    a1 = system.clock.now
    uc.activate_cruise_control()
    system.run(until=lambda: uc.t2_result.done)
    b1 = system.clock.now
    system.run(max_cycles=phase)
    c1 = system.clock.now

    rows = []
    paper = {
        ("t1", "before"): 1.5, ("t2", "before"): 0.0, ("t0", "before"): 1.5,
        ("t1", "while"): 1.5, ("t0", "while"): 1.5,
        ("t1", "after"): 1.5, ("t2", "after"): 1.5, ("t0", "after"): 1.5,
    }
    windows = {"before": (a0, a1), "while": (a1, b1), "after": (b1, c1)}
    for (task_name, phase_name), expected in paper.items():
        report = uc.monitor.report(
            task_name, *windows[phase_name], period=CONTROL_PERIOD_CYCLES
        )
        rows.append(
            ("%s %s loading (kHz)" % (task_name, phase_name), expected, round(report.khz, 2))
        )
    rows.append(
        (
            "t2 load time (ms)",
            27.8,
            round(uc.t2_result.total_cycles * 1000.0 / hz, 2),
        )
    )
    return rows


def measure_table2():
    """Saving a secure task's context (cycles)."""
    system = TyTAN()
    system.load_task(system.build_image(_SPIN, "spin"), secure=True)
    system.run(max_cycles=40_000)
    save = system.int_mux.last_save

    platform, kernel, loader = build_freertos_baseline()
    loader.load_synchronously(link(assemble(_SPIN, "spin"), stack_size=128))
    observed = []
    original = kernel.context_policy.save_context
    kernel.context_policy.save_context = lambda task: observed.append(
        original(task)
    ) or observed[-1]
    kernel.run(max_cycles=40_000)
    baseline = observed[0]
    return [
        ("store context", 38, save["store"]),
        ("wipe registers", 16, save["wipe"]),
        ("branch", 41, save["branch"]),
        ("overall", 95, save["overall"]),
        ("freertos baseline", 38, baseline),
        ("overhead", 57, save["overall"] - baseline),
    ]


def measure_table3():
    """Restoring a secure task's context (cycles)."""
    system = TyTAN()
    system.load_task(system.build_image(_SPIN, "spin"), secure=True)
    system.run(max_cycles=80_000)
    restore = system.kernel.context_policy.entry_routine.last_restore
    baseline = cycles.restore_context_cycles()
    return [
        ("branch (incl. entry check)", 106, restore["branch"]),
        ("restore", 254, restore["restore"]),
        ("overall", 384, restore["overall"]),
        ("freertos baseline", 254, baseline),
        ("overhead", 130, restore["overall"] - baseline),
    ]


def measure_table4():
    """Creating a secure / normal task (cycles)."""
    def load_once(secure):
        system = TyTAN()
        system.load_task(reference_table4_image(), secure=secure, measure=secure)
        return system.loader.last_breakdown

    secure = load_once(True)
    normal = load_once(False)
    return [
        ("secure: relocation", 3_692, secure["relocation"]),
        ("secure: EA-MPU", 225, secure["eampu"]),
        ("secure: RTM", 433_433, secure["rtm"]),
        ("secure: overall", 642_241, secure["overall"]),
        ("normal: overall", 208_808, normal["overall"]),
        ("normal: RTM", 0, normal["rtm"]),
    ]


def measure_table5():
    """Relocation cost vs number of addresses (cycles, min and avg)."""
    paper = {0: (37, 37), 1: (673, 703), 2: (1_346, 1_372), 4: (2_634, 2_711)}

    def one(entries, aligned, seed=1):
        system = TyTAN()
        image = synthetic_image(
            blocks=4, relocations=entries, aligned_relocs=aligned, seed=seed
        )
        system.load_task(image, secure=False, measure=False)
        return system.loader.last_breakdown["relocation"]

    rows = []
    for entries, (paper_min, paper_avg) in paper.items():
        measured_min = one(entries, True)
        measured_avg = sum(one(entries, False, seed) for seed in range(4)) / 4
        rows.append(("%d addresses (min)" % entries, paper_min, measured_min))
        rows.append(("%d addresses (avg)" % entries, paper_avg, measured_avg))
    return rows


def measure_table6():
    """EA-MPU configuration vs first free slot position (cycles)."""
    from repro.core.mpu_driver import EAMPUDriver
    from repro.hw.clock import CycleClock
    from repro.hw.ea_mpu import EAMPU

    def fill_rule(index):
        base = 0x300000 + index * 0x1000
        return MpuRule(
            "fill-%d" % index, base, base + 0x100, base, base + 0x100, Perm.RWX
        )

    paper = {1: 1_125, 2: 1_144, 18: 1_448}
    rows = []
    for position, paper_overall in paper.items():
        mpu = EAMPU()
        clock = CycleClock()
        driver = EAMPUDriver(mpu, clock)
        driver.bind(0x10000, 0x1000)
        for index in range(position - 1):
            mpu.program_slot(index, fill_rule(index))
        before = clock.now
        driver.configure_rule(fill_rule(99))
        rows.append(("first free slot %d" % position, paper_overall, clock.now - before))
    return rows


def measure_table7():
    """Measuring a task: block and address sweeps (cycles)."""
    def measure(blocks, relocations):
        system = TyTAN()
        image = synthetic_image(blocks=blocks, relocations=relocations)
        task = system.load_task(image, secure=False, measure=False)
        hash_cost = reversal_cost = 0
        for call in system.rtm.measure(task):
            system.clock.charge(call.value)
            if call.value in (
                cycles.REVERSAL_BASE,
                cycles.REVERSAL_FIRST,
                cycles.REVERSAL_NEXT,
            ):
                reversal_cost += call.value
            else:
                hash_cost += call.value
        return hash_cost, reversal_cost

    rows = []
    for blocks, paper in ((1, 8_261), (2, 12_200), (4, 20_078), (8, 35_790)):
        rows.append(("%d block(s)" % blocks, paper, measure(blocks, 0)[0]))
    for addresses, paper in ((0, 114), (1, 680), (2, 1_188), (4, 2_187)):
        rows.append(
            ("%d address(es) reverted" % addresses, paper, measure(8, addresses)[1])
        )
    return rows


def measure_table8():
    """OS memory consumption (bytes)."""
    base = freertos_footprint()
    extended = tytan_footprint()
    return [
        ("FreeRTOS", 215_617, total_bytes(base)),
        ("TyTAN", 249_943, total_bytes(extended)),
        ("overhead %", 15.92, round(overhead_percent(base, extended), 2)),
    ]


def measure_ipc():
    """Secure IPC latency (cycles)."""
    system = TyTAN()

    def idle(kernel, task):
        while True:
            yield NativeCall.delay_cycles(100_000)

    sender = system.create_service_task("sender", 3, idle, protect=False)
    system.rtm.register_service(sender, "sender")
    receiver = system.create_service_task("receiver", 4, idle, protect=False)
    receiver_id = system.rtm.register_service(receiver, "receiver")[:8]
    before = system.clock.now
    system.ipc.send(sender, receiver_id, [1, 2, 3, 4])
    proxy = system.clock.now - before
    entry = cycles.ENTRY_MODE_CHECK + cycles.IPC_ENTRY_ROUTINE_RECEIVE
    return [
        ("IPC proxy", 1_208, proxy),
        ("receiver entry routine", 116, entry),
        ("overall", 1_324, proxy + entry),
    ]


#: Experiment registry: name -> (description, driver).
EXPERIMENTS = {
    "table1": ("use-case task frequencies (Figure 2)", measure_table1),
    "table2": ("saving a secure task's context", measure_table2),
    "table3": ("restoring a secure task's context", measure_table3),
    "table4": ("creating a task", measure_table4),
    "table5": ("relocation", measure_table5),
    "table6": ("EA-MPU configuration", measure_table6),
    "table7": ("measuring a task", measure_table7),
    "table8": ("OS memory consumption", measure_table8),
    "ipc": ("secure IPC latency", measure_ipc),
}
