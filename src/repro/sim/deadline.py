"""Rate and deadline analysis for the real-time evaluation.

Table 1 of the paper reports the frequency of tasks t0/t1/t2 before,
while, and after loading t2 - all three stay at 1.5 kHz, demonstrating
that loading is fully preemptible.  :class:`RateMonitor` computes those
frequencies from an :class:`~repro.sim.trace.ActivationRecorder` and
checks per-activation deadlines (an activation is "missed" when the gap
to its predecessor exceeds the period by more than a tolerance).
"""

from __future__ import annotations


class RateReport:
    """Frequency and deadline statistics for one task in one window."""

    def __init__(self, name, window, activations, hz, max_gap, missed):
        self.name = name
        self.window = window
        self.activations = activations
        self.hz = hz
        self.max_gap = max_gap
        self.missed = missed

    @property
    def khz(self):
        """Frequency in kHz (the unit Table 1 reports)."""
        return self.hz / 1000.0

    def __repr__(self):
        return "RateReport(%s, %.3f kHz, %d activations, missed=%d)" % (
            self.name,
            self.khz,
            self.activations,
            self.missed,
        )


class RateMonitor:
    """Computes :class:`RateReport` objects from recorded activations."""

    def __init__(self, recorder, clock_hz):
        self.recorder = recorder
        self.clock_hz = clock_hz

    def report(self, name, start, end, period=None, tolerance=0.25):
        """Analyse ``name``'s activations in cycle window ``[start, end)``.

        ``period`` (cycles) enables deadline checking: a gap larger than
        ``period * (1 + tolerance)`` counts as a missed deadline.
        """
        stamps = [
            t for t in self.recorder.timestamps(name) if start <= t < end
        ]
        window = end - start
        hz = len(stamps) * self.clock_hz / window if window > 0 else 0.0
        max_gap = 0
        missed = 0
        for previous, current in zip(stamps, stamps[1:]):
            gap = current - previous
            max_gap = max(max_gap, gap)
            if period is not None and gap > period * (1 + tolerance):
                missed += 1
        return RateReport(name, (start, end), len(stamps), hz, max_gap, missed)

    def khz(self, name, start, end):
        """Frequency in kHz over a window (Table 1's cell format)."""
        return self.report(name, start, end).khz
