"""The Table 8 memory-consumption model.

"The memory consumption of TyTAN's OS is the amount of memory used when
no task is loaded."  The paper reports 215,617 bytes for plain FreeRTOS
and 249,943 bytes for TyTAN - a 15.92% overhead.

We model the boot image as a list of per-component footprints
(text / rodata / data / bss, the sections a linker map reports).  The
FreeRTOS base is the ported kernel plus its runtime; TyTAN adds the six
trusted components and the ELF loader extension.  The component-level
split is our reconstruction (the paper reports only the totals); the
totals are the paper's.
"""

from __future__ import annotations


class ComponentFootprint:
    """Linker-map-style size record for one component."""

    def __init__(self, name, text, rodata, data, bss):
        self.name = name
        self.text = text
        self.rodata = rodata
        self.data = data
        self.bss = bss

    @property
    def total(self):
        """All sections combined."""
        return self.text + self.rodata + self.data + self.bss

    def __repr__(self):
        return "ComponentFootprint(%s, %d B)" % (self.name, self.total)


#: The ported FreeRTOS base image.
FREERTOS_COMPONENTS = [
    ComponentFootprint("startup+vectors", 4_096, 512, 128, 384),
    ComponentFootprint("port-layer", 13_312, 1_824, 896, 2_208),
    ComponentFootprint("scheduler", 46_080, 5_632, 2_048, 10_558),
    ComponentFootprint("queues", 17_408, 2_048, 1_024, 3_324),
    ComponentFootprint("software-timers", 11_264, 1_280, 512, 2_114),
    ComponentFootprint("event-groups", 7_168, 768, 256, 1_432),
    ComponentFootprint("heap-allocator", 5_120, 512, 256, 1_538),
    ComponentFootprint("libc-subset", 24_576, 3_072, 1_024, 3_103),
    ComponentFootprint("app-shell", 9_216, 1_024, 512, 1_848),
    ComponentFootprint("idle+stats", 6_144, 768, 384, 1_644),
    ComponentFootprint("kernel-stacks", 0, 0, 0, 18_600),
]

#: TyTAN's additions: the trusted components plus the loader extension.
TYTAN_COMPONENTS = [
    ComponentFootprint("elf-loader-ext", 7_424, 1_024, 256, 1_108),
    ComponentFootprint("rtm+sha1", 5_632, 640, 128, 1_020),
    ComponentFootprint("ipc-proxy", 3_072, 256, 128, 492),
    ComponentFootprint("int-mux", 1_664, 128, 64, 258),
    ComponentFootprint("ea-mpu-driver", 2_560, 256, 128, 324),
    ComponentFootprint("remote-attest", 2_688, 384, 64, 394),
    ComponentFootprint("secure-storage", 3_200, 384, 128, 522),
]


def freertos_footprint():
    """The plain FreeRTOS image components."""
    return list(FREERTOS_COMPONENTS)


def tytan_footprint():
    """The TyTAN image components (FreeRTOS base + trusted additions)."""
    return list(FREERTOS_COMPONENTS) + list(TYTAN_COMPONENTS)


def total_bytes(components):
    """Total image size of a component list."""
    return sum(component.total for component in components)


def overhead_percent(baseline, extended):
    """Size overhead of ``extended`` over ``baseline``, in percent."""
    base = total_bytes(baseline)
    return (total_bytes(extended) - base) * 100.0 / base


def secure_task_overhead_bytes():
    """Extra bytes a *secure* task image carries versus a normal one.

    "Secure tasks implement an entry routine to handle interrupts,
    which slightly increases the memory consumption of secure tasks."
    The entry routine template is a fixed-size stub the tool chain
    prepends.
    """
    return 96
