"""VCD (Value Change Dump) export of kernel execution traces.

Hardware people read waveforms.  :class:`VcdRecorder` listens to kernel
events and records per-task scheduling state plus interrupt activity as
signals on the platform's cycle clock; :meth:`VcdRecorder.dump` writes
an IEEE-1364 VCD file loadable in GTKWave & friends, with one 3-bit
state signal per task (idle/ready/running/blocked/suspended) and an
event wire per interrupt vector.
"""

from __future__ import annotations

from repro.rtos.task import TaskState

#: VCD state encoding for task signals.
STATE_CODES = {
    None: 0,  # not yet created / deleted
    TaskState.READY: 1,
    TaskState.RUNNING: 2,
    TaskState.BLOCKED: 3,
    TaskState.SUSPENDED: 4,
    TaskState.DELETED: 5,
}

_IDCHARS = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


class VcdRecorder:
    """Records task-state and IRQ changes for VCD export.

    Attach to a kernel at construction; drive the system; call
    :meth:`dump`.  State sampling is event-based (state changes are
    captured whenever the kernel emits an event), which is exactly when
    the states can change.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.clock = kernel.clock
        #: signal name -> list of (cycle, value)
        self._changes = {}
        #: last recorded value per signal
        self._last = {}
        #: known task signals: tid -> signal name
        self._task_signals = {}
        kernel.add_event_sink(self._on_event)
        # Per-transition precision: the scheduler notifies us directly.
        kernel.scheduler.state_hook = self._on_state_change
        self._sample(0)

    def _on_state_change(self, task):
        name = self._signal_for(task)
        self._record(name, self.clock.now, STATE_CODES.get(task.state, 0))

    # -- recording ------------------------------------------------------------

    def _signal_for(self, task):
        if task.tid not in self._task_signals:
            name = "task_%s" % task.name.replace(" ", "_").replace(":", "_")
            # Disambiguate duplicates by tid.
            if name in self._changes:
                name = "%s_%d" % (name, task.tid)
            self._task_signals[task.tid] = name
            self._changes[name] = []
            self._last[name] = None
        return self._task_signals[task.tid]

    def _record(self, name, cycle, value):
        if self._last.get(name) == value:
            return
        self._changes.setdefault(name, []).append((cycle, value))
        self._last[name] = value

    def _sample(self, cycle):
        for task in list(self.kernel.scheduler.tasks.values()):
            name = self._signal_for(task)
            self._record(name, cycle, STATE_CODES.get(task.state, 0))

    def _on_event(self, cycle, kind, data):
        if kind == "irq":
            self._record("irq_%d" % data.get("vector", 0), cycle, 1)
            self._record("irq_%d" % data.get("vector", 0), cycle + 1, 0)
        if kind == "task-deleted":
            # Final edge for the deleted task's signal.
            for tid, name in self._task_signals.items():
                if data.get("tid") == tid:
                    self._record(name, cycle, STATE_CODES[TaskState.DELETED])
        self._sample(cycle)

    # -- export ---------------------------------------------------------------

    def dump(self, path=None):
        """Render the VCD text; write to ``path`` when given."""
        lines = [
            "$date TyTAN simulation $end",
            "$version repro %s $end" % "1.0.0",
            "$timescale 1 ns $end",  # 1 cycle ~ 1 ns for viewing purposes
            "$scope module tytan $end",
        ]
        ids = {}
        for index, name in enumerate(sorted(self._changes)):
            code = self._id_code(index)
            ids[name] = code
            width = 3 if name.startswith("task_") else 1
            lines.append("$var wire %d %s %s $end" % (width, code, name))
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        # Merge change lists into a single timeline.
        timeline = {}
        for name, changes in self._changes.items():
            for cycle, value in changes:
                timeline.setdefault(cycle, []).append((name, value))
        for cycle in sorted(timeline):
            lines.append("#%d" % cycle)
            for name, value in timeline[cycle]:
                if name.startswith("task_"):
                    lines.append("b%s %s" % (format(value, "03b"), ids[name]))
                else:
                    lines.append("%d%s" % (value, ids[name]))
        text = "\n".join(lines) + "\n"
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def _id_code(self, index):
        """Short VCD identifier for signal ``index``."""
        if index < len(_IDCHARS):
            return _IDCHARS[index]
        return _IDCHARS[index % len(_IDCHARS)] + _IDCHARS[index // len(_IDCHARS)]

    def signal_names(self):
        """All recorded signal names."""
        return sorted(self._changes)

    def changes(self, name):
        """The (cycle, value) change list of one signal."""
        return list(self._changes.get(name, []))
