"""Event tracing.

:class:`EventTrace` records ``(cycle, kind, data)`` tuples with query
helpers.  It is now a thin compatibility shim over the unified
observability bus (:mod:`repro.obs`): given a kernel it subscribes to
``kernel.obs`` and therefore sees events from *every* layer (hardware,
kernel, trusted components), not just the kernel's own emissions.  New
code should use the bus directly - ``kernel.obs.subscribe`` /
``kernel.obs.of_kind`` - and the :mod:`repro.obs.exporters` for output.

:class:`ActivationRecorder` timestamps task activations for rate
analysis (the Table 1 experiment measures whether 1.5 kHz tasks hold
their frequency while a load is in flight).
"""

from __future__ import annotations


class EventTrace:
    """An in-memory event log (compatibility shim over the bus)."""

    def __init__(self, kernel=None, keep=None, bus=None):
        self.events = []
        #: Optional whitelist of event kinds to keep.
        self.keep = set(keep) if keep is not None else None
        if bus is None and kernel is not None:
            bus = getattr(kernel, "obs", None)
        if bus is not None and bus.enabled:
            bus.subscribe(self._on_bus_event)
        elif kernel is not None:
            # Bus absent or disabled: fall back to the legacy sink so
            # the trace still fills from kernel emissions.
            kernel.add_event_sink(self)

    def _on_bus_event(self, event):
        self(event.cycle, event.kind, event.data)

    def __call__(self, cycle, kind, data):
        if self.keep is None or kind in self.keep:
            self.events.append((cycle, kind, dict(data)))

    def of_kind(self, kind):
        """All events of one kind."""
        return [event for event in self.events if event[1] == kind]

    def count(self, kind):
        """Number of events of one kind."""
        return len(self.of_kind(kind))

    def between(self, start, end):
        """Events in cycle window ``[start, end)``."""
        return [event for event in self.events if start <= event[0] < end]

    def last(self, kind):
        """Most recent event of one kind, or ``None``."""
        matches = self.of_kind(kind)
        return matches[-1] if matches else None

    def clear(self):
        """Drop all recorded events."""
        self.events = []


class ActivationRecorder:
    """Timestamps of named activations (one list per name).

    Tasks (or their wrappers) call :meth:`mark` once per activation;
    :class:`repro.sim.deadline.RateMonitor` analyses the result.
    """

    def __init__(self, clock):
        self.clock = clock
        self.marks = {}

    def mark(self, name):
        """Record one activation of ``name`` now."""
        self.marks.setdefault(name, []).append(self.clock.now)

    def timestamps(self, name):
        """All activation cycles recorded for ``name``."""
        return list(self.marks.get(name, []))

    def count_between(self, name, start, end):
        """Activations of ``name`` in cycle window ``[start, end)``."""
        return sum(1 for t in self.marks.get(name, []) if start <= t < end)
