"""Measurement and experiment infrastructure.

* :mod:`repro.sim.trace` - event tracing and activation recording;
* :mod:`repro.sim.deadline` - rate / deadline monitors for the Table 1
  real-time evaluation;
* :mod:`repro.sim.footprint` - the Table 8 memory-consumption model;
* :mod:`repro.sim.workloads` - synthetic task-image generators used by
  the Table 4/5/7 benches.
"""

from repro.sim.trace import EventTrace, ActivationRecorder
from repro.sim.deadline import RateMonitor, RateReport
from repro.sim.footprint import (
    ComponentFootprint,
    freertos_footprint,
    tytan_footprint,
    total_bytes,
    overhead_percent,
)
from repro.sim.workloads import (
    synthetic_image,
    periodic_sender_source,
    busy_loop_source,
    counter_task_source,
)
from repro.sim.analysis import (
    cpu_shares,
    jitter_stats,
    response_times,
    utilization_bound_rm,
)
from repro.sim.vcd import VcdRecorder

__all__ = [
    "EventTrace",
    "ActivationRecorder",
    "RateMonitor",
    "RateReport",
    "ComponentFootprint",
    "freertos_footprint",
    "tytan_footprint",
    "total_bytes",
    "overhead_percent",
    "synthetic_image",
    "periodic_sender_source",
    "busy_loop_source",
    "counter_task_source",
    "cpu_shares",
    "jitter_stats",
    "response_times",
    "utilization_bound_rm",
    "VcdRecorder",
]
