"""Schedule analysis: CPU shares, response times, release jitter.

Post-processes an :class:`~repro.sim.trace.EventTrace` (or raw
activation stamps) into the numbers a real-time engineer asks for:

* per-task CPU utilisation over a window;
* release jitter of periodic tasks (deviation of activation spacing
  from the nominal period);
* response-time statistics (max / mean / percentiles).
"""

from __future__ import annotations


def cpu_shares(kernel, window=None):
    """Per-task CPU share from the TCBs' ``cycles_used`` accounting.

    Returns ``{task_name: fraction_of_total_cycles}`` over the whole
    run (``cycles_used`` is cumulative).  ``window`` (total cycles)
    overrides the denominator; defaults to the clock's current time.
    """
    total = window if window is not None else kernel.clock.now
    if total <= 0:
        return {}
    shares = {}
    for task in kernel.scheduler.tasks.values():
        shares[task.name] = task.cycles_used / total
    return shares


def jitter_stats(stamps, period):
    """Release-jitter statistics of periodic activation ``stamps``.

    Jitter of activation *i* is ``(stamps[i] - stamps[i-1]) - period``.
    Returns a dict with ``count``, ``max_abs``, ``mean_abs``, and
    ``worst_gap`` (the largest raw inter-activation gap); empty stamps
    yield zeros.
    """
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    if not gaps:
        return {"count": 0, "max_abs": 0, "mean_abs": 0.0, "worst_gap": 0}
    jitters = [gap - period for gap in gaps]
    return {
        "count": len(jitters),
        "max_abs": max(abs(j) for j in jitters),
        "mean_abs": sum(abs(j) for j in jitters) / len(jitters),
        "worst_gap": max(gaps),
    }


def response_times(request_stamps, completion_stamps):
    """Pair request/completion stamp streams into response times.

    Streams are matched in order (request *i* completes at completion
    *i*); extra requests without completions are ignored.  Returns a
    dict with ``count``, ``max``, ``mean``, ``p95``.
    """
    pairs = list(zip(request_stamps, completion_stamps))
    times = [done - requested for requested, done in pairs if done >= requested]
    if not times:
        return {"count": 0, "max": 0, "mean": 0.0, "p95": 0}
    ordered = sorted(times)
    p95_index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
    return {
        "count": len(times),
        "max": ordered[-1],
        "mean": sum(times) / len(times),
        "p95": ordered[p95_index],
    }


def utilization_bound_rm(task_count):
    """Liu & Layland's rate-monotonic schedulability bound.

    ``U <= n(2^(1/n) - 1)``; a periodic task set under RM priorities is
    guaranteed schedulable below this utilisation.
    """
    if task_count <= 0:
        return 0.0
    return task_count * (2 ** (1.0 / task_count) - 1)
