"""A deterministic simulated network fabric.

The fabric carries framed datagrams between named endpoints over links
with configurable latency, jitter, loss, duplication, and reordering.
Everything is driven by one seeded :class:`random.Random`, and RNG
draws happen *at send time* in call order, so a run is bit-reproducible
for a given seed regardless of how the caller paces :meth:`advance_to`.

Time is the fabric's own integer microsecond clock (``now``); it is
independent of any device's cycle clock - the fleet orchestrator
converts device compute cycles into fabric microseconds when it
schedules responses.  The fabric exposes a ``now`` attribute so it can
serve directly as the ``clock`` of an :class:`repro.obs.bus.EventBus`.

Construction takes a :class:`FabricProfile` (the typed fault/delay
config object) as the default for every link::

    fabric = NetworkFabric(FabricProfile(latency_us=200, loss=0.1), seed=7)

The pre-1.4 ``NetworkFabric(seed=..., default_profile=...)`` spelling
still works but emits a :class:`DeprecationWarning`.

Scale: the fleet orchestrator sends one *batch* of frames per fabric
tick (:meth:`Endpoint.send_batch`), which amortizes the profile lookup
and the RNG attribute loads over the whole batch, and drains deliveries
through :meth:`NetworkFabric.take_touched` - the set of endpoints that
actually received traffic - instead of scanning every endpoint.

Observability: every datagram publishes ``net-send`` when it enters a
link, ``net-drop`` when the link loses it, and ``net-deliver`` when it
lands in the destination's receive queue (source ``"net"``).
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque

from repro.errors import NetworkError


class FabricProfile:
    """Fault and delay model for one direction of a link.

    This is the typed configuration object for :class:`NetworkFabric`
    (and, through ``FleetConfig``-based construction, for the fleet's
    links).

    Parameters
    ----------
    latency_us:
        Base one-way latency in microseconds.
    jitter_us:
        Uniform extra delay in ``[0, jitter_us]`` per datagram.
    loss:
        Probability a datagram is silently dropped.
    duplicate:
        Probability a datagram is delivered twice.
    reorder:
        Probability a datagram takes a slow path (extra delay of one to
        four base latencies), overtaking later traffic.
    """

    def __init__(self, latency_us=200, jitter_us=0, loss=0.0, duplicate=0.0, reorder=0.0):
        if latency_us < 0 or jitter_us < 0:
            raise NetworkError("link latency/jitter must be non-negative")
        for name, p in (("loss", loss), ("duplicate", duplicate), ("reorder", reorder)):
            if not 0.0 <= p <= 1.0:
                raise NetworkError("link %s must be a probability, got %r" % (name, p))
        self.latency_us = int(latency_us)
        self.jitter_us = int(jitter_us)
        self.loss = float(loss)
        self.duplicate = float(duplicate)
        self.reorder = float(reorder)

    def to_dict(self):
        """JSON-serialisable echo of the profile (result dicts)."""
        return {
            "latency_us": self.latency_us,
            "jitter_us": self.jitter_us,
            "loss": self.loss,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
        }

    def __repr__(self):
        return "FabricProfile(lat=%dus, jit=%dus, loss=%.2f, dup=%.2f, reorder=%.2f)" % (
            self.latency_us,
            self.jitter_us,
            self.loss,
            self.duplicate,
            self.reorder,
        )


#: Pre-1.4 name of :class:`FabricProfile`; kept as an alias so existing
#: imports keep working.
LinkProfile = FabricProfile


class Endpoint:
    """One attachment point on the fabric: a name plus a receive queue."""

    def __init__(self, fabric, name):
        self.fabric = fabric
        self.name = name
        #: Delivered datagrams, oldest first: ``(src_name, payload)``.
        self.rx = deque()

    def send(self, dst, payload, at=None):
        """Send a datagram to endpoint ``dst``; returns False if lost."""
        return self.fabric.send(self.name, dst, payload, at=at)

    def send_batch(self, items, at=None):
        """Send ``[(dst, payload), ...]`` in order; returns sent count."""
        return self.fabric.send_batch(self.name, items, at=at)

    def recv(self):
        """Pop the oldest delivered datagram, or ``None``."""
        return self.rx.popleft() if self.rx else None

    def drain(self):
        """Pop every delivered datagram as a list of ``(src, payload)``."""
        items = list(self.rx)
        self.rx.clear()
        return items

    def pending(self):
        """Number of delivered datagrams waiting to be read."""
        return len(self.rx)

    def __repr__(self):
        return "Endpoint(%s, %d pending)" % (self.name, len(self.rx))


class NetworkFabric:
    """The seeded datagram fabric connecting a fleet to its verifier."""

    def __init__(self, profile=None, *, seed=0, obs=None, default_profile=None):
        import random

        if isinstance(profile, int):
            # Pre-1.4 positional spelling: NetworkFabric(seed).
            warnings.warn(
                "NetworkFabric(seed) is deprecated; use "
                "NetworkFabric(FabricProfile(...), seed=seed)",
                DeprecationWarning,
                stacklevel=2,
            )
            seed = profile
            profile = None
        if default_profile is not None:
            warnings.warn(
                "NetworkFabric(default_profile=...) is deprecated; pass the "
                "FabricProfile as the first argument instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if profile is None:
                profile = default_profile

        #: Current fabric time in microseconds.
        self.now = 0
        self._rng = random.Random(seed)
        self._queue = []  # (deliver_at, seq, src, dst, payload)
        self._seq = 0
        self.endpoints = {}
        self._links = {}
        self.default_profile = profile if profile is not None else FabricProfile()
        #: Optional :class:`repro.obs.bus.EventBus` for net-* events.
        self.obs = obs
        #: Endpoint names that received traffic since the last
        #: :meth:`take_touched` (insertion-ordered, deduplicated).
        self._touched = {}
        #: Datagram tallies (deterministic for a given seed).
        self.stats = {
            "sent": 0,
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "delivered": 0,
        }

    # -- topology -----------------------------------------------------------

    def attach(self, name):
        """Create and return the endpoint called ``name``."""
        if name in self.endpoints:
            raise NetworkError("endpoint %r already attached" % name)
        endpoint = Endpoint(self, name)
        self.endpoints[name] = endpoint
        return endpoint

    def set_link(self, src, dst, profile):
        """Override the fault model for the ``src -> dst`` direction."""
        self._links[(src, dst)] = profile

    def profile_for(self, src, dst):
        """The profile governing ``src -> dst`` traffic."""
        return self._links.get((src, dst), self.default_profile)

    # -- traffic ------------------------------------------------------------

    def _publish(self, kind, **data):
        if self.obs is not None:
            self.obs.publish("net", kind, **data)

    def send(self, src, dst, payload, at=None):
        """Inject a datagram; returns False if the link lost it.

        ``at`` schedules the send at a future fabric time (used to model
        device compute latency); RNG draws still happen now, in call
        order, so scheduling does not perturb determinism.
        """
        if src not in self.endpoints:
            raise NetworkError("unknown source endpoint %r" % src)
        if dst not in self.endpoints:
            raise NetworkError("unknown destination endpoint %r" % dst)
        return self._send_one(src, dst, bytes(payload), at)

    def send_batch(self, src, items, at=None):
        """Inject ``[(dst, payload), ...]`` in order; returns sent count.

        One call per fabric tick is the fleet's scale path: the link
        profile is resolved once per destination class and the RNG is
        drawn in one tight loop (in item order, so a batch of N sends
        is bit-identical to N individual :meth:`send` calls).
        """
        if src not in self.endpoints:
            raise NetworkError("unknown source endpoint %r" % src)
        endpoints = self.endpoints
        sent = 0
        for dst, payload in items:
            if dst not in endpoints:
                raise NetworkError("unknown destination endpoint %r" % dst)
            if self._send_one(src, dst, bytes(payload), at):
                sent += 1
        return sent

    def _send_one(self, src, dst, payload, at):
        """Schedule one datagram; the shared core of send/send_batch."""
        when = self.now if at is None else max(int(at), self.now)
        profile = self.profile_for(src, dst)
        rng = self._rng
        self.stats["sent"] += 1
        if self.obs is not None:
            self._publish("net-send", src=src, dst=dst, size=len(payload), at=when)
        if profile.loss and rng.random() < profile.loss:
            self.stats["dropped"] += 1
            self._publish("net-drop", src=src, dst=dst, size=len(payload))
            return False
        copies = 1
        if profile.duplicate and rng.random() < profile.duplicate:
            copies = 2
            self.stats["duplicated"] += 1
        for _ in range(copies):
            delay = profile.latency_us
            if profile.jitter_us:
                delay += rng.randint(0, profile.jitter_us)
            if profile.reorder and rng.random() < profile.reorder:
                delay += profile.latency_us + rng.randint(0, 3 * profile.latency_us)
                self.stats["reordered"] += 1
            heapq.heappush(self._queue, (when + delay, self._seq, src, dst, payload))
            self._seq += 1
        return True

    # -- time ---------------------------------------------------------------

    def next_delivery(self):
        """Fabric time of the earliest in-flight datagram, or ``None``."""
        return self._queue[0][0] if self._queue else None

    def advance_to(self, t):
        """Advance fabric time to ``t``, delivering everything due."""
        t = max(int(t), self.now)
        queue = self._queue
        endpoints = self.endpoints
        touched = self._touched
        while queue and queue[0][0] <= t:
            when, _, src, dst, payload = heapq.heappop(queue)
            # Stamp obs events at the delivery instant, not the target.
            self.now = when
            endpoints[dst].rx.append((src, payload))
            touched[dst] = True
            self.stats["delivered"] += 1
            self._publish("net-deliver", src=src, dst=dst, size=len(payload))
        self.now = t

    def advance(self, dt):
        """Advance fabric time by ``dt`` microseconds."""
        self.advance_to(self.now + int(dt))

    def take_touched(self):
        """Endpoint names delivered to since the last call, in delivery
        order.  The fleet's O(active) alternative to scanning every
        endpoint for pending traffic."""
        touched = list(self._touched)
        self._touched.clear()
        return touched

    def in_flight(self):
        """Number of datagrams currently traversing links."""
        return len(self._queue)

    def __repr__(self):
        return "NetworkFabric(t=%dus, %d endpoints, %d in flight)" % (
            self.now,
            len(self.endpoints),
            len(self._queue),
        )
