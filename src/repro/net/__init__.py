"""repro.net - the deterministic simulated network fabric.

* :mod:`repro.net.fabric` - seeded datagram transport with per-link
  latency, jitter, loss, duplication, and reordering; endpoints with
  send/receive queues; ``net-send`` / ``net-drop`` / ``net-deliver``
  events on the observability bus.
* :mod:`repro.net.wire` - the strict length-prefixed codec for
  attestation challenge/response frames.
"""

from repro.net.fabric import Endpoint, FabricProfile, LinkProfile, NetworkFabric
from repro.net.wire import (
    Challenge,
    Response,
    decode_frame,
    decode_message,
    encode_frame,
)

__all__ = [
    "Challenge",
    "Endpoint",
    "FabricProfile",
    "LinkProfile",
    "NetworkFabric",
    "Response",
    "decode_frame",
    "decode_message",
    "encode_frame",
]
