"""The attestation wire protocol.

Challenge/response messages travel over the simulated fabric
(:mod:`repro.net.fabric`) as *framed datagrams*: a fixed header (magic,
version, message type, payload length) followed by a length-prefixed
payload.  The framing is deliberately strict - every length field must
agree with the bytes actually present, and any disagreement raises
:class:`~repro.errors.AttestationError` (never a raw ``struct.error``
or a silent short slice), so a lossy or hostile network cannot smuggle
malformed state past the codec.

Messages:

* :class:`Challenge` - verifier -> device: ``(device_id, seq, nonce)``.
  ``seq`` is the verifier's attempt counter for this device, so retries
  are distinguishable on the wire (and in obs traces).
* :class:`Response` - device -> verifier: ``(device_id, seq, report)``
  where ``report`` is a full
  :class:`~repro.core.remote_attest.AttestationReport`.
* :class:`CfaChallenge` / :class:`CfaResponse` - the control-flow
  attestation variants: the challenge is shaped like a plain challenge
  (a new frame type tells the device path evidence is wanted too), the
  response carries the static report *and* a
  :class:`~repro.cfa.evidence.CfaEvidence` record.  Both are additive
  frame types; the v1 codec for the original messages is untouched.
"""

from __future__ import annotations

import struct

from repro.cfa.evidence import CfaEvidence
from repro.core.remote_attest import AttestationReport
from repro.errors import AttestationError

#: First byte of every frame.
MAGIC = 0xA7
#: Wire protocol version.
VERSION = 1

#: Frame types.
T_CHALLENGE = 1
T_RESPONSE = 2
T_CHALLENGE_CFA = 3
T_RESPONSE_CFA = 4

_FRAME_HEADER = struct.Struct("<BBBH")  # magic, version, type, payload length
_MSG_HEADER = struct.Struct("<IHH")  # device_id, seq, body length

#: Largest payload a frame can carry.
MAX_PAYLOAD = 0xFFFF
#: Largest nonce a challenge may carry (generous; reports use 8 bytes).
MAX_NONCE = 256


def encode_frame(frame_type, payload):
    """Wrap ``payload`` in a framed datagram."""
    payload = bytes(payload)
    if len(payload) > MAX_PAYLOAD:
        raise AttestationError("frame payload too large (%d bytes)" % len(payload))
    return _FRAME_HEADER.pack(MAGIC, VERSION, frame_type, len(payload)) + payload


def decode_frame(blob):
    """Split a framed datagram into ``(frame_type, payload)``.

    Raises :class:`AttestationError` on truncation, bad magic, unknown
    version or type, length mismatch, or trailing bytes.
    """
    blob = bytes(blob)
    if len(blob) < _FRAME_HEADER.size:
        raise AttestationError("truncated frame (%d bytes)" % len(blob))
    magic, version, frame_type, length = _FRAME_HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise AttestationError("bad frame magic 0x%02X" % magic)
    if version != VERSION:
        raise AttestationError("unsupported wire version %d" % version)
    if frame_type not in (T_CHALLENGE, T_RESPONSE, T_CHALLENGE_CFA, T_RESPONSE_CFA):
        raise AttestationError("unknown frame type %d" % frame_type)
    payload = blob[_FRAME_HEADER.size :]
    if len(payload) != length:
        raise AttestationError(
            "frame length mismatch: header says %d, got %d" % (length, len(payload))
        )
    return frame_type, payload


def _decode_msg_header(payload, what):
    """The common ``(device_id, seq, body)`` prefix of both messages."""
    if len(payload) < _MSG_HEADER.size:
        raise AttestationError("truncated %s (%d bytes)" % (what, len(payload)))
    device_id, seq, body_len = _MSG_HEADER.unpack_from(payload)
    body = payload[_MSG_HEADER.size :]
    if len(body) != body_len:
        raise AttestationError(
            "%s body length mismatch: header says %d, got %d"
            % (what, body_len, len(body))
        )
    return device_id, seq, body


class Challenge:
    """A verifier's attestation challenge to one device."""

    def __init__(self, device_id, seq, nonce):
        self.device_id = int(device_id)
        self.seq = int(seq)
        self.nonce = bytes(nonce)
        if len(self.nonce) > MAX_NONCE:
            raise AttestationError("nonce too large (%d bytes)" % len(self.nonce))

    def to_bytes(self):
        """The framed wire form."""
        payload = _MSG_HEADER.pack(self.device_id, self.seq, len(self.nonce))
        return encode_frame(T_CHALLENGE, payload + self.nonce)

    @classmethod
    def from_payload(cls, payload):
        """Parse a challenge payload (frame already stripped)."""
        device_id, seq, nonce = _decode_msg_header(payload, "challenge")
        if len(nonce) > MAX_NONCE:
            raise AttestationError("nonce too large (%d bytes)" % len(nonce))
        return cls(device_id, seq, nonce)

    def __eq__(self, other):
        if not isinstance(other, Challenge):
            return NotImplemented
        return (self.device_id, self.seq, self.nonce) == (
            other.device_id,
            other.seq,
            other.nonce,
        )

    def __repr__(self):
        return "Challenge(dev=%d, seq=%d, nonce=%s)" % (
            self.device_id,
            self.seq,
            self.nonce.hex(),
        )


class Response:
    """A device's attestation response carrying a full report."""

    def __init__(self, device_id, seq, report):
        self.device_id = int(device_id)
        self.seq = int(seq)
        self.report = report

    def to_bytes(self):
        """The framed wire form."""
        body = self.report.to_bytes()
        payload = _MSG_HEADER.pack(self.device_id, self.seq, len(body))
        return encode_frame(T_RESPONSE, payload + body)

    @classmethod
    def from_payload(cls, payload):
        """Parse a response payload (frame already stripped)."""
        device_id, seq, body = _decode_msg_header(payload, "response")
        return cls(device_id, seq, AttestationReport.from_bytes(body))

    def __repr__(self):
        return "Response(dev=%d, seq=%d, %r)" % (
            self.device_id,
            self.seq,
            self.report,
        )


class CfaChallenge(Challenge):
    """A challenge that also requests control-flow path evidence.

    Identical payload to :class:`Challenge`; the frame type is what
    tells the device to attach a :class:`CfaEvidence` record (MACed
    over the same nonce, so both halves of the response are fresh).
    """

    def to_bytes(self):
        """The framed wire form."""
        payload = _MSG_HEADER.pack(self.device_id, self.seq, len(self.nonce))
        return encode_frame(T_CHALLENGE_CFA, payload + self.nonce)

    def __eq__(self, other):
        if not isinstance(other, CfaChallenge):
            return NotImplemented
        return (self.device_id, self.seq, self.nonce) == (
            other.device_id,
            other.seq,
            other.nonce,
        )

    def __repr__(self):
        return "CfaChallenge(dev=%d, seq=%d, nonce=%s)" % (
            self.device_id,
            self.seq,
            self.nonce.hex(),
        )


_CFA_BODY = struct.Struct("<H")  # static report length prefix


class CfaResponse:
    """A device's response carrying the static report + path evidence."""

    def __init__(self, device_id, seq, report, evidence):
        self.device_id = int(device_id)
        self.seq = int(seq)
        self.report = report
        self.evidence = evidence

    def to_bytes(self):
        """The framed wire form."""
        report = self.report.to_bytes()
        body = _CFA_BODY.pack(len(report)) + report + self.evidence.to_bytes()
        payload = _MSG_HEADER.pack(self.device_id, self.seq, len(body))
        return encode_frame(T_RESPONSE_CFA, payload + body)

    @classmethod
    def from_payload(cls, payload):
        """Parse a CFA response payload (frame already stripped)."""
        device_id, seq, body = _decode_msg_header(payload, "cfa response")
        if len(body) < _CFA_BODY.size:
            raise AttestationError("truncated cfa response body (%d bytes)" % len(body))
        (report_len,) = _CFA_BODY.unpack_from(body)
        rest = body[_CFA_BODY.size :]
        if len(rest) < report_len:
            raise AttestationError(
                "cfa response report length mismatch: header says %d, got %d"
                % (report_len, len(rest))
            )
        report = AttestationReport.from_bytes(rest[:report_len])
        evidence = CfaEvidence.from_bytes(rest[report_len:])
        return cls(device_id, seq, report, evidence)

    def __repr__(self):
        return "CfaResponse(dev=%d, seq=%d, %r, %r)" % (
            self.device_id,
            self.seq,
            self.report,
            self.evidence,
        )


def decode_message(blob):
    """Decode a datagram into one of the four message classes.

    Any malformation raises :class:`AttestationError`.
    """
    frame_type, payload = decode_frame(blob)
    if frame_type == T_CHALLENGE:
        return Challenge.from_payload(payload)
    if frame_type == T_CHALLENGE_CFA:
        return CfaChallenge.from_payload(payload)
    if frame_type == T_RESPONSE_CFA:
        return CfaResponse.from_payload(payload)
    return Response.from_payload(payload)
