"""Instruction encoder and decoder.

Instructions are encoded with a single opcode byte followed by
format-specific operand bytes (little-endian immediates).  The
:class:`Instruction` object is the decoded form shared by the CPU, the
assembler, and the disassembler.
"""

from __future__ import annotations

from repro.errors import IllegalInstruction
from repro.isa.opcodes import FORMATS, LENGTHS, MNEMONICS, OP_LENGTHS, OpFormat


class Instruction:
    """A decoded instruction.

    Attributes
    ----------
    opcode:
        The opcode byte.
    reg / reg2:
        Destination and source register indices (where the format has
        them); ``reg2`` is the base register of memory operands.
    imm:
        Immediate value: 32-bit for IMM32/REG_IMM32, 8-bit for IMM8,
        signed 16-bit displacement for MEM.
    length:
        Encoded length in bytes.
    """

    __slots__ = ("opcode", "reg", "reg2", "imm", "length")

    def __init__(self, opcode, reg=0, reg2=0, imm=0):
        self.opcode = opcode
        self.reg = reg
        self.reg2 = reg2
        self.imm = imm
        self.length = OP_LENGTHS[opcode]

    @property
    def mnemonic(self):
        """The instruction's assembly mnemonic."""
        return MNEMONICS[self.opcode]

    def __eq__(self, other):
        return (
            isinstance(other, Instruction)
            and self.opcode == other.opcode
            and self.reg == other.reg
            and self.reg2 == other.reg2
            and self.imm == other.imm
        )

    def __repr__(self):
        return "Instruction(%s, reg=%d, reg2=%d, imm=%d)" % (
            self.mnemonic,
            self.reg,
            self.reg2,
            self.imm,
        )


def encode(insn):
    """Encode an :class:`Instruction` into bytes."""
    fmt = FORMATS[insn.opcode]
    out = bytearray([insn.opcode])
    if fmt == OpFormat.NONE:
        pass
    elif fmt == OpFormat.REG:
        out.append(insn.reg & 0x0F)
    elif fmt == OpFormat.REG_REG:
        out.append(((insn.reg & 0x0F) << 4) | (insn.reg2 & 0x0F))
    elif fmt == OpFormat.REG_IMM32:
        out.append(insn.reg & 0x0F)
        out += (insn.imm & 0xFFFFFFFF).to_bytes(4, "little")
    elif fmt == OpFormat.IMM32:
        out += (insn.imm & 0xFFFFFFFF).to_bytes(4, "little")
    elif fmt == OpFormat.IMM8:
        out.append(insn.imm & 0xFF)
    elif fmt == OpFormat.MEM:
        out.append(((insn.reg & 0x0F) << 4) | (insn.reg2 & 0x0F))
        out += (insn.imm & 0xFFFF).to_bytes(2, "little")
    else:  # pragma: no cover - table is closed
        raise AssertionError("unknown format %r" % fmt)
    return bytes(out)


def decode(blob, offset=0, address=None):
    """Decode one instruction from ``blob`` at ``offset``.

    ``address`` is only used to report the location of illegal
    instructions (defaults to ``offset``).
    """
    where = offset if address is None else address
    if offset >= len(blob):
        raise IllegalInstruction(where, 0xFF)
    opcode = blob[offset]
    fmt = FORMATS.get(opcode)
    if fmt is None:
        raise IllegalInstruction(where, opcode)
    length = LENGTHS[fmt]
    if offset + length > len(blob):
        raise IllegalInstruction(where, opcode)
    body = blob[offset + 1 : offset + length]
    if fmt == OpFormat.NONE:
        return Instruction(opcode)
    if fmt == OpFormat.REG:
        return Instruction(opcode, reg=body[0] & 0x0F)
    if fmt == OpFormat.REG_REG:
        return Instruction(opcode, reg=(body[0] >> 4) & 0x0F, reg2=body[0] & 0x0F)
    if fmt == OpFormat.REG_IMM32:
        return Instruction(
            opcode,
            reg=body[0] & 0x0F,
            imm=int.from_bytes(body[1:5], "little"),
        )
    if fmt == OpFormat.IMM32:
        return Instruction(opcode, imm=int.from_bytes(body, "little"))
    if fmt == OpFormat.IMM8:
        return Instruction(opcode, imm=body[0])
    if fmt == OpFormat.MEM:
        disp = int.from_bytes(body[1:3], "little")
        if disp >= 0x8000:
            disp -= 0x10000
        return Instruction(
            opcode,
            reg=(body[0] >> 4) & 0x0F,
            reg2=body[0] & 0x0F,
            imm=disp,
        )
    raise AssertionError("unknown format %r" % fmt)  # pragma: no cover
