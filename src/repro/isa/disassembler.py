"""Disassembler: decoded instructions back to readable assembly.

Used by traces, debugging helpers, and the tests that check the encoder
and decoder round-trip.
"""

from __future__ import annotations

from repro.errors import IllegalInstruction
from repro.hw.registers import Reg
from repro.isa.encoding import decode
from repro.isa.opcodes import FORMATS, OP_LENGTHS, OpFormat

#: Placeholder mnemonic for a truncated final instruction: the opcode
#: byte is known but the blob ends before its operands.
TRUNCATED_MNEMONIC = "??"


def format_instruction(insn):
    """Render one decoded instruction as assembly text."""
    fmt = FORMATS[insn.opcode]
    name = insn.mnemonic
    if fmt == OpFormat.NONE:
        return name
    if fmt == OpFormat.REG:
        return "%s %s" % (name, Reg.name(insn.reg))
    if fmt == OpFormat.REG_REG:
        return "%s %s, %s" % (name, Reg.name(insn.reg), Reg.name(insn.reg2))
    if fmt == OpFormat.REG_IMM32:
        return "%s %s, 0x%X" % (name, Reg.name(insn.reg), insn.imm)
    if fmt == OpFormat.IMM32:
        return "%s 0x%X" % (name, insn.imm)
    if fmt == OpFormat.IMM8:
        return "%s 0x%X" % (name, insn.imm)
    if fmt == OpFormat.MEM:
        base = Reg.name(insn.reg2)
        if insn.imm == 0:
            mem = "[%s]" % base
        elif insn.imm > 0:
            mem = "[%s+%d]" % (base, insn.imm)
        else:
            mem = "[%s%d]" % (base, insn.imm)
        if insn.mnemonic in ("st", "stb", "sth"):
            return "%s %s, %s" % (name, mem, Reg.name(insn.reg))
        return "%s %s, %s" % (name, Reg.name(insn.reg), mem)
    raise AssertionError("unknown format %r" % fmt)  # pragma: no cover


def disassemble_one(blob, offset=0):
    """Decode and format one instruction; returns (text, length).

    A *truncated* final instruction - a known opcode whose operand
    bytes run past the end of the blob - yields the well-defined record
    ``("??", remaining)`` covering the leftover bytes, so callers can
    render partial code regions without special-casing the tail.
    Unknown opcodes still raise :class:`IllegalInstruction`.
    """
    if offset < len(blob):
        opcode = blob[offset]
        if opcode in FORMATS and offset + OP_LENGTHS[opcode] > len(blob):
            return TRUNCATED_MNEMONIC, len(blob) - offset
    insn = decode(blob, offset)
    return format_instruction(insn), insn.length


def disassemble(blob, base_address=0):
    """Disassemble a whole blob into ``(address, text)`` pairs.

    Stops at the first byte that does not decode (data sections following
    code will generally not decode; that is expected).
    """
    out = []
    offset = 0
    while offset < len(blob):
        try:
            text, length = disassemble_one(blob, offset)
        except IllegalInstruction:
            break
        out.append((base_address + offset, text))
        offset += length
    return out
