"""The simulated core's instruction set.

A compact, fixed-format 32-bit instruction set in the spirit of a deeply
embedded x86-subset core: eight GPRs, absolute control flow (which is what
makes task binaries *relocatable* - every absolute address reference gets
a relocation entry, feeding the paper's Table 5 and the RTM's
position-independent measurement), register+offset addressing, and a
software-interrupt instruction used for syscalls and secure IPC.

Modules:

* :mod:`repro.isa.opcodes` - opcode numbers, formats, mnemonics, cycles
* :mod:`repro.isa.encoding` - instruction encoder / decoder
* :mod:`repro.isa.assembler` - two-pass assembler producing TELF objects
* :mod:`repro.isa.disassembler` - decoder to readable text
"""

from repro.isa.opcodes import Op, FORMATS, MNEMONICS, OpFormat
from repro.isa.encoding import Instruction, decode, encode
from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import disassemble, disassemble_one

__all__ = [
    "Op",
    "FORMATS",
    "MNEMONICS",
    "OpFormat",
    "Instruction",
    "decode",
    "encode",
    "Assembler",
    "assemble",
    "disassemble",
    "disassemble_one",
]
