"""Two-operand assembler producing TELF object files.

Syntax (one statement per line; ``;`` or ``#`` start a comment)::

    .section .text          ; switch section (.text / .data / .bss)
    .global start           ; export a symbol
    start:                  ; define a label in the current section
        movi eax, 5
        movi ebx, table     ; symbol reference -> relocation entry
        ld   ecx, [ebx+4]   ; register + signed 16-bit displacement
        cmp  ecx, eax
        jz   done           ; absolute branch target -> relocation entry
        int  0x30           ; software interrupt (syscall / IPC)
    done:
        hlt
    .section .data
    table:
        .word 1, 2, 3, done ; words may reference symbols (relocated)
        .byte 0x41, 65
        .ascii "hi"
        .asciz "hi"         ; NUL-terminated
        .align 4
    .section .bss
    buffer:
        .space 64           ; zero-initialised, not stored in the image

Because control flow and address formation use *absolute* addresses,
every symbol reference becomes a relocation record - exactly the property
that forces the TyTAN loader to relocate at load time and the RTM to
revert relocation for position-independent measurement.
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.hw.registers import Reg
from repro.image.telf import ObjectFile
from repro.isa.encoding import Instruction, encode
from repro.isa.opcodes import (
    ADDRESS_IMM_OPS,
    FORMATS,
    OPCODES_BY_NAME,
    OpFormat,
)

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")
_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z]+)\s*(?:([+-])\s*(0x[0-9A-Fa-f]+|\d+)\s*)?\]$"
)
_SYM_EXPR_RE = re.compile(
    r"^([A-Za-z_][A-Za-z0-9_]*)\s*(?:([+-])\s*(0x[0-9A-Fa-f]+|\d+))?$"
)


class Assembler:
    """Single-pass assembler with link-time symbol resolution.

    Every symbol reference is emitted as a relocation record against the
    (possibly not-yet-defined) symbol, so no second pass is needed: the
    linker resolves everything, including forward references.
    """

    def __init__(self, name="object"):
        self.obj = ObjectFile(name)
        self._section = self.obj.section(".text")
        self._globals = set()
        self._line = 0

    # -- public API ---------------------------------------------------------

    def assemble(self, source):
        """Assemble ``source`` text; returns the :class:`ObjectFile`."""
        for number, raw in enumerate(source.splitlines(), start=1):
            self._line = number
            self._statement(raw)
        for name in self._globals:
            if name not in self.obj.symbols:
                raise AssemblerError(
                    ".global %r names an undefined symbol" % name
                )
            self.obj.symbols[name].is_global = True
        return self.obj

    # -- statement handling --------------------------------------------------

    def _statement(self, raw):
        text = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not text:
            return
        match = _LABEL_RE.match(text)
        if match:
            self._define_label(match.group(1))
            text = text[match.end() :].strip()
            if not text:
                return
        if text.startswith("."):
            self._directive(text)
        else:
            self._instruction(text)

    def _define_label(self, name):
        offset = (
            self._section.bss_size
            if self._section.name == ".bss"
            else len(self._section.data)
        )
        try:
            self.obj.add_symbol(name, self._section.name, offset)
        except Exception as exc:
            raise AssemblerError(str(exc), self._line)

    # -- directives ----------------------------------------------------------

    def _directive(self, text):
        parts = text.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".section":
            if rest not in (".text", ".data", ".bss"):
                raise AssemblerError("unknown section %r" % rest, self._line)
            self._section = self.obj.section(rest)
        elif name == ".global":
            for symbol in self._split_operands(rest):
                self._globals.add(symbol)
        elif name == ".word":
            self._require_data_section(".word")
            for operand in self._split_operands(rest):
                self._emit_word(operand)
        elif name == ".byte":
            self._require_data_section(".byte")
            for operand in self._split_operands(rest):
                value = self._parse_number(operand)
                self._section.append(bytes([value & 0xFF]))
        elif name in (".ascii", ".asciz"):
            self._require_data_section(name)
            value = self._parse_string(rest)
            if name == ".asciz":
                value += b"\x00"
            self._section.append(value)
        elif name == ".space":
            count = self._parse_number(rest)
            if self._section.name == ".bss":
                self._section.reserve(count)
            else:
                self._section.append(bytes(count))
        elif name == ".align":
            alignment = self._parse_number(rest)
            if alignment <= 0 or alignment & (alignment - 1):
                raise AssemblerError(
                    "alignment must be a power of two", self._line
                )
            if self._section.name == ".bss":
                current = self._section.bss_size
                pad = (-current) % alignment
                self._section.reserve(pad)
            else:
                current = len(self._section.data)
                pad = (-current) % alignment
                self._section.append(bytes(pad))
        else:
            raise AssemblerError("unknown directive %r" % name, self._line)

    def _require_data_section(self, directive):
        if self._section.name == ".bss":
            raise AssemblerError(
                "%s not allowed in .bss (use .space)" % directive, self._line
            )

    def _emit_word(self, operand):
        """Emit a 32-bit word; symbol expressions create relocations."""
        symbol, addend = self._parse_symbol_or_number(operand)
        offset = self._section.append((addend & 0xFFFFFFFF).to_bytes(4, "little"))
        if symbol is not None:
            self.obj.add_relocation(self._section.name, offset, symbol)

    # -- instructions ---------------------------------------------------------

    def _instruction(self, text):
        if self._section.name != ".text":
            raise AssemblerError(
                "instructions are only allowed in .text", self._line
            )
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        opcode = OPCODES_BY_NAME.get(mnemonic)
        if opcode is None:
            raise AssemblerError("unknown mnemonic %r" % mnemonic, self._line)
        operands = self._split_operands(parts[1]) if len(parts) > 1 else []
        fmt = FORMATS[opcode]
        handler = {
            OpFormat.NONE: self._op_none,
            OpFormat.REG: self._op_reg,
            OpFormat.REG_REG: self._op_reg_reg,
            OpFormat.REG_IMM32: self._op_reg_imm32,
            OpFormat.IMM32: self._op_imm32,
            OpFormat.IMM8: self._op_imm8,
            OpFormat.MEM: self._op_mem,
        }[fmt]
        handler(opcode, operands)

    def _op_none(self, opcode, operands):
        self._expect_operands(operands, 0)
        self._emit(Instruction(opcode))

    def _op_reg(self, opcode, operands):
        self._expect_operands(operands, 1)
        self._emit(Instruction(opcode, reg=self._parse_reg(operands[0])))

    def _op_reg_reg(self, opcode, operands):
        self._expect_operands(operands, 2)
        self._emit(
            Instruction(
                opcode,
                reg=self._parse_reg(operands[0]),
                reg2=self._parse_reg(operands[1]),
            )
        )

    def _op_reg_imm32(self, opcode, operands):
        self._expect_operands(operands, 2)
        reg = self._parse_reg(operands[0])
        symbol, value = self._parse_symbol_or_number(operands[1])
        if symbol is not None and opcode not in ADDRESS_IMM_OPS:
            raise AssemblerError(
                "symbol operand not allowed for this instruction", self._line
            )
        insn = Instruction(opcode, reg=reg, imm=value & 0xFFFFFFFF)
        offset = self._emit(insn)
        if symbol is not None:
            # The 32-bit immediate starts 2 bytes into the encoding.
            self.obj.add_relocation(".text", offset + 2, symbol)

    def _op_imm32(self, opcode, operands):
        self._expect_operands(operands, 1)
        symbol, value = self._parse_symbol_or_number(operands[0])
        if symbol is not None and opcode not in ADDRESS_IMM_OPS:
            raise AssemblerError(
                "symbol operand not allowed for this instruction", self._line
            )
        insn = Instruction(opcode, imm=value & 0xFFFFFFFF)
        offset = self._emit(insn)
        if symbol is not None:
            # The 32-bit immediate starts 1 byte into the encoding.
            self.obj.add_relocation(".text", offset + 1, symbol)

    def _op_imm8(self, opcode, operands):
        self._expect_operands(operands, 1)
        value = self._parse_number(operands[0])
        if not 0 <= value <= 0xFF:
            raise AssemblerError("imm8 out of range: %d" % value, self._line)
        self._emit(Instruction(opcode, imm=value))

    def _op_mem(self, opcode, operands):
        self._expect_operands(operands, 2)
        # ld/ldb: reg, [mem];  st/stb: [mem], reg
        if operands[0].startswith("["):
            mem, reg = operands[0], operands[1]
        else:
            reg, mem = operands[0], operands[1]
        base, disp = self._parse_mem(mem)
        self._emit(
            Instruction(
                opcode, reg=self._parse_reg(reg), reg2=base, imm=disp & 0xFFFF
            )
        )

    # -- operand parsing --------------------------------------------------

    def _split_operands(self, text):
        out = [item.strip() for item in text.split(",")]
        return [item for item in out if item]

    def _expect_operands(self, operands, count):
        if len(operands) != count:
            raise AssemblerError(
                "expected %d operand(s), got %d" % (count, len(operands)),
                self._line,
            )

    def _parse_reg(self, text):
        try:
            return Reg.index(text)
        except ValueError:
            raise AssemblerError("unknown register %r" % text, self._line)

    def _parse_string(self, text):
        """Parse a double-quoted string literal with simple escapes."""
        text = text.strip()
        if len(text) < 2 or not text.startswith('"') or not text.endswith('"'):
            raise AssemblerError("bad string literal %r" % text, self._line)
        body = text[1:-1]
        out = bytearray()
        index = 0
        while index < len(body):
            char = body[index]
            if char == "\\" and index + 1 < len(body):
                escape = body[index + 1]
                mapping = {"n": 10, "t": 9, "0": 0, "\\": 92, '"': 34}
                if escape not in mapping:
                    raise AssemblerError(
                        "unknown escape \\%s" % escape, self._line
                    )
                out.append(mapping[escape])
                index += 2
            else:
                out.append(ord(char))
                index += 1
        return bytes(out)

    def _parse_number(self, text):
        text = text.strip()
        try:
            if text.startswith("'") and text.endswith("'") and len(text) == 3:
                return ord(text[1])
            if text.lower().startswith("0x"):
                return int(text, 16)
            if text.lstrip("-").isdigit():
                return int(text, 10)
        except ValueError:
            pass
        raise AssemblerError("bad number %r" % text, self._line)

    def _parse_symbol_or_number(self, text):
        """Return (symbol_or_None, constant)."""
        text = text.strip()
        try:
            return None, self._parse_number(text)
        except AssemblerError:
            pass
        match = _SYM_EXPR_RE.match(text)
        if not match:
            raise AssemblerError("bad operand %r" % text, self._line)
        symbol, sign, magnitude = match.groups()
        if symbol.lower() in Reg.NAMES:
            raise AssemblerError(
                "register %r where immediate expected" % symbol, self._line
            )
        addend = 0
        if magnitude is not None:
            addend = self._parse_number(magnitude)
            if sign == "-":
                addend = -addend
        return symbol, addend

    def _parse_mem(self, text):
        match = _MEM_RE.match(text.strip())
        if not match:
            raise AssemblerError("bad memory operand %r" % text, self._line)
        base = self._parse_reg(match.group(1))
        disp = 0
        if match.group(3) is not None:
            disp = self._parse_number(match.group(3))
            if match.group(2) == "-":
                disp = -disp
        if not -0x8000 <= disp <= 0x7FFF:
            raise AssemblerError(
                "displacement out of 16-bit range: %d" % disp, self._line
            )
        return base, disp

    def _emit(self, insn):
        """Append the encoded instruction; returns its section offset."""
        return self._section.append(encode(insn))


def assemble(source, name="object"):
    """Assemble ``source`` and return the resulting object file."""
    return Assembler(name).assemble(source)
