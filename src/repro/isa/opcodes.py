"""Opcode table of the simulated core.

Each opcode has a fixed format (see :class:`OpFormat`), a mnemonic, and a
base cycle cost.  Memory-touching instructions add
:data:`repro.cycles.INSN_MEM`; taken branches add
:data:`repro.cycles.INSN_BRANCH_TAKEN` - those surcharges are applied by
the CPU at execution time because they depend on dynamic behaviour.
"""

from __future__ import annotations

from repro import cycles


class OpFormat:
    """Instruction formats (distinct tags; lengths live in ``LENGTHS``)."""

    NONE = "none"  #: opcode only
    REG = "reg"  #: opcode + register byte
    REG_REG = "reg_reg"  #: opcode + packed register pair byte
    REG_IMM32 = "reg_imm32"  #: opcode + register byte + 32-bit immediate
    IMM32 = "imm32"  #: opcode + 32-bit immediate
    IMM8 = "imm8"  #: opcode + 8-bit immediate
    MEM = "mem"  #: opcode + packed register pair byte + signed 16-bit offset


#: format -> encoded length in bytes
LENGTHS = {
    OpFormat.NONE: 1,
    OpFormat.REG: 2,
    OpFormat.REG_REG: 2,
    OpFormat.REG_IMM32: 6,
    OpFormat.IMM32: 5,
    OpFormat.IMM8: 2,
    OpFormat.MEM: 4,
}


class Op:
    """Opcode numbers."""

    NOP = 0x00
    HLT = 0x01
    RET = 0x02
    IRET = 0x03
    CLI = 0x04
    STI = 0x05

    MOV = 0x10
    ADD = 0x11
    SUB = 0x12
    AND = 0x13
    OR = 0x14
    XOR = 0x15
    CMP = 0x16
    SHL = 0x17
    SHR = 0x18
    MUL = 0x19
    DIV = 0x1A

    MOVI = 0x20
    ADDI = 0x21
    SUBI = 0x22
    ANDI = 0x23
    ORI = 0x24
    XORI = 0x25
    CMPI = 0x26
    SHLI = 0x27
    SHRI = 0x28

    LD = 0x30
    ST = 0x31
    LDB = 0x32
    STB = 0x33
    LDH = 0x34
    STH = 0x35

    JMP = 0x40
    CALL = 0x41
    JZ = 0x42
    JNZ = 0x43
    JC = 0x44
    JNC = 0x45
    JS = 0x46
    JNS = 0x47
    JG = 0x48
    JL = 0x49
    JGE = 0x4A
    JLE = 0x4B

    PUSH = 0x50
    POP = 0x51
    PUSHI = 0x52
    NOT = 0x53
    NEG = 0x54

    INT = 0x60


#: opcode -> (mnemonic, format, base cycle cost)
_TABLE = {
    Op.NOP: ("nop", OpFormat.NONE, cycles.INSN_BASE),
    Op.HLT: ("hlt", OpFormat.NONE, cycles.INSN_BASE),
    Op.RET: ("ret", OpFormat.NONE, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.IRET: ("iret", OpFormat.NONE, cycles.EXCEPTION_RETURN),
    Op.CLI: ("cli", OpFormat.NONE, cycles.INSN_BASE),
    Op.STI: ("sti", OpFormat.NONE, cycles.INSN_BASE),
    Op.MOV: ("mov", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.ADD: ("add", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.SUB: ("sub", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.AND: ("and", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.OR: ("or", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.XOR: ("xor", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.CMP: ("cmp", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.SHL: ("shl", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.SHR: ("shr", OpFormat.REG_REG, cycles.INSN_BASE),
    Op.MUL: ("mul", OpFormat.REG_REG, 3 * cycles.INSN_BASE),
    Op.DIV: ("div", OpFormat.REG_REG, 12 * cycles.INSN_BASE),
    Op.MOVI: ("movi", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.ADDI: ("addi", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.SUBI: ("subi", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.ANDI: ("andi", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.ORI: ("ori", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.XORI: ("xori", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.CMPI: ("cmpi", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.SHLI: ("shli", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.SHRI: ("shri", OpFormat.REG_IMM32, cycles.INSN_BASE),
    Op.LD: ("ld", OpFormat.MEM, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.ST: ("st", OpFormat.MEM, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.LDB: ("ldb", OpFormat.MEM, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.STB: ("stb", OpFormat.MEM, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.LDH: ("ldh", OpFormat.MEM, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.STH: ("sth", OpFormat.MEM, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.JMP: ("jmp", OpFormat.IMM32, cycles.INSN_BASE),
    Op.CALL: ("call", OpFormat.IMM32, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.JZ: ("jz", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JNZ: ("jnz", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JC: ("jc", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JNC: ("jnc", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JS: ("js", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JNS: ("jns", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JG: ("jg", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JL: ("jl", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JGE: ("jge", OpFormat.IMM32, cycles.INSN_BASE),
    Op.JLE: ("jle", OpFormat.IMM32, cycles.INSN_BASE),
    Op.PUSH: ("push", OpFormat.REG, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.POP: ("pop", OpFormat.REG, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.PUSHI: ("pushi", OpFormat.IMM32, cycles.INSN_BASE + cycles.INSN_MEM),
    Op.NOT: ("not", OpFormat.REG, cycles.INSN_BASE),
    Op.NEG: ("neg", OpFormat.REG, cycles.INSN_BASE),
    Op.INT: ("int", OpFormat.IMM8, cycles.EXCEPTION_ENTRY),
}

#: opcode -> format
FORMATS = {op: fmt for op, (_, fmt, _) in _TABLE.items()}

#: opcode -> mnemonic
MNEMONICS = {op: name for op, (name, _, _) in _TABLE.items()}

#: mnemonic -> opcode
OPCODES_BY_NAME = {name: op for op, (name, _, _) in _TABLE.items()}

#: opcode -> base cycle cost
BASE_CYCLES = {op: cost for op, (_, _, cost) in _TABLE.items()}

#: opcode -> encoded length in bytes, precomputed so decode and
#: ``Instruction.__init__`` resolve length with a single dict lookup
#: instead of chaining ``LENGTHS[FORMATS[opcode]]``.
OP_LENGTHS = {op: LENGTHS[fmt] for op, (_, fmt, _) in _TABLE.items()}

#: opcodes whose IMM32 operand is a code or data *address* (and therefore
#: needs a relocation entry when the operand is a symbol).
ADDRESS_IMM_OPS = frozenset(
    {
        Op.JMP,
        Op.CALL,
        Op.JZ,
        Op.JNZ,
        Op.JC,
        Op.JNC,
        Op.JS,
        Op.JNS,
        Op.JG,
        Op.JL,
        Op.JGE,
        Op.JLE,
        Op.MOVI,
        Op.PUSHI,
        Op.CMPI,
        Op.ADDI,
    }
)

#: conditional branch opcodes -> (flag expression evaluator name)
CONDITIONAL_BRANCHES = frozenset(
    {Op.JZ, Op.JNZ, Op.JC, Op.JNC, Op.JS, Op.JNS, Op.JG, Op.JL, Op.JGE, Op.JLE}
)


def instruction_length(opcode):
    """Encoded length in bytes of ``opcode``'s format."""
    return OP_LENGTHS[opcode]
