"""Relocatable task binaries.

The paper's implementation extends FreeRTOS with an ELF loader because
FreeRTOS runs on physical memory: a task's base address depends on which
memory is free at load time, so binaries must be relocatable and carry
relocation entries (Section 4, "Dynamic task handling").

We implement a minimal ELF-like container, **TELF**:

* :class:`~repro.image.telf.ObjectFile` - assembler output: sections
  (``.text``/``.data``/``.bss``), a symbol table, and relocation records.
* :class:`~repro.image.telf.TaskImage` - linker output: one loadable
  blob laid out at link base 0, an entry offset, a BSS size, a stack-size
  hint, and a flat relocation table (byte offsets of 32-bit absolute
  address words).  Loading at base *B* adds *B* to each site; the RTM
  reverts exactly this to obtain position-independent measurements.
* :func:`~repro.image.linker.link` - combines object files into a
  :class:`TaskImage`.
"""

from repro.image.telf import (
    ObjectFile,
    Relocation,
    Section,
    Symbol,
    TaskImage,
)
from repro.image.linker import link

__all__ = [
    "ObjectFile",
    "Relocation",
    "Section",
    "Symbol",
    "TaskImage",
    "link",
]
