"""The TELF linker.

Combines one or more :class:`~repro.image.telf.ObjectFile` objects into a
single loadable :class:`~repro.image.telf.TaskImage`:

1. lay out sections in canonical order (``.text``, then ``.data`` word-
   aligned, then ``.bss``) at link base 0;
2. resolve every symbol to its link-base-0 address;
3. apply relocations by adding the resolved symbol address to the addend
   already stored at each fixup site;
4. emit the flat relocation table the loader and the RTM consume.

Symbols must resolve uniquely across the input objects; the entry symbol
(default ``start``) must exist and live in ``.text``.
"""

from __future__ import annotations

from repro.errors import LinkError
from repro.image.telf import (
    DEFAULT_STACK_SIZE,
    SECTION_ORDER,
    TaskImage,
)

#: Alignment applied between sections.
SECTION_ALIGN = 4


def _align(value, alignment):
    """Round ``value`` up to a multiple of ``alignment``."""
    return (value + alignment - 1) // alignment * alignment


def link(objects, name=None, entry_symbol="start", stack_size=DEFAULT_STACK_SIZE):
    """Link ``objects`` into a :class:`TaskImage`.

    Parameters
    ----------
    objects:
        A single object file or an iterable of them.
    name:
        Image name; defaults to the first object's name.
    entry_symbol:
        Symbol the loader jumps to; must be defined in ``.text``.
    stack_size:
        Stack bytes the loader must allocate for the task.
    """
    if not isinstance(objects, (list, tuple)):
        objects = [objects]
    if not objects:
        raise LinkError("no input objects")
    image_name = name if name is not None else objects[0].name

    # -- 1. layout ---------------------------------------------------------
    # placement[(obj_index, section_name)] -> base offset at link base 0
    placement = {}
    cursor = 0
    section_sizes = {sname: 0 for sname in SECTION_ORDER}
    for sname in SECTION_ORDER:
        cursor = _align(cursor, SECTION_ALIGN)
        section_base = cursor
        for index, obj in enumerate(objects):
            section = obj.sections.get(sname)
            if section is None or section.size == 0:
                continue
            cursor = _align(cursor, SECTION_ALIGN)
            placement[(index, sname)] = cursor
            cursor += section.size
        section_sizes[sname] = cursor - section_base

    # -- 2. symbol resolution -----------------------------------------------
    # Global symbols share one namespace; local labels are scoped to their
    # object file (two objects may both define a local ``loop``).
    global_addresses = {}
    local_addresses = [dict() for _ in objects]
    for index, obj in enumerate(objects):
        for sym in obj.symbols.values():
            key = (index, sym.section)
            if key not in placement:
                raise LinkError(
                    "symbol %r defined in empty section %r" % (sym.name, sym.section)
                )
            address = placement[key] + sym.offset
            if sym.is_global:
                if sym.name in global_addresses:
                    raise LinkError("duplicate global symbol %r" % sym.name)
                global_addresses[sym.name] = address
            else:
                local_addresses[index][sym.name] = address

    def resolve(index, symbol):
        """Resolve ``symbol`` as seen from object ``index``."""
        if symbol in local_addresses[index]:
            return local_addresses[index][symbol]
        if symbol in global_addresses:
            return global_addresses[symbol]
        raise LinkError("undefined symbol %r" % symbol)

    entry_address = None
    if entry_symbol in global_addresses:
        entry_address = global_addresses[entry_symbol]
    else:
        for index in range(len(objects)):
            if entry_symbol in local_addresses[index]:
                entry_address = local_addresses[index][entry_symbol]
                break
    if entry_address is None:
        raise LinkError("entry symbol %r not defined" % entry_symbol)

    # -- 3. build the blob and apply relocations ----------------------------
    blob_size = 0
    for index, obj in enumerate(objects):
        for sname in (".text", ".data"):
            key = (index, sname)
            if key in placement:
                end = placement[key] + obj.sections[sname].size
                blob_size = max(blob_size, end)
    blob = bytearray(blob_size)
    for index, obj in enumerate(objects):
        for sname in (".text", ".data"):
            key = (index, sname)
            if key not in placement:
                continue
            base = placement[key]
            data = obj.sections[sname].data
            blob[base : base + len(data)] = data

    relocation_offsets = []
    for index, obj in enumerate(objects):
        for reloc in obj.relocations:
            key = (index, reloc.section)
            if key not in placement:
                raise LinkError(
                    "relocation in unplaced section %r" % reloc.section
                )
            if reloc.section == ".bss":
                raise LinkError("relocation sites cannot live in .bss")
            site = placement[key] + reloc.offset
            addend = int.from_bytes(blob[site : site + 4], "little")
            value = (resolve(index, reloc.symbol) + addend) & 0xFFFFFFFF
            blob[site : site + 4] = value.to_bytes(4, "little")
            relocation_offsets.append(site)

    bss_total = 0
    for index, obj in enumerate(objects):
        section = obj.sections.get(".bss")
        if section is not None:
            bss_total += _align(section.bss_size, SECTION_ALIGN)

    return TaskImage(
        image_name,
        bytes(blob),
        entry_address,
        relocation_offsets,
        bss_size=bss_total,
        stack_size=stack_size,
    )
