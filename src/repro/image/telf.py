"""TELF: the Tiny ELF-like binary container.

Two container kinds live here:

* :class:`ObjectFile` - relocatable assembler output (sections, symbols,
  relocation records referring to symbols or sections).
* :class:`TaskImage` - linked, loadable task binary: a single blob laid
  out at link base 0 plus a flat relocation table.  This is the unit the
  TyTAN loader loads, the RTM measures, and task providers sign.

Both serialise to deterministic byte strings so that task identities
(hash digests of the image) are stable.
"""

from __future__ import annotations

import struct

from repro.errors import ImageFormatError

#: Serialised magic for object files.
OBJ_MAGIC = b"TELF"
#: Serialised magic for linked task images.
IMG_MAGIC = b"TIMG"
#: Container format version.
VERSION = 1

#: Canonical section order used by the linker layout.
SECTION_ORDER = (".text", ".data", ".bss")

#: Default stack size granted to a task when the image carries no hint.
DEFAULT_STACK_SIZE = 512


class Section:
    """A named chunk of an object file.

    ``.bss`` sections carry only a size (their content is implicitly
    zero); other sections carry bytes.
    """

    def __init__(self, name, data=b"", bss_size=0):
        self.name = name
        self.data = bytearray(data)
        self.bss_size = bss_size

    @property
    def size(self):
        """Section size in bytes (data length, or reserved BSS length)."""
        if self.name == ".bss":
            return self.bss_size
        return len(self.data)

    def append(self, payload):
        """Append bytes to the section and return their start offset."""
        offset = len(self.data)
        self.data += payload
        return offset

    def reserve(self, count):
        """Reserve ``count`` zero bytes (BSS) and return their offset."""
        offset = self.bss_size
        self.bss_size += count
        return offset

    def __repr__(self):
        return "Section(%s, %d bytes)" % (self.name, self.size)


class Symbol:
    """A named location: (section, offset), optionally exported."""

    def __init__(self, name, section, offset, is_global=False):
        self.name = name
        self.section = section
        self.offset = offset
        self.is_global = is_global

    def __repr__(self):
        return "Symbol(%s=%s+0x%X%s)" % (
            self.name,
            self.section,
            self.offset,
            ", global" if self.is_global else "",
        )


class Relocation:
    """An absolute-address fixup site.

    ``section``/``offset`` locate a 32-bit little-endian word inside the
    object; the word currently holds the *addend*.  At link time the
    symbol's address (at link base 0) is added; at load time the load
    base is added; the RTM subtracts the load base again before hashing.
    """

    def __init__(self, section, offset, symbol):
        self.section = section
        self.offset = offset
        self.symbol = symbol

    def __repr__(self):
        return "Relocation(%s+0x%X -> %s)" % (
            self.section,
            self.offset,
            self.symbol,
        )


class ObjectFile:
    """Relocatable assembler output."""

    def __init__(self, name="object"):
        self.name = name
        self.sections = {}
        self.symbols = {}
        self.relocations = []

    def section(self, name):
        """Return (creating if needed) the section called ``name``."""
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    def add_symbol(self, name, section, offset, is_global=False):
        """Define symbol ``name``; redefinition is an error."""
        if name in self.symbols:
            raise ImageFormatError("duplicate symbol %r" % name)
        self.symbols[name] = Symbol(name, section, offset, is_global)
        return self.symbols[name]

    def add_relocation(self, section, offset, symbol):
        """Record an absolute-address fixup at ``section+offset``."""
        reloc = Relocation(section, offset, symbol)
        self.relocations.append(reloc)
        return reloc

    # -- serialisation ----------------------------------------------------

    def to_bytes(self):
        """Serialise deterministically."""
        out = bytearray()
        out += OBJ_MAGIC
        out += struct.pack("<HH", VERSION, len(self.sections))
        out += _pack_str(self.name)
        for name in sorted(self.sections):
            section = self.sections[name]
            out += _pack_str(name)
            out += struct.pack("<II", len(section.data), section.bss_size)
            out += section.data
        out += struct.pack("<I", len(self.symbols))
        for name in sorted(self.symbols):
            sym = self.symbols[name]
            out += _pack_str(name)
            out += _pack_str(sym.section)
            out += struct.pack("<IB", sym.offset, 1 if sym.is_global else 0)
        out += struct.pack("<I", len(self.relocations))
        for reloc in self.relocations:
            out += _pack_str(reloc.section)
            out += struct.pack("<I", reloc.offset)
            out += _pack_str(reloc.symbol)
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob):
        """Parse a serialised object file."""
        view = _Reader(blob)
        if view.take(4) != OBJ_MAGIC:
            raise ImageFormatError("bad object magic")
        version, section_count = struct.unpack("<HH", view.take(4))
        if version != VERSION:
            raise ImageFormatError("unsupported object version %d" % version)
        obj = cls(view.take_str())
        for _ in range(section_count):
            name = view.take_str()
            data_len, bss_size = struct.unpack("<II", view.take(8))
            section = Section(name, view.take(data_len), bss_size)
            obj.sections[name] = section
        (symbol_count,) = struct.unpack("<I", view.take(4))
        for _ in range(symbol_count):
            name = view.take_str()
            section = view.take_str()
            offset, glob = struct.unpack("<IB", view.take(5))
            obj.symbols[name] = Symbol(name, section, offset, bool(glob))
        (reloc_count,) = struct.unpack("<I", view.take(4))
        for _ in range(reloc_count):
            section = view.take_str()
            (offset,) = struct.unpack("<I", view.take(4))
            symbol = view.take_str()
            obj.relocations.append(Relocation(section, offset, symbol))
        return obj


class TaskImage:
    """A linked, loadable task binary.

    Attributes
    ----------
    name:
        Task name (informational; identity is the hash, not the name).
    blob:
        ``.text`` + ``.data`` laid out at link base 0.
    bss_size:
        Bytes of zero-initialised memory following the blob.
    entry:
        Entry offset within the blob.
    stack_size:
        Stack bytes the loader must allocate after BSS.
    relocations:
        Sorted byte offsets (within the blob) of 32-bit words holding
        absolute addresses relative to link base 0.
    """

    def __init__(
        self,
        name,
        blob,
        entry,
        relocations,
        bss_size=0,
        stack_size=DEFAULT_STACK_SIZE,
    ):
        self.name = name
        self.blob = bytes(blob)
        self.entry = entry
        self.relocations = sorted(relocations)
        self.bss_size = bss_size
        self.stack_size = stack_size
        self._validate()

    def _validate(self):
        if self.entry >= len(self.blob) and self.blob:
            raise ImageFormatError(
                "entry 0x%X outside blob of %d bytes" % (self.entry, len(self.blob))
            )
        for offset in self.relocations:
            if offset + 4 > len(self.blob):
                raise ImageFormatError(
                    "relocation at 0x%X outside blob" % offset
                )
        if self.stack_size <= 0:
            raise ImageFormatError("stack size must be positive")

    @property
    def memory_size(self):
        """Total RAM the task occupies: blob + BSS + stack."""
        return len(self.blob) + self.bss_size + self.stack_size

    @property
    def measured_size(self):
        """Bytes covered by the RTM measurement (code + static data)."""
        return len(self.blob)

    # -- serialisation ----------------------------------------------------

    def to_bytes(self):
        """Serialise deterministically; this is what providers distribute
        and what the task identity hash covers."""
        out = bytearray()
        out += IMG_MAGIC
        out += struct.pack("<HH", VERSION, 0)
        out += _pack_str(self.name)
        out += struct.pack(
            "<IIIII",
            len(self.blob),
            self.bss_size,
            self.entry,
            self.stack_size,
            len(self.relocations),
        )
        for offset in self.relocations:
            out += struct.pack("<I", offset)
        out += self.blob
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob):
        """Parse a serialised task image."""
        view = _Reader(blob)
        if view.take(4) != IMG_MAGIC:
            raise ImageFormatError("bad image magic")
        version, _ = struct.unpack("<HH", view.take(4))
        if version != VERSION:
            raise ImageFormatError("unsupported image version %d" % version)
        name = view.take_str()
        blob_len, bss, entry, stack, reloc_count = struct.unpack(
            "<IIIII", view.take(20)
        )
        relocations = [
            struct.unpack("<I", view.take(4))[0] for _ in range(reloc_count)
        ]
        payload = view.take(blob_len)
        return cls(name, payload, entry, relocations, bss, stack)

    def __repr__(self):
        return "TaskImage(%s, %d bytes, %d relocs, entry=0x%X)" % (
            self.name,
            len(self.blob),
            len(self.relocations),
            self.entry,
        )


def _pack_str(text):
    """Length-prefixed UTF-8 string."""
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ImageFormatError("string too long")
    return struct.pack("<H", len(raw)) + raw


class _Reader:
    """Cursor over a byte string with bounds checking."""

    def __init__(self, blob):
        self.blob = bytes(blob)
        self.pos = 0

    def take(self, count):
        if self.pos + count > len(self.blob):
            raise ImageFormatError("truncated container")
        chunk = self.blob[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def take_str(self):
        (length,) = struct.unpack("<H", self.take(2))
        return self.take(length).decode("utf-8")
