"""The RTOS kernel: dispatch loop, context switching, syscalls, ticks.

The kernel drives the platform: it picks the highest-priority ready
task, restores its context (really writing/reading the context frames in
simulated task stacks), lets it run until an interrupt or trap, and
handles the event.  Two task flavours execute:

* **ISA tasks** run on the simulated CPU until the exception engine
  vectors into firmware (tick, syscall, IPC, fault);
* **native tasks** are generators whose yields are preemption points -
  after every yielded work chunk the kernel polls the interrupt
  controller, so native (trusted-component) code is interruptible with
  latency bounded by its largest chunk, mirroring the paper's
  "interruptible, or ... upper bound on their execution time" design
  rule.

Context save/restore is pluggable through a *context policy*:
:class:`OSContextPolicy` implements plain FreeRTOS behaviour (the OS
saves every task's registers - the Tables 2/3 baseline); TyTAN installs
:class:`repro.core.int_mux.TyTANContextPolicy`, which routes secure
tasks through the trusted Int Mux and entry routine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import cycles
from repro.errors import (
    HardwareFault,
    KernelPanic,
    SchedulerError,
    StackOverflow,
)
from repro.hw.exceptions import Vector
from repro.hw.platform import FirmwareComponent
from repro.hw.registers import Flag, Reg
from repro.rtos.heap import FirstFitAllocator
from repro.rtos.scheduler import Scheduler
from repro.rtos.swtimer import TimerService
from repro.rtos.syscalls import Syscall
from repro.rtos.task import (
    INBOX_RD,
    INBOX_WR,
    NativeCall,
    TaskControlBlock,
    TaskState,
    TaskType,
)

#: Bytes of the software-saved register area of a context frame.
FRAME_GPR_BYTES = 4 * 8
#: Full context frame: 8 GPRs + EIP + EFLAGS.
FRAME_BYTES = FRAME_GPR_BYTES + 8

#: Event kinds whose natural source is not the RTOS layer (the kernel
#: emits them on behalf of hardware or a trusted component).
_KIND_SOURCES = {
    "irq": "hw",
    "task-loaded": "tc",
    "task-unloaded": "tc",
    "task-updated": "tc",
    "cfi-violation": "tc",
    "secure-boot": "tc",
}


@dataclass
class RunResult:
    """Outcome of one :meth:`Kernel.run` / ``TyTAN.run`` call.

    ``retired`` and ``cycles`` are deltas for this call, not machine
    totals; ``stop_reason`` is one of ``"max-cycles"``, ``"until"``,
    ``"stopped"``, or ``"idle"`` (nothing can ever run again).
    """

    retired: int
    cycles: int
    stop_reason: str


class OsTrapGate(FirmwareComponent):
    """The OS's interrupt entry stub.

    On plain FreeRTOS every IDT vector lands here; the kernel then
    dispatches on the vector number.  TyTAN's secure boot re-points the
    IDT at the trusted Int Mux instead, but the kernel-side dispatch is
    identical - only the context policy (who saves what, and whether
    registers are wiped) differs.
    """

    NAME = "os-gate"


class OSContextPolicy:
    """Plain FreeRTOS context handling (the paper's baseline).

    The (untrusted) OS saves and restores every task's registers on the
    task's own stack.  Costs: 38 cycles to store, 254 to restore - the
    baseline columns of Tables 2 and 3.
    """

    def __init__(self, kernel):
        self.kernel = kernel

    def save_context(self, task):
        """Store the 8 GPRs onto ``task``'s stack (hardware already
        pushed EIP/EFLAGS).  Returns cycles charged."""
        charged = cycles.store_context_cycles()
        self.kernel.clock.charge(charged)
        self.kernel.push_gpr_frame(task, actor=self.kernel.os_actor)
        return charged

    def restore_context(self, task):
        """Reload the 8 GPRs from ``task``'s stack and pop EIP/EFLAGS
        via the hardware return path.  Returns cycles charged."""
        charged = cycles.restore_context_cycles()
        self.kernel.clock.charge(charged)
        self.kernel.pop_gpr_frame(task, actor=self.kernel.os_actor)
        self.kernel.platform.engine.hw_return(self.kernel.platform.cpu)
        return charged

    def save_context_native(self, task):
        """Charge the save cost for a native task (no register file to
        spill in HLE, but the real component would pay it)."""
        charged = cycles.store_context_cycles()
        self.kernel.clock.charge(charged)
        return charged

    def restore_context_native(self, task):
        """Charge the restore cost for a native task."""
        charged = cycles.restore_context_cycles()
        self.kernel.clock.charge(charged)
        return charged

    def describe(self):
        """Policy name for traces."""
        return "freertos"


class Kernel:
    """The kernel instance bound to one :class:`~repro.hw.platform.Platform`."""

    def __init__(self, platform, context_policy=None):
        self.platform = platform
        self.clock = platform.clock
        self.memory = platform.memory
        #: The platform's observability bus (repro.obs); every kernel
        #: event is published here alongside the legacy sinks.
        self.obs = platform.obs
        self.scheduler = Scheduler()
        self.timer_service = TimerService()
        cfg = platform.config
        self.allocator = FirstFitAllocator(cfg.task_ram_base, cfg.task_ram_size)
        #: Actor address the kernel presents to the bus (OS code region).
        self.os_actor = cfg.os_code_base
        self.context_policy = (
            context_policy if context_policy is not None else OSContextPolicy(self)
        )
        self.tick_count = 0
        #: vector -> handler(kernel, task) for trap vectors beyond the
        #: OS syscall (IPC proxy, attestation, storage).
        self._trap_handlers = {}
        #: vector -> handler(kernel) for device IRQs.
        self._irq_handlers = {}
        #: Diagnostic event sink: callables ``f(cycle, kind, data)``.
        self._event_sinks = []
        #: Tasks that died with a fault: tcb -> exception.
        self.faulted = {}
        #: Hooks run when a task is deleted.
        self._delete_hooks = []
        self._preempt_hooks = []
        #: Queues reachable from ISA tasks via QUEUE_SEND/QUEUE_RECV.
        self._queue_registry = {}
        self._stopped = False
        self._in_run = False
        #: Interrupt entry stub; all IDT vectors point here until a
        #: trusted Int Mux takes over.
        self.trap_gate = platform.register_firmware(OsTrapGate())
        for vector in range(Vector.COUNT):
            platform.engine.install_handler(vector, self.trap_gate.base)

    # -- events -----------------------------------------------------------

    def add_event_sink(self, sink):
        """Register a trace sink ``sink(cycle, kind, data_dict)``.

        .. deprecated::
            Subscribe to the observability bus instead:
            ``kernel.obs.subscribe(callback)`` receives structured
            :class:`~repro.obs.bus.Event` objects from *every* layer
            (hardware, kernel, trusted components), not just the
            kernel.  Legacy sinks keep working and see exactly the
            kernel-emitted event stream.
        """
        self._event_sinks.append(sink)

    def emit(self, kind, **data):
        """Emit a trace event to the observability bus and all sinks."""
        bus = self.obs
        if bus is not None and bus.enabled:
            bus.publish(
                _KIND_SOURCES.get(kind, "rtos"), kind, task=data.get("name"), **data
            )
        for sink in self._event_sinks:
            sink(self.clock.now, kind, data)

    # -- task creation ----------------------------------------------------

    def create_native_task(
        self,
        name,
        priority,
        factory,
        task_type=TaskType.NORMAL,
        memory_size=256,
        charge_creation=False,
    ):
        """Create a task implemented as a native generator.

        ``factory(kernel, task)`` returns the generator.  A small memory
        region is allocated so the task has a real inbox and stack
        addresses for MPU purposes.  Service tasks created during boot
        usually skip the creation charge.
        """
        base = self.allocator.allocate(memory_size)
        task = TaskControlBlock(
            name,
            priority,
            task_type=task_type,
            native=factory,
            base=base,
            memory_size=memory_size,
            stack_size=memory_size // 2,
        )
        if charge_creation:
            self.clock.charge(cycles.CREATE_BASE)
        self.scheduler.add_task(task)
        self.emit("task-created", name=name, tid=task.tid, flavor="native")
        return task

    def create_isa_task_raw(
        self,
        name,
        priority,
        entry,
        base,
        memory_size,
        stack_size,
        task_type=TaskType.NORMAL,
        image=None,
    ):
        """Register an ISA task whose memory is already prepared.

        The TyTAN loader (and the tests) call this after placing the
        binary; the kernel prepares the initial as-if-interrupted stack
        frame, per Section 4 ("(Re)starting secure tasks").
        """
        task = TaskControlBlock(
            name,
            priority,
            task_type=task_type,
            entry=entry,
            base=base,
            memory_size=memory_size,
            stack_size=stack_size,
            image=image,
        )
        self.prepare_initial_stack(task)
        self.scheduler.add_task(task)
        self.emit("task-created", name=name, tid=task.tid, flavor="isa")
        return task

    def delete_task(self, task):
        """Remove ``task`` from scheduling and free its memory."""
        self.scheduler.remove_task(task)
        for hook in self._delete_hooks:
            hook(task)
        if task.base is not None and self.allocator.owns(task.base):
            self.allocator.free(task.base)
        self.emit("task-deleted", name=task.name, tid=task.tid)

    def add_delete_hook(self, hook):
        """Register ``hook(task)`` to run whenever a task is deleted
        (TyTAN uses this to release EA-MPU slots of native services)."""
        self._delete_hooks.append(hook)

    def add_preempt_hook(self, hook):
        """Register ``hook(task)`` to run whenever a running task is
        preempted mid-slice (IRQ preemption or deadline parking).

        Preemption lands on the same instruction boundary in every
        execution tier (the event-horizon argument), so work done here
        - the CFA monitor seals its open path segment - observes
        tier-identical state.
        """
        self._preempt_hooks.append(hook)

    def _run_preempt_hooks(self, task):
        for hook in self._preempt_hooks:
            hook(task)

    # -- context frames ------------------------------------------------------

    def prepare_initial_stack(self, task):
        """Build the as-if-interrupted frame for a never-run task.

        The OS "prepares the stack of this task as if it had been
        executed before and was interrupted", so first start and resume
        share one code path.
        """
        actor = self.memory.HW_ACTOR  # frame built before protection applies
        esp = task.stack_top
        esp -= 4
        self.memory.write_u32(esp, Flag.IF, actor)  # EFLAGS: interrupts on
        esp -= 4
        self.memory.write_u32(esp, task.entry, actor)  # EIP = entry point
        for value in (0, 0, 0, 0, 0, 0, 0, 0):  # 8 GPRs
            esp -= 4
            self.memory.write_u32(esp, value, actor)
        task.saved_esp = esp
        task.started = False
        task.resume_mode = None

    def push_gpr_frame(self, task, actor):
        """Write the CPU's 8 GPRs below the hardware-pushed EIP/EFLAGS
        on ``task``'s stack and record the frame pointer.

        A frame that would land below the task's stack floor is a stack
        overflow; the task is killed before it corrupts its own inbox
        (the FreeRTOS-style overflow check, at save time).
        """
        regs = self.platform.cpu.regs
        esp = regs.esp
        floor = None
        if task.base is not None and task.stack_size:
            floor = task.end - task.stack_size
            if esp - FRAME_GPR_BYTES < floor:
                raise StackOverflow(task.name, esp - FRAME_GPR_BYTES, floor)
        for index in range(Reg.COUNT):
            esp -= 4
            self.memory.write_u32(esp, regs.read(index), actor)
        task.saved_esp = esp
        regs.esp = esp

    def pop_gpr_frame(self, task, actor):
        """Reload the 8 GPRs from ``task``'s saved frame.

        ESP is *not* taken from the frame (its slot is a snapshot); it
        ends up pointing at the hardware-pushed EIP/EFLAGS, ready for
        the IRET half of the restore.
        """
        regs = self.platform.cpu.regs
        esp = task.saved_esp
        # push_gpr_frame stored register i at esp + 4 * (COUNT - 1 - i).
        for index in range(Reg.COUNT):
            value = self.memory.read_u32(
                esp + 4 * (Reg.COUNT - 1 - index), actor
            )
            if index == Reg.ESP:
                continue  # ESP's slot is a snapshot; real ESP is computed
            regs.write(index, value)
        regs.esp = esp + FRAME_GPR_BYTES
        task.saved_esp = None

    # -- trap / IRQ registration ------------------------------------------------

    def register_trap(self, vector, handler):
        """Install ``handler(kernel, task)`` for software trap ``vector``."""
        self._trap_handlers[vector] = handler

    def register_irq(self, vector, handler):
        """Install ``handler(kernel)`` for device IRQ ``vector``."""
        self._irq_handlers[vector] = handler

    # -- the run loop --------------------------------------------------------

    def stop(self):
        """Ask the run loop to return at the next dispatch point."""
        self._stopped = True

    def run(self, max_cycles=None, until=None):
        """Run the system; returns a :class:`RunResult`.

        Stops when ``max_cycles`` elapse, when ``until()`` returns true
        (checked at dispatch points), when :meth:`stop` is called, or
        when no task can ever run again.  The result carries the
        retired-instruction and cycle deltas for this call plus the
        stop reason.
        """
        if self._in_run:
            raise KernelPanic("kernel run loop re-entered")
        self._in_run = True
        self._stopped = False
        start_cycle = self.clock.now
        start_retired = self.platform.cpu.retired
        deadline = None if max_cycles is None else self.clock.now + max_cycles
        if not self.platform.tick_timer.enabled:
            self.platform.tick_timer.start(self.clock.now)
        bus = self.obs
        if bus is not None and bus.enabled:
            bus.publish("rtos", "run-begin", max_cycles=max_cycles)
        reason = "idle"
        try:
            while True:
                if self._stopped:
                    reason = "stopped"
                    break
                if deadline is not None and self.clock.now >= deadline:
                    reason = "max-cycles"
                    break
                if until is not None and until():
                    reason = "until"
                    break
                self.service_interrupts()
                task = self.scheduler.dispatch()
                if task is None:
                    if not self.scheduler.tasks:
                        break  # nothing will ever run again
                    if not self._idle_wait(deadline):
                        break
                    continue
                self.clock.charge(cycles.SCHEDULE_PICK)
                self._arm_wake_alarm()
                self._run_slice(task, deadline)
        finally:
            self._in_run = False
        result = RunResult(
            retired=self.platform.cpu.retired - start_retired,
            cycles=self.clock.now - start_cycle,
            stop_reason=reason,
        )
        if bus is not None and bus.enabled:
            bus.publish(
                "rtos",
                "run-end",
                reason=result.stop_reason,
                retired=result.retired,
                cycles=result.cycles,
            )
        return result

    def _idle_wait(self, deadline):
        """No ready task: fast-forward to the next event.

        Returns ``False`` when nothing will ever happen (stop the run).
        """
        candidates = []
        wake = self.scheduler.next_wake()
        if wake is not None:
            candidates.append(wake)
        device = self.platform.next_device_event()
        if device is not None:
            candidates.append(device)
        if not candidates:
            return False
        target = min(candidates)
        if deadline is not None:
            target = min(target, deadline)
        gap = target - self.clock.now
        if gap > 0:
            self.clock.charge(gap)
        self.service_interrupts()
        return True

    def _arm_wake_alarm(self):
        """Program the RTC one-shot alarm for the next task deadline.

        The paper's real-time clock provides "special alarms and
        time-outs"; without it, a delayed task could only be woken at
        the next scheduler tick, adding up to one tick period of
        release jitter.
        """
        wake = self.scheduler.next_wake()
        rtc = self.platform.rtc
        if wake is None:
            rtc.alarm_enabled = False
            return
        rtc.alarm = wake
        rtc.alarm_enabled = True

    # -- interrupt servicing ------------------------------------------------

    def service_interrupts(self):
        """Poll devices and handle all pending IRQs in kernel context."""
        self.platform.poll_devices()
        controller = self.platform.engine.controller
        while controller.has_pending():
            vector = controller.take()
            if vector == self.platform.tick_timer.vector:
                self._handle_ticks()
            else:
                handler = self._irq_handlers.get(vector)
                if handler is not None:
                    handler(self)
                self.emit("irq", vector=vector)
        # High-resolution delays may expire between tick boundaries.
        for task in self.scheduler.wake_sleepers(self.clock.now):
            self.clock.charge(cycles.LIST_OP)
            self.emit("task-woken", name=task.name, tid=task.tid)

    def _handle_ticks(self):
        """Process every tick boundary crossed since the last call."""
        timer = self.platform.tick_timer
        while self.tick_count < timer.ticks:
            self.tick_count += 1
            self.clock.charge(
                cycles.TICK_BASE
                + cycles.TICK_PER_DELAYED * self.scheduler.delayed_count()
            )
            woken = self.scheduler.wake_sleepers(self.clock.now)
            for task in woken:
                self.clock.charge(cycles.LIST_OP)
                self.emit("task-woken", name=task.name, tid=task.tid)
            self.timer_service.expire(self, self.tick_count)
            self.platform.poll_devices()

    # -- slice execution -------------------------------------------------------

    def _run_slice(self, task, deadline):
        """Resume ``task`` and run it until it blocks or is preempted.

        Publishes a ``slice-begin``/``slice-end`` pair on the bus (per
        task, with the cycles consumed) - the backbone of the Perfetto
        per-task tracks and the per-task cycle accounting.
        """
        bus = self.obs
        observed = bus is not None and bus.enabled
        if observed:
            bus.publish(
                "rtos",
                "slice-begin",
                task=task.name,
                tid=task.tid,
                priority=task.priority,
                flavor="native" if task.is_native else "isa",
            )
        start = self.clock.now
        try:
            if task.is_native:
                self._run_native_slice(task, deadline)
            else:
                self._run_isa_slice(task, deadline)
        finally:
            if observed:
                bus.publish(
                    "rtos",
                    "slice-end",
                    task=task.name,
                    tid=task.tid,
                    cycles=self.clock.now - start,
                )

    # .. ISA tasks ...........................................................

    def _run_isa_slice(self, task, deadline):
        start = self.clock.now
        self._isa_resume(task)
        try:
            self._isa_execute(task, deadline)
        except HardwareFault as fault:
            self._kill_faulted(task, fault)
        finally:
            task.cycles_used += self.clock.now - start

    def _isa_resume(self, task):
        """Physically restore ``task``'s context and enter it."""
        regs = self.platform.cpu.regs
        regs.esp = task.saved_esp
        self.context_policy.restore_context(task)
        task.started = True
        task.resume_mode = None
        self.platform.cpu.halted = False

    def _isa_execute(self, task, deadline):
        """Instruction loop: run until a handled event parks the task."""
        while True:
            budget = None if deadline is None else deadline - self.clock.now
            if budget is not None and budget <= 0:
                self._park_current(task)
                return
            entry = self.platform.run_isa_until_event(max_cycles=budget)
            if entry.kind == "halt":
                if self.platform.cpu.halted:
                    # The task executed hlt: it is done.
                    self._exit_task(task)
                    return
                # Run budget exhausted mid-task: park it ready.
                self._park_current(task)
                return
            vector = entry.vector
            if vector is not None and vector < Vector.SYSCALL:
                # Hardware interrupt (tick, RTC alarm, device IRQ):
                # save the task's context and service it in kernel
                # context; the scheduler re-decides who runs next.
                if self._isa_irq_preempt(task, vector):
                    return
                continue
            if vector == Vector.SYSCALL:
                if self._handle_syscall(task):
                    return
                continue
            handler = self._trap_handlers.get(vector)
            if handler is not None:
                if handler(self, task):
                    return
                continue
            # Unknown trap: kill the task (no handler installed).
            self._kill_faulted(
                task, KernelPanic("unhandled trap vector 0x%X" % vector)
            )
            return

    def _isa_irq_preempt(self, task, vector):
        """A hardware interrupt fired while ``task`` ran.

        The context is saved (Int Mux path for secure tasks), the
        interrupt serviced in kernel context, and the task re-queued;
        the main loop re-dispatches, so a higher-priority task woken by
        the interrupt wins the CPU.  Returns ``True`` (slice ends).
        """
        self.context_policy.save_context(task)
        self._run_preempt_hooks(task)
        task.preemptions += 1
        if vector == self.platform.tick_timer.vector:
            self._handle_ticks()
        else:
            handler = self._irq_handlers.get(vector)
            if handler is not None:
                handler(self)
            self.emit("irq", vector=vector)
        # Wake any due sleepers (RTC-alarm wakeups land here).
        for woken in self.scheduler.wake_sleepers(self.clock.now):
            self.clock.charge(cycles.LIST_OP)
            self.emit("task-woken", name=woken.name, tid=woken.tid)
        self.scheduler.make_ready(task)
        self.scheduler.current = None
        self.emit("preempt", name=task.name, tid=task.tid)
        return True

    def _park_current(self, task):
        """Deadline hit mid-slice: save context and stay ready."""
        # The task is still between instructions; emulate an interrupt
        # save so the next run() can resume it cleanly.
        self.platform.engine.deliver(self.platform.cpu, Vector.TIMER, charge=False)
        self.context_policy.save_context(task)
        self._run_preempt_hooks(task)
        self.scheduler.make_ready(task)
        self.scheduler.current = None

    def _exit_task(self, task):
        """Terminate ``task`` voluntarily."""
        self.emit("task-exit", name=task.name, tid=task.tid)
        self.delete_task(task)

    def _kill_faulted(self, task, fault):
        """Terminate ``task`` after a hardware fault; the system keeps
        running - isolation means a fault is contained to its task."""
        self.faulted[task] = fault
        self.emit(
            "task-fault",
            name=task.name,
            tid=task.tid,
            fault=type(fault).__name__,
            detail=str(fault),
        )
        self.delete_task(task)

    # .. syscalls ...............................................................

    def _handle_syscall(self, task):
        """Dispatch an ``int 0x20`` service call from an ISA task.

        Returns ``True`` when the slice ends (the task blocked, yielded
        or exited), ``False`` to continue executing the task.
        """
        regs = self.platform.cpu.regs
        func = regs.read(Syscall.FUNC_REG)
        arg1 = regs.read(Syscall.ARG1_REG)
        self.emit("syscall", name=task.name, func=func, arg=arg1)
        self.clock.charge(cycles.LIST_OP)

        if func == Syscall.YIELD:
            self.context_policy.save_context(task)
            self.scheduler.make_ready(task)
            self.scheduler.current = None
            return True
        if func == Syscall.DELAY:
            wake_at = self.clock.now + arg1 * self.platform.tick_timer.period
            self.context_policy.save_context(task)
            self.scheduler.delay_until(task, wake_at)
            return True
        if func == Syscall.DELAY_CYCLES:
            wake_at = self.clock.now + arg1
            self.context_policy.save_context(task)
            self.scheduler.delay_until(task, wake_at)
            return True
        if func == Syscall.EXIT:
            self._exit_task(task)
            return True
        if func == Syscall.SUSPEND_SELF:
            self.context_policy.save_context(task)
            self.scheduler.suspend(task)
            return True
        if func == Syscall.GET_TIME:
            regs.write(Syscall.RESULT_REG, self.clock.now & 0xFFFFFFFF)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        if func == Syscall.IPC_POLL:
            rd, wr = self._inbox_indices(task)
            regs.write(Syscall.RESULT_REG, 1 if rd != wr else 0)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        if func == Syscall.IPC_CLEAR:
            rd, wr = self._inbox_indices(task)
            actor = self.memory.HW_ACTOR if task.is_secure else self.os_actor
            self.memory.write_u32(task.inbox_base + INBOX_RD, wr, actor)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        if func == Syscall.QUEUE_SEND:
            return self._syscall_queue_send(task, regs)
        if func == Syscall.QUEUE_RECV:
            return self._syscall_queue_recv(task, regs)
        # Unknown function: report failure in EAX and continue.
        regs.write(Syscall.RESULT_REG, 0xFFFFFFFF)
        self.platform.engine.hw_return(self.platform.cpu)
        return False

    # .. blocking queue syscalls ..............................................

    def register_queue(self, queue, qid=None):
        """Expose ``queue`` to ISA tasks under an integer id."""
        if qid is None:
            qid = queue.qid
        self._queue_registry[qid] = queue
        return qid

    def _syscall_queue_send(self, task, regs):
        queue = self._queue_registry.get(regs.read(Syscall.ARG1_REG))
        if queue is None:
            regs.write(Syscall.RESULT_REG, 0xFFFFFFFF)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        value = regs.read(Syscall.ARG2_REG)
        if queue.try_send(value):
            self.wake(queue.not_empty, limit=1)
            regs.write(Syscall.RESULT_REG, 0)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        self._block_and_restart_syscall(task, queue.not_full)
        return True

    def _syscall_queue_recv(self, task, regs):
        queue = self._queue_registry.get(regs.read(Syscall.ARG1_REG))
        if queue is None:
            regs.write(Syscall.RESULT_REG, 0xFFFFFFFF)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        ok, item = queue.try_receive()
        if ok:
            self.wake(queue.not_full, limit=1)
            regs.write(Syscall.RESULT_REG, item & 0xFFFFFFFF)
            self.platform.engine.hw_return(self.platform.cpu)
            return False
        self._block_and_restart_syscall(task, queue.not_empty)
        return True

    def _block_and_restart_syscall(self, task, wait_object):
        """Park an ISA task on ``wait_object`` such that its resume
        *re-issues the trapping instruction* (restartable syscalls:
        the hardware-pushed return address is rewound over the 2-byte
        ``int``).  The rewrite is performed with bus-master privilege,
        modelling the exception engine's restart support.
        """
        self.context_policy.save_context(task)
        eip_slot = task.saved_esp + FRAME_GPR_BYTES
        saved_eip = self.memory.read_u32(eip_slot, self.memory.HW_ACTOR)
        self.memory.write_u32(eip_slot, saved_eip - 2, self.memory.HW_ACTOR)
        self.scheduler.block(task, wait_object)

    def _inbox_indices(self, task):
        """Read a task's inbox ring indices.

        For secure tasks the kernel may not touch the memory, so the
        indices come through the hardware oracle (the real
        implementation keeps this status in a proxy-owned table;
        modelling that table is equivalent).
        """
        actor = self.memory.HW_ACTOR if task.is_secure else self.os_actor
        rd = self.memory.read_u32(task.inbox_base + INBOX_RD, actor)
        wr = self.memory.read_u32(task.inbox_base + INBOX_WR, actor)
        return rd, wr

    # .. native tasks ..............................................................

    def _run_native_slice(self, task, deadline):
        start = self.clock.now
        self._charge_native_resume(task)
        gen = task.start_native(self)
        try:
            while True:
                try:
                    call = gen.send(None)
                except StopIteration as stop:
                    task.result = getattr(stop, "value", None)
                    self._exit_task(task)
                    return
                task.started = True
                outcome = self._apply_native_call(task, call, deadline)
                if outcome == "continue":
                    continue
                if outcome == "preempted":
                    return
                if outcome == "blocked":
                    return
                if outcome == "exited":
                    return
        except HardwareFault as fault:
            self._kill_faulted(task, fault)
        finally:
            task.cycles_used += self.clock.now - start

    def _charge_native_resume(self, task):
        """Charge the context-restore cost for a native task.

        Native tasks have no register file to reload, but the real
        component would: the policy decides the cost (baseline restore
        or secure entry-routine restore).
        """
        self.context_policy.restore_context_native(task)

    def _apply_native_call(self, task, call, deadline):
        """Execute one yielded :class:`NativeCall`; returns the outcome."""
        kind = call.kind
        if kind == NativeCall.CHARGE:
            self.clock.charge(call.value)
            if self._native_preempt_check(task, deadline):
                return "preempted"
            return "continue"
        if kind == NativeCall.DELAY:
            wake_at = self.clock.now + call.value * self.platform.tick_timer.period
            self.context_policy.save_context_native(task)
            self.scheduler.delay_until(task, wake_at)
            return "blocked"
        if kind == NativeCall.DELAY_CYCLES:
            wake_at = self.clock.now + call.value
            self.context_policy.save_context_native(task)
            self.scheduler.delay_until(task, wake_at)
            return "blocked"
        if kind == NativeCall.DELAY_UNTIL:
            if call.value <= self.clock.now:
                return "continue"  # deadline already passed: keep going
            self.context_policy.save_context_native(task)
            self.scheduler.delay_until(task, call.value)
            return "blocked"
        if kind == NativeCall.BLOCK:
            self.context_policy.save_context_native(task)
            self.scheduler.block(task, call.value)
            return "blocked"
        if kind == NativeCall.YIELD:
            self.context_policy.save_context_native(task)
            self.scheduler.make_ready(task)
            self.scheduler.current = None
            return "preempted"
        if kind == NativeCall.EXIT:
            task.result = call.value
            self._exit_task(task)
            return "exited"
        raise SchedulerError("unknown native call %r" % kind)

    def _native_preempt_check(self, task, deadline):
        """After a charge chunk: process interrupts, maybe preempt.

        Returns ``True`` when ``task`` lost the CPU.
        """
        self.platform.poll_devices()
        controller = self.platform.engine.controller
        tick_seen = False
        while controller.has_pending():
            vector = controller.take()
            if vector == self.platform.tick_timer.vector:
                tick_seen = True
            else:
                handler = self._irq_handlers.get(vector)
                if handler is not None:
                    handler(self)
        if tick_seen:
            self._handle_ticks()
        for woken in self.scheduler.wake_sleepers(self.clock.now):
            self.clock.charge(cycles.LIST_OP)
            self.emit("task-woken", name=woken.name, tid=woken.tid)
        preempt = self.scheduler.preempt_pending() or (
            tick_seen and self.scheduler.round_robin_pending()
        )
        over_deadline = deadline is not None and self.clock.now >= deadline
        if preempt or over_deadline:
            self.context_policy.save_context_native(task)
            task.preemptions += 1
            self.scheduler.make_ready(task)
            self.scheduler.current = None
            self.emit("preempt", name=task.name, tid=task.tid)
            return True
        return False

    # -- blocking helpers usable from native tasks ----------------------------

    def wake(self, wait_object, limit=None):
        """Wake tasks blocked on ``wait_object``."""
        woken = self.scheduler.wake_waiters(wait_object, limit)
        for task in woken:
            self.clock.charge(cycles.LIST_OP)
        return woken

    def resume_task(self, task):
        """Resume a suspended task."""
        if task.state != TaskState.SUSPENDED:
            raise SchedulerError("task %s is not suspended" % task.name)
        self.scheduler.make_ready(task)
        self.clock.charge(cycles.LIST_OP)

    def suspend_task(self, task):
        """Suspend a task that is not currently running."""
        if self.scheduler.current is task:
            raise SchedulerError("cannot suspend the running task here")
        self.scheduler.suspend(task)
        self.clock.charge(cycles.LIST_OP)

    # -- queue operations (native-task API) --------------------------------------

    def queue_send(self, task, queue, item):
        """Non-blocking send with waiter wake-up; returns success."""
        self.clock.charge(cycles.LIST_OP)
        if queue.try_send(item):
            self.wake(queue.not_empty, limit=1)
            return True
        return False

    def queue_receive(self, task, queue):
        """Non-blocking receive with waiter wake-up; returns (ok, item)."""
        self.clock.charge(cycles.LIST_OP)
        ok, item = queue.try_receive()
        if ok:
            self.wake(queue.not_full, limit=1)
        return ok, item

    # -- semaphores and mutexes ----------------------------------------------

    def sem_take(self, task, semaphore):
        """Non-blocking take; returns success.

        On failure the caller should ``yield NativeCall.block(
        semaphore.wait_token)`` and retry when woken.
        """
        self.clock.charge(cycles.LIST_OP)
        return semaphore.try_take()

    def sem_give(self, task, semaphore):
        """Give the semaphore, waking one waiter if the count rose."""
        self.clock.charge(cycles.LIST_OP)
        if semaphore.give():
            self.wake(semaphore.wait_token, limit=1)
            return True
        return False

    def mutex_take(self, task, mutex):
        """Non-blocking take with priority inheritance on contention.

        Returns success; on failure the holder is boosted to the
        waiter's priority (requeued at its new level) and the caller
        should block on ``mutex.wait_token``.
        """
        self.clock.charge(cycles.LIST_OP)
        if mutex.try_take(task):
            return True
        boost = mutex.on_block(task)
        if boost is not None:
            holder = mutex.holder
            holder.priority = boost
            if holder.state == TaskState.READY:
                self.scheduler.make_ready(holder)  # requeue at new level
            self.clock.charge(cycles.LIST_OP)
            self.emit(
                "priority-inherit",
                holder=holder.name,
                boosted_to=boost,
                waiter=task.name,
            )
        return False

    def mutex_release(self, task, mutex):
        """Release the mutex, undoing any inheritance boost and waking
        one waiter."""
        self.clock.charge(cycles.LIST_OP)
        base = mutex.on_release(task)
        if base is not None:
            task.priority = base
            self.emit("priority-restore", holder=task.name, to=base)
        self.wake(mutex.wait_token, limit=1)

    # -- event groups ----------------------------------------------------------

    def event_set(self, group, mask):
        """Set event bits and wake satisfied waiters.

        Each released waiter's consumed bits are left in its
        ``event_result`` attribute for pickup after the wake.
        """
        self.clock.charge(cycles.LIST_OP)
        released = group.set_bits(mask)
        for task, seen in released:
            task.event_result = seen
            self.scheduler.make_ready(task)
            self.clock.charge(cycles.LIST_OP)
        return [task for task, _ in released]

    def event_wait(self, task, group, mask, wait_all=False, clear_on_exit=True):
        """Non-blocking event wait; returns ``(satisfied, bits)``.

        On failure the task is registered as a waiter: a native task
        should then ``yield NativeCall.block(group.wait_token(task))``
        and read ``task.event_result`` when it resumes.
        """
        self.clock.charge(cycles.LIST_OP)
        return group.try_wait(task, mask, wait_all, clear_on_exit)
