"""Priority-based preemptive scheduler.

FreeRTOS semantics: a fixed number of priority levels, one FIFO ready
list per level, the highest non-empty level runs, equal priorities
round-robin on each tick.  A delayed list keyed by absolute wake cycle
implements time-outs; the kernel consults :meth:`next_wake` so an idle
system can fast-forward to the next deadline.

Every operation here is O(priorities + delayed tasks) with small
constants - the "bounded execution time for primitives" requirement.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchedulerError
from repro.rtos.task import TaskState

#: Number of priority levels (0 = idle, higher runs first).
PRIORITY_LEVELS = 8


class Scheduler:
    """Ready lists, delayed list, and the running task pointer."""

    def __init__(self, levels=PRIORITY_LEVELS):
        self.levels = levels
        self._ready = [deque() for _ in range(levels)]
        #: list of (wake_at, tcb), kept sorted by wake_at
        self._delayed = []
        self.current = None
        #: All tasks ever added and not yet deleted, by tid.
        self.tasks = {}
        #: Optional callback ``hook(task)`` fired after every state
        #: transition (tracing / waveform recording).
        self.state_hook = None

    def _notify(self, task):
        if self.state_hook is not None:
            self.state_hook(task)

    # -- membership -----------------------------------------------------------

    def add_task(self, task):
        """Register ``task`` and make it ready."""
        if not 0 <= task.priority < self.levels:
            raise SchedulerError(
                "priority %d outside 0..%d" % (task.priority, self.levels - 1)
            )
        self.tasks[task.tid] = task
        self.make_ready(task)
        return task

    def remove_task(self, task):
        """Forget ``task`` entirely (unload/delete)."""
        self._discard(task)
        self.tasks.pop(task.tid, None)
        task.state = TaskState.DELETED
        self._notify(task)
        if self.current is task:
            self.current = None

    def _discard(self, task):
        for level in self._ready:
            try:
                level.remove(task)
            except ValueError:
                pass
        self._delayed = [(t, tcb) for t, tcb in self._delayed if tcb is not task]

    # -- state transitions -----------------------------------------------------

    def make_ready(self, task):
        """Move ``task`` to the back of its priority's ready list."""
        if task.state == TaskState.DELETED:
            raise SchedulerError("cannot ready a deleted task")
        self._discard(task)
        task.state = TaskState.READY
        task.wake_at = None
        task.wait_object = None
        self._ready[task.priority].append(task)
        self._notify(task)

    def delay_until(self, task, wake_at):
        """Block ``task`` until absolute cycle ``wake_at``."""
        self._discard(task)
        task.state = TaskState.BLOCKED
        task.wake_at = wake_at
        self._notify(task)
        self._delayed.append((wake_at, task))
        self._delayed.sort(key=lambda item: item[0])
        if self.current is task:
            self.current = None

    def block(self, task, wait_object):
        """Block ``task`` on ``wait_object`` (no timeout)."""
        self._discard(task)
        task.state = TaskState.BLOCKED
        task.wait_object = wait_object
        self._notify(task)
        if self.current is task:
            self.current = None

    def suspend(self, task):
        """Suspend ``task`` (loaded but not runnable until resumed)."""
        self._discard(task)
        task.state = TaskState.SUSPENDED
        self._notify(task)
        if self.current is task:
            self.current = None

    def wake_sleepers(self, now):
        """Make every delayed task whose deadline passed ready.

        Returns the woken tasks (the tick handler charges per-task
        cycles for them).
        """
        woken = []
        while self._delayed and self._delayed[0][0] <= now:
            _, task = self._delayed.pop(0)
            task.state = TaskState.READY
            task.wake_at = None
            self._ready[task.priority].append(task)
            self._notify(task)
            woken.append(task)
        return woken

    def wake_waiters(self, wait_object, limit=None):
        """Wake tasks blocked on ``wait_object`` (all, or first ``limit``)."""
        woken = []
        for task in list(self.tasks.values()):
            if task.state == TaskState.BLOCKED and task.wait_object == wait_object:
                self.make_ready(task)
                woken.append(task)
                if limit is not None and len(woken) >= limit:
                    break
        return woken

    # -- selection -----------------------------------------------------------

    def pick(self):
        """Highest-priority ready task, or ``None``.  Does not pop."""
        for level in range(self.levels - 1, -1, -1):
            if self._ready[level]:
                return self._ready[level][0]
        return None

    def dispatch(self):
        """Pop the task :meth:`pick` would return and mark it running."""
        task = self.pick()
        if task is None:
            return None
        self._ready[task.priority].popleft()
        task.state = TaskState.RUNNING
        task.activations += 1
        self.current = task
        self._notify(task)
        return task

    def preempt_pending(self):
        """Whether a ready task outranks the current one."""
        if self.current is None:
            return self.pick() is not None
        top = self.pick()
        return top is not None and top.priority > self.current.priority

    def round_robin_pending(self):
        """Whether an equal-priority peer is waiting (tick time-slicing)."""
        if self.current is None:
            return False
        return bool(self._ready[self.current.priority])

    def next_wake(self):
        """Earliest delayed-task deadline, or ``None``."""
        return self._delayed[0][0] if self._delayed else None

    def delayed_count(self):
        """Number of delayed tasks (tick handler charges per task)."""
        return len(self._delayed)

    def ready_count(self):
        """Number of ready tasks across all levels."""
        return sum(len(level) for level in self._ready)
