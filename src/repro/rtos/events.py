"""Event groups: FreeRTOS-style many-to-many synchronisation.

An event group is a word of flag bits.  Tasks set bits, and other tasks
wait for any-of / all-of a bit mask, optionally clearing the bits they
consumed on exit.  The kernel owns the blocking; the group records who
waits for what, mirroring how queues and semaphores are split.
"""

from __future__ import annotations

from repro.errors import SchedulerError


class EventGroup:
    """A 24-bit event flag word (FreeRTOS reserves the top byte)."""

    _next_gid = 1

    #: Usable flag bits.
    MASK = 0x00FFFFFF

    def __init__(self, name=None):
        self.gid = EventGroup._next_gid
        EventGroup._next_gid += 1
        self.name = name or ("events-%d" % self.gid)
        self.bits = 0
        #: wait records: task -> (mask, wait_all, clear_on_exit)
        self._waiters = {}

    def wait_token(self, task):
        """The scheduler wait object for ``task`` on this group."""
        return ("events", self.gid, task.tid)

    # -- flag operations ----------------------------------------------------

    def set_bits(self, mask):
        """OR ``mask`` into the flag word; returns tasks to wake.

        The caller (kernel) readies the returned tasks; their wait
        records are consumed here, including clear-on-exit semantics.
        """
        if mask & ~self.MASK:
            raise SchedulerError("event bits 0x%X outside usable mask" % mask)
        self.bits |= mask
        released = []
        clear_mask = 0
        # FreeRTOS semantics: every waiter satisfied by the new value is
        # released first; clear-on-exit masks apply afterwards, so one
        # event can release several waiters.
        for task, (wanted, wait_all, clear) in list(self._waiters.items()):
            if self._satisfied(wanted, wait_all):
                released.append((task, self.bits & wanted))
                if clear:
                    clear_mask |= wanted
                del self._waiters[task]
        self.bits &= ~clear_mask & self.MASK
        return released

    def clear_bits(self, mask):
        """Clear ``mask``; returns the flag word before clearing."""
        before = self.bits
        self.bits &= ~mask & self.MASK
        return before

    def _satisfied(self, wanted, wait_all):
        hit = self.bits & wanted
        return hit == wanted if wait_all else bool(hit)

    # -- waiting ---------------------------------------------------------------

    def try_wait(self, task, mask, wait_all=False, clear_on_exit=True):
        """Non-blocking wait.

        Returns ``(satisfied, bits_seen)``.  When unsatisfied, the task
        is recorded as a waiter; the kernel should then block it on
        :meth:`wait_token`.
        """
        if mask & ~self.MASK or mask == 0:
            raise SchedulerError("bad event wait mask 0x%X" % mask)
        if self._satisfied(mask, wait_all):
            seen = self.bits & mask
            if clear_on_exit:
                self.bits &= ~mask & self.MASK
            return True, seen
        self._waiters[task] = (mask, wait_all, clear_on_exit)
        return False, self.bits & mask

    def cancel_wait(self, task):
        """Forget a waiter (task deleted or timed out)."""
        self._waiters.pop(task, None)

    def waiter_count(self):
        """Number of recorded waiters."""
        return len(self._waiters)

    def __repr__(self):
        return "EventGroup(%s, bits=0x%06X, %d waiting)" % (
            self.name,
            self.bits,
            len(self._waiters),
        )
