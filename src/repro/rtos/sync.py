"""Counting semaphores and priority-inheritance mutexes.

The mutex implements priority inheritance: while a high-priority task
waits, the holder runs at the waiter's priority, bounding priority
inversion - table stakes for the real-time claims the paper makes about
its FreeRTOS base.
"""

from __future__ import annotations

from repro.errors import SchedulerError


class CountingSemaphore:
    """A counting semaphore (binary when ``maximum=1``)."""

    _next_sid = 1

    def __init__(self, initial=0, maximum=None, name=None):
        if initial < 0:
            raise SchedulerError("semaphore count cannot start negative")
        if maximum is not None and initial > maximum:
            raise SchedulerError("initial count exceeds maximum")
        self.sid = CountingSemaphore._next_sid
        CountingSemaphore._next_sid += 1
        self.name = name or ("sem-%d" % self.sid)
        self.count = initial
        self.maximum = maximum
        self.wait_token = ("sem", self.sid)

    def try_take(self):
        """Decrement if positive; returns success."""
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def give(self):
        """Increment (clamped to ``maximum``); returns whether the count
        changed (a waiter should be woken only if it did)."""
        if self.maximum is not None and self.count >= self.maximum:
            return False
        self.count += 1
        return True


class Mutex:
    """A mutex with priority inheritance.

    The kernel calls :meth:`on_block` when a task starts waiting and
    :meth:`on_release` when the holder lets go; both return priority
    adjustments the kernel applies to the holder's TCB.
    """

    _next_mid = 1

    def __init__(self, name=None):
        self.mid = Mutex._next_mid
        Mutex._next_mid += 1
        self.name = name or ("mutex-%d" % self.mid)
        self.holder = None
        self._holder_base_priority = None
        self.wait_token = ("mutex", self.mid)

    def try_take(self, task):
        """Acquire for ``task`` if free; returns success."""
        if self.holder is None:
            self.holder = task
            self._holder_base_priority = task.priority
            return True
        return self.holder is task  # recursive take is a no-op success

    def on_block(self, waiter):
        """Priority inheritance: returns the priority the holder should
        be boosted to, or ``None``."""
        if self.holder is None:
            raise SchedulerError("blocking on a free mutex")
        if waiter.priority > self.holder.priority:
            return waiter.priority
        return None

    def on_release(self, task):
        """Release by ``task``; returns the holder's base priority to
        restore, or ``None`` if no boost was applied."""
        if self.holder is not task:
            raise SchedulerError(
                "mutex %s released by non-holder %s" % (self.name, task.name)
            )
        base = self._holder_base_priority
        self.holder = None
        self._holder_base_priority = None
        if base is not None and base != task.priority:
            return base
        return None
