"""Task control blocks.

A task is either a **normal task** (isolated from other tasks but
accessible to the OS) or a **secure task** (isolated from everything,
including the OS) - Section 3 of the paper.  Tasks come in two execution
flavours in the simulator:

* **ISA tasks** execute a relocated TELF binary instruction-by-
  instruction on the simulated core; their context really lives in
  their stack memory and CPU registers.
* **Native tasks** are Python generators used for OS services and
  trusted components (high-level emulation).  They yield
  :class:`NativeCall` records - every yield is a preemption point, and
  the cycles they declare are charged to the platform clock, so native
  tasks are *interruptible with bounded latency* exactly like ISA tasks.

Task memory layout (one contiguous allocation)::

    base                                  image blob (.text + .data)
    base + blob_size                      .bss (zeroed)
    base + blob_size + bss_size           IPC inbox (INBOX_BYTES)
    ...                                   stack (grows down from `end`)
"""

from __future__ import annotations

from repro.errors import SchedulerError

#: The IPC inbox is a small ring mailbox between BSS and stack.  The
#: IPC proxy is the only writer of entries and the write index; the
#: receiving task owns the read index.  Layout::
#:
#:     +0   read index   (written by the receiver)
#:     +4   write index  (written by the proxy)
#:     +8   entries[INBOX_SLOTS], each INBOX_ENTRY_BYTES:
#:            4 message words | 2 sender-identity words
INBOX_RD = 0
INBOX_WR = 4
INBOX_ENTRIES = 8
INBOX_SLOTS = 4
INBOX_ENTRY_BYTES = 24
INBOX_BYTES = INBOX_ENTRIES + INBOX_SLOTS * INBOX_ENTRY_BYTES  # 104

#: Offsets within one entry.
INBOX_MSG = 0  #: 4 words of payload
INBOX_SENDER = 16  #: 2 words of truncated sender identity


class TaskType:
    """Task flavours from the paper's model."""

    NORMAL = "normal"
    SECURE = "secure"


class TaskState:
    """Lifecycle states (FreeRTOS naming)."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    DELETED = "deleted"


class NativeCall:
    """One yield from a native task's generator.

    Factory methods build the records the kernel understands:

    * ``charge(n)`` - burn ``n`` cycles of work (preemption point);
    * ``delay(ticks)`` - block until ``ticks`` scheduler ticks pass;
    * ``delay_cycles(n)`` - block until ``n`` cycles pass;
    * ``block(obj)`` - block until :meth:`Kernel.wake` on ``obj``;
    * ``yield_cpu()`` - stay ready but let equal-priority peers run;
    * ``exit(result)`` - terminate the task.
    """

    CHARGE = "charge"
    DELAY = "delay"
    DELAY_CYCLES = "delay_cycles"
    DELAY_UNTIL = "delay_until"
    BLOCK = "block"
    YIELD = "yield"
    EXIT = "exit"

    def __init__(self, kind, value=None):
        self.kind = kind
        self.value = value

    @classmethod
    def charge(cls, cycle_count):
        """Perform ``cycle_count`` cycles of work."""
        return cls(cls.CHARGE, cycle_count)

    @classmethod
    def delay(cls, ticks):
        """Sleep for ``ticks`` scheduler ticks."""
        return cls(cls.DELAY, ticks)

    @classmethod
    def delay_cycles(cls, cycle_count):
        """Sleep for ``cycle_count`` clock cycles."""
        return cls(cls.DELAY_CYCLES, cycle_count)

    @classmethod
    def delay_until(cls, wake_cycle):
        """Sleep until absolute cycle ``wake_cycle`` (drift-free
        periodic activation)."""
        return cls(cls.DELAY_UNTIL, wake_cycle)

    @classmethod
    def block(cls, wait_object):
        """Block until the kernel wakes ``wait_object``."""
        return cls(cls.BLOCK, wait_object)

    @classmethod
    def yield_cpu(cls):
        """Cooperative yield."""
        return cls(cls.YIELD)

    @classmethod
    def exit(cls, result=None):
        """Terminate the calling task."""
        return cls(cls.EXIT, result)

    def __repr__(self):
        return "NativeCall(%s, %r)" % (self.kind, self.value)


class TaskControlBlock:
    """Everything the kernel knows about one task."""

    _next_tid = 1

    def __init__(
        self,
        name,
        priority,
        task_type=TaskType.NORMAL,
        entry=None,
        native=None,
        base=None,
        memory_size=0,
        stack_size=0,
        image=None,
    ):
        if native is None and entry is None:
            raise SchedulerError("task needs an entry address or native code")
        self.tid = TaskControlBlock._next_tid
        TaskControlBlock._next_tid += 1
        self.name = name
        self.priority = priority
        self.task_type = task_type
        self.state = TaskState.READY

        #: ISA tasks: entry address of the relocated binary.
        self.entry = entry
        #: Native tasks: generator factory ``f(kernel, task) -> generator``.
        self.native_factory = native
        self.native_gen = None

        #: Memory placement (ISA tasks; native service tasks may have a
        #: pseudo-region for MPU purposes).
        self.base = base
        self.memory_size = memory_size
        self.stack_size = stack_size
        self.image = image

        #: Saved stack pointer while not running (ISA tasks).
        self.saved_esp = None
        #: Whether the task has a context frame on its stack.
        self.started = False
        #: Entry-routine mode for the next resume (secure tasks).
        self.resume_mode = None

        #: Task identity: SHA-1 digest of the (unrelocated) image, set by
        #: the RTM.  ``None`` until measured; normal tasks may stay
        #: unmeasured.
        self.identity = None

        #: Absolute cycle at which a delayed task wakes.
        self.wake_at = None
        #: Object the task blocks on (queue, semaphore, IPC wait).
        self.wait_object = None

        #: EA-MPU slot indices owned by this task (freed at unload).
        self.mpu_slots = []

        #: Exit result for native tasks.
        self.result = None

        #: Scheduling statistics.
        self.activations = 0
        self.cycles_used = 0
        self.preemptions = 0

    # -- memory layout helpers ---------------------------------------------

    @property
    def end(self):
        """One past the task's memory allocation."""
        return self.base + self.memory_size

    @property
    def stack_top(self):
        """Initial stack pointer (stacks grow down from the region end)."""
        return self.end

    @property
    def inbox_base(self):
        """Base address of the IPC inbox."""
        if self.image is not None:
            return self.base + len(self.image.blob) + self.image.bss_size
        return self.base + self.memory_size - self.stack_size - INBOX_BYTES

    @property
    def is_secure(self):
        """Whether this is a secure task."""
        return self.task_type == TaskType.SECURE

    @property
    def is_native(self):
        """Whether this task runs as native (HLE) code."""
        return self.native_factory is not None

    @property
    def identity64(self):
        """The truncated 64-bit identity used for IPC addressing
        (paper footnote 9: "only the first 64 bits of the hash digest")."""
        if self.identity is None:
            return None
        return self.identity[:8]

    def start_native(self, kernel):
        """Instantiate the native generator on first dispatch."""
        if self.native_gen is None:
            self.native_gen = self.native_factory(kernel, self)
        return self.native_gen

    def __repr__(self):
        return "TCB(%s, tid=%d, %s/%s, prio=%d)" % (
            self.name,
            self.tid,
            self.task_type,
            "native" if self.is_native else "isa",
            self.priority,
        )
