"""A FreeRTOS-like real-time operating system for the simulated core.

The paper ports FreeRTOS to Siskiyou Peak and extends it; this package
implements the equivalent kernel with the seven real-time properties the
paper enumerates (Section 4):

1. multi-tasking (:mod:`repro.rtos.task`),
2. priority-based pre-emptive scheduling (:mod:`repro.rtos.scheduler`),
3. bounded execution time for primitives (every kernel path charges a
   bounded cycle cost),
4. a high-resolution real-time clock (:class:`repro.hw.timer.RealTimeClock`),
5. special alarms and time-outs (:mod:`repro.rtos.swtimer`),
6. real-time queuing (:mod:`repro.rtos.queues`),
7. delaying of processes (:meth:`repro.rtos.kernel.Kernel` delay/suspend).

The kernel runs *unmodified* as the plain-FreeRTOS baseline the paper
compares against; TyTAN is layered on top by installing the trusted
components' context policy and syscall handlers
(:mod:`repro.core.system`).
"""

from repro.rtos.heap import FirstFitAllocator
from repro.rtos.task import TaskControlBlock, TaskState, TaskType, NativeCall
from repro.rtos.scheduler import Scheduler
from repro.rtos.queues import RTQueue
from repro.rtos.sync import CountingSemaphore, Mutex
from repro.rtos.events import EventGroup
from repro.rtos.swtimer import SoftwareTimer, TimerService
from repro.rtos.kernel import Kernel, OSContextPolicy
from repro.rtos.syscalls import Syscall

__all__ = [
    "FirstFitAllocator",
    "TaskControlBlock",
    "TaskState",
    "TaskType",
    "NativeCall",
    "Scheduler",
    "RTQueue",
    "CountingSemaphore",
    "Mutex",
    "EventGroup",
    "SoftwareTimer",
    "TimerService",
    "Kernel",
    "OSContextPolicy",
    "Syscall",
]
