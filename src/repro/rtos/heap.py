"""First-fit physical memory allocator for task RAM.

FreeRTOS on Siskiyou Peak operates on physical memory: "the base address
of a task changes depending on which memory regions are free at load
time, making relocation necessary" (Section 4).  This allocator is the
reason relocation exists: consecutive load/unload cycles hand out
different base addresses, and the tests verify that the same image
loaded at two bases still produces the same measured identity.
"""

from __future__ import annotations

from repro.errors import LoaderError


class FirstFitAllocator:
    """First-fit allocator over ``[base, base + size)``.

    Allocations are aligned; freeing coalesces adjacent holes.
    """

    def __init__(self, base, size, align=16):
        self.base = base
        self.size = size
        self.align = align
        #: sorted list of (start, size) allocations
        self._allocations = []

    def _aligned(self, value):
        return (value + self.align - 1) // self.align * self.align

    def allocate(self, size):
        """Allocate ``size`` bytes; returns the base address.

        Raises :class:`LoaderError` when no hole is large enough.
        """
        if size <= 0:
            raise LoaderError("allocation size must be positive")
        size = self._aligned(size)
        cursor = self._aligned(self.base)
        for start, length in self._allocations:
            if cursor + size <= start:
                break
            cursor = self._aligned(start + length)
        if cursor + size > self.base + self.size:
            raise LoaderError(
                "out of task memory: need %d bytes, largest hole too small" % size
            )
        self._allocations.append((cursor, size))
        self._allocations.sort()
        return cursor

    def free(self, address):
        """Release the allocation starting at ``address``."""
        for index, (start, _) in enumerate(self._allocations):
            if start == address:
                del self._allocations[index]
                return
        raise LoaderError("free of unallocated address 0x%08X" % address)

    def allocated_bytes(self):
        """Total bytes currently allocated."""
        return sum(size for _, size in self._allocations)

    def free_bytes(self):
        """Total bytes currently free (ignores fragmentation)."""
        return self.size - self.allocated_bytes()

    def holes(self):
        """List of ``(start, size)`` free holes, in address order."""
        out = []
        cursor = self.base
        for start, length in self._allocations:
            if start > cursor:
                out.append((cursor, start - cursor))
            cursor = start + length
        end = self.base + self.size
        if cursor < end:
            out.append((cursor, end - cursor))
        return out

    def owns(self, address):
        """Whether ``address`` lies inside an allocation."""
        for start, length in self._allocations:
            if start <= address < start + length:
                return True
        return False
