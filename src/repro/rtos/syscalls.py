"""The syscall ABI for ISA tasks.

ISA tasks request OS services with ``int 0x20`` after loading the
function number into EAX; arguments travel in EBX/ECX/EDX and results
come back in EAX.  Secure IPC uses its own vector (``int 0x21``) with
the register convention from Section 3 of the paper: the message in
EAX..EDX and the receiver's truncated 64-bit identity in ESI:EDI.
"""

from __future__ import annotations


class Syscall:
    """Function numbers for the ``int 0x20`` OS trap."""

    YIELD = 0  #: give up the CPU, stay ready
    DELAY = 1  #: EBX = ticks to sleep
    EXIT = 2  #: terminate the calling task
    GET_TIME = 3  #: returns low 32 bits of the cycle counter in EAX
    SUSPEND_SELF = 4  #: suspend until another task resumes us
    IPC_POLL = 5  #: EAX=1 if the inbox holds a message, else 0
    IPC_CLEAR = 6  #: mark the inbox consumed
    DELAY_CYCLES = 7  #: EBX = cycles to sleep (high-resolution delay)
    QUEUE_SEND = 8  #: EBX = queue id, ECX = value; blocks while full
    QUEUE_RECV = 9  #: EBX = queue id; blocks while empty; value in EAX

    #: Register index conventions (see repro.hw.registers.Reg).
    FUNC_REG = 0  # EAX
    ARG1_REG = 3  # EBX
    ARG2_REG = 1  # ECX
    ARG3_REG = 2  # EDX
    RESULT_REG = 0  # EAX


class IpcAbi:
    """Register convention for the ``int 0x21`` IPC trap."""

    #: Message payload registers, in order (EAX, EBX, ECX, EDX).
    MSG_REGS = (0, 3, 1, 2)
    #: Receiver identity (truncated 64-bit digest): low word in ESI,
    #: high word in EDI.
    ID_LO_REG = 6
    ID_HI_REG = 7
    #: Status returned in EAX: 0 ok, 1 unknown receiver, 2 inbox full.
    STATUS_OK = 0
    STATUS_UNKNOWN_RECEIVER = 1
    STATUS_INBOX_FULL = 2

    #: Entry-routine mode values (set in EDX before entering a secure
    #: task: the paper's "TyTAN provides this information in a CPU
    #: register, which is checked by the entry routine").
    MODE_RESUME = 1
    MODE_MESSAGE = 2
    MODE_START = 3
