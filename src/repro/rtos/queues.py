"""Real-time queues.

FreeRTOS-style bounded FIFO queues with blocking send/receive.  The
kernel owns the wake-ups; the queue records who waits on which side.
Queue operations charge a bounded cycle cost (copy is per-item, capacity
is fixed at creation), satisfying the bounded-primitives requirement.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchedulerError


class RTQueue:
    """A bounded FIFO of fixed-size items.

    The queue itself is passive; :class:`repro.rtos.kernel.Kernel`
    exposes the blocking ``queue_send`` / ``queue_receive`` operations
    that charge cycles and park tasks.
    """

    _next_qid = 1

    def __init__(self, capacity, name=None):
        if capacity <= 0:
            raise SchedulerError("queue capacity must be positive")
        self.qid = RTQueue._next_qid
        RTQueue._next_qid += 1
        self.name = name or ("queue-%d" % self.qid)
        self.capacity = capacity
        self._items = deque()
        #: Opaque wait tokens used with Scheduler.block / wake_waiters.
        self.not_empty = ("queue", self.qid, "not_empty")
        self.not_full = ("queue", self.qid, "not_full")

    def try_send(self, item):
        """Append ``item`` if space allows; returns success."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def try_receive(self):
        """Pop the oldest item; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        return True, self._items.popleft()

    def peek(self):
        """The oldest item without removing it, or ``None``."""
        return self._items[0] if self._items else None

    def __len__(self):
        return len(self._items)

    @property
    def full(self):
        """Whether the queue is at capacity."""
        return len(self._items) >= self.capacity

    @property
    def empty(self):
        """Whether the queue holds no items."""
        return not self._items

    def __repr__(self):
        return "RTQueue(%s, %d/%d)" % (self.name, len(self._items), self.capacity)
