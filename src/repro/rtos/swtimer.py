"""Software timers: one-shot and periodic alarms at tick granularity.

The "special alarms and time-outs" requirement.  Timer callbacks run in
kernel context during tick processing, charged a bounded cost plus
whatever the callback itself charges.
"""

from __future__ import annotations

from repro.errors import SchedulerError


class SoftwareTimer:
    """A timer firing ``callback(kernel, timer)`` after ``period`` ticks.

    ``periodic`` timers re-arm themselves; one-shot timers disarm after
    firing.
    """

    _next_id = 1

    def __init__(self, period_ticks, callback, periodic=False, name=None):
        if period_ticks <= 0:
            raise SchedulerError("timer period must be positive")
        self.timer_id = SoftwareTimer._next_id
        SoftwareTimer._next_id += 1
        self.name = name or ("timer-%d" % self.timer_id)
        self.period_ticks = period_ticks
        self.callback = callback
        self.periodic = periodic
        self.armed = False
        self.expiry_tick = None
        self.fired = 0

    def arm(self, current_tick):
        """Start (or restart) the timer from ``current_tick``."""
        self.armed = True
        self.expiry_tick = current_tick + self.period_ticks

    def disarm(self):
        """Stop the timer."""
        self.armed = False
        self.expiry_tick = None


class TimerService:
    """Holds all software timers; the kernel drives :meth:`expire`."""

    def __init__(self):
        self._timers = []

    def create(self, period_ticks, callback, periodic=False, name=None):
        """Create (unarmed) and register a timer."""
        timer = SoftwareTimer(period_ticks, callback, periodic, name)
        self._timers.append(timer)
        return timer

    def remove(self, timer):
        """Delete a timer."""
        self._timers.remove(timer)

    def expire(self, kernel, current_tick):
        """Fire every timer whose expiry passed; returns fired timers."""
        fired = []
        for timer in self._timers:
            if not timer.armed or timer.expiry_tick is None:
                continue
            if current_tick >= timer.expiry_tick:
                timer.fired += 1
                fired.append(timer)
                if timer.periodic:
                    timer.expiry_tick += timer.period_ticks
                else:
                    timer.disarm()
                timer.callback(kernel, timer)
        return fired

    def armed_count(self):
        """Number of armed timers (tick handler charges per timer)."""
        return sum(1 for timer in self._timers if timer.armed)
