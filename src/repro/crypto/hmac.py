"""HMAC-SHA-1 (RFC 2104), from scratch.

TyTAN uses MACs for remote attestation reports and for task key
derivation: ``K_t = HMAC(id_t | K_p)`` binds a storage key to both the
task identity and the platform (Section 3, "Secure storage").
"""

from __future__ import annotations

from repro.crypto.sha1 import BLOCK_BYTES, SHA1, sha1


def hmac_sha1(key, message):
    """Compute ``HMAC-SHA1(key, message)``; returns 20 bytes."""
    key = bytes(key)
    if len(key) > BLOCK_BYTES:
        key = sha1(key)
    key = key + b"\x00" * (BLOCK_BYTES - len(key))
    inner_pad = bytes(k ^ 0x36 for k in key)
    outer_pad = bytes(k ^ 0x5C for k in key)
    inner = SHA1(inner_pad).update(message).digest()
    return SHA1(outer_pad).update(inner).digest()
