"""XTEA block cipher (Needham/Wheeler) and a CTR mode.

Secure storage needs symmetric encryption with a per-task key.  XTEA is
the classic choice for tiny embedded devices: a 64-bit block, a 128-bit
key, and a few dozen lines of code - the kind of cipher that actually
ships on MSP430/Cortex-M class parts.  CTR mode turns it into a stream
cipher so blobs of any length encrypt without padding.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF
_DELTA = 0x9E3779B9

#: Standard number of Feistel rounds.
ROUNDS = 32

#: Key length in bytes.
KEY_BYTES = 16

#: Block length in bytes.
BLOCK_BYTES = 8


class XTEA:
    """XTEA with a fixed 128-bit key."""

    def __init__(self, key):
        key = bytes(key)
        if len(key) != KEY_BYTES:
            raise ValueError("XTEA key must be %d bytes" % KEY_BYTES)
        self._k = struct.unpack("<4I", key)

    def encrypt_block(self, block):
        """Encrypt one 8-byte block."""
        v0, v1 = struct.unpack("<2I", bytes(block))
        total = 0
        k = self._k
        for _ in range(ROUNDS):
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
            total = (total + _DELTA) & _MASK
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))) & _MASK
        return struct.pack("<2I", v0, v1)

    def decrypt_block(self, block):
        """Decrypt one 8-byte block."""
        v0, v1 = struct.unpack("<2I", bytes(block))
        total = (_DELTA * ROUNDS) & _MASK
        k = self._k
        for _ in range(ROUNDS):
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))) & _MASK
            total = (total - _DELTA) & _MASK
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
        return struct.pack("<2I", v0, v1)


def xtea_ctr(key, nonce, data):
    """XTEA-CTR keystream XOR: encryption and decryption are the same.

    ``nonce`` is a 4-byte per-blob value; the counter occupies the other
    half of the block.  Returns ``len(data)`` bytes.
    """
    nonce = bytes(nonce)
    if len(nonce) != 4:
        raise ValueError("CTR nonce must be 4 bytes")
    cipher = XTEA(key)
    out = bytearray()
    data = bytes(data)
    for counter in range((len(data) + BLOCK_BYTES - 1) // BLOCK_BYTES):
        keystream = cipher.encrypt_block(nonce + struct.pack("<I", counter))
        chunk = data[counter * BLOCK_BYTES : (counter + 1) * BLOCK_BYTES]
        out += bytes(a ^ b for a, b in zip(chunk, keystream))
    return bytes(out)
