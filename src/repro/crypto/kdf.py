"""Key derivation from the platform key.

"Additional keys can be derivated from K_p, e.g., for remote attestation
or for secure storage." (Section 3).  We use an HMAC-based extract/label
construction: ``derive_key(K_p, label, context)`` yields a key bound to
a purpose label (``b"attest"``, ``b"storage"``) and optional context
bytes (e.g. a task identity, or a per-provider identifier as in the
SANCUS-style scheme the paper's footnote 2 references).
"""

from __future__ import annotations

from repro.crypto.hmac import hmac_sha1
from repro.crypto.sha1 import DIGEST_BYTES


def derive_key(master, label, context=b"", length=DIGEST_BYTES):
    """Derive ``length`` bytes from ``master`` for ``label``/``context``.

    Expansion follows the HKDF-expand pattern with HMAC-SHA-1 blocks, so
    any length up to 255 * 20 bytes is available.
    """
    if not label:
        raise ValueError("derivation label must not be empty")
    if length <= 0 or length > 255 * DIGEST_BYTES:
        raise ValueError("bad derived key length %d" % length)
    out = bytearray()
    previous = b""
    counter = 1
    while len(out) < length:
        previous = hmac_sha1(
            master, previous + bytes(label) + b"\x00" + bytes(context) + bytes([counter])
        )
        out += previous
        counter += 1
    return bytes(out[:length])


def derive_task_key(platform_key, task_identity):
    """The paper's task key: ``K_t = HMAC(id_t | K_p)``.

    Bound to the task identity and the platform; a task whose binary
    changed (different ``id_t``) derives a different key and cannot
    decrypt data stored before.
    """
    return hmac_sha1(platform_key, b"task-key\x00" + bytes(task_identity))


def derive_attestation_key(platform_key, provider=b""):
    """The attestation key K_a, derivable per provider (footnote 2)."""
    return derive_key(platform_key, b"attest", provider)
