"""SHA-1, implemented from the FIPS 180-4 specification.

The implementation is deliberately structured around the 64-byte
compression block: :meth:`SHA1.update` buffers input and compresses one
block at a time, and :meth:`SHA1.compress_pending` lets a caller drive
compression *one block per call*.  The RTM uses that entry point so task
measurement can be interrupted at block boundaries, which is exactly how
TyTAN keeps hashing real-time compliant (Section 3, "Attestation").

SHA-1 is cryptographically broken for collision resistance; we implement
it because the paper does.  The interface mirrors ``hashlib`` so a
stronger hash could be swapped in, as the paper notes.
"""

from __future__ import annotations

import struct

#: Compression block size in bytes.
BLOCK_BYTES = 64
#: Digest size in bytes.
DIGEST_BYTES = 20

_MASK = 0xFFFFFFFF


def _rotl(value, count):
    """Rotate a 32-bit value left by ``count``."""
    return ((value << count) | (value >> (32 - count))) & _MASK


class SHA1:
    """Incremental SHA-1 state."""

    def __init__(self, data=b""):
        self._h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
        self._buffer = bytearray()
        self._length = 0  # total message bytes absorbed
        self._finalized = False
        if data:
            self.update(data)

    # -- absorbing ---------------------------------------------------------

    def update(self, data):
        """Absorb ``data``, compressing full blocks immediately."""
        if self._finalized:
            raise ValueError("cannot update a finalized SHA1")
        self._buffer += bytes(data)
        self._length += len(data)
        while len(self._buffer) >= BLOCK_BYTES:
            self._compress(bytes(self._buffer[:BLOCK_BYTES]))
            del self._buffer[:BLOCK_BYTES]
        return self

    def feed(self, data):
        """Buffer ``data`` *without* compressing (pair with
        :meth:`compress_pending` for interruptible hashing)."""
        if self._finalized:
            raise ValueError("cannot feed a finalized SHA1")
        self._buffer += bytes(data)
        self._length += len(data)
        return self

    def pending_blocks(self):
        """Number of full blocks buffered and awaiting compression."""
        return len(self._buffer) // BLOCK_BYTES

    def compress_pending(self, max_blocks=1):
        """Compress up to ``max_blocks`` buffered blocks; returns how
        many were actually compressed.  This is the RTM's interruptible
        work unit."""
        done = 0
        while done < max_blocks and len(self._buffer) >= BLOCK_BYTES:
            self._compress(bytes(self._buffer[:BLOCK_BYTES]))
            del self._buffer[:BLOCK_BYTES]
            done += 1
        return done

    # -- finalisation -----------------------------------------------------

    def digest(self):
        """Finalize (idempotently) and return the 20-byte digest."""
        if not self._finalized:
            self._pad_and_finish()
        return struct.pack(">5I", *self._h)

    def hexdigest(self):
        """The digest as lowercase hex."""
        return self.digest().hex()

    def copy(self):
        """Independent copy of the current state."""
        clone = SHA1()
        clone._h = list(self._h)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        clone._finalized = self._finalized
        return clone

    def _pad_and_finish(self):
        bit_length = self._length * 8
        self._buffer += b"\x80"
        while len(self._buffer) % BLOCK_BYTES != 56:
            self._buffer += b"\x00"
        self._buffer += struct.pack(">Q", bit_length)
        while self._buffer:
            self._compress(bytes(self._buffer[:BLOCK_BYTES]))
            del self._buffer[:BLOCK_BYTES]
        self._finalized = True

    # -- the compression function -------------------------------------------

    def _compress(self, block):
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

        a, b, c, d, e = self._h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp

        self._h = [
            (self._h[0] + a) & _MASK,
            (self._h[1] + b) & _MASK,
            (self._h[2] + c) & _MASK,
            (self._h[3] + d) & _MASK,
            (self._h[4] + e) & _MASK,
        ]


def sha1(data):
    """One-shot SHA-1 digest of ``data``."""
    return SHA1(data).digest()
