"""From-scratch cryptographic primitives for TyTAN.

The paper uses SHA-1 for task measurement ("We use SHA-1 but other hash
algorithms can also be used"), HMAC for remote attestation MACs and task
key derivation (``K_t = HMAC(id_t | K_p)``), and symmetric encryption
for secure storage.  All primitives here are implemented from first
principles (no ``hashlib``), because the RTM needs an *incremental*
block-by-block hashing interface so measurement can be interrupted
between compression blocks - the property the paper's real-time argument
rests on.
"""

from repro.crypto.sha1 import SHA1, sha1
from repro.crypto.hmac import hmac_sha1
from repro.crypto.kdf import derive_key
from repro.crypto.xtea import XTEA, xtea_ctr
from repro.crypto.compare import constant_time_equal

__all__ = [
    "SHA1",
    "sha1",
    "hmac_sha1",
    "derive_key",
    "XTEA",
    "xtea_ctr",
    "constant_time_equal",
]
