"""Constant-time comparison.

MAC verification (remote attestation, secure storage integrity) must not
leak how many prefix bytes matched; trusted components compare digests
with :func:`constant_time_equal`.
"""

from __future__ import annotations


def constant_time_equal(left, right):
    """Compare two byte strings without early exit on mismatch."""
    left = bytes(left)
    right = bytes(right)
    if len(left) != len(right):
        return False
    diff = 0
    for a, b in zip(left, right):
        diff |= a ^ b
    return diff == 0
