"""Per-block constant propagation shared by the analysis passes.

Both the MPU-safety pass and the access-summary exporter need the same
question answered: *which memory operands resolve to a provable constant
address inside one basic block?*  The walk is deliberately conservative:

* only ``movi`` defines a known register value (recorded together with
  whether the immediate is relocation-backed);
* any other opcode that writes its ``reg`` operand forgets that
  register;
* knowledge never crosses a block boundary.

:func:`resolved_accesses` is a generator so callers keep their own
control flow (the safety pass reports findings, the summary exporter
collects rows) while the propagation logic lives in exactly one place.
"""

from __future__ import annotations

from repro.analysis.cfg import LOAD_OPS, REG_WRITERS, STORE_OPS
from repro.isa.opcodes import Op


def access_width(opcode):
    """Bytes moved by a load/store opcode (1/2 for byte/half forms)."""
    if opcode in (Op.LDB, Op.STB):
        return 1
    if opcode in (Op.LDH, Op.STH):
        return 2
    return 4


#: Opcodes whose handlers write the EFLAGS result flags (static twin of
#: the translator's flag-liveness set).
_FLAG_WRITERS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.CMP,
        Op.SHL,
        Op.SHR,
        Op.MUL,
        Op.ADDI,
        Op.SUBI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.CMPI,
        Op.SHLI,
        Op.SHRI,
        Op.NOT,
        Op.NEG,
    }
)


def counted_loop_counter(insns, closing_opcode):
    """The loop-counter register of a provably counted loop, or ``None``.

    ``insns`` is one loop iteration's ``(address, Instruction)`` body,
    *excluding* the closing conditional branch whose opcode is
    ``closing_opcode``.  The loop is *counted* when

    * the closing branch is ``jnz`` (loops while the counter is
      non-zero);
    * the body's **last** flag-writing instruction is ``subi reg, 1``
      (so the branch tests exactly the counter's zero-ness); and
    * no other instruction in the body writes ``reg``.

    Under those conditions the counter strictly decreases by one per
    iteration (mod 2^32) and the loop runs exactly ``r[reg]`` more
    iterations whenever ``r[reg] >= 1`` at the loop head.  The trace
    JIT uses this to unroll the first ``r[reg] - 1`` iterations with
    the guard (and all dead flag updates) elided; the analysis passes
    use it to bound loop trip counts.  This is the same deliberately
    conservative style as :func:`resolved_accesses`: a proof, not a
    heuristic.
    """
    if closing_opcode != Op.JNZ:
        return None
    last_writer = None
    for index in range(len(insns) - 1, -1, -1):
        if insns[index][1].opcode in _FLAG_WRITERS:
            last_writer = index
            break
    if last_writer is None:
        return None
    counter = insns[last_writer][1]
    if counter.opcode != Op.SUBI or counter.imm != 1:
        return None
    reg = counter.reg
    if reg == 4:  # ESP: push/pop/pushi mutate it without being REG_WRITERS
        return None
    for index, (_, insn) in enumerate(insns):
        if index == last_writer:
            continue
        if insn.opcode in REG_WRITERS and insn.reg == reg:
            return None
    return reg


def resolved_accesses(block):
    """Yield ``(view, resolved)`` for each load/store in ``block``.

    ``resolved`` is ``(value, relocated)`` when the base register is
    provably the result of a ``movi`` still in effect, else ``None``.
    ``value`` is the raw ``movi`` immediate (the caller adds the
    displacement); ``relocated`` says whether the loader rebases it.
    """
    known = {}
    for view in block.insns:
        insn = view.insn
        opcode = insn.opcode
        if opcode == Op.MOVI:
            known[insn.reg] = (insn.imm, view.relocated_imm)
            continue
        if opcode in LOAD_OPS or opcode in STORE_OPS:
            yield view, known.get(insn.reg2)
        if opcode in REG_WRITERS:
            known.pop(insn.reg, None)
