"""Per-block constant propagation shared by the analysis passes.

Both the MPU-safety pass and the access-summary exporter need the same
question answered: *which memory operands resolve to a provable constant
address inside one basic block?*  The walk is deliberately conservative:

* only ``movi`` defines a known register value (recorded together with
  whether the immediate is relocation-backed);
* any other opcode that writes its ``reg`` operand forgets that
  register;
* knowledge never crosses a block boundary.

:func:`resolved_accesses` is a generator so callers keep their own
control flow (the safety pass reports findings, the summary exporter
collects rows) while the propagation logic lives in exactly one place.
"""

from __future__ import annotations

from repro.analysis.cfg import LOAD_OPS, REG_WRITERS, STORE_OPS
from repro.isa.opcodes import Op


def access_width(opcode):
    """Bytes moved by a load/store opcode (1 for the byte forms)."""
    return 1 if opcode in (Op.LDB, Op.STB) else 4


def resolved_accesses(block):
    """Yield ``(view, resolved)`` for each load/store in ``block``.

    ``resolved`` is ``(value, relocated)`` when the base register is
    provably the result of a ``movi`` still in effect, else ``None``.
    ``value`` is the raw ``movi`` immediate (the caller adds the
    displacement); ``relocated`` says whether the loader rebases it.
    """
    known = {}
    for view in block.insns:
        insn = view.insn
        opcode = insn.opcode
        if opcode == Op.MOVI:
            known[insn.reg] = (insn.imm, view.relocated_imm)
            continue
        if opcode in LOAD_OPS or opcode in STORE_OPS:
            yield view, known.get(insn.reg2)
        if opcode in REG_WRITERS:
            known.pop(insn.reg, None)
