"""Static analysis of task images: the verifier gating the loader.

TyTAN promises that admitted tasks stay inside their EA-MPU regions
and that trusted execution is bounded; this package proves as much of
that as possible *before* admission:

* :mod:`repro.analysis.cfg` - decoding (linear sweep + recursive
  descent), basic blocks, per-function CFGs, dominators, natural loops;
* :mod:`repro.analysis.passes` - the pass pipeline: decode soundness,
  privilege policy, MPU safety, stack-depth bound;
* :mod:`repro.analysis.wcet` - static worst-case execution time via
  longest path over the reducible CFG with loop-bound annotations;
* :mod:`repro.analysis.summary` - per-block memory-access summaries
  (which operands fold to constant addresses - the static mirror of the
  block translator's hoisted EA-MPU windows);
* :mod:`repro.analysis.verifier` - policy, report, and the
  :func:`verify_image` driver;
* :mod:`repro.analysis.corpus` - known-bad fixtures and the shipped
  clean corpus backing the CI regression gate;
* :mod:`repro.analysis.bench` - static-vs-dynamic WCET soundness
  experiments (``repro.tools.bench --wcet``).

Quickstart::

    from repro.analysis import VerifyPolicy, verify_image

    report = verify_image(image, VerifyPolicy())
    if not report.ok:
        for finding in report.findings:
            print(finding.render())
"""

from repro.analysis.cfg import CodeModel, build_functions
from repro.analysis.passes import DEFAULT_PASSES, Finding
from repro.analysis.summary import AccessRecord, access_summary, summarize_image
from repro.analysis.verifier import Report, VerifyPolicy, verify_image
from repro.analysis.wcet import WcetResult, compute_wcet

__all__ = [
    "AccessRecord",
    "CodeModel",
    "DEFAULT_PASSES",
    "Finding",
    "Report",
    "VerifyPolicy",
    "WcetResult",
    "access_summary",
    "build_functions",
    "compute_wcet",
    "summarize_image",
]
