"""Static worst-case execution time over the task CFG.

The bound composes the same per-instruction costs the simulated core
charges at run time (:data:`repro.isa.opcodes.BASE_CYCLES` plus the
:data:`repro.cycles.INSN_BRANCH_TAKEN` surcharge), but pessimistically:
every branch is assumed taken, every conditional path is paid for, and
every block inside a loop is charged ``bound`` times for each annotated
loop bound.  The result is therefore an over-approximation - never an
underestimate - of the cycles the core will actually charge, which is
the soundness property ``tests/test_analysis_wcet.py`` asserts against
dynamic runs.

Bounds require structure:

* the CFG must be *reducible* (every retreating edge's target dominates
  its source) - otherwise no loop-bound annotation is meaningful and
  the verdict is "no static WCET";
* every natural-loop header needs an entry in the ``loop_bounds``
  mapping (header blob offset -> maximum header executions per loop
  entry); a missing bound makes the function - and the task - unbounded;
* the call graph must be acyclic (recursion has no static bound); call
  costs compose bottom-up, each ``call`` charging its own cost plus the
  callee's whole-function WCET.

``int`` is charged its dispatch cost (the exception-entry latency);
time spent *inside* the OS service handler belongs to the OS budget,
not the task's, and is out of scope for a task-image bound.
"""

from __future__ import annotations

from repro import cycles
from repro.isa.opcodes import BASE_CYCLES, CONDITIONAL_BRANCHES, Op

#: Opcodes whose execution redirects the PC (always pay the taken
#: surcharge in the static model; conditionals pay it pessimistically).
_BRANCHING = frozenset({Op.JMP, Op.CALL, Op.RET}) | CONDITIONAL_BRANCHES


class WcetResult:
    """The verdict of one WCET computation."""

    __slots__ = ("bounded", "cycles", "reason", "per_function")

    def __init__(self, bounded, cycles_=None, reason=None, per_function=None):
        self.bounded = bounded
        self.cycles = cycles_
        self.reason = reason
        #: function entry offset -> cycle bound (bounded functions only).
        self.per_function = per_function or {}

    def to_dict(self):
        """JSON-ready representation."""
        out = {"bounded": self.bounded}
        if self.bounded:
            out["cycles"] = self.cycles
        else:
            out["reason"] = self.reason
        if self.per_function:
            out["per_function"] = {
                "0x%X" % entry: bound
                for entry, bound in sorted(self.per_function.items())
            }
        return out

    def __repr__(self):
        if self.bounded:
            return "WcetResult(%d cycles)" % self.cycles
        return "WcetResult(unbounded: %s)" % self.reason


def insn_cost(view, callee_wcet=None):
    """Static worst-case cycle cost of one instruction.

    Matches the dynamic charge model of :class:`repro.hw.cpu.CPU`: the
    opcode's base cost, plus the branch-taken surcharge for every
    control transfer (charged unconditionally here - the static model
    assumes the expensive direction), plus the callee's WCET for
    resolved calls.
    """
    opcode = view.insn.opcode
    cost = BASE_CYCLES[opcode]
    if opcode in _BRANCHING:
        cost += cycles.INSN_BRANCH_TAKEN
    if opcode == Op.CALL and callee_wcet is not None and view.target is not None:
        cost += callee_wcet.get(view.target, 0)
    return cost


def block_cost(block, callee_wcet=None):
    """Static worst-case cycle cost of one basic block."""
    return sum(insn_cost(view, callee_wcet) for view in block.insns)


def call_order(functions):
    """Bottom-up (callee-first) ordering of the function entries.

    Returns ``(order, recursive)``; ``recursive`` is ``True`` when the
    call graph has a cycle, in which case neither stack depth nor WCET
    has a static bound.
    """
    VISITING, DONE = 0, 1
    state = {}
    order = []
    recursive = False

    def visit(entry):
        nonlocal recursive
        status = state.get(entry)
        if status == DONE:
            return
        if status == VISITING:
            recursive = True
            return
        state[entry] = VISITING
        for _site, target in functions[entry].calls:
            if target in functions:
                visit(target)
        state[entry] = DONE
        order.append(entry)

    for entry in sorted(functions):
        visit(entry)
    return order, recursive


def function_wcet(fn, loop_bounds, callee_wcet):
    """``(cycles_or_None, reason)`` for one function.

    ``loop_bounds`` maps loop-header blob offsets to the maximum number
    of times the header executes per entry into its loop; every block
    is charged the product of its enclosing loops' bounds.
    """
    if fn.irreducible:
        return None, "irreducible control flow in function 0x%X" % fn.entry
    total = 0
    for start, block in fn.blocks.items():
        multiplier = fn.loop_multiplier(start, loop_bounds)
        if multiplier is None:
            headers = sorted(
                header
                for header, body in fn.loops.items()
                if start in body and header not in loop_bounds
            )
            return None, (
                "loop header 0x%X has no bound annotation" % headers[0]
            )
        total += multiplier * block_cost(block, callee_wcet)
    return total, None


def compute_wcet(model, functions, loop_bounds=None):
    """Whole-task WCET: the entry function's bound, callees composed in."""
    loop_bounds = loop_bounds or {}
    order, recursive = call_order(functions)
    if recursive:
        return WcetResult(False, reason="recursive call cycle")
    callee_wcet = {}
    for entry in order:
        bound, reason = function_wcet(functions[entry], loop_bounds, callee_wcet)
        if bound is None:
            return WcetResult(False, reason=reason, per_function=callee_wcet)
        callee_wcet[entry] = bound
    task_entry = model.image.entry
    if task_entry not in callee_wcet:
        return WcetResult(False, reason="entry point is not analysable")
    return WcetResult(
        True, cycles_=callee_wcet[task_entry], per_function=callee_wcet
    )
