"""Verifier corpora: known-bad fixtures and the shipped clean set.

Three collections, consumed by the test suite and by the
``repro.tools.verify --builtin`` regression gate:

* :func:`rejection_fixtures` - one deliberately bad image per analysis
  pass; each must be rejected (the pass's finding must fire);
* :func:`clean_entries` - every shipped runnable image (use-case t2,
  the workload generators, the benign example tasks); each must verify
  with zero findings;
* :func:`attacker_entries` - the deliberately malicious tasks from
  ``examples/malware_containment.py``; the verifier flags statically
  what the EA-MPU contains dynamically, so each must produce findings.

The example sources live outside the package (``examples/*.py`` at the
repo root); they are loaded by path and skipped gracefully when the
directory is absent (e.g. an installed wheel without the examples).
"""

from __future__ import annotations

import importlib.util
import os

from repro.analysis.verifier import VerifyPolicy
from repro.hw.platform import MachineConfig
from repro.image.linker import link
from repro.image.telf import TaskImage
from repro.isa.assembler import assemble
from repro.sim.workloads import (
    busy_loop_source,
    counter_task_source,
    periodic_sender_source,
)


class CorpusEntry:
    """One image plus the policy it should be verified under."""

    __slots__ = ("name", "image", "policy", "pass_name")

    def __init__(self, name, image, policy=None, pass_name=None):
        self.name = name
        self.image = image
        self.policy = policy if policy is not None else VerifyPolicy()
        #: For rejection fixtures: the pass expected to flag the image.
        self.pass_name = pass_name

    def __repr__(self):
        return "CorpusEntry(%s)" % self.name


def build_image(source, name, stack_size=512):
    """Assemble + link one source into a named task image."""
    return link(assemble(source, name), name=name, stack_size=stack_size)


def mmio_window(config=None):
    """The absolute-address window tasks may legitimately touch (MMIO)."""
    cfg = config or MachineConfig()
    return [(cfg.mmio_base, cfg.mmio_base + 0x1000)]


def default_platform_policy(config=None, **overrides):
    """The policy the loader gate applies on a default platform."""
    return VerifyPolicy(
        allowed_absolute_ranges=mmio_window(config), **overrides
    )


# -- known-bad fixtures --------------------------------------------------------

_MID_INSN_JUMP = """
.section .text
.global start
start:
    movi eax, 1
    jmp start+2          ; lands inside the movi encoding
"""

_PRIVILEGED = """
.section .text
.global start
start:
    cli
    sti
    hlt
"""

_MPU_WILD_LOAD = """
.section .text
.global start
start:
    movi esi, buf+0x4000 ; relocated pointer far past the footprint
    ld eax, [esi]
    movi eax, 2          ; EXIT
    int 0x20
.section .bss
buf:
    .space 16
"""

_STACK_RUNAWAY = """
.section .text
.global start
start:
    pushi 1
    jmp start            ; pushes forever, never pops
"""

_WCET_UNBOUNDED = """
.section .text
.global start
start:
    movi ecx, 10
spin:
    subi ecx, 1
    jnz spin             ; no loop-bound annotation supplied
    movi eax, 2
    int 0x20
"""


def rejection_fixtures():
    """One known-bad :class:`CorpusEntry` per analysis pass."""
    entries = [
        CorpusEntry(
            "bad-decode-unknown-opcode",
            TaskImage("bad-opcode", bytes([0xFF, 0x00, 0x00]), 0, [], stack_size=64),
            pass_name="decode",
        ),
        CorpusEntry(
            "bad-decode-truncated",
            # A movi needs 6 bytes; the blob ends after 2.
            TaskImage("truncated", bytes([0x20, 0x00]), 0, [], stack_size=64),
            pass_name="decode",
        ),
        CorpusEntry(
            "bad-decode-mid-instruction",
            build_image(_MID_INSN_JUMP, "mid-insn-jump"),
            pass_name="decode",
        ),
        CorpusEntry(
            "bad-privileged-opcodes",
            build_image(_PRIVILEGED, "privileged"),
            pass_name="privilege",
        ),
        CorpusEntry(
            "bad-mpu-wild-load",
            build_image(_MPU_WILD_LOAD, "wild-load"),
            pass_name="mpu",
        ),
        CorpusEntry(
            "bad-stack-runaway",
            build_image(_STACK_RUNAWAY, "stack-runaway", stack_size=64),
            pass_name="stack",
        ),
        CorpusEntry(
            "bad-wcet-unbounded",
            build_image(_WCET_UNBOUNDED, "wcet-unbounded"),
            policy=VerifyPolicy(wcet_budget=100_000),
            pass_name="wcet",
        ),
    ]
    return entries


# -- the shipped clean set -----------------------------------------------------


def _repo_root():
    here = os.path.abspath(__file__)
    # src/repro/analysis/corpus.py -> repo root is four levels up.
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(here))))


def _load_example_module(name):
    """Import ``examples/<name>.py`` by path; ``None`` when unavailable."""
    path = os.path.join(_repo_root(), "examples", "%s.py" % name)
    if not os.path.exists(path):
        return None
    spec = importlib.util.spec_from_file_location("_verify_example_%s" % name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _workload_entries(config):
    policy = default_platform_policy(config)
    cruise = None
    try:
        from repro.uc.cruise_control import T2_PAD_RELOCS, T2_PAD_WORDS

        cruise = build_image(
            periodic_sender_source(
                config.mmio_base + 3 * 0x100,  # the radar device slot
                bytes(8),
                period_cycles=32_000,
                pad_words=T2_PAD_WORDS,
                pad_relocs=T2_PAD_RELOCS,
            ),
            "uc-cruise-t2",
        )
    except ImportError:  # pragma: no cover - uc module always ships
        pass
    entries = [
        CorpusEntry(
            "workload-counter", build_image(counter_task_source(), "counter"), policy
        ),
        CorpusEntry(
            "workload-busy-loop",
            build_image(busy_loop_source(1_000), "busy-loop"),
            policy,
        ),
        CorpusEntry(
            "workload-periodic-sender",
            build_image(
                periodic_sender_source(config.mmio_base + 3 * 0x100, bytes(8)),
                "periodic-sender",
            ),
            policy,
        ),
    ]
    if cruise is not None:
        entries.append(CorpusEntry("uc-cruise-t2", cruise, policy))
    return entries


def _example_entries(config):
    policy = default_platform_policy(config)
    entries = []
    sources = []
    quickstart = _load_example_module("quickstart")
    if quickstart is not None:
        sources.append(("example-quickstart-heartbeat", quickstart.TASK_SOURCE))
    live_update = _load_example_module("live_update")
    if live_update is not None:
        sources.append(("example-live-update-v1", live_update.V1))
        sources.append(("example-live-update-v2", live_update.V2))
    attest = _load_example_module("multi_stakeholder_attestation")
    if attest is not None:
        sources.append(("example-supplier-task", attest.SUPPLIER_TASK))
        sources.append(("example-oem-task", attest.OEM_TASK))
    malware = _load_example_module("malware_containment")
    if malware is not None:
        sources.append(("example-malware-victim", malware.VICTIM))
        sources.append(("example-malware-control", malware.CONTROL))
        sources.append(("example-malware-hog", malware.HOG))
    for name, source in sources:
        entries.append(CorpusEntry(name, build_image(source, name), policy))
    return entries


def clean_entries(config=None):
    """Every shipped image; each must verify with zero findings."""
    cfg = config or MachineConfig()
    return _workload_entries(cfg) + _example_entries(cfg)


def attacker_entries(config=None):
    """The malware-containment attackers; each must produce findings."""
    cfg = config or MachineConfig()
    policy = default_platform_policy(cfg)
    malware = _load_example_module("malware_containment")
    if malware is None:
        return []
    victim_base = cfg.task_ram_base + 0x1000
    return [
        CorpusEntry(
            "attacker-snooper",
            build_image(malware.snooper(victim_base), "snooper"),
            policy,
        ),
        CorpusEntry(
            "attacker-tamperer",
            build_image(malware.tamperer(cfg.os_data_base), "tamperer"),
            policy,
        ),
        CorpusEntry(
            "attacker-code-reuser",
            build_image(malware.code_reuser(victim_base + 0x40), "code-reuser"),
            policy,
        ),
    ]
