"""Per-block memory-access summaries for task images.

The block-translation tier (:mod:`repro.perf.translate`) hoists one
EA-MPU window per memory instruction; this module exports the *static*
view of the same information so rule authors and the benches can see,
per basic block, which accesses resolve to constant addresses (and will
therefore fold to literal windows at translation time) and which stay
register-relative.  Built on the same per-block constant propagation
the MPU-safety pass uses (:mod:`repro.analysis.constprop`), so the two
never disagree about what is "statically resolvable".
"""

from __future__ import annotations

from repro.analysis.cfg import CodeModel, STORE_OPS, build_functions
from repro.analysis.constprop import access_width, resolved_accesses
from repro.hw.registers import Reg


class AccessRecord:
    """One load/store inside a basic block, as statically understood."""

    __slots__ = (
        "offset",
        "kind",
        "width",
        "base_reg",
        "disp",
        "address",
        "relocated",
    )

    def __init__(self, offset, kind, width, base_reg, disp, address, relocated):
        self.offset = offset
        #: ``'load'`` or ``'store'``.
        self.kind = kind
        #: Bytes moved (1 or 4).
        self.width = width
        #: Name of the base register.
        self.base_reg = base_reg
        #: Constant displacement added to the base register.
        self.disp = disp
        #: Resolved absolute/task-relative address, or ``None`` when the
        #: base register is not a provable constant in this block.
        self.address = address
        #: Whether the resolved base immediate is relocation-backed
        #: (a task-relative offset the loader rebases), ``None`` when
        #: unresolved.
        self.relocated = relocated

    @property
    def resolved(self):
        """Whether the access folds to a constant address."""
        return self.address is not None

    def to_dict(self):
        """JSON-ready representation."""
        return {
            "offset": self.offset,
            "kind": self.kind,
            "width": self.width,
            "base_reg": self.base_reg,
            "disp": self.disp,
            "address": self.address,
            "relocated": self.relocated,
        }

    def __repr__(self):
        where = (
            "0x%X%s" % (self.address, " (reloc)" if self.relocated else "")
            if self.address is not None
            else "%s%+d" % (self.base_reg, self.disp)
        )
        return "AccessRecord(0x%04X %s%d %s)" % (
            self.offset,
            self.kind,
            self.width,
            where,
        )


def block_accesses(block):
    """The :class:`AccessRecord` list for one basic block."""
    records = []
    for view, resolved in resolved_accesses(block):
        insn = view.insn
        opcode = insn.opcode
        if resolved is None:
            address = relocated = None
        else:
            value, relocated = resolved
            address = (value + insn.imm) & 0xFFFFFFFF
        records.append(
            AccessRecord(
                view.offset,
                "store" if opcode in STORE_OPS else "load",
                access_width(opcode),
                Reg.name(insn.reg2),
                insn.imm,
                address,
                relocated,
            )
        )
    return records


def access_summary(model, functions):
    """Per-block access summaries over already-built CFGs.

    Returns a list of dicts, one per basic block that performs at least
    one memory access, ordered by function entry then block start::

        {"function": 0x..., "block": 0x..., "end": 0x...,
         "accesses": [AccessRecord.to_dict(), ...],
         "resolved": <count>, "unresolved": <count>}
    """
    out = []
    for entry in sorted(functions):
        fn = functions[entry]
        for start in sorted(fn.blocks):
            block = fn.blocks[start]
            records = block_accesses(block)
            if not records:
                continue
            resolved = sum(1 for r in records if r.resolved)
            out.append(
                {
                    "function": entry,
                    "block": start,
                    "end": block.insns[-1].end if block.insns else start,
                    "accesses": [r.to_dict() for r in records],
                    "resolved": resolved,
                    "unresolved": len(records) - resolved,
                }
            )
    return out


def summarize_image(image):
    """Build the CFGs for ``image`` and return its access summary."""
    model = CodeModel(image)
    return access_summary(model, build_functions(model))
