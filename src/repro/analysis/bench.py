"""WCET soundness experiments: static bound vs. dynamic measurement.

Each workload is assembled twice over: once for the static verifier
(with loop-bound annotations resolved from its labels) and once into
the standalone CPU+EA-MPU rig of :mod:`repro.perf.bench_core`, which
runs it to the ``hlt`` and reports the exact cycles the core charged.
A sound bound satisfies ``static >= dynamic`` - the static model
assumes every branch takes the expensive direction and every loop runs
to its annotated bound, so it may only ever over-approximate.

Exposed through ``repro.tools.bench --wcet`` and asserted by
``tests/test_analysis_wcet.py`` (an ISSUE acceptance criterion: at
least two benchmark workloads with ``static >= dynamic``).

The workloads end in ``hlt`` because the rig has no exception engine
(no OS to service an EXIT syscall); the verifier policy therefore runs
with ``privileged=True``.
"""

from __future__ import annotations

from repro.analysis.verifier import VerifyPolicy, verify_image
from repro.image.linker import link
from repro.isa.assembler import assemble
from repro.perf.bench_core import build_rig

#: Iteration counts for the workload loops.
COUNT_ITERS = 100
OUTER_ITERS = 12
INNER_ITERS = 8
FILTER_SAMPLES = 32

_COUNT_LOOP = """
.section .text
.global start
start:
    movi ecx, %(iters)d
    movi eax, 0
loop:
    addi eax, 1
    subi ecx, 1
    cmpi ecx, 0
    jnz loop
    hlt
""" % {"iters": COUNT_ITERS}

_NESTED_CALLS = """
.section .text
.global start
start:
    movi edi, 0
    movi ecx, %(outer)d
outer:
    movi edx, %(inner)d
inner:
    call bump
    subi edx, 1
    cmpi edx, 0
    jnz inner
    subi ecx, 1
    cmpi ecx, 0
    jnz outer
    hlt
bump:
    addi edi, 1
    ret
""" % {"outer": OUTER_ITERS, "inner": INNER_ITERS}

_BRANCHY_FILTER = """
; Data-dependent control flow: the static bound must cover the
; expensive (taken) direction of every sample's comparison.
.section .text
.global start
start:
    movi ecx, %(samples)d
    movi eax, 0          ; accumulator
    movi ebx, 7          ; rolling "sample"
loop:
    addi ebx, 13
    andi ebx, 0xFF
    cmpi ebx, 0x80
    jl small
    addi eax, 2
    jmp next
small:
    addi eax, 1
next:
    subi ecx, 1
    cmpi ecx, 0
    jnz loop
    hlt
""" % {"samples": FILTER_SAMPLES}

#: (name, source, {label: bound}) - bounds are per-loop-entry header
#: execution counts keyed by label, resolved to blob offsets below.
WORKLOADS = (
    ("count-loop", _COUNT_LOOP, {"loop": COUNT_ITERS}),
    (
        "nested-calls",
        _NESTED_CALLS,
        {"outer": OUTER_ITERS, "inner": INNER_ITERS},
    ),
    ("branchy-filter", _BRANCHY_FILTER, {"loop": FILTER_SAMPLES}),
)

#: Step cap for the dynamic runs (every workload halts well before it).
MAX_STEPS = 1_000_000


def resolve_loop_bounds(obj, bounds_by_label):
    """Map ``{label: bound}`` to ``{blob_offset: bound}`` via symbols."""
    resolved = {}
    for label, bound in bounds_by_label.items():
        symbol = obj.symbols[label]
        if symbol.section != ".text":
            raise ValueError("loop label %r is not code" % label)
        resolved[symbol.offset] = bound
    return resolved


def run_workload(name, source, bounds_by_label):
    """One experiment: returns the static/dynamic comparison dict."""
    obj = assemble(source, name)
    loop_bounds = resolve_loop_bounds(obj, bounds_by_label)
    image = link(obj, name=name, stack_size=64)
    report = verify_image(
        image, VerifyPolicy(privileged=True, loop_bounds=loop_bounds)
    )

    cpu = build_rig(fastpath=True, source=source)
    steps = 0
    while not cpu.halted:
        cpu.step()
        steps += 1
        if steps > MAX_STEPS:
            raise RuntimeError("workload %r did not halt" % name)
    dynamic = cpu.clock.now

    static = report.wcet.cycles if report.wcet.bounded else None
    return {
        "workload": name,
        "static_wcet": static,
        "dynamic_cycles": dynamic,
        "retired": cpu.retired,
        "sound": static is not None and static >= dynamic,
        "slack_pct": (
            round(100.0 * (static - dynamic) / dynamic, 1)
            if static is not None and dynamic
            else None
        ),
    }


def wcet_experiments():
    """Run every workload; returns the list of comparison dicts."""
    return [
        run_workload(name, source, bounds) for name, source, bounds in WORKLOADS
    ]
