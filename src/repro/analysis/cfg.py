"""Static decoding model and control-flow graph of a task image.

The verifier sees a task the way the TyTAN loader does: a
:class:`~repro.image.telf.TaskImage` blob laid out at link base 0 with a
flat relocation table.  Two complementary decodings are built:

* a **linear sweep** from offset 0, which stops at the first byte that
  does not decode (in TELF images that is normally the start of the
  data section) - this approximates the *intended* code region and is
  used for coverage statistics and mid-instruction checks;
* a **recursive descent** from the entry point, following fall-through,
  direct branches, and call targets - this is the set of instructions
  that can actually execute, and every analysis pass judges the image
  on it (data bytes that happen to decode are never false positives).

Branch and address immediates are classified by the relocation table:
an IMM32 whose byte offset appears in ``image.relocations`` is a
link-base-0 *address* (the loader rebases it), so its target is known
statically; an unrelocated immediate used as a branch target cannot be
proven safe and is surfaced as a decode-soundness finding.
"""

from __future__ import annotations

from repro.errors import IllegalInstruction
from repro.isa.encoding import decode
from repro.isa.opcodes import (
    CONDITIONAL_BRANCHES,
    FORMATS,
    OP_LENGTHS,
    Op,
    OpFormat,
)

#: Opcodes that end a basic block with a direct transfer.
DIRECT_BRANCHES = frozenset({Op.JMP}) | CONDITIONAL_BRANCHES

#: Privileged / platform-control opcodes an unprivileged task must not use.
PRIVILEGED_OPS = frozenset({Op.CLI, Op.STI, Op.IRET, Op.HLT})

#: Memory-operand opcodes (the MPU-safety pass checks these).
LOAD_OPS = frozenset({Op.LD, Op.LDB, Op.LDH})
STORE_OPS = frozenset({Op.ST, Op.STB, Op.STH})

#: Opcodes that overwrite their ``reg`` operand (constant tracking).
REG_WRITERS = frozenset(
    {
        Op.MOV,
        Op.ADD,
        Op.SUB,
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.SHL,
        Op.SHR,
        Op.MUL,
        Op.DIV,
        Op.MOVI,
        Op.ADDI,
        Op.SUBI,
        Op.ANDI,
        Op.ORI,
        Op.XORI,
        Op.SHLI,
        Op.SHRI,
        Op.LD,
        Op.LDB,
        Op.LDH,
        Op.POP,
        Op.NOT,
        Op.NEG,
    }
)

#: How the successor of an instruction was reached (for error reporting).
ORIGIN_ENTRY = "entry"
ORIGIN_FALLTHROUGH = "fallthrough"
ORIGIN_BRANCH = "branch-target"
ORIGIN_CALL = "call-target"
ORIGIN_INT = "int-fallthrough"


def _imm32_offset(offset, fmt):
    """Blob offset of the 32-bit immediate of an instruction at ``offset``."""
    if fmt == OpFormat.IMM32:
        return offset + 1
    if fmt == OpFormat.REG_IMM32:
        return offset + 2
    return None


class InsnView:
    """One reachable instruction plus its static metadata."""

    __slots__ = ("offset", "insn", "relocated_imm", "target")

    def __init__(self, offset, insn, relocated_imm=False, target=None):
        self.offset = offset
        self.insn = insn
        #: Whether the instruction's IMM32 is rebased by the loader
        #: (i.e. it is a link-base-0 address, not a plain constant).
        self.relocated_imm = relocated_imm
        #: Resolved branch/call target (link-base-0 offset) or ``None``.
        self.target = target

    @property
    def end(self):
        """Offset one past this instruction's encoding."""
        return self.offset + self.insn.length

    def __repr__(self):
        return "InsnView(0x%X, %s)" % (self.offset, self.insn.mnemonic)


class DecodeError:
    """A decode failure discovered during recursive descent."""

    __slots__ = ("offset", "reason", "origin", "source")

    def __init__(self, offset, reason, origin, source=None):
        self.offset = offset
        self.reason = reason  # "unknown-opcode" | "truncated"
        self.origin = origin  # one of the ORIGIN_* tags
        self.source = source  # offset of the instruction that led here

    def __repr__(self):
        return "DecodeError(0x%X, %s via %s)" % (self.offset, self.reason, self.origin)


class CodeModel:
    """Everything the passes need to know about one image's code."""

    def __init__(self, image):
        self.image = image
        self.reloc_set = frozenset(image.relocations)
        #: Linear sweep from 0: offset -> Instruction.
        self.sweep = {}
        self.sweep_end = 0
        #: ``(offset, remaining_bytes)`` when the sweep ended on a
        #: truncated final instruction, else ``None``.
        self.sweep_truncated = None
        #: Recursive descent from the entry: offset -> InsnView.
        self.reachable = {}
        self.decode_errors = []
        #: Offsets of branches whose IMM32 is not relocated.
        self.unrelocated_branches = []
        #: Call targets (function entries besides ``image.entry``).
        self.call_targets = set()
        #: Branch/jump targets (block leaders).
        self.branch_targets = set()
        #: Offsets of ``int`` instructions (syscall sites).
        self.int_sites = []
        self._linear_sweep()
        self._descend()

    # -- linear sweep -------------------------------------------------------

    def _linear_sweep(self):
        blob = self.image.blob
        offset = 0
        while offset < len(blob):
            opcode = blob[offset]
            fmt = FORMATS.get(opcode)
            if fmt is None:
                break
            if offset + OP_LENGTHS[opcode] > len(blob):
                self.sweep_truncated = (offset, len(blob) - offset)
                break
            self.sweep[offset] = decode(blob, offset)
            offset += OP_LENGTHS[opcode]
        self.sweep_end = offset

    def sweep_insn_covering(self, offset):
        """The sweep instruction whose encoding spans ``offset``, when
        ``offset`` is not itself a sweep instruction start."""
        for back in range(1, 6):
            insn = self.sweep.get(offset - back)
            if insn is not None and insn.length > back:
                return offset - back, insn
        return None

    # -- recursive descent ---------------------------------------------------

    def _decode_at(self, offset, origin, source):
        blob = self.image.blob
        if offset >= len(blob) or offset < 0:
            self.decode_errors.append(
                DecodeError(offset, "outside-blob", origin, source)
            )
            return None
        opcode = blob[offset]
        if FORMATS.get(opcode) is None:
            self.decode_errors.append(
                DecodeError(offset, "unknown-opcode", origin, source)
            )
            return None
        if offset + OP_LENGTHS[opcode] > len(blob):
            self.decode_errors.append(
                DecodeError(offset, "truncated", origin, source)
            )
            return None
        try:
            return decode(blob, offset)
        except IllegalInstruction:  # pragma: no cover - covered above
            self.decode_errors.append(
                DecodeError(offset, "unknown-opcode", origin, source)
            )
            return None

    def _descend(self):
        entry = self.image.entry
        worklist = [(entry, ORIGIN_ENTRY, None)]
        seen_queued = {entry}
        while worklist:
            offset, origin, source = worklist.pop()
            if offset in self.reachable:
                continue
            insn = self._decode_at(offset, origin, source)
            if insn is None:
                if origin == ORIGIN_INT:
                    # ``int`` may be a no-return service call (e.g. the
                    # EXIT syscall); falling into undecodable bytes after
                    # it is not a soundness finding.
                    self.decode_errors.pop()
                continue
            opcode = insn.opcode
            fmt = FORMATS[opcode]
            imm_at = _imm32_offset(offset, fmt)
            relocated = imm_at is not None and imm_at in self.reloc_set
            target = None
            if opcode in DIRECT_BRANCHES or opcode == Op.CALL:
                if relocated:
                    target = insn.imm
                else:
                    self.unrelocated_branches.append(offset)
            view = InsnView(offset, insn, relocated, target)
            self.reachable[offset] = view
            if opcode == Op.INT:
                self.int_sites.append(offset)

            def queue(next_offset, next_origin):
                if next_offset not in self.reachable:
                    worklist.append((next_offset, next_origin, offset))
                    seen_queued.add(next_offset)

            if opcode in (Op.RET, Op.HLT):
                continue
            if opcode == Op.JMP:
                if target is not None:
                    self.branch_targets.add(target)
                    queue(target, ORIGIN_BRANCH)
                continue
            if opcode in CONDITIONAL_BRANCHES:
                if target is not None:
                    self.branch_targets.add(target)
                    queue(target, ORIGIN_BRANCH)
                queue(view.end, ORIGIN_FALLTHROUGH)
                continue
            if opcode == Op.CALL:
                if target is not None:
                    self.call_targets.add(target)
                    queue(target, ORIGIN_CALL)
                queue(view.end, ORIGIN_FALLTHROUGH)
                continue
            if opcode == Op.INT:
                queue(view.end, ORIGIN_INT)
                continue
            queue(view.end, ORIGIN_FALLTHROUGH)

    # -- successor helpers (intra-procedural: call edges excluded) ----------

    def successors(self, view):
        """Intra-procedural successor offsets of one instruction.

        Call instructions contribute only their fall-through (the callee
        is accounted separately); ``int`` falls through when the next
        offset decoded, else acts as a terminator.
        """
        opcode = view.insn.opcode
        if opcode in (Op.RET, Op.HLT):
            return ()
        if opcode == Op.JMP:
            return (view.target,) if view.target is not None else ()
        if opcode in CONDITIONAL_BRANCHES:
            out = [view.end] if view.end in self.reachable else []
            if view.target is not None:
                out.append(view.target)
            return tuple(out)
        if view.end in self.reachable:
            return (view.end,)
        return ()


class BasicBlock:
    """A maximal straight-line run of reachable instructions."""

    __slots__ = ("start", "insns", "succ")

    def __init__(self, start, insns):
        self.start = start
        self.insns = insns
        self.succ = ()

    @property
    def last(self):
        """The block's terminator instruction view."""
        return self.insns[-1]

    def __repr__(self):
        return "BasicBlock(0x%X, %d insns)" % (self.start, len(self.insns))


class FunctionCFG:
    """The intra-procedural CFG of one function (entry or call target)."""

    def __init__(self, model, entry):
        self.model = model
        self.entry = entry
        self.blocks = {}
        #: Offsets of call instructions inside this function -> target.
        self.calls = []
        self._build()
        self._dominators()
        self._find_loops()

    # -- construction -------------------------------------------------------

    def _function_insns(self):
        """Instructions reachable from the entry without call edges."""
        model = self.model
        seen = {}
        stack = [self.entry]
        while stack:
            offset = stack.pop()
            view = model.reachable.get(offset)
            if view is None or offset in seen:
                continue
            seen[offset] = view
            if view.insn.opcode == Op.CALL and view.target is not None:
                self.calls.append((offset, view.target))
            for succ in model.successors(view):
                if succ not in seen:
                    stack.append(succ)
        return seen

    def _build(self):
        model = self.model
        insns = self._function_insns()
        if not insns:
            return
        leaders = {self.entry}
        for view in insns.values():
            succs = model.successors(view)
            opcode = view.insn.opcode
            if opcode in DIRECT_BRANCHES or opcode in (Op.CALL, Op.RET, Op.HLT):
                leaders.update(succs)
            elif len(succs) != 1:
                leaders.update(succs)
        for target in model.branch_targets:
            if target in insns:
                leaders.add(target)
        for leader in sorted(leaders):
            run = []
            offset = leader
            while offset in insns:
                view = insns[offset]
                run.append(view)
                succs = model.successors(view)
                nxt = view.end
                if (
                    len(succs) == 1
                    and succs[0] == nxt
                    and nxt not in leaders
                    and nxt in insns
                ):
                    offset = nxt
                    continue
                break
            if run:
                self.blocks[leader] = BasicBlock(leader, run)
        for block in self.blocks.values():
            succs = []
            for offset in self.model.successors(block.last):
                if offset in self.blocks:
                    succs.append(offset)
            block.succ = tuple(succs)

    # -- dominators / loops --------------------------------------------------

    def _rpo(self):
        """Reverse post-order of block starts from the entry."""
        order = []
        seen = set()

        def visit(start):
            stack = [(start, iter(self.blocks[start].succ))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succ)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.entry in self.blocks:
            visit(self.entry)
        order.reverse()
        return order

    def _dominators(self):
        """Iterative dominator computation (Cooper/Harvey/Kennedy)."""
        self.rpo = self._rpo()
        index = {node: i for i, node in enumerate(self.rpo)}
        preds = {node: [] for node in self.rpo}
        for node in self.rpo:
            for succ in self.blocks[node].succ:
                if succ in preds:
                    preds[succ].append(node)
        idom = {self.entry: self.entry} if self.rpo else {}

        def intersect(a, b):
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in self.rpo:
                if node == self.entry:
                    continue
                new = None
                for pred in preds[node]:
                    if pred in idom:
                        new = pred if new is None else intersect(new, pred)
                if new is not None and idom.get(node) != new:
                    idom[node] = new
                    changed = True
        self.idom = idom
        self.preds = preds

    def dominates(self, a, b):
        """Whether block ``a`` dominates block ``b``."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    def _find_loops(self):
        """Natural loops via back edges; flags irreducible regions.

        A retreating edge whose target does not dominate its source
        makes the CFG irreducible - no loop-bound annotation can make
        such a region's WCET computable here.
        """
        self.back_edges = []
        self.irreducible = False
        index = {node: i for i, node in enumerate(self.rpo)}
        for node in self.rpo:
            for succ in self.blocks[node].succ:
                if succ in index and index[succ] <= index[node]:
                    if self.dominates(succ, node):
                        self.back_edges.append((node, succ))
                    else:
                        self.irreducible = True
        #: loop header block start -> set of member block starts.
        self.loops = {}
        for tail, header in self.back_edges:
            body = self.loops.setdefault(header, {header})
            stack = [tail]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(self.preds.get(node, ()))

    def loop_multiplier(self, block_start, bounds):
        """Product of enclosing-loop bounds for one block.

        ``bounds`` maps loop-header block starts to the maximum number
        of times that header executes per entry of its loop.  Returns
        ``None`` when an enclosing loop has no bound.
        """
        product = 1
        for header, body in self.loops.items():
            if block_start in body:
                bound = bounds.get(header)
                if bound is None:
                    return None
                product *= bound
        return product


def build_functions(model):
    """Build a :class:`FunctionCFG` per function entry.

    The task entry point is always a function; every resolved call
    target adds another.
    """
    entries = {model.image.entry} | set(model.call_targets)
    return {
        entry: FunctionCFG(model, entry)
        for entry in sorted(entries)
        if entry in model.reachable
    }
