"""The static task-image verifier: policy, report, and driver.

``verify_image(image, policy)`` decodes the image
(:class:`~repro.analysis.cfg.CodeModel`), builds per-function CFGs, and
runs the pass pipeline of :mod:`repro.analysis.passes`.  The resulting
:class:`Report` carries every finding plus the always-computed stack
and WCET verdicts and serialises to JSON (``to_dict``) or a plain-text
report (``render_text``) for the ``repro.tools.verify`` CLI.

The loader consumes this through its ``verify=`` gate (see
:meth:`repro.core.loader.TaskLoader.load`): ``"reject"`` refuses images
with findings, ``"warn"`` admits them but publishes the findings on the
observability bus, ``"off"`` skips analysis entirely.  Verification is
modelled as *off-line* tooling - it charges zero simulated cycles,
matching a deployment where images are vetted before distribution.
"""

from __future__ import annotations

from repro.analysis import wcet as wcet_mod
from repro.analysis.cfg import CodeModel, build_functions
from repro.analysis.passes import (
    DEFAULT_PASSES,
    DEFAULT_STACK_RESERVE,
    compute_max_stack_depth,
)

#: The loader gate's accepted modes.
VERIFY_MODES = ("off", "warn", "reject")


class VerifyPolicy:
    """What the verifier demands of an image.

    Attributes
    ----------
    privileged:
        Whether CLI/STI/IRET/HLT are acceptable (platform-owned tasks).
    allowed_absolute_ranges:
        ``[(lo, hi), ...]`` half-open windows of absolute addresses the
        task may touch with unrelocated pointers (typically the MMIO
        window), or ``None`` to accept any absolute access - absolute
        addresses outside the task are the EA-MPU's public background
        region, so tolerance is the safe default when the platform
        layout is unknown.
    loop_bounds:
        Loop-bound annotations: header blob offset -> maximum header
        executions per loop entry (see ``docs/ANALYSIS.md``).
    wcet_budget:
        Cycle budget the static WCET must fit in, or ``None`` for no
        requirement (the WCET verdict is still reported).
    stack_reserve:
        Headroom in bytes added to the computed maximum stack depth
        before comparing against the image's declared stack.
    """

    __slots__ = (
        "privileged",
        "allowed_absolute_ranges",
        "loop_bounds",
        "wcet_budget",
        "stack_reserve",
    )

    def __init__(
        self,
        privileged=False,
        allowed_absolute_ranges=None,
        loop_bounds=None,
        wcet_budget=None,
        stack_reserve=DEFAULT_STACK_RESERVE,
    ):
        self.privileged = privileged
        self.allowed_absolute_ranges = allowed_absolute_ranges
        self.loop_bounds = dict(loop_bounds or {})
        self.wcet_budget = wcet_budget
        self.stack_reserve = stack_reserve


class Report:
    """The verifier's verdict on one image."""

    def __init__(self, image, findings, stats, wcet, stack):
        self.image_name = image.name
        self.findings = findings
        self.stats = stats
        self.wcet = wcet
        self.stack = stack

    @property
    def ok(self):
        """Whether the image is admissible (no findings)."""
        return not self.findings

    def to_dict(self):
        """JSON-ready representation (the CLI's ``--json`` output)."""
        return {
            "image": self.image_name,
            "ok": self.ok,
            "findings": [finding.to_dict() for finding in self.findings],
            "stats": dict(self.stats),
            "wcet": self.wcet.to_dict(),
            "stack": dict(self.stack),
        }

    def render_text(self):
        """Multi-line human-readable report."""
        lines = []
        verdict = "PASS" if self.ok else "FAIL (%d findings)" % len(self.findings)
        lines.append("%s: %s" % (self.image_name, verdict))
        lines.append(
            "  code: %(reachable_insns)d reachable insns in "
            "%(blocks)d blocks across %(functions)d functions "
            "(%(coverage).0f%% of swept code reachable)" % self.stats
        )
        if self.wcet.bounded:
            lines.append("  wcet: %d cycles (static bound)" % self.wcet.cycles)
        else:
            lines.append("  wcet: no static bound (%s)" % self.wcet.reason)
        if self.stack["bounded"]:
            lines.append(
                "  stack: max depth %d + reserve %d of %d bytes declared"
                % (
                    self.stack["max_depth"],
                    self.stack["reserve"],
                    self.stack["stack_size"],
                )
            )
        else:
            lines.append("  stack: no static bound (%s)" % self.stack["reason"])
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)


def verify_image(image, policy=None, passes=None):
    """Run the pass pipeline over ``image``; returns a :class:`Report`."""
    if policy is None:
        policy = VerifyPolicy()
    model = CodeModel(image)
    functions = build_functions(model)
    findings = []
    for _name, pass_fn in passes if passes is not None else DEFAULT_PASSES:
        findings.extend(pass_fn(model, functions, policy))
    findings.sort(key=lambda f: (f.offset if f.offset is not None else -1, f.code))

    swept = len(model.sweep)
    reachable = len(model.reachable)
    stats = {
        "blob_bytes": len(image.blob),
        "swept_insns": swept,
        "reachable_insns": reachable,
        "blocks": sum(len(fn.blocks) for fn in functions.values()),
        "functions": len(functions),
        "coverage": (100.0 * reachable / swept) if swept else 0.0,
    }
    wcet = wcet_mod.compute_wcet(model, functions, policy.loop_bounds)
    depth, reason = compute_max_stack_depth(model, functions)
    stack = {
        "bounded": depth is not None,
        "max_depth": depth,
        "reason": reason,
        "reserve": policy.stack_reserve,
        "stack_size": image.stack_size,
    }
    return Report(image, findings, stats, wcet, stack)
