"""Valid taken-transfer edges of a task image (link-base-0 offsets).

One extraction, two consumers: the :class:`~repro.core.cfi.CfiWatchdog`
validates transfers online against these sets, and the
:class:`~repro.cfa.verifier.PathVerifier` replays recorded path evidence
against them offline.  Both used to carry private decode walkers; the
edge model is now derived from the :class:`~repro.analysis.cfg.CodeModel`
linear sweep so branch-target decoding lives in exactly one place.

The sweep stops at the first undecodable byte, which in TELF images is
normally the start of the data section; bytes beyond it never execute
legitimately (the EA-MPU would still let them - code and data share the
task region) so transfers touching unswept offsets are violations,
catching jumps into data too.

Targets are the *raw* branch immediates (``insn.imm``), not the
relocation-gated targets recursive descent uses: the consumers compare
against link-base-0 offsets after subtracting the load base, and an
unrelocated branch is a decode-soundness finding for the static
verifier, not a reason to widen the runtime edge set.
"""

from __future__ import annotations

from repro.isa.opcodes import CONDITIONAL_BRANCHES, Op

from .cfg import CodeModel


class EdgeModel:
    """Static control-flow edges of one image, from the linear sweep."""

    __slots__ = (
        "branch_targets",
        "return_sites",
        "ret_offsets",
        "instruction_starts",
        "swept_end",
    )

    def __init__(self):
        #: offset of each decoded instruction -> set of valid direct
        #: branch targets (offsets) for that instruction; empty set for
        #: non-branch instructions.
        self.branch_targets = {}
        #: offsets that are valid return sites (call continuations).
        self.return_sites = set()
        #: offsets of ``ret`` instructions.
        self.ret_offsets = set()
        #: all valid instruction-start offsets.
        self.instruction_starts = set()
        #: one past the last swept byte.
        self.swept_end = 0

    @classmethod
    def from_code_model(cls, model):
        """Derive the edge sets from a :class:`CodeModel`'s sweep."""
        edges = cls()
        for offset, insn in model.sweep.items():
            edges.instruction_starts.add(offset)
            targets = set()
            opcode = insn.opcode
            if opcode == Op.JMP or opcode in CONDITIONAL_BRANCHES:
                targets.add(insn.imm)
            elif opcode == Op.CALL:
                targets.add(insn.imm)
                edges.return_sites.add(offset + insn.length)
            elif opcode == Op.RET:
                edges.ret_offsets.add(offset)
            edges.branch_targets[offset] = targets
        edges.swept_end = model.sweep_end
        return edges

    @classmethod
    def from_image(cls, image):
        """Extract the edge model from a task image."""
        return cls.from_code_model(CodeModel(image))

    def validate(self, from_offset, to_offset):
        """Check one taken transfer; returns ``None`` or a reason string."""
        if from_offset not in self.instruction_starts:
            return "transfer from unknown instruction"
        if to_offset not in self.instruction_starts:
            return "target is not an instruction boundary"
        if from_offset in self.ret_offsets:
            if to_offset not in self.return_sites:
                return "return to a non-call-site"
            return None
        allowed = self.branch_targets.get(from_offset, set())
        if to_offset in allowed:
            return None
        return "branch target not in the binary's CFG"
