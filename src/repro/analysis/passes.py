"""The verifier's analysis passes.

Each pass is a function ``(model, functions, policy) -> [Finding]``
over the shared :class:`~repro.analysis.cfg.CodeModel` and the
per-function CFGs.  A finding is a *violation*: an image with zero
findings is admissible.  Verdicts that are informative rather than
damning (e.g. "no static WCET because a loop has no bound annotation")
live in the report, not in the findings list, unless the policy turns
them into requirements (``wcet_budget``).

The five shipped passes mirror the ISSUE pipeline:

1. ``decode_soundness`` - unknown opcodes, truncated instructions,
   branches landing mid-instruction / outside the code region, and
   branch immediates that are not relocation-backed (their runtime
   target is unknowable at link base 0).
2. ``privilege_policy`` - CLI / STI / IRET / HLT in unprivileged tasks.
3. ``mpu_safety`` - statically resolvable memory operands checked
   against the task's own footprint (relocated bases) or the policy's
   allowed absolute windows (unrelocated bases), plus stores into the
   task's own reachable code.
4. ``stack_depth`` - maximum push/call depth over the CFG versus the
   image's declared stack size.
5. ``wcet_bound`` - longest-path cycle bound (see
   :mod:`repro.analysis.wcet`) versus the policy budget.
"""

from __future__ import annotations

from repro.analysis import wcet as wcet_mod
from repro.analysis.cfg import PRIVILEGED_OPS, STORE_OPS
from repro.analysis.constprop import access_width, resolved_accesses
from repro.isa.disassembler import format_instruction
from repro.isa.opcodes import Op
from repro.rtos.task import INBOX_BYTES

#: Bytes of headroom the stack pass demands beyond the computed maximum
#: depth: the exception hardware frame (8 bytes) plus a full register
#: save (8 x 4 bytes), so a preemption at peak depth still fits.
DEFAULT_STACK_RESERVE = 48


class Finding:
    """One verifier violation, anchored to a blob offset."""

    __slots__ = ("pass_name", "code", "offset", "message", "detail")

    def __init__(self, pass_name, code, offset, message, **detail):
        self.pass_name = pass_name
        self.code = code
        self.offset = offset
        self.message = message
        self.detail = detail

    def to_dict(self):
        """JSON-ready representation."""
        out = {
            "pass": self.pass_name,
            "code": self.code,
            "offset": self.offset,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    def render(self):
        """One human-readable report line."""
        where = "0x%04X" % self.offset if self.offset is not None else "-"
        return "[%s] %s %s: %s" % (self.pass_name, where, self.code, self.message)

    def __repr__(self):
        return "Finding(%s)" % self.render()


# -- 1. decode soundness ------------------------------------------------------


def decode_soundness(model, functions, policy):
    """Flag reachable code that does not decode to well-formed flow."""
    findings = []
    for err in model.decode_errors:
        findings.append(
            Finding(
                "decode",
                err.reason,
                err.offset,
                "reachable offset fails to decode (%s, reached via %s%s)"
                % (
                    err.reason,
                    err.origin,
                    " from 0x%X" % err.source if err.source is not None else "",
                ),
                origin=err.origin,
            )
        )
    for offset in sorted(model.unrelocated_branches):
        view = model.reachable[offset]
        findings.append(
            Finding(
                "decode",
                "unrelocated-branch-target",
                offset,
                "`%s` takes a literal address with no relocation entry; "
                "its runtime target cannot be determined statically"
                % format_instruction(view.insn),
            )
        )
    targets = sorted(model.branch_targets | model.call_targets)
    for target in targets:
        if target in model.sweep:
            continue
        covering = model.sweep_insn_covering(target)
        if covering is not None:
            start, insn = covering
            findings.append(
                Finding(
                    "decode",
                    "mid-instruction-target",
                    target,
                    "branch target splits the `%s` at 0x%X"
                    % (format_instruction(insn), start),
                    splits=start,
                )
            )
        elif target >= model.sweep_end:
            findings.append(
                Finding(
                    "decode",
                    "target-outside-code",
                    target,
                    "branch target lies past the decodable code region "
                    "(ends at 0x%X)" % model.sweep_end,
                )
            )
    return findings


# -- 2. privilege policy ------------------------------------------------------


def privilege_policy(model, functions, policy):
    """Flag privileged opcodes unless the policy marks the task privileged."""
    if policy.privileged:
        return []
    findings = []
    for offset in sorted(model.reachable):
        view = model.reachable[offset]
        if view.insn.opcode in PRIVILEGED_OPS:
            findings.append(
                Finding(
                    "privilege",
                    "privileged-instruction",
                    offset,
                    "`%s` is reachable in an unprivileged task"
                    % view.insn.mnemonic,
                )
            )
    return findings


# -- 3. MPU safety -------------------------------------------------------------


def mpu_safety(model, functions, policy):
    """Check statically resolvable memory operands against the layout.

    A per-block constant propagation tracks registers loaded by ``movi``
    (values forgotten at block boundaries and on any redefinition), so
    only operands whose base is *provably* a specific constant are
    judged.  Relocation entries split the address spaces: a relocated
    ``movi`` immediate is a task-relative offset (the loader rebases
    it), checked against the task's own footprint of
    ``blob + bss + inbox + stack`` bytes; an unrelocated immediate is an
    absolute runtime address, checked against
    ``policy.allowed_absolute_ranges`` when the policy declares any.
    """
    image = model.image
    footprint = (
        len(image.blob) + image.bss_size + INBOX_BYTES + image.stack_size
    )
    code_bytes = set()
    for view in model.reachable.values():
        code_bytes.update(range(view.offset, view.end))
    findings = []
    reported = set()

    def report(code, view, message, **detail):
        key = (code, view.offset)
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding("mpu", code, view.offset, message, **detail))

    for fn in functions.values():
        for block in fn.blocks.values():
            for view, resolved in resolved_accesses(block):
                if resolved is None:
                    continue
                insn = view.insn
                opcode = insn.opcode
                value, relocated = resolved
                addr = (value + insn.imm) & 0xFFFFFFFF
                width = access_width(opcode)
                is_store = opcode in STORE_OPS
                if relocated:
                    if addr + width > footprint:
                        report(
                            "task-relative-out-of-range",
                            view,
                            "`%s` resolves to task offset 0x%X, "
                            "outside the %d-byte task footprint"
                            % (format_instruction(insn), addr, footprint),
                            address=addr,
                            footprint=footprint,
                        )
                    elif is_store and addr in code_bytes:
                        report(
                            "store-into-code",
                            view,
                            "`%s` writes task offset 0x%X inside "
                            "the task's own code"
                            % (format_instruction(insn), addr),
                            address=addr,
                        )
                elif policy.allowed_absolute_ranges is not None:
                    ok = any(
                        lo <= addr and addr + width <= hi
                        for lo, hi in policy.allowed_absolute_ranges
                    )
                    if not ok:
                        report(
                            "absolute-out-of-range",
                            view,
                            "`%s` touches absolute address 0x%X, "
                            "outside every allowed window"
                            % (format_instruction(insn), addr),
                            address=addr,
                        )
    return findings


# -- 4. stack depth ------------------------------------------------------------


def _block_stack_profile(block, callee_depth):
    """``(net_delta, peak)`` of one block, given per-callee max depths.

    ``peak`` is the highest depth above the block's entry depth reached
    *inside* the block, including transient callee frames (return
    address plus the callee's own maximum depth).
    """
    depth = 0
    peak = 0
    for view in block.insns:
        opcode = view.insn.opcode
        if opcode in (Op.PUSH, Op.PUSHI):
            depth += 4
            peak = max(peak, depth)
        elif opcode == Op.POP:
            depth -= 4
        elif opcode == Op.CALL:
            callee = 0
            if view.target is not None:
                callee = callee_depth.get(view.target, 0)
                if callee is None:
                    return None, None
            peak = max(peak, depth + 4 + callee)
    return depth, peak


def _function_max_depth(fn, callee_depth):
    """Maximum stack depth of one function, or ``None`` if unbounded."""
    if fn.entry not in fn.blocks:
        return 0
    profiles = {}
    for start, block in fn.blocks.items():
        net, peak = _block_stack_profile(block, callee_depth)
        if net is None:
            return None
        profiles[start] = (net, peak)
    # Longest-path relaxation on entry depths; a relaxation still firing
    # after |blocks| rounds means a cycle with positive net growth.
    depth_in = {fn.entry: 0}
    for round_index in range(len(fn.blocks) + 1):
        changed = False
        for start in fn.rpo:
            if start not in depth_in:
                continue
            net, _ = profiles[start]
            out = depth_in[start] + net
            for succ in fn.blocks[start].succ:
                if out > depth_in.get(succ, -1):
                    depth_in[succ] = out
                    changed = True
        if not changed:
            break
    else:
        changed = True
    if changed:
        return None
    best = 0
    for start, entry_depth in depth_in.items():
        _, peak = profiles[start]
        best = max(best, entry_depth + peak)
    return best


def compute_max_stack_depth(model, functions):
    """``(depth_or_None, reason)`` for the whole task."""
    order, recursive = wcet_mod.call_order(functions)
    if recursive:
        return None, "recursive call cycle"
    callee_depth = {}
    for entry in order:
        depth = _function_max_depth(functions[entry], callee_depth)
        if depth is None:
            return None, (
                "stack grows along a cycle in function 0x%X" % entry
            )
        callee_depth[entry] = depth
    entry_fn = model.image.entry
    return callee_depth.get(entry_fn, 0), None


def stack_depth(model, functions, policy):
    """Flag stacks that can provably outgrow the image's allocation."""
    depth, reason = compute_max_stack_depth(model, functions)
    if depth is None:
        return [
            Finding(
                "stack",
                "unbounded-stack",
                model.image.entry,
                "stack depth has no static bound: %s" % reason,
            )
        ]
    required = depth + policy.stack_reserve
    if required > model.image.stack_size:
        return [
            Finding(
                "stack",
                "stack-overflow-risk",
                model.image.entry,
                "maximum stack depth %d + reserve %d exceeds the "
                "declared stack of %d bytes"
                % (depth, policy.stack_reserve, model.image.stack_size),
                depth=depth,
                reserve=policy.stack_reserve,
                stack_size=model.image.stack_size,
            )
        ]
    return []


# -- 5. WCET bound -------------------------------------------------------------


def wcet_bound(model, functions, policy):
    """Flag tasks that miss the policy's cycle budget (when one is set).

    Without a budget the WCET verdict is informational only - it is
    always published in the report - because long-running tasks (e.g.
    periodic servers structured as infinite loops) are legitimate.
    """
    result = wcet_mod.compute_wcet(model, functions, policy.loop_bounds)
    if policy.wcet_budget is None:
        return []
    if not result.bounded:
        return [
            Finding(
                "wcet",
                "no-static-wcet",
                model.image.entry,
                "a WCET budget of %d cycles is required but no static "
                "bound exists: %s" % (policy.wcet_budget, result.reason),
            )
        ]
    if result.cycles > policy.wcet_budget:
        return [
            Finding(
                "wcet",
                "wcet-budget-exceeded",
                model.image.entry,
                "static WCET of %d cycles exceeds the budget of %d"
                % (result.cycles, policy.wcet_budget),
                wcet=result.cycles,
                budget=policy.wcet_budget,
            )
        ]
    return []


#: The default pipeline, in ISSUE order.
DEFAULT_PASSES = (
    ("decode", decode_soundness),
    ("privilege", privilege_policy),
    ("mpu", mpu_safety),
    ("stack", stack_depth),
    ("wcet", wcet_bound),
)

__all__ = [
    "DEFAULT_PASSES",
    "DEFAULT_STACK_RESERVE",
    "Finding",
    "compute_max_stack_depth",
    "decode_soundness",
    "mpu_safety",
    "privilege_policy",
    "stack_depth",
    "wcet_bound",
]
