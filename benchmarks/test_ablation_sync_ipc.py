"""Ablation - synchronous vs asynchronous secure IPC.

Section 4: "For synchronous communication, the IPC proxy branches to R,
whose entry routine processes m.  For asynchronous communication, the
IPC proxy continues executing S and R processes m the next time it is
scheduled."  The design choice trades sender progress against receiver
latency; this bench quantifies the message end-to-end latency of both
modes, plus the cost of the truncated 64-bit identity (footnote 9)
versus hypothetical full-digest registry probes.
"""

from repro import TyTAN, cycles
from repro.rtos.task import NativeCall

from tableutil import attach, compare_table


def measure_delivery(sync):
    """Cycles from send to the receiver observing the message."""
    system = TyTAN()
    seen = {}

    def receiver_body(kernel, task):
        while True:
            message = system.ipc.read_inbox(task)
            if message is not None and "at" not in seen:
                seen["at"] = kernel.clock.now
            yield NativeCall.delay_cycles(4_000)  # polling receiver

    def sender_body(kernel, task):
        yield NativeCall.delay_cycles(10_000)
        seen["sent"] = kernel.clock.now
        system.ipc.send(task, rid, [1, 2, 3, 4], sync=sync)
        while True:
            yield NativeCall.delay_cycles(50_000)

    receiver = system.create_service_task("receiver", 3, receiver_body)
    rid = system.rtm.register_service(receiver, "receiver")[:8]
    system.create_service_task("sender", 3, sender_body)
    system.run(until=lambda: "at" in seen, max_cycles=1_000_000)
    return seen["at"] - seen["sent"]


def test_ablation_sync_vs_async(benchmark):
    sync_latency = benchmark(measure_delivery, True)
    async_latency = measure_delivery(False)
    rows = compare_table(
        "Ablation: sync vs async IPC (send-to-receive latency, cycles)",
        [
            ("synchronous (proxy branches to R)", 0, sync_latency),
            ("asynchronous (R waits to be scheduled)", 0, async_latency),
        ],
        tolerance=None,
    )
    # Sync delivery lands within a couple of context switches;
    # async waits for the receiver's next natural activation.
    assert sync_latency < 3_000
    assert async_latency > sync_latency
    print(
        "  sync is %.1fx faster end-to-end in this configuration"
        % (async_latency / sync_latency)
    )
    attach(benchmark, "ablation-sync-ipc", rows)


def test_ablation_truncated_identity(benchmark):
    """Footnote 9: the implementation uses the first 64 bits of the
    digest 'for enhanced performance'.  A full 160-bit compare would
    probe 5 words instead of 2 per registry entry."""

    def proxy_cost_model(id_words, entries):
        per_entry_full = cycles.IPC_REGISTRY_PER_ENTRY * id_words / 2.0
        return (
            cycles.IPC_ENTRY
            + cycles.IPC_ORIGIN_LOOKUP
            + cycles.IPC_REGISTRY_BASE
            + entries * per_entry_full
            + cycles.IPC_INBOX_BASE
            + (cycles.IPC_MAX_MESSAGE_WORDS + id_words) * cycles.IPC_INBOX_PER_WORD
            + cycles.IPC_DELIVER
        )

    def sweep():
        return {
            entries: (proxy_cost_model(2, entries), proxy_cost_model(5, entries))
            for entries in (2, 8, 16)
        }

    results = benchmark(sweep)
    rows = []
    for entries, (truncated, full) in results.items():
        rows.append(
            ("%d tasks: truncated 64-bit id" % entries, 0, truncated)
        )
        rows.append(("%d tasks: full 160-bit id" % entries, 0, full))
    table = compare_table(
        "Ablation: truncated vs full identity in the IPC proxy (cycles)",
        rows,
        tolerance=None,
    )
    for entries, (truncated, full) in results.items():
        assert full > truncated
    # At the paper's reference config the saving is ~8% of the proxy.
    saving = (results[2][1] - results[2][0]) / results[2][0]
    print("  truncation saves %.1f%% at 2 registered tasks" % (100 * saving))
    attach(benchmark, "ablation-truncated-id", table)
