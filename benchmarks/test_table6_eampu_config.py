"""Table 6 - configuring the EA-MPU versus first-free-slot position.

Paper (18 slots total):

    slot  1: find  76 + policy 824 + write 225 = 1,125
    slot  2: find  95 + policy 824 + write 225 = 1,144
    slot 18: find 399 + policy 824 + write 225 = 1,448

The driver really scans slot by slot and really walks all 18 slots for
the overlap check, so the position dependence is measured.
"""

from repro import TyTAN
from repro.hw.ea_mpu import MpuRule, Perm

from tableutil import attach, compare_table

PAPER = {1: (76, 1_125), 2: (95, 1_144), 18: (399, 1_448)}


def fill_rule(index):
    base = 0x300000 + index * 0x1000
    return MpuRule("fill-%d" % index, base, base + 0x100, base, base + 0x100, Perm.RWX)


def configure_with_first_free_at(position):
    """Arrange the MPU so the first free slot is ``position`` (1-based),
    then measure one configure call."""
    system = TyTAN()
    mpu = system.platform.mpu
    driver = system.mpu_driver
    # Occupy every slot below `position`; the 10 boot rules already sit
    # in slots 0-9, so we top up with filler rules (and widen the table
    # if the requested position exceeds the paper's static usage).
    free = mpu.free_slots()
    need_filled = position - 1
    filled = mpu.slot_count - len(free)
    index = 0
    while filled < need_filled:
        mpu.program_slot(free[index], fill_rule(index))
        filled += 1
        index += 1
    before = system.clock.now
    driver.configure_rule(fill_rule(99))
    breakdown = driver.last_breakdown
    return breakdown, system.clock.now - before


def measure_sweep():
    results = {}
    for position in PAPER:
        if position <= 10:
            # Boot rules occupy slots 0-9; positions 1/2 need a bare MPU.
            results[position] = configure_bare(position)
        else:
            results[position] = configure_with_first_free_at(position)
    return results


def configure_bare(position):
    """Measure on an unbooted MPU so low slot positions are reachable."""
    from repro.hw.clock import CycleClock
    from repro.hw.ea_mpu import EAMPU
    from repro.core.mpu_driver import EAMPUDriver

    mpu = EAMPU()
    clock = CycleClock()
    driver = EAMPUDriver(mpu, clock)
    driver.bind(0x10000, 0x1000)
    for index in range(position - 1):
        mpu.program_slot(index, fill_rule(index))
    before = clock.now
    driver.configure_rule(fill_rule(99))
    return driver.last_breakdown, clock.now - before


def test_table6_eampu_config(benchmark):
    results = benchmark(measure_sweep)
    rows = []
    for position, (paper_find, paper_overall) in PAPER.items():
        breakdown, total = results[position]
        rows.append(("slot %d: finding free slot" % position, paper_find, breakdown["find"]))
        rows.append(("slot %d: policy check" % position, 824, breakdown["policy"]))
        rows.append(("slot %d: writing rule" % position, 225, breakdown["write"]))
        rows.append(("slot %d: overall" % position, paper_overall, total))
    table = compare_table("Table 6: EA-MPU configuration (cycles)", rows, tolerance=0.0)
    attach(benchmark, "table6", table)
