"""Extension bench - live task update vs unload+reload.

The paper motivates runtime update with "high availability
requirements" (Section 8).  This bench quantifies the benefit: the
*downtime* (cycles during which the service is not schedulable) of an
authorized live update versus the naive unload + reload, and verifies
that a preemptible background update leaves a 1.5 kHz task's deadlines
intact.
"""

from repro import TyTAN
from repro.rtos.task import NativeCall

from tableutil import attach, compare_table

V1 = """
.section .text
.global start
start:
    movi esi, counter
again:
    ld eax, [esi]
    addi eax, 1
    st [esi], eax
    movi eax, 7
    movi ebx, 32000
    int 0x20
    jmp again
.section .data
counter:
    .word 0
"""

V2 = V1.replace("addi eax, 1", "addi eax, 2")


def measure_update():
    system = TyTAN()
    v1 = system.build_image(V1, "svc-v1")
    v2 = system.build_image(V2, "svc-v2")
    task = system.load_task(v1, secure=True, name="svc")
    system.store(task, "state", b"sealed state blob " * 4)
    authority = system.make_update_authority()
    token = authority.authorize(task.identity, v2)
    result = system.update_task(task, v2, token)
    restored = system.retrieve(task, "state")
    assert restored == b"sealed state blob " * 4
    return result.downtime, result.total_cycles


def measure_reload():
    system = TyTAN()
    v1 = system.build_image(V1, "svc-v1")
    v2 = system.build_image(V2, "svc-v2")
    task = system.load_task(v1, secure=True, name="svc")
    before = system.clock.now
    system.unload_task(task)
    system.load_task(v2, secure=True, name="svc")
    # Unload+reload: the service is absent for the whole duration, and
    # the sealed state of v1 is lost to v2 (different identity).
    return system.clock.now - before


def test_ext_update_downtime(benchmark):
    downtime, total = benchmark(measure_update)
    reload_downtime = measure_reload()
    rows = compare_table(
        "Extension: live update vs unload+reload (cycles of service downtime)",
        [
            ("live update: downtime", 0, downtime),
            ("live update: total (incl. staging)", 0, total),
            ("unload + reload: downtime", 0, reload_downtime),
        ],
        tolerance=None,
    )
    # Staging overlaps with service execution, so the downtime is a
    # small fraction of the naive approach.
    assert downtime < reload_downtime / 2
    print(
        "  live update cuts downtime %.1fx (and preserves sealed state)"
        % (reload_downtime / downtime)
    )
    attach(benchmark, "ext-update", rows)


def test_ext_update_keeps_deadlines(benchmark):
    def run():
        system = TyTAN()
        v1 = system.build_image(V1, "svc-v1")
        v2 = system.build_image(V2, "svc-v2")
        task = system.load_task(v1, secure=True, name="svc", priority=2)
        authority = system.make_update_authority()
        token = authority.authorize(task.identity, v2)

        marks = []

        def periodic(kernel, tcb):
            deadline = kernel.clock.now + 32_000
            while True:
                marks.append(kernel.clock.now)
                yield NativeCall.charge(400)
                yield NativeCall.delay_until(deadline)
                deadline += 32_000

        system.create_service_task("hf", 5, periodic)
        result = system.update_task_async(task, v2, token)
        system.run(until=lambda: result.done)
        window = [
            m for m in marks if result.started_at <= m <= result.finished_at
        ]
        gaps = [b - a for a, b in zip(window, window[1:])]
        return gaps

    gaps = benchmark(run)
    assert gaps
    assert max(gaps) < 40_000  # no 1.5 kHz deadline blown by the update
    print(
        "\n  1.5 kHz task during background update: max gap %d cycles "
        "(budget 40,000)" % max(gaps)
    )
