"""Table 2 - performance of saving the context of a secure task.

Paper: store 38 + wipe 16 + branch 41 = 95 cycles; plain FreeRTOS saves
in 38 cycles, so TyTAN's overhead is 57 cycles.

The bench runs a secure spinner on TyTAN until a tick interrupt forces
an Int Mux save, and a normal spinner on plain FreeRTOS for the
baseline, measuring the actual cycle charges of each path.
"""

from repro import TyTAN, build_freertos_baseline
from repro.isa.assembler import assemble
from repro.image.linker import link

from tableutil import attach, compare_table

SPIN = ".global start\nstart:\n    jmp start"


def measured_secure_save():
    """Run until the Int Mux saves a secure context; return breakdown."""
    system = TyTAN()
    image = system.build_image(SPIN, "spinner")
    system.load_task(image, secure=True)
    system.run(max_cycles=40_000)
    return system.int_mux.last_save


def measured_baseline_save():
    """Plain FreeRTOS context save cost, observed on a real preemption."""
    platform, kernel, loader = build_freertos_baseline()
    image = link(assemble(SPIN, "spinner"), stack_size=128)
    loader.load_synchronously(image, secure=False)
    observed = []
    original = kernel.context_policy.save_context

    def recording_save(task):
        charged = original(task)
        observed.append(charged)
        return charged

    kernel.context_policy.save_context = recording_save
    kernel.run(max_cycles=40_000)
    return observed[0]


def test_table2_save_context(benchmark):
    save = benchmark(measured_secure_save)
    baseline = measured_baseline_save()
    rows = compare_table(
        "Table 2: saving the context of a secure task (cycles)",
        [
            ("store context", 38, save["store"]),
            ("wipe registers", 16, save["wipe"]),
            ("branch", 41, save["branch"]),
            ("overall", 95, save["overall"]),
            ("freertos baseline", 38, baseline),
            ("overhead", 57, save["overall"] - baseline),
        ],
        tolerance=0.0,
    )
    attach(benchmark, "table2", rows)
