"""Section 6, "Secure IPC" - end-to-end IPC latency.

Paper: the IPC proxy runs in 1,208 cycles and the receiver's entry
routine processes the message in 116 cycles; overall 1,324 cycles.

The bench measures the real proxy path (trap entry, origin lookup,
registry probe, inbox write, delivery) in the paper's reference
configuration (receiver probed second in the registry, 4-word message),
and the receiver-side entry-routine charge on the next resume.
"""

from repro import TyTAN
from repro.rtos.syscalls import IpcAbi
from repro.rtos.task import NativeCall

from tableutil import attach, compare_table


def measure_ipc():
    system = TyTAN()

    def idle_body(kernel, task):
        while True:
            yield NativeCall.delay_cycles(100_000)

    sender = system.create_service_task("sender", 3, idle_body)
    system.rtm.register_service(sender, "sender")
    receiver = system.create_service_task("receiver", 4, idle_body)
    receiver_id = system.rtm.register_service(receiver, "receiver")[:8]

    before = system.clock.now
    status, _ = system.ipc.send(sender, receiver_id, [1, 2, 3, 4])
    proxy_cycles = system.clock.now - before
    assert status == IpcAbi.STATUS_OK

    # Receiver-side entry routine: resume the receiver in message mode.
    policy = system.kernel.context_policy
    receiver.resume_mode = IpcAbi.MODE_MESSAGE
    policy.restore_context_native(receiver)
    restore = policy.entry_routine.last_restore
    entry_routine_cycles = restore["mode_check"] + restore["receive"]

    return proxy_cycles, entry_routine_cycles


def test_ipc_latency(benchmark):
    proxy_cycles, entry_cycles = benchmark(measure_ipc)
    rows = compare_table(
        "Secure IPC latency (cycles)",
        [
            ("IPC proxy", 1_208, proxy_cycles),
            ("receiver entry routine", 116, entry_cycles),
            ("overall", 1_324, proxy_cycles + entry_cycles),
        ],
        tolerance=0.0,
    )
    attach(benchmark, "ipc", rows)


def test_ipc_scaling_with_registry(benchmark):
    """Beyond the paper: the registry probe is linear in loaded tasks -
    the knob footnote 9's truncated identities keep cheap."""

    def sweep():
        system = TyTAN()

        def idle_body(kernel, task):
            while True:
                yield NativeCall.delay_cycles(100_000)

        sender = system.create_service_task("sender", 3, idle_body, protect=False)
        system.rtm.register_service(sender, "sender")
        costs = {}
        for count in (1, 4, 8):
            while system.rtm.registry_size() < count:
                extra = system.create_service_task(
                    "svc-%d" % system.rtm.registry_size(), 2, idle_body,
                    protect=False,
                )
                system.rtm.register_service(extra, extra.name)
            target = system.rtm._registry[-1].identity64
            before = system.clock.now
            system.ipc.send(sender, target, [1])
            costs[count] = system.clock.now - before
            # Drain so later sends do not hit a full inbox.
            system.ipc.read_inbox(system.rtm._registry[-1].task)
        return costs

    costs = benchmark(sweep)
    assert costs[4] > costs[1]
    assert costs[8] > costs[4]
    per_entry = (costs[8] - costs[4]) / 4
    assert 20 <= per_entry <= 30  # ~24 cycles per probed entry
