"""Table 1 / Figure 2 - the adaptive cruise control use case.

Paper: tasks t0 and t1 run at 1.5 kHz before, while, and after loading
t2; t2 reaches 1.5 kHz once loaded.  Loading t2 takes 27.8 ms - far
longer than one 1.5 kHz period - so the experiment only works because
every loading step is preemptible.

The bench reproduces the full scenario: t0/t1 as secure service tasks,
t2 as a real ISA binary assembled, relocated, measured, and loaded by a
priority-0 loader task, with deadline monitoring throughout.
"""

from repro import TyTAN
from repro.uc.cruise_control import CONTROL_PERIOD_CYCLES, CruiseControlSystem

from tableutil import attach, compare_table


def run_scenario():
    system = TyTAN()
    uc = CruiseControlSystem(system)
    uc.t2_activation_hook()
    hz = system.platform.config.hz
    phase = int(0.030 * hz)  # 30 ms phases

    a0 = system.clock.now
    system.run(max_cycles=phase)
    a1 = system.clock.now
    uc.activate_cruise_control()
    system.run(until=lambda: uc.t2_result.done)
    b1 = system.clock.now
    system.run(max_cycles=phase)
    c1 = system.clock.now

    return {
        "uc": uc,
        "windows": {"before": (a0, a1), "while": (a1, b1), "after": (b1, c1)},
        "load_ms": uc.t2_result.total_cycles * 1000.0 / hz,
        "faults": dict(system.kernel.faulted),
    }


def test_table1_usecase(benchmark):
    result = benchmark(run_scenario)
    uc = result["uc"]
    windows = result["windows"]

    rows = []
    khz = {}
    for phase_name, window in windows.items():
        for task_name in ("t1", "t2", "t0"):
            report = uc.monitor.report(
                task_name, *window, period=CONTROL_PERIOD_CYCLES
            )
            khz[(task_name, phase_name)] = report
    paper = {
        ("t1", "before"): 1.5, ("t2", "before"): 0.0, ("t0", "before"): 1.5,
        ("t1", "while"): 1.5, ("t0", "while"): 1.5,
        ("t1", "after"): 1.5, ("t2", "after"): 1.5, ("t0", "after"): 1.5,
    }
    for (task_name, phase_name), expected in paper.items():
        measured = khz[(task_name, phase_name)].khz
        rows.append(
            ("%s %s loading t2 (kHz)" % (task_name, phase_name), expected, measured)
        )
    table = compare_table(
        "Table 1: use-case task frequencies", rows, tolerance=None
    )

    # Assertions: the paper's claim is 1.5 kHz everywhere with no misses.
    for (task_name, phase_name), expected in paper.items():
        report = khz[(task_name, phase_name)]
        if expected == 0.0:
            assert report.khz < 0.1
        else:
            assert abs(report.khz - expected) <= 0.2, (task_name, phase_name, report)
            assert report.missed == 0, (task_name, phase_name, report)

    # Loading time is in the paper's ballpark (27.8 ms).
    print("  t2 load time: %.2f ms (paper: 27.80 ms)" % result["load_ms"])
    assert 23.0 <= result["load_ms"] <= 33.0
    assert not result["faults"]

    attach(benchmark, "table1", table)
    benchmark.extra_info["load_ms"] = result["load_ms"]
