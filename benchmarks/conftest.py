"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro import TyTAN, build_freertos_baseline


@pytest.fixture
def system():
    """A freshly booted TyTAN system."""
    return TyTAN()


@pytest.fixture
def baseline():
    """Plain FreeRTOS (platform, kernel, loader)."""
    return build_freertos_baseline()
