"""Table 3 - performance of restoring the context of a secure task.

Paper: branch 106 + restore 254, overall 384 (the 24-cycle difference
is the entry routine's mode check); plain FreeRTOS restores in 254
cycles, overhead 130.
"""

from repro import TyTAN, build_freertos_baseline
from repro.isa.assembler import assemble
from repro.image.linker import link

from tableutil import attach, compare_table

SPIN = ".global start\nstart:\n    jmp start"


def measured_secure_restore():
    """Preempt a secure spinner, then resume it; return the breakdown."""
    system = TyTAN()
    system.load_task(system.build_image(SPIN, "spinner"), secure=True)
    system.run(max_cycles=80_000)  # at least one preempt + resume cycle
    return system.kernel.context_policy.entry_routine.last_restore


def measured_baseline_restore():
    platform, kernel, loader = build_freertos_baseline()
    image = link(assemble(SPIN, "spinner"), stack_size=128)
    loader.load_synchronously(image, secure=False)
    observed = []
    original = kernel.context_policy.restore_context

    def recording_restore(task):
        charged = original(task)
        observed.append(charged)
        return charged

    kernel.context_policy.restore_context = recording_restore
    kernel.run(max_cycles=80_000)
    return observed[-1]


def test_table3_restore_context(benchmark):
    restore = benchmark(measured_secure_restore)
    baseline = measured_baseline_restore()
    rows = compare_table(
        "Table 3: restoring the context of a secure task (cycles)",
        [
            ("branch (incl. entry check)", 106, restore["branch"]),
            ("restore", 254, restore["restore"]),
            ("overall", 384, restore["overall"]),
            ("freertos baseline", 254, baseline),
            ("overhead", 130, restore["overall"] - baseline),
        ],
        tolerance=0.0,
    )
    attach(benchmark, "table3", rows)
