"""Extension bench - CFI watchdog overhead and detection latency.

Runtime attack detection must not break the real-time story: the
per-transfer check is a small constant (modelled hardware), so a
branch-heavy task slows by a bounded, measurable fraction.  The bench
measures (a) the execution-time overhead of monitoring a branchy
workload and (b) the detection latency of a return-address hijack
(cycles from the corrupting instruction to the kill).
"""

from repro import TyTAN
from repro.core.cfi import CfiViolation

from tableutil import attach, compare_table

#: A branch-heavy workload: a call + loop per iteration.
BRANCHY = """
.section .text
.global start
start:
    movi ecx, 200
loop:
    call work
    subi ecx, 1
    cmpi ecx, 0
    jnz loop
    movi eax, 2
    int 0x20
work:
    movi ebx, acc
    ld eax, [ebx]
    addi eax, 1
    st [ebx], eax
    ret
.section .data
acc:
    .word 0
"""

HIJACK = """
.section .text
.global start
start:
    call victim
    movi eax, 2
    int 0x20
victim:
    pushi gadget
    ret
gadget:
    movi eax, 2
    int 0x20
"""


def run_branchy(monitored):
    system = TyTAN()
    task = system.load_source(BRANCHY, "branchy", secure=True)
    if monitored:
        system.enable_cfi(task)
    start = system.clock.now
    system.run(max_cycles=2_000_000)
    assert task not in system.kernel.faulted
    assert task.tid not in system.kernel.scheduler.tasks  # exited cleanly
    return system.clock.now - start, (system.cfi.checks if monitored else 0)


def test_ext_cfi_overhead(benchmark):
    monitored_cycles, checks = benchmark(run_branchy, True)
    plain_cycles, _ = run_branchy(False)
    overhead = monitored_cycles - plain_cycles
    rows = compare_table(
        "Extension: CFI watchdog overhead (branchy task, cycles to completion)",
        [
            ("unmonitored", 0, plain_cycles),
            ("monitored", 0, monitored_cycles),
            ("checks performed", 0, checks),
        ],
        tolerance=None,
    )
    assert checks >= 599  # 200 calls + 200 rets + 199 taken jnz
    # 2 cycles per check; scheduling boundaries shift slightly between
    # the runs, so allow a small tolerance around the exact model.
    assert abs(overhead - 2 * checks) <= 0.2 * 2 * checks + 500
    assert 0 < overhead / plain_cycles < 0.25
    print(
        "  overhead: %d cycles (%.1f%% of the unmonitored run)"
        % (overhead, 100.0 * overhead / plain_cycles)
    )
    attach(benchmark, "ext-cfi-overhead", rows)


def test_ext_cfi_detection_latency(benchmark):
    def run():
        system = TyTAN()
        task = system.load_source(HIJACK, "hijack", secure=True)
        system.enable_cfi(task)
        system.run(max_cycles=200_000)
        fault = system.kernel.faulted.get(task)
        assert isinstance(fault, CfiViolation)
        return fault

    fault = benchmark(run)
    # Detection happens ON the corrupted transfer - zero gadget
    # instructions execute.
    assert "non-call-site" in fault.reason
    print("\n  hijack detected at the corrupted return itself: %s" % fault)
