"""Table 5 - relocation cost versus number of relocated addresses.

Paper (min / avg, cycles):

    0 addresses:    37 /    37
    1 address:     673 /   703
    2 addresses: 1,346 / 1,372
    4 addresses: 2,634 / 2,711

The min column is the all-word-aligned case; the avg column includes
the unaligned-site penalty.  The loader charges per relocation entry it
actually patches, so linearity is measured, not assumed.
"""

from repro import TyTAN
from repro.sim.workloads import synthetic_image

from tableutil import attach, compare_table

PAPER = {0: (37, 37), 1: (673, 703), 2: (1_346, 1_372), 4: (2_634, 2_711)}


def relocation_cost(entries, aligned, seed=1):
    system = TyTAN()
    image = synthetic_image(
        blocks=4, relocations=entries, aligned_relocs=aligned, name="reloc", seed=seed
    )
    system.load_task(image, secure=False, measure=False)
    return system.loader.last_breakdown["relocation"]


def measure_sweep():
    results = {}
    for entries in PAPER:
        minimum = relocation_cost(entries, aligned=True)
        # The avg column averages over the four alignment phases, i.e.
        # over random memory layouts (3/4 of sites unaligned).
        average = sum(
            relocation_cost(entries, aligned=False, seed=seed)
            for seed in range(4)
        ) / 4
        results[entries] = (minimum, average)
    return results


def test_table5_relocation(benchmark):
    results = benchmark(measure_sweep)
    rows = []
    for entries, (paper_min, paper_avg) in PAPER.items():
        measured_min, measured_avg = results[entries]
        rows.append(("%d addresses (min)" % entries, paper_min, measured_min))
        rows.append(("%d addresses (avg)" % entries, paper_avg, measured_avg))
    table = compare_table("Table 5: relocation (cycles)", rows, tolerance=0.03)

    # Linearity: the per-entry increment is constant within 2%.
    min1 = results[1][0] - results[0][0]
    min4 = (results[4][0] - results[0][0]) / 4
    assert abs(min1 - min4) / min1 < 0.02
    # Unaligned sites cost more (the avg >= min split).
    for entries in (1, 2, 4):
        assert results[entries][1] >= results[entries][0]

    attach(benchmark, "table5", table)
