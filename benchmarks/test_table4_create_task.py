"""Table 4 - performance of creating a secure / normal task.

Paper (reference task: ~4 KiB, 9 relocations):

    secure:  reloc 3,692 + EA-MPU 225 + RTM 433,433, overall 642,241
    normal:  reloc 3,692 + EA-MPU 225 + RTM 0,       overall 208,808

Our loader charges the Table 5 relocation model and the *full* Table 6
EA-MPU configure sequence (the paper's EA-MPU column counts only the
rule write), so the component columns differ by construction; the
headline comparisons - overall cost, the secure/normal ratio, and the
RTM dominating secure creation - are asserted tightly.
"""

from repro import TyTAN
from repro.sim.workloads import reference_table4_image

from tableutil import attach, compare_table


def load_once(secure):
    system = TyTAN()
    image = reference_table4_image()
    system.load_task(image, secure=secure, measure=secure)
    return system.loader.last_breakdown


def test_table4_create_task(benchmark):
    secure = benchmark(load_once, True)
    normal = load_once(False)

    rows = compare_table(
        "Table 4: creating a task (cycles)",
        [
            ("secure: relocation", 3_692, secure["relocation"]),
            ("secure: EA-MPU", 225, secure["eampu"]),
            ("secure: RTM", 433_433, secure["rtm"]),
            ("secure: overall", 642_241, secure["overall"]),
            ("normal: overall", 208_808, normal["overall"]),
            ("normal: RTM", 0, normal["rtm"]),
        ],
        tolerance=None,  # component columns are model-different; see below
    )

    # Shape assertions (tight where the model is comparable):
    assert abs(secure["overall"] - 642_241) / 642_241 < 0.05
    assert abs(normal["overall"] - 208_808) / 208_808 < 0.08
    paper_ratio = 642_241 / 208_808
    ratio = secure["overall"] / normal["overall"]
    assert abs(ratio - paper_ratio) / paper_ratio < 0.05
    # The RTM dominates secure creation, as in the paper.
    assert secure["rtm"] > 0.6 * secure["overall"]
    assert abs(secure["rtm"] - 433_433) / 433_433 < 0.02
    assert normal["rtm"] == 0

    attach(benchmark, "table4", rows)
