"""Ablation - hardware vs software context save.

Section 4: "Alternatively, saving the task's context to its stack can be
implemented in hardware, reducing latency at the cost of additional
hardware."  We model the hardware variant as a single burst write of the
register file (one bus transaction per pair of registers, no
instruction fetch overhead) and compare interrupt-to-handler latency.
"""

from repro import TyTAN, cycles
from repro.core.int_mux import TyTANContextPolicy

from tableutil import attach, compare_table

SPIN = ".global start\nstart:\n    jmp start"

#: Modelled cost of a hardware register-file burst save: 8 registers,
#: two per cycle on the 64-bit-internal store path, plus setup.
HW_STORE = 2 + cycles.CONTEXT_REGISTERS // 2
#: The wipe also happens in hardware, in parallel with the store.
HW_WIPE = 0


class HardwareSavePolicy(TyTANContextPolicy):
    """TyTAN with the optional hardware context-save engine."""

    def save_context(self, task):
        if not task.is_secure:
            return super().save_context(task)
        clock = self.kernel.clock
        clock.charge(HW_STORE + HW_WIPE)
        self.kernel.push_gpr_frame(task, actor=self.kernel.memory.HW_ACTOR)
        self.kernel.platform.cpu.regs.wipe_gprs()
        clock.charge(cycles.INTMUX_BRANCH)
        self.int_mux.saves += 1
        self.int_mux.last_save = {
            "store": HW_STORE,
            "wipe": HW_WIPE,
            "branch": cycles.INTMUX_BRANCH,
            "overall": HW_STORE + HW_WIPE + cycles.INTMUX_BRANCH,
        }
        return self.int_mux.last_save["overall"]


def run_variant(hardware):
    system = TyTAN()
    if hardware:
        system.kernel.context_policy = HardwareSavePolicy(
            system.kernel, system.int_mux
        )
    system.load_task(system.build_image(SPIN, "spinner"), secure=True)
    system.run(max_cycles=40_000)
    return system.int_mux.last_save


def test_ablation_hw_save(benchmark):
    software = benchmark(run_variant, False)
    hardware = run_variant(True)
    rows = compare_table(
        "Ablation: software Int Mux vs hardware context save (cycles)",
        [
            ("software save (paper's design)", 95, software["overall"]),
            ("hardware save (paper's alternative)", 0, hardware["overall"]),
        ],
        tolerance=None,
    )
    # The paper's trade-off: hardware is faster...
    assert hardware["overall"] < software["overall"]
    # ...by roughly the store+wipe software cost.
    saved = software["overall"] - hardware["overall"]
    assert saved >= 40
    print(
        "  hardware save reduces secure interrupt latency by %d cycles (%.0f%%)"
        % (saved, 100.0 * saved / software["overall"])
    )
    attach(benchmark, "ablation-hw-save", rows)
