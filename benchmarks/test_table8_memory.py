"""Table 8 - memory consumption of TyTAN's OS.

Paper: FreeRTOS 215,617 bytes, TyTAN 249,943 bytes, overhead 15.92%.

The footprint model sums per-component linker-map sections; the bench
regenerates the totals and the overhead, and checks the secure-task
entry-routine overhead note from Section 6.
"""

from repro.sim.footprint import (
    freertos_footprint,
    overhead_percent,
    secure_task_overhead_bytes,
    total_bytes,
    tytan_footprint,
)

from tableutil import attach, compare_table


def measure():
    base = freertos_footprint()
    extended = tytan_footprint()
    return {
        "freertos": total_bytes(base),
        "tytan": total_bytes(extended),
        "overhead_pct": overhead_percent(base, extended),
    }


def test_table8_memory(benchmark):
    result = benchmark(measure)
    rows = compare_table(
        "Table 8: memory consumption of TyTAN's OS (bytes)",
        [
            ("FreeRTOS", 215_617, result["freertos"]),
            ("TyTAN", 249_943, result["tytan"]),
        ],
        tolerance=0.0,
    )
    assert round(result["overhead_pct"], 2) == 15.92
    print("  overhead: %.2f%% (paper: 15.92%%)" % result["overhead_pct"])

    # Section 6 note: secure tasks carry a small entry-routine stub.
    assert 0 < secure_task_overhead_bytes() <= 256

    attach(benchmark, "table8", rows)
